#!/usr/bin/env bash
# Tier-1 verification plus lint gates. Run from the repo root.
set -euo pipefail

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo build --release
cargo test -q
