#!/usr/bin/env bash
# Tier-1 verification plus lint gates. Run from the repo root.
set -euo pipefail

cargo fmt --check
# --all-targets extends the gates (including clippy::unwrap_used, which
# every library crate warns on) to tests and benches; test modules
# allow-list unwrap explicitly.
cargo clippy --workspace --all-targets -- -D warnings -D clippy::dbg_macro -D clippy::todo
# Static invariant catalog (DESIGN.md §10, §14): token rules (no
# HashMap/HashSet or wall-clock/entropy in model code, no NaN-panicking
# comparators, no float-literal equality, no panic!-family macros in
# library code) plus the semantic pass — unit-safety over identifier
# names (U1/U2), transitive replay determinism across crate boundaries
# (D4), and panic-reachability from public model APIs (P2). Runs before
# the test gates: a lint violation is cheaper to report than a flaked
# property suite is to debug. The JSON report lands in results/ for
# auditing; findings budgeted in lint_baseline.txt (currently none) are
# tolerated, anything else fails the build.
mkdir -p results
cargo build -q -p gsf-lint --release
if ./target/release/gsf-lint --format json --baseline lint_baseline.txt \
    > results/lint_report.json; then
    echo "gsf-lint: clean (report in results/lint_report.json)"
else
    status=$?
    cat results/lint_report.json
    echo "gsf-lint: non-baselined findings (see results/lint_report.json)" >&2
    exit "$status"
fi
cargo build --release
# --workspace: a bare `cargo test` from the root only tests the root
# package (integration suites), silently skipping every crate.
cargo test -q --workspace
# Fault-injection determinism is a hard guarantee (FaultModel::none()
# bit-identical; enabled models seed-deterministic): run its suite
# explicitly so a filtered or partial test run cannot mask a drift.
cargo test -q -p gsf-core --test fault_determinism
# Replay-engine equivalence is equally hard: the prepared engine every
# sizing probe and sweep point runs on must stay bit-identical to the
# unprepared reference engine, faulted and fault-free.
cargo test -q -p gsf-cluster --test prepared_equivalence
# Placement-index equivalence: indexed server selection must stay
# bit-identical to the linear reference scan across policies, fault
# plans, reset reuse, and both sizing searches.
cargo test -q -p gsf-cluster --test index_equivalence
# Sharded-replay equivalence: the parallel shard driver must stay
# bit-identical to its serial reference for every worker count (and
# one shard must stay bit-identical to the unsharded engine), across
# policies, shard-boundary fault plans, reset reuse, and the sharded
# sizing searches.
cargo test -q -p gsf-cluster --test shard_equivalence
# Availability-layer equivalence: flat topology + repairs off must stay
# bit-identical to the pre-repair model (signature, plans, replays,
# sizing, reset reuse); domain faults, revivals, and retry-queue drains
# must replay identically sharded and serial; horizon-edge events, SLO
# monotonicity, and the Little's-law OOS consistency check live here.
cargo test -q -p gsf-cluster --test availability_equivalence
# Arena-storage equivalence: the slot-arena replay core must keep the
# prepared, unprepared, and sharded engines bitwise identical across
# policies and fault shapes, stay internally consistent (occupancy vs
# live slots, aggregate folds) after every replay, and survive reset()
# reuse and both sizing searches unchanged.
cargo test -q -p gsf-cluster --test arena_equivalence
# Allocation budget: after one warming replay the steady-state event
# loop must not allocate per event — a 10x-larger trace must allocate
# exactly as much as the small one. Runs under a counting global
# allocator in its own binary.
cargo test -q -p gsf-perf --test zero_alloc_replay
# Streamed-replay equivalence: evaluating from a chunked trace stream
# (bounded memory, no materialized Trace) must stay bit-identical to
# the in-memory path and share its cache entries. --include-ignored
# pulls in the fleet-scale 24k-VM fixture, which only runs here in
# release (the earlier `cargo build --release` makes this cheap).
cargo test -q --release -p gsf-core --test streamed_equivalence -- --include-ignored
# Docs must build clean: public-API rustdoc (broken intra-doc links,
# malformed HTML) is a release gate, not a warning.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
