//! Capacity planner: the full GSF story for one cluster.
//!
//! Generates a synthetic VM trace, evaluates the three GreenSKU designs
//! end-to-end (performance → adoption → allocation → sizing → growth
//! buffer → emissions), and prints the deployment plan a capacity team
//! would read: how many servers of which SKU, who adopts, what the
//! cluster saves.
//!
//! ```text
//! cargo run --release --example capacity_planner
//! ```

use greensku::gsf::{GreenSkuDesign, GsfError, GsfPipeline, PipelineConfig};
use greensku::stats::rng::SeedFactory;
use greensku::workloads::{TraceGenerator, TraceParams};

fn main() -> Result<(), GsfError> {
    let trace = TraceGenerator::new(TraceParams {
        duration_hours: 48.0,
        arrivals_per_hour: 100.0,
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(11), 0);
    let (peak_cores, peak_mem) = trace.peak_demand();
    println!(
        "workload: {} VMs over {:.0} h, peak demand {} cores / {:.0} GB\n",
        trace.vms().len(),
        trace.duration_s() / 3600.0,
        peak_cores,
        peak_mem
    );

    let pipeline = GsfPipeline::new(PipelineConfig::default());
    for design in GreenSkuDesign::all_three() {
        let o = pipeline.evaluate(&design, &trace)?;
        println!("== {} ==", o.design);
        println!(
            "  all-baseline cluster:   {} servers ({} with growth buffer)",
            o.baseline_only_servers, o.baseline_only_buffered
        );
        println!(
            "  mixed cluster:          {} baseline + {} GreenSKU ({} + {} buffered)",
            o.plan.baseline, o.plan.green, o.plan_buffered.baseline, o.plan_buffered.green
        );
        println!(
            "  adoption:               {:.1}% of core-hours (vs Gen3)",
            o.adoption_rate * 100.0
        );
        println!(
            "  per-core CO2e:          {:.1} kg vs baseline {:.1} kg",
            o.green_per_core, o.baseline_per_core
        );
        println!(
            "  VM placement:           {} on GreenSKUs, {} on baseline ({} overflowed)",
            o.replay.placed_green, o.replay.placed_baseline, o.replay.green_overflow
        );
        println!(
            "  cluster savings:        {:.1}%   (data-center level: {:.1}%)\n",
            o.cluster_savings * 100.0,
            o.dc_savings * 100.0
        );
    }
    Ok(())
}
