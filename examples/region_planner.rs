//! Region planner: pick the best GreenSKU per data-center region, the
//! Fig. 11/12 question ("the best GreenSKU design depends on the data
//! center's operating conditions").
//!
//! Runs the full GSF pipeline for the three GreenSKU designs at each
//! region's grid carbon intensity and prints which design a provider
//! should deploy where.
//!
//! ```text
//! cargo run --release --example region_planner
//! ```

use greensku::carbon::datasets::region_carbon_intensities;
use greensku::carbon::units::CarbonIntensity;
use greensku::gsf::{GreenSkuDesign, GsfError, GsfPipeline, PipelineConfig};
use greensku::stats::rng::SeedFactory;
use greensku::workloads::{TraceGenerator, TraceParams};

fn main() -> Result<(), GsfError> {
    let trace = TraceGenerator::new(TraceParams {
        duration_hours: 24.0,
        arrivals_per_hour: 80.0,
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(7), 0);
    let pipeline = GsfPipeline::new(PipelineConfig::default());

    println!(
        "{:22} {:>8}  {:>12} {:>12} {:>12}   best design",
        "region", "CI", "Efficient", "CXL", "Full"
    );
    for (region, ci) in region_carbon_intensities() {
        let mut savings = Vec::new();
        for design in GreenSkuDesign::all_three() {
            let outcome = pipeline.evaluate_at(&design, &trace, CarbonIntensity::new(ci))?;
            savings.push((design.name().to_string(), outcome.cluster_savings));
        }
        let best = savings
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite savings"))
            .expect("three designs evaluated");
        println!(
            "{:22} {:>8.2}  {:>11.1}% {:>11.1}% {:>11.1}%   {}",
            region,
            ci,
            savings[0].1 * 100.0,
            savings[1].1 * 100.0,
            savings[2].1 * 100.0,
            best.0
        );
    }
    println!(
        "\nWith the open-source data, reuse (GreenSKU-Full) wins across realistic\n\
         intensities; with the paper's internal Table IV data the crossover to\n\
         GreenSKU-Efficient falls near 0.18 kgCO2e/kWh (see `experiments fig11`)."
    );
    Ok(())
}
