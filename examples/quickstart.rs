//! Quickstart: assess a GreenSKU with the carbon model and reproduce
//! the paper's headline per-core savings.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use greensku::carbon::datasets::open_source;
use greensku::carbon::{CarbonError, CarbonModel, ModelParams};

fn main() -> Result<(), CarbonError> {
    // 1. The §V worked example: GreenSKU-CXL with the paper's Table V
    //    data, assessed at rack level.
    let model = CarbonModel::new(ModelParams::default_open_source());
    let example = open_source::greensku_cxl_example();
    println!("== {} ==", example.name());
    println!("  server power (Eq. 1):     {:.1} W  (paper: 403 W)", example.average_power().get());
    println!("  server embodied:          {:.0} kg (paper: 1644 kg)", example.embodied().get());
    let rack = model.assess_rack(&example)?;
    println!(
        "  rack: {} servers, {} cores, {:.0} kg CO2e/core (paper: 31 kg)",
        rack.servers_per_rack(),
        rack.cores_per_rack(),
        rack.total_per_core().get()
    );

    // 2. Table VIII: per-core savings of the three GreenSKUs (plus the
    //    resized baseline) against the Gen3 baseline, at DC level.
    println!("\n== Per-core savings vs Gen3 baseline (Table VIII) ==");
    let baseline = open_source::baseline_gen3();
    for sku in open_source::table_viii_skus().into_iter().skip(1) {
        let s = model.savings(&baseline, &sku)?;
        println!(
            "  {:22} operational {:5.1}%   embodied {:5.1}%   total {:5.1}%",
            sku.name(),
            s.operational * 100.0,
            s.embodied * 100.0,
            s.total * 100.0
        );
    }
    println!("\n(paper's open-data row for GreenSKU-Full: 14% / 38% / 26%)");
    Ok(())
}
