//! Design-space sweep: use the carbon model the way the paper's authors
//! used GSF while designing their prototypes (§VIII, "when designing our
//! GreenSKUs, we used parts of GSF to iterate through hundreds of
//! configurations").
//!
//! Sweeps memory:core ratio and the reused-DDR4 (CXL) memory share for a
//! Bergamo-based SKU and reports the carbon-optimal configurations at
//! two grid carbon intensities.
//!
//! ```text
//! cargo run --example design_space_sweep
//! ```

use greensku::carbon::component::{ComponentClass, ComponentSpec};
use greensku::carbon::datasets::open_source as data;
use greensku::carbon::units::{CarbonIntensity, KgCo2e, Watts};
use greensku::carbon::{CarbonError, CarbonModel, ModelParams, ServerSpec};

/// Builds a Bergamo SKU with the given total memory per core and CXL
/// (reused DDR4) share of that memory.
fn candidate(mem_per_core: f64, cxl_share: f64) -> Result<ServerSpec, CarbonError> {
    let cores = 128.0;
    let total_gb = mem_per_core * cores;
    let cxl_gb = total_gb * cxl_share;
    let ddr5_gb = total_gb - cxl_gb;
    let mut builder = ServerSpec::builder(
        format!("Bergamo {mem_per_core:.0}GB/core, {:.0}% CXL", cxl_share * 100.0),
        128,
        2,
    )
    .component(
        ComponentSpec::new(
            "CPU",
            ComponentClass::Cpu,
            1.0,
            Watts::new(data::BERGAMO_TDP_W),
            KgCo2e::new(data::BERGAMO_EMBODIED_KG),
        )?
        .with_derate(data::DERATE)?
        .with_loss_factor(data::CPU_VR_LOSS)?,
    )
    .component(
        ComponentSpec::new(
            "DDR5",
            ComponentClass::Dram,
            ddr5_gb,
            Watts::new(data::DDR5_TDP_W_PER_GB),
            KgCo2e::new(data::DDR5_EMBODIED_KG_PER_GB),
        )?
        .with_derate(data::DERATE)?
        .with_device_count(12),
    )
    .component(
        ComponentSpec::new(
            "SSD",
            ComponentClass::Ssd,
            20.0,
            Watts::new(data::SSD_TDP_W_PER_TB),
            KgCo2e::new(data::SSD_EMBODIED_KG_PER_TB),
        )?
        .with_derate(data::DERATE)?
        .with_device_count(5),
    );
    if cxl_gb > 0.0 {
        builder = builder
            .component(
                ComponentSpec::new(
                    "Reused DDR4 (CXL)",
                    ComponentClass::CxlDram,
                    cxl_gb,
                    Watts::new(data::REUSED_DDR4_TDP_W_PER_GB),
                    KgCo2e::new(data::DDR5_EMBODIED_KG_PER_GB),
                )?
                .with_derate(data::DERATE)?
                .reused()
                .with_device_count(8),
            )
            .component(
                ComponentSpec::new(
                    "CXL controller",
                    ComponentClass::CxlController,
                    1.0,
                    Watts::new(data::CXL_CONTROLLER_TDP_W),
                    KgCo2e::new(data::CXL_CONTROLLER_EMBODIED_KG),
                )?
                .with_derate(data::DERATE)?,
            );
    }
    builder.build()
}

fn main() -> Result<(), CarbonError> {
    for ci in [0.04, 0.33] {
        let params =
            ModelParams::default_open_source().with_carbon_intensity(CarbonIntensity::new(ci));
        let model = CarbonModel::new(params);
        println!("== grid carbon intensity {ci} kgCO2e/kWh ==");
        let mut best: Option<(String, f64)> = None;
        for mem_per_core in [6.0, 8.0, 10.0] {
            for cxl_share in [0.0, 0.25, 0.5] {
                let sku = candidate(mem_per_core, cxl_share)?;
                let per_core = model.assess(&sku)?.total_per_core().get();
                println!("  {:38} {per_core:6.1} kgCO2e/core", sku.name());
                if best.as_ref().is_none_or(|(_, b)| per_core < *b) {
                    best = Some((sku.name().to_string(), per_core));
                }
            }
        }
        let (name, value) = best.expect("candidates evaluated");
        println!("  -> carbon-optimal: {name} at {value:.1} kgCO2e/core\n");
    }
    println!(
        "Note: on a clean grid, reuse wins (embodied dominates); on a dirty grid the\n\
         reused parts' extra power makes reuse a net loss — the D1 tradeoff of the\n\
         paper. Lower memory/core always wins on pure carbon-per-core; the\n\
         performance and adoption components (see `capacity_planner`) are what rule\n\
         out configurations that starve applications."
    );
    Ok(())
}
