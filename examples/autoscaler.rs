//! Autoscaler demo (§VIII): a reactive core-count controller keeps a
//! latency-critical service on a GreenSKU within its SLO over a diurnal
//! day, using far fewer core-hours than static peak provisioning.
//!
//! ```text
//! cargo run --release --example autoscaler
//! ```

use greensku::perf::autoscale::{diurnal_load, AutoscaleConfig, Autoscaler};
use greensku::perf::slo::derive_slo;
use greensku::perf::{MemoryPlacement, SkuPerfProfile};
use greensku::workloads::catalog;

fn main() {
    let app = catalog::by_name("Xapian").expect("catalog app");
    let slo = derive_slo(&app, &SkuPerfProfile::gen3()).expect("latency app");
    println!(
        "{} on GreenSKU-Efficient — SLO p95 {:.1} ms (from Gen3 @ 90% of {:.0} QPS peak)\n",
        app.name(),
        slo.p95_ms,
        slo.baseline_peak_qps
    );

    let scaler = Autoscaler::new(
        app,
        SkuPerfProfile::greensku_efficient(),
        MemoryPlacement::LocalOnly,
        AutoscaleConfig::new(slo.p95_ms),
    );
    let load = diurnal_load(slo.load_qps * 0.6, 0.6, 24.0, 5.0);
    let outcome = scaler.run(&load);

    println!("hour  load(QPS)  cores  p95(ms)");
    for step in outcome.steps.iter().step_by(12) {
        println!(
            "{:>4.0}  {:>9.0}  {:>5}  {}",
            step.minute / 60.0,
            step.qps,
            step.cores,
            step.p95_ms.map_or("saturated".to_string(), |v| format!("{v:.2}")),
        );
    }

    let peak = load.iter().cloned().fold(0.0, f64::max);
    let static_cores = scaler.cores_for(peak);
    let static_hours = outcome.static_core_hours(static_cores);
    println!(
        "\nautoscaled: {:.0} core-hours, SLO attainment {:.1}%\n\
         static ({static_cores} cores for peak): {static_hours:.0} core-hours\n\
         saved: {:.1}%",
        outcome.core_hours,
        outcome.slo_attainment * 100.0,
        (1.0 - outcome.core_hours / static_hours) * 100.0
    );
}
