//! Generate the one-page GSF deployment report for each GreenSKU design
//! (the artifact a human SKU-design review would read, per §IV's
//! "we recommend humans in the SKU design process").
//!
//! ```text
//! cargo run --release --example sku_report
//! cargo run --release --example sku_report > report.md
//! ```

use greensku::gsf::report::deployment_report;
use greensku::gsf::{GreenSkuDesign, GsfError, GsfPipeline, PipelineConfig};
use greensku::stats::rng::SeedFactory;
use greensku::workloads::{TraceGenerator, TraceParams};

fn main() -> Result<(), GsfError> {
    let trace = TraceGenerator::new(TraceParams {
        duration_hours: 48.0,
        arrivals_per_hour: 100.0,
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(11), 0);
    let pipeline = GsfPipeline::new(PipelineConfig::default());
    for design in GreenSkuDesign::all_three() {
        println!("{}", deployment_report(&pipeline, &design, &trace)?);
        println!("---\n");
    }
    Ok(())
}
