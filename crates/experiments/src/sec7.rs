//! §VII-B — what other carbon strategies would need to match
//! GreenSKU-Full's data-center-wide savings.

use crate::context::{ExpContext, ExpError};
use gsf_carbon::breakdown::{FleetModel, DEFAULT_RENEWABLE_FRACTION};
use gsf_carbon::equivalence::{
    efficiency_gain_for_savings, lifetime_extension_for_savings, renewables_increase_for_savings,
};
use gsf_stats::table::{fmt_pct, Table};

/// The data-center-wide savings target (the open-data headline: 7 %).
pub const DC_SAVINGS_TARGET: f64 = 0.07;

/// Regenerates the equivalence analyses.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let fleet = FleetModel::azure_calibrated();
    let renewables =
        renewables_increase_for_savings(&fleet, DEFAULT_RENEWABLE_FRACTION, DC_SAVINGS_TARGET)?;
    let efficiency =
        efficiency_gain_for_savings(&fleet, DEFAULT_RENEWABLE_FRACTION, DC_SAVINGS_TARGET)?;
    let lifetime =
        lifetime_extension_for_savings(&fleet, DEFAULT_RENEWABLE_FRACTION, 6.0, DC_SAVINGS_TARGET)?;

    let mut t = Table::new(vec!["Strategy", "Required to match GreenSKU-Full", "Paper"])
        .with_title("§VII-B — equivalent carbon levers");
    t.row(vec![
        "Increase renewables".into(),
        format!("+{} points", fmt_pct(renewables, 1)),
        "+2.6 points".into(),
    ]);
    t.row(vec!["Improve compute energy efficiency".into(), fmt_pct(efficiency, 1), "28%".into()]);
    t.row(vec![
        "Extend compute-server lifetime".into(),
        format!("6 -> {lifetime:.1} years"),
        "6 -> 13 years".into(),
    ]);
    ctx.write_table("sec7_equivalence", &t)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn levers_in_paper_bands() {
        let dir = std::env::temp_dir().join(format!("gsf-sec7-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 13, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("sec7_equivalence.csv")).unwrap();
        assert!(csv.contains("Increase renewables"));
        assert!(csv.contains("years"));
        std::fs::remove_dir_all(dir).ok();
    }
}
