//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each module reproduces one exhibit and writes CSV + aligned-text
//! artifacts under a results directory; [`registry`] lists them all and
//! the `experiments` binary drives them (`experiments all`, or
//! `experiments fig7` for a single exhibit).
//!
//! | Module | Paper exhibit |
//! |---|---|
//! | [`sec2`] | §II — fleet underutilization statistics |
//! | [`fig1`] | Fig. 1 — data-center carbon breakdown |
//! | [`table1`] | Table I — CPU characteristics |
//! | [`fig2`] | Fig. 2 — DDR4 failure rates over deployment time |
//! | [`fig7`] | Fig. 7 — tail latency vs load, five app classes |
//! | [`table2`] | Table II — DevOps build slowdowns |
//! | [`table3`] | Table III — scaling factors, 20 apps × 3 generations |
//! | [`fig8`] | Fig. 8 — CXL impact on Moses vs HAProxy |
//! | [`fig9`] | Fig. 9 — packing-density CDFs across 35 traces |
//! | [`fig10`] | Fig. 10 — per-server max memory-utilization CDFs |
//! | [`table8`] | Tables IV/VIII — per-core savings |
//! | [`table5_6`] | Tables V/VI — input datasets |
//! | [`fig11`] | Fig. 11 — cluster savings vs CI (internal Table IV data) |
//! | [`fig12`] | Fig. 12 — cluster savings vs CI (open data, full pipeline) |
//! | [`maintenance`] | §V maintenance example (AFR/FIP/C_OOS) |
//! | [`adoption`] | §VI adoption statistics and low-load latency |
//! | [`sec7`] | §VII-B equivalence analyses |
//! | [`sec8`] | §VII-A TCO swap + §VIII search/autoscaling/tiering |

pub mod adoption;
pub mod availability;
pub mod context;
pub mod faults;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod maintenance;
pub mod registry;
pub mod scale;
pub mod sec2;
pub mod sec7;
pub mod sec8;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table5_6;
pub mod table8;

pub use context::{ExpContext, ExpError};
pub use registry::{all_experiments, run_by_id, Experiment};
