//! Scale sweep — streamed vs in-memory evaluation as the fleet grows.
//!
//! Evaluates the same synthetic trace through the materialized
//! [`Trace`] path and the chunked stream path at increasing scale,
//! asserting bit-identity at every point and recording the chunked
//! artifact size alongside the savings headline. The timing and peak-
//! RSS side of the same comparison lives in the
//! `ablation_streamed_trace` bench (`results/BENCH_pr8.json`);
//! experiments stay wall-clock-free so their artifacts are a pure
//! function of the seed.

use crate::context::{ExpContext, ExpError};
use gsf_core::{GreenSkuDesign, GsfError, GsfPipeline, PipelineConfig};
use gsf_stats::table::{fmt_pct, Table};
use gsf_workloads::{
    write_chunks, Trace, TraceChunkReader, TraceGenerator, TraceParams, DEFAULT_CHUNK_EVENTS,
};

fn trace_at(ctx: &ExpContext, hours: f64, arrivals: f64) -> Trace {
    TraceGenerator::new(TraceParams {
        duration_hours: hours,
        arrivals_per_hour: arrivals,
        ..TraceParams::default()
    })
    .generate(ctx.seeds(), 8)
}

/// Regenerates the streamed-equivalence scale sweep.
///
/// # Errors
///
/// Propagates pipeline and artifact-write failures.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let scales: &[(f64, f64)] = if ctx.is_quick() {
        &[(2.0, 20.0), (4.0, 40.0)]
    } else {
        &[(6.0, 50.0), (24.0, 200.0), (24.0, 1000.0), (72.0, 1000.0)]
    };
    let design = GreenSkuDesign::full();
    let pipeline = GsfPipeline::new(PipelineConfig::default());

    let mut t =
        Table::new(vec!["VMs", "Events", "Chunked MB", "Streamed == in-memory", "DC savings"])
            .with_title("Scale sweep — streamed vs in-memory evaluation");
    let mut rows = Vec::new();
    for &(hours, arrivals) in scales {
        let trace = trace_at(ctx, hours, arrivals);
        let in_memory = pipeline.evaluate(&design, &trace)?;

        let mut buf = Vec::new();
        let digest =
            write_chunks(&trace, &mut buf, DEFAULT_CHUNK_EVENTS).map_err(GsfError::from)?;
        let mut reader = TraceChunkReader::new(&buf[..]).map_err(GsfError::from)?;
        let streamed = pipeline.evaluate_streamed(&design, &mut reader)?;

        let identical = streamed == in_memory && digest == trace.content_hash();
        let mb = buf.len() as f64 / 1e6;
        t.row(vec![
            trace.vms().len().to_string(),
            trace.events().len().to_string(),
            format!("{mb:.2}"),
            if identical { "yes" } else { "NO" }.to_string(),
            fmt_pct(in_memory.dc_savings, 1),
        ]);
        rows.push(vec![
            trace.vms().len() as f64,
            trace.events().len() as f64,
            mb,
            f64::from(u8::from(identical)),
            in_memory.dc_savings,
        ]);
        if !identical {
            ctx.note(&format!(
                "scale sweep: streamed outcome diverged at {hours} h x {arrivals} VMs/h"
            ));
        }
    }
    ctx.write_series(
        "scale_streamed.csv",
        &["vms", "events", "chunked_mb", "bit_identical", "dc_savings"],
        &rows,
    )?;
    ctx.write_table("scale_streamed_table", &t)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_bit_identical_at_every_point() {
        let dir = std::env::temp_dir().join(format!("gsf-scale-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 13, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("scale_streamed.csv")).unwrap();
        for line in csv.lines().skip(1) {
            let identical: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!((identical - 1.0).abs() < 1e-9, "divergent row: {line}");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
