//! Table III — GreenSKU-Efficient's scaling factors for all catalog
//! applications against Gen1/Gen2/Gen3, compared cell-by-cell with the
//! published matrix.

use crate::context::{ExpContext, ExpError};
use gsf_perf::{scaling_table, MemoryPlacement, SkuPerfProfile};
use gsf_stats::table::{fmt_pct, Table};
use gsf_workloads::catalog;
use gsf_workloads::fleet::published_table_iii;

/// Regenerates Table III and reports the agreement rate.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let apps = catalog::applications();
    let table =
        scaling_table(&apps, &SkuPerfProfile::greensku_efficient(), MemoryPlacement::LocalOnly);
    let published = published_table_iii();

    let mut t =
        Table::new(vec!["Application", "Class", "Gen1", "Gen2", "Gen3", "Paper (G1/G2/G3)"])
            .with_title("Table III — scaling factors (reproduced vs published)");
    let mut cells = 0usize;
    let mut exact = 0usize;
    for row in &table {
        let app = apps.iter().find(|a| a.name() == row.app).expect("catalog app");
        let pub_row = published.iter().find(|p| p.app == row.app);
        let paper = pub_row.map_or("-".to_string(), |p| {
            let fmt = |v: Option<f64>| match v {
                Some(x) if (x - 1.0).abs() < 1e-9 => "1".to_string(),
                Some(x) => format!("{x}"),
                None => ">1.5".to_string(),
            };
            format!("{}/{}/{}", fmt(p.gen1), fmt(p.gen2), fmt(p.gen3))
        });
        if let Some(p) = pub_row {
            for (got, want) in row.factors.iter().zip([p.gen1, p.gen2, p.gen3]) {
                cells += 1;
                let got_v = got.value();
                let matches = match (got_v, want) {
                    (None, None) => true,
                    (Some(a), Some(b)) => (a - b).abs() < 1e-9,
                    _ => false,
                };
                if matches {
                    exact += 1;
                }
            }
        }
        t.row(vec![
            row.app.clone(),
            app.class().label().to_string(),
            row.factors[0].label().to_string(),
            row.factors[1].label().to_string(),
            row.factors[2].label().to_string(),
            paper,
        ]);
    }
    ctx.write_table("table3_scaling_factors", &t)?;
    ctx.note(&format!(
        "table3: {exact}/{cells} cells match the published matrix ({})",
        fmt_pct(exact as f64 / cells as f64, 1)
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn all_catalog_apps_present() {
        let dir = std::env::temp_dir().join(format!("gsf-table3-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 7, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("table3_scaling_factors.csv")).unwrap();
        assert_eq!(csv.lines().count(), 21); // header + 20 apps
        assert!(csv.contains("Masstree"));
        assert!(csv.contains(">1.5"));
        std::fs::remove_dir_all(dir).ok();
    }
}
