//! Availability sweep: fault-domain size × repair time × Fail-In-Place.
//!
//! Replays the GreenSKU-Full deployment with correlated fault domains
//! and the repair/return-to-service model across a grid of domain
//! sizes, repair times, and FIP effectiveness values, recording the
//! availability ledger (VM-minutes lost, nines, displacement peak,
//! blast radius) next to the plan sizes. Wider domains concentrate
//! loss into correlated strikes (larger blast radius, higher
//! displacement peaks); faster repairs return capacity sooner, so the
//! pending-placement queue drains instead of converting displacements
//! into terminal evacuation failures.

use crate::context::{ExpContext, ExpError};
use gsf_core::{GreenSkuDesign, GsfPipeline, PipelineConfig};
use gsf_maintenance::{ComponentAfrs, FaultModel, FaultTopology, FipPolicy};
use gsf_stats::table::fmt_f;
use gsf_workloads::{TraceGenerator, TraceParams};

fn model(
    afr_scale: f64,
    fip: f64,
    domain_size: u32,
    repair_days: f64,
) -> Result<FaultModel, ExpError> {
    let as_exp = |e: gsf_maintenance::MaintenanceError| {
        ExpError::Gsf(gsf_core::GsfError::InvalidConfig(e.to_string()))
    };
    let reference = FaultModel::paper(7);
    let mut m = FaultModel::new(
        ComponentAfrs::paper(),
        FipPolicy { effectiveness: fip },
        afr_scale,
        1.0,
        reference.degrade_core_fraction,
        reference.degrade_mem_fraction,
        reference.max_evac_passes,
        7,
    )
    .map_err(as_exp)?;
    if domain_size > 0 {
        m = m
            .with_topology(FaultTopology { domain_size, domain_events_per_100: 1.0 })
            .map_err(as_exp)?;
    }
    if repair_days > 0.0 {
        m = m.with_repair_days(repair_days).map_err(as_exp)?;
    }
    Ok(m)
}

/// Regenerates the domain-size × repair-time × FIP availability sweep.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let params = TraceParams {
        duration_hours: ctx.scaled(12.0, 48.0),
        arrivals_per_hour: ctx.scaled(40.0, 80.0),
        ..TraceParams::default()
    };
    let trace = TraceGenerator::new(params).generate(ctx.seeds(), 0);
    let design = GreenSkuDesign::full();
    let afr_scale = 20.0;

    let domain_sizes: Vec<u32> = ctx.scaled(vec![0, 4], vec![0, 2, 4, 8]);
    let repair_days: Vec<f64> = ctx.scaled(vec![0.0, 7.0], vec![0.0, 3.0, 7.0, 30.0]);
    let fips: Vec<f64> = ctx.scaled(vec![0.75], vec![0.0, 0.75]);

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for &size in &domain_sizes {
        for &repair in &repair_days {
            for &fip in &fips {
                let faults = model(afr_scale, fip, size, repair)?;
                let config = PipelineConfig { faults, ..PipelineConfig::default() };
                let o = GsfPipeline::new(config).evaluate(&design, &trace)?;
                rows.push(vec![
                    f64::from(size),
                    repair,
                    fip,
                    f64::from(o.plan.baseline),
                    f64::from(o.plan.green),
                    o.faults.full_failures as f64,
                    o.faults.revivals as f64,
                    o.faults.displaced as f64,
                    o.faults.evacuation_failures as f64,
                    o.availability.vm_minutes_lost(),
                    o.availability.nines(),
                    o.availability.max_simultaneous_displaced as f64,
                    o.availability.blast_radius_servers as f64,
                    o.availability.server_down_seconds / 3600.0,
                    o.cluster_savings,
                ]);
            }
        }
    }
    ctx.write_series(
        "availability_domain_repair.csv",
        &[
            "domain_size",
            "repair_days",
            "fip_effectiveness",
            "plan_baseline",
            "plan_green",
            "full_failures",
            "revivals",
            "vms_displaced",
            "evacuation_failures",
            "vm_minutes_lost",
            "nines",
            "max_simultaneous_displaced",
            "blast_radius_servers",
            "server_down_hours",
            "cluster_savings",
        ],
        &rows,
    )?;

    let worst_nines = rows.iter().map(|r| r[10]).fold(f64::INFINITY, f64::min);
    let widest_blast = rows.iter().map(|r| r[12]).fold(0.0f64, f64::max);
    ctx.note(&format!(
        "availability: worst nines {} / widest blast radius {} servers across {} grid points",
        fmt_f(worst_nines, 2),
        widest_blast as usize,
        rows.len(),
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn sweep_writes_grid_with_availability_columns() {
        let dir = std::env::temp_dir().join(format!("gsf-avail-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 99, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("availability_domain_repair.csv")).unwrap();
        // Quick grid: 2 domain sizes x 2 repair times x 1 FIP + header.
        assert_eq!(csv.lines().count(), 5, "{csv}");
        assert!(csv.starts_with("domain_size,repair_days,"), "{csv}");
        // Repair-enabled rows revive servers; repair-off rows never do.
        let col =
            |line: &str, i: usize| -> f64 { line.split(',').nth(i).unwrap().parse().unwrap() };
        for line in csv.lines().skip(1) {
            let (repair, revivals) = (col(line, 1), col(line, 6));
            if repair == 0.0 {
                assert_eq!(revivals, 0.0, "{line}");
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
