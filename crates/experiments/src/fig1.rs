//! Fig. 1 — carbon breakdown of general-purpose data centers.

use crate::context::{ExpContext, ExpError};
use gsf_carbon::breakdown::{FleetCategory, FleetModel, DEFAULT_RENEWABLE_FRACTION};
use gsf_carbon::component::ComponentClass;
use gsf_stats::table::{fmt_pct, Table};

/// Regenerates Fig. 1 at the production renewables mix and the
/// 100 %-renewables counterfactual.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let fleet = FleetModel::azure_calibrated();
    for (label, mix) in [("prod", DEFAULT_RENEWABLE_FRACTION), ("renewable100", 1.0)] {
        let b = fleet.breakdown(mix);
        let mut t = Table::new(vec!["Category", "Operational", "Embodied", "Share of DC"])
            .with_title(format!("Fig. 1 — DC breakdown at {:.0}% renewables", mix * 100.0));
        for cat in FleetCategory::all() {
            let e = b.categories.iter().find(|c| c.category == cat).expect("all categories");
            t.row(vec![
                cat.label().to_string(),
                format!("{:.1}", e.operational),
                format!("{:.1}", e.embodied),
                fmt_pct(b.category_share(cat), 1),
            ]);
        }
        t.row(vec![
            "TOTAL".into(),
            format!("{:.1}", b.total_operational()),
            format!("{:.1}", b.total_embodied()),
            fmt_pct(1.0, 1),
        ]);
        ctx.write_table(&format!("fig1_categories_{label}"), &t)?;

        let mut tc =
            Table::new(vec!["Compute component", "Operational", "Embodied", "Share of compute"])
                .with_title(format!(
                    "Fig. 1 — compute-server components at {:.0}% renewables",
                    mix * 100.0
                ));
        for c in &b.compute_components {
            tc.row(vec![
                c.class.label().to_string(),
                format!("{:.1}", c.operational),
                format!("{:.1}", c.embodied),
                fmt_pct(b.compute_component_share(c.class), 1),
            ]);
        }
        ctx.write_table(&format!("fig1_components_{label}"), &tc)?;
        ctx.note(&format!(
            "fig1[{label}]: operational share {} (paper: {}), compute share {} (paper: {})",
            fmt_pct(b.operational_share(), 1),
            if mix >= 1.0 { "9%" } else { "58%" },
            fmt_pct(b.category_share(FleetCategory::ComputeServers), 1),
            if mix >= 1.0 { "44%" } else { "57%" },
        ));
    }

    // The headline component shares the paper quotes (DRAM 35 %, SSD
    // 28 %, CPU 24 % within compute servers).
    let b = fleet.breakdown(DEFAULT_RENEWABLE_FRACTION);
    let mut shares = Table::new(vec!["Component", "Reproduced", "Paper"])
        .with_title("Fig. 1 — compute component shares vs paper");
    for (class, paper) in
        [(ComponentClass::Dram, 0.35), (ComponentClass::Ssd, 0.28), (ComponentClass::Cpu, 0.24)]
    {
        shares.row(vec![
            class.label().to_string(),
            fmt_pct(b.compute_component_share(class), 1),
            fmt_pct(paper, 0),
        ]);
    }
    ctx.write_table("fig1_component_shares_vs_paper", &shares)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("gsf-fig1-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 7, true).unwrap().quiet();
        run(&ctx).unwrap();
        assert!(ctx.artifacts().iter().any(|a| a == "fig1_categories_prod.csv"));
        assert!(ctx.artifacts().iter().any(|a| a == "fig1_component_shares_vs_paper.txt"));
        std::fs::remove_dir_all(dir).ok();
    }
}
