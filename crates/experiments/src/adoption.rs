//! §VI adoption statistics: which applications adopt each GreenSKU,
//! the CXL-tolerant core-hour fraction, and the low-load latency
//! comparison.

use crate::context::{ExpContext, ExpError};
use gsf_carbon::ModelParams;
use gsf_core::{GreenSkuDesign, VmRouter};
use gsf_perf::lowload::median_low_load_ratio;
use gsf_perf::{MemoryPlacement, SkuPerfProfile};
use gsf_stats::table::{fmt_pct, Table};
use gsf_workloads::{catalog, FleetMix, ServerGeneration};

/// Regenerates the adoption statistics.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let mix = FleetMix::standard();

    // Adoption rate per design (core-hour weighted, vs Gen3).
    let mut t = Table::new(vec!["Design", "Adoption rate vs Gen3 (core-hours)"])
        .with_title("Adoption rates");
    for design in GreenSkuDesign::all_three() {
        let router = VmRouter::new(ModelParams::default_open_source(), &design)?;
        t.row(vec![design.name().to_string(), fmt_pct(router.adoption_rate_gen3(), 1)]);
    }
    ctx.write_table("adoption_rates", &t)?;

    // CXL tolerance (paper: 20.2 % of core-hours can run fully
    // CXL-backed).
    let tolerant = mix.weighted_fraction(|a| a.tolerates_full_cxl());
    ctx.write_text(
        "adoption_cxl_tolerance.txt",
        &format!(
            "core-hours tolerating full-CXL memory backing: {} (paper: 20.2%)\n\
             tolerant applications: {}\n",
            fmt_pct(tolerant, 1),
            catalog::applications()
                .iter()
                .filter(|a| a.tolerates_full_cxl())
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(", "),
        ),
    )?;

    // Low-load latency medians (paper: −8.3 % vs Gen1, −2 % vs Gen2,
    // +16 % vs Gen3).
    let apps = catalog::applications();
    let green = SkuPerfProfile::greensku_efficient();
    let mut ll = Table::new(vec!["Baseline", "Median low-load p95 ratio", "Paper"])
        .with_title("Low-load latency of scaled GreenSKU-Efficient VMs");
    for (generation, base, paper) in [
        (ServerGeneration::Gen1, SkuPerfProfile::gen1(), "-8.3%"),
        (ServerGeneration::Gen2, SkuPerfProfile::gen2(), "-2%"),
        (ServerGeneration::Gen3, SkuPerfProfile::gen3(), "+16%"),
    ] {
        let median = median_low_load_ratio(&apps, &green, MemoryPlacement::LocalOnly, &base)
            .expect("latency apps exist");
        ll.row(vec![
            generation.label().to_string(),
            format!("{:+.1}%", (median - 1.0) * 100.0),
            paper.to_string(),
        ]);
    }
    ctx.write_table("adoption_low_load_latency", &ll)?;

    // Per-application carbon attribution (§IV-A): replay one trace on
    // the GreenSKU-Full cluster and attribute emissions to apps.
    attribution_report(ctx)?;
    ctx.note(&format!("adoption: CXL-tolerant core-hours {}", fmt_pct(tolerant, 1)));
    Ok(())
}

/// Writes the per-application attribution table for one replayed trace.
fn attribution_report(ctx: &ExpContext) -> Result<(), ExpError> {
    use gsf_core::attribution::AttributionReport;
    use gsf_core::components::{CarbonComponent, DefaultCarbon};
    use gsf_core::{GreenSkuDesign, GsfPipeline, PipelineConfig};
    use gsf_stats::rng::SeedFactory;
    use gsf_workloads::{TraceGenerator, TraceParams};

    let trace = TraceGenerator::new(TraceParams {
        duration_hours: ctx.scaled(12.0, 48.0),
        arrivals_per_hour: ctx.scaled(40.0, 100.0),
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(ctx.seeds().root() ^ 0xa77), 0);

    let design = GreenSkuDesign::full();
    let pipeline = GsfPipeline::new(PipelineConfig::default());
    let outcome = pipeline.evaluate(&design, &trace)?;
    let carbon = DefaultCarbon::new(pipeline.config().carbon_params);
    let baseline = carbon.assess(&gsf_carbon::datasets::open_source::baseline_gen3())?;
    let green = carbon.assess(&design.carbon)?;
    let lifetime_h = pipeline.config().carbon_params.lifetime.hours();
    let report = AttributionReport::new(
        &outcome.replay.usage,
        &catalog::applications(),
        &baseline,
        &green,
        lifetime_h,
    );

    let mut t =
        Table::new(vec!["Application", "Baseline core-h", "GreenSKU core-h", "kg CO2e", "Share"])
            .with_title("Per-application carbon attribution (GreenSKU-Full cluster)");
    let total = report.total_kg().max(f64::MIN_POSITIVE);
    for row in report.apps.iter().take(10) {
        t.row(vec![
            row.app.clone(),
            format!("{:.0}", row.baseline_core_hours),
            format!("{:.0}", row.green_core_hours),
            format!("{:.1}", row.kg_co2e),
            fmt_pct(row.kg_co2e / total, 1),
        ]);
    }
    ctx.write_table("adoption_attribution", &t)?;
    ctx.note(&format!(
        "attribution: {} apps, total {:.0} kg, attributed savings vs all-baseline {}",
        report.apps.len(),
        report.total_kg(),
        fmt_pct(report.attributed_savings(), 1)
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("gsf-adopt-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 13, true).unwrap().quiet();
        run(&ctx).unwrap();
        assert!(dir.join("adoption_rates.csv").exists());
        let txt = std::fs::read_to_string(dir.join("adoption_cxl_tolerance.txt")).unwrap();
        assert!(txt.contains("Shore"));
        let ll = std::fs::read_to_string(dir.join("adoption_low_load_latency.csv")).unwrap();
        assert!(ll.contains("Gen3"));
        std::fs::remove_dir_all(dir).ok();
    }
}
