//! Shared experiment context: output directory, seeds, quick mode.

use gsf_stats::rng::SeedFactory;
use gsf_stats::table::Table;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Errors running an experiment.
#[derive(Debug)]
pub enum ExpError {
    /// Filesystem failure writing artifacts.
    Io(std::io::Error),
    /// A framework evaluation failed.
    Gsf(gsf_core::GsfError),
    /// A carbon-model call failed.
    Carbon(gsf_carbon::CarbonError),
    /// Cluster sizing failed.
    Sizing(gsf_cluster::SizingError),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::Io(e) => write!(f, "io error: {e}"),
            ExpError::Gsf(e) => write!(f, "framework error: {e}"),
            ExpError::Carbon(e) => write!(f, "carbon model error: {e}"),
            ExpError::Sizing(e) => write!(f, "sizing error: {e}"),
        }
    }
}

impl std::error::Error for ExpError {}

impl From<std::io::Error> for ExpError {
    fn from(e: std::io::Error) -> Self {
        ExpError::Io(e)
    }
}

impl From<gsf_core::GsfError> for ExpError {
    fn from(e: gsf_core::GsfError) -> Self {
        ExpError::Gsf(e)
    }
}

impl From<gsf_carbon::CarbonError> for ExpError {
    fn from(e: gsf_carbon::CarbonError) -> Self {
        ExpError::Carbon(e)
    }
}

impl From<gsf_cluster::SizingError> for ExpError {
    fn from(e: gsf_cluster::SizingError) -> Self {
        ExpError::Sizing(e)
    }
}

/// Context passed to every experiment runner.
pub struct ExpContext {
    results_dir: PathBuf,
    seeds: SeedFactory,
    quick: bool,
    quiet: bool,
    written: parking_lot::Mutex<Vec<String>>,
}

impl ExpContext {
    /// Creates a context writing into `results_dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn new(results_dir: impl Into<PathBuf>, seed: u64, quick: bool) -> Result<Self, ExpError> {
        let results_dir = results_dir.into();
        fs::create_dir_all(&results_dir)?;
        Ok(Self {
            results_dir,
            seeds: SeedFactory::new(seed),
            quick,
            quiet: false,
            written: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Suppresses console echoing of tables (used by tests).
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// The root seed factory; experiments derive their own streams.
    pub fn seeds(&self) -> &SeedFactory {
        &self.seeds
    }

    /// Whether to run with reduced fidelity (fewer requests/traces) for
    /// fast CI runs.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The results directory.
    pub fn results_dir(&self) -> &Path {
        &self.results_dir
    }

    /// Picks between the quick and full value of a parameter.
    pub fn scaled<T>(&self, quick: T, full: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Writes raw text to `<results>/<name>`.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be written.
    pub fn write_text(&self, name: &str, content: &str) -> Result<(), ExpError> {
        let path = self.results_dir.join(name);
        let mut f = fs::File::create(&path)?;
        f.write_all(content.as_bytes())?;
        self.written.lock().push(name.to_string());
        Ok(())
    }

    /// Writes a table as both CSV (`<stem>.csv`) and aligned text
    /// (`<stem>.txt`), echoing the text table to the console.
    ///
    /// # Errors
    ///
    /// Returns an error when either file cannot be written.
    pub fn write_table(&self, stem: &str, table: &Table) -> Result<(), ExpError> {
        self.write_text(&format!("{stem}.csv"), &table.render_csv())?;
        let text = table.render_text();
        self.write_text(&format!("{stem}.txt"), &text)?;
        if !self.quiet {
            println!("{text}");
        }
        Ok(())
    }

    /// Writes an `(x, y...)` series as CSV with the given header.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be written.
    pub fn write_series(
        &self,
        name: &str,
        header: &[&str],
        rows: &[Vec<f64>],
    ) -> Result<(), ExpError> {
        let mut out = String::new();
        out.push_str(&gsf_stats::table::csv_line(header));
        out.push('\n');
        for row in rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&gsf_stats::table::csv_line(&cells));
            out.push('\n');
        }
        self.write_text(name, &out)
    }

    /// Logs a free-form note to the console (suppressed when quiet).
    pub fn note(&self, msg: &str) {
        if !self.quiet {
            println!("{msg}");
        }
    }

    /// All artifact names written so far (for the manifest).
    pub fn artifacts(&self) -> Vec<String> {
        self.written.lock().clone()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn temp_ctx() -> (ExpContext, PathBuf) {
        let dir = std::env::temp_dir().join(format!("gsf-exp-test-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 1, true).unwrap().quiet();
        (ctx, dir)
    }

    #[test]
    fn writes_tables_and_tracks_artifacts() {
        let (ctx, dir) = temp_ctx();
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        ctx.write_table("unit_test_table", &t).unwrap();
        assert!(dir.join("unit_test_table.csv").exists());
        assert!(dir.join("unit_test_table.txt").exists());
        assert_eq!(
            ctx.artifacts(),
            vec!["unit_test_table.csv".to_string(), "unit_test_table.txt".to_string()]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn scaled_picks_by_mode() {
        let (ctx, dir) = temp_ctx();
        assert_eq!(ctx.scaled(1, 100), 1);
        assert!(ctx.is_quick());
        std::fs::remove_dir_all(dir).ok();
    }
}
