//! Tables IV/VIII — per-core operational, embodied, and total savings of
//! the four incremental configurations against the Gen3 baseline.
//!
//! The reproduced numbers target the *open-source* Table VIII; the
//! paper-internal Table IV values are printed alongside for reference.

use crate::context::{ExpContext, ExpError};
use gsf_carbon::datasets::open_source;
use gsf_carbon::{CarbonModel, ModelParams, SavingsReport, ServerSpec};
use gsf_stats::table::{fmt_pct, Table};

/// Published values (operational, embodied, total) per SKU.
pub struct PublishedSavings {
    /// SKU display name.
    pub sku: &'static str,
    /// Open-data Table VIII row.
    pub table_viii: [f64; 3],
    /// Internal Table IV row.
    pub table_iv: [f64; 3],
}

/// The published Table IV and Table VIII savings rows.
pub fn published() -> [PublishedSavings; 4] {
    [
        PublishedSavings {
            sku: "Baseline-Resized",
            table_viii: [0.06, 0.10, 0.08],
            table_iv: [0.03, 0.06, 0.04],
        },
        PublishedSavings {
            sku: "GreenSKU-Efficient",
            table_viii: [0.16, 0.14, 0.15],
            table_iv: [0.29, 0.14, 0.23],
        },
        PublishedSavings {
            sku: "GreenSKU-CXL",
            table_viii: [0.15, 0.32, 0.24],
            table_iv: [0.23, 0.25, 0.24],
        },
        PublishedSavings {
            sku: "GreenSKU-Full",
            table_viii: [0.14, 0.38, 0.26],
            table_iv: [0.17, 0.43, 0.28],
        },
    ]
}

/// Computes the reproduced savings rows (in Table VIII order).
///
/// # Errors
///
/// Propagates carbon-model failures.
pub fn reproduced() -> Result<Vec<(ServerSpec, SavingsReport)>, ExpError> {
    let model = CarbonModel::new(ModelParams::default_open_source());
    let baseline = open_source::baseline_gen3();
    [
        open_source::baseline_resized(),
        open_source::greensku_efficient(),
        open_source::greensku_cxl(),
        open_source::greensku_full(),
    ]
    .into_iter()
    .map(|sku| {
        let report = model.savings(&baseline, &sku)?;
        Ok((sku, report))
    })
    .collect()
}

/// Regenerates Table VIII (and prints Table IV for reference).
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let model = CarbonModel::new(ModelParams::default_open_source());
    let mut t = Table::new(vec![
        "SKU Config.",
        "#Cores",
        "Memory",
        "SSD",
        "Op. savings",
        "Emb. savings",
        "Total",
        "Paper VIII (op/emb/tot)",
        "Paper IV (op/emb/tot)",
    ])
    .with_title("Table VIII — per-core savings vs Gen3 baseline (reproduced)");

    let baseline = open_source::baseline_gen3();
    let base_assessment = model.assess(&baseline)?;
    t.row(vec![
        baseline.name().to_string(),
        baseline.cores().to_string(),
        format!("{:.0} GB", baseline.memory_capacity().get()),
        format!("{:.0} TB", baseline.ssd_capacity().get()),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for ((sku, report), pub_row) in reproduced()?.into_iter().zip(published()) {
        t.row(vec![
            sku.name().to_string(),
            sku.cores().to_string(),
            if sku.cxl_memory_capacity().get() > 0.0 {
                format!(
                    "{:.0} GB ({:.0} CXL)",
                    sku.memory_capacity().get(),
                    sku.cxl_memory_capacity().get()
                )
            } else {
                format!("{:.0} GB", sku.memory_capacity().get())
            },
            format!("{:.0} TB", sku.ssd_capacity().get()),
            fmt_pct(report.operational, 1),
            fmt_pct(report.embodied, 1),
            fmt_pct(report.total, 1),
            format!(
                "{}/{}/{}",
                fmt_pct(pub_row.table_viii[0], 0),
                fmt_pct(pub_row.table_viii[1], 0),
                fmt_pct(pub_row.table_viii[2], 0)
            ),
            format!(
                "{}/{}/{}",
                fmt_pct(pub_row.table_iv[0], 0),
                fmt_pct(pub_row.table_iv[1], 0),
                fmt_pct(pub_row.table_iv[2], 0)
            ),
        ]);
    }
    ctx.write_table("table8_per_core_savings", &t)?;

    // Absolute per-core values for the record.
    let mut abs = Table::new(vec!["SKU", "Op kg/core", "Emb kg/core", "Total kg/core"])
        .with_title("Per-core CO2e over 6-year lifetime (CI = 0.1 kg/kWh)");
    abs.row(vec![
        baseline.name().to_string(),
        format!("{:.2}", base_assessment.op_per_core().get()),
        format!("{:.2}", base_assessment.emb_per_core().get()),
        format!("{:.2}", base_assessment.total_per_core().get()),
    ]);
    for sku in open_source::table_viii_skus().into_iter().skip(1) {
        let a = model.assess(&sku)?;
        abs.row(vec![
            sku.name().to_string(),
            format!("{:.2}", a.op_per_core().get()),
            format!("{:.2}", a.emb_per_core().get()),
            format!("{:.2}", a.total_per_core().get()),
        ]);
    }
    ctx.write_table("table8_per_core_absolute", &abs)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn every_row_within_two_points_of_table_viii() {
        for ((_, report), pub_row) in reproduced().unwrap().into_iter().zip(published()) {
            assert!((report.operational - pub_row.table_viii[0]).abs() < 0.025, "{}", pub_row.sku);
            assert!((report.embodied - pub_row.table_viii[1]).abs() < 0.03, "{}", pub_row.sku);
            assert!((report.total - pub_row.table_viii[2]).abs() < 0.025, "{}", pub_row.sku);
        }
    }

    #[test]
    fn writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("gsf-table8-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 9, true).unwrap().quiet();
        run(&ctx).unwrap();
        assert!(dir.join("table8_per_core_savings.csv").exists());
        assert!(dir.join("table8_per_core_absolute.csv").exists());
        std::fs::remove_dir_all(dir).ok();
    }
}
