//! Fig. 9 — CDF of mean core/memory packing density across the 35
//! cluster traces: the all-baseline cluster vs the GreenSKU-Full pool of
//! the final mixed cluster.

use crate::context::{ExpContext, ExpError};
use gsf_carbon::ModelParams;
use gsf_cluster::parallel::map_parallel;
use gsf_cluster::sizing::{right_size_baseline_only, right_size_mixed};
use gsf_core::{GreenSkuDesign, VmRouter};
use gsf_stats::cdf::EmpiricalCdf;
use gsf_stats::rng::SeedFactory;
use gsf_vmalloc::{AllocationSim, ClusterConfig, PlacementPolicy, PlacementRequest, ServerShape};
use gsf_workloads::{tracegen, Trace, TraceGenerator, VmSpec};

/// Per-trace packing statistics.
#[derive(Debug, Clone, Copy)]
pub struct TracePacking {
    /// Mean core density, all-baseline cluster.
    pub baseline_core: f64,
    /// Mean memory density, all-baseline cluster.
    pub baseline_mem: f64,
    /// Mean core density of GreenSKUs in the mixed cluster.
    pub green_core: f64,
    /// Mean memory density of GreenSKUs in the mixed cluster.
    pub green_mem: f64,
    /// Mean per-server max memory utilization, baseline cluster.
    pub baseline_max_mem_util: f64,
    /// Mean per-server max memory utilization, GreenSKU pool.
    pub green_max_mem_util: f64,
}

/// Runs the packing study over `n_traces` synthetic traces for
/// `design`, in parallel. Shared by Figs. 9 and 10.
pub fn packing_study(
    seeds: &SeedFactory,
    design: &GreenSkuDesign,
    n_traces: usize,
    trace_hours: f64,
) -> Result<Vec<TracePacking>, ExpError> {
    let router = VmRouter::new(ModelParams::default_open_source(), design)?;
    let suite = tracegen::standard_suite();
    let traces: Vec<Trace> = suite
        .iter()
        .take(n_traces)
        .enumerate()
        .map(|(i, params)| {
            let mut p = params.clone();
            p.duration_hours = trace_hours;
            TraceGenerator::new(p).generate(seeds, i as u64)
        })
        .collect();

    let policy = PlacementPolicy::BestFit;
    let baseline_shape = ServerShape::baseline_gen3();
    let green_shape =
        ServerShape { cores: design.carbon.cores(), mem_gb: design.carbon.memory_capacity().get() };
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let results = map_parallel(&traces, workers, |_, trace| -> Result<TracePacking, ExpError> {
        let transform_base = |vm: &VmSpec| PlacementRequest::baseline_only(vm);
        let n0 = right_size_baseline_only(trace, baseline_shape, policy)?;
        let base_outcome = AllocationSim::new(ClusterConfig::baseline_only(n0), policy)
            .replay(trace, &transform_base);

        let transform_green = |vm: &VmSpec| router.request(vm);
        let plan = right_size_mixed(trace, &transform_green, baseline_shape, green_shape, policy)?;
        let mixed_outcome = AllocationSim::new(
            ClusterConfig {
                baseline_count: plan.baseline,
                baseline_shape,
                green_count: plan.green,
                green_shape,
            },
            policy,
        )
        .replay(trace, &transform_green);

        Ok(TracePacking {
            baseline_core: base_outcome.metrics.baseline.mean_core_density(),
            baseline_mem: base_outcome.metrics.baseline.mean_mem_density(),
            green_core: mixed_outcome.metrics.green.mean_core_density(),
            green_mem: mixed_outcome.metrics.green.mean_mem_density(),
            baseline_max_mem_util: base_outcome.metrics.baseline.mean_max_mem_util(),
            green_max_mem_util: mixed_outcome.metrics.green.mean_max_mem_util(),
        })
    });
    results.into_iter().collect()
}

/// Regenerates Fig. 9's four CDFs.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let n_traces = ctx.scaled(6, 35);
    let hours = ctx.scaled(12.0, 72.0);
    let stats = packing_study(ctx.seeds(), &GreenSkuDesign::full(), n_traces, hours)?;

    let cdf =
        |f: fn(&TracePacking) -> f64| EmpiricalCdf::from_samples(stats.iter().map(f).collect());
    let series = [
        ("baseline_core", cdf(|s| s.baseline_core)),
        ("baseline_mem", cdf(|s| s.baseline_mem)),
        ("green_core", cdf(|s| s.green_core)),
        ("green_mem", cdf(|s| s.green_mem)),
    ];
    for (name, c) in &series {
        let rows: Vec<Vec<f64>> = c.series().iter().map(|&(x, y)| vec![x, y]).collect();
        ctx.write_series(&format!("fig9_cdf_{name}.csv"), &["density", "cdf"], &rows)?;
    }
    let med = |c: &EmpiricalCdf| c.quantile(0.5).unwrap_or(f64::NAN);
    ctx.note(&format!(
        "fig9: median densities — baseline core {:.2} / mem {:.2}; green core {:.2} / mem {:.2} \
         (paper: GreenSKU-Full trades worse core packing for better memory packing)",
        med(&series[0].1),
        med(&series[1].1),
        med(&series[2].1),
        med(&series[3].1),
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn small_study_produces_sane_densities() {
        let seeds = SeedFactory::new(33);
        let stats = packing_study(&seeds, &GreenSkuDesign::full(), 3, 8.0).unwrap();
        assert_eq!(stats.len(), 3);
        for s in &stats {
            for v in [s.baseline_core, s.baseline_mem, s.green_core, s.green_mem] {
                assert!((0.0..=1.0).contains(&v), "{s:?}");
            }
        }
    }

    #[test]
    fn greensku_memory_packs_denser_relative_to_cores() {
        // The paper's Fig. 9 claim: the GreenSKU's lower memory:core
        // ratio (8 vs 9.6) shifts pressure to memory: the gap
        // (mem − core density) is larger on GreenSKUs than on baselines.
        let seeds = SeedFactory::new(34);
        let stats = packing_study(&seeds, &GreenSkuDesign::full(), 4, 10.0).unwrap();
        let base_gap: f64 = stats.iter().map(|s| s.baseline_mem - s.baseline_core).sum::<f64>()
            / stats.len() as f64;
        let green_gap: f64 =
            stats.iter().map(|s| s.green_mem - s.green_core).sum::<f64>() / stats.len() as f64;
        assert!(green_gap > base_gap, "green {green_gap} vs base {base_gap}");
    }
}
