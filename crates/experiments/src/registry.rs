//! Registry of all experiments and the run-all driver.

use crate::context::{ExpContext, ExpError};
use gsf_cluster::parallel::{default_workers, map_parallel};

/// One regenerable paper exhibit.
pub struct Experiment {
    /// Short id used on the command line (e.g. `fig7`).
    pub id: &'static str,
    /// What the exhibit shows.
    pub title: &'static str,
    /// The runner.
    pub run: fn(&ExpContext) -> Result<(), ExpError>,
}

/// All experiments, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "sec2",
            title: "SecII fleet underutilization statistics",
            run: crate::sec2::run,
        },
        Experiment {
            id: "fig1",
            title: "Fig. 1 — data-center carbon breakdown",
            run: crate::fig1::run,
        },
        Experiment {
            id: "table1",
            title: "Table I — CPU characteristics",
            run: crate::table1::run,
        },
        Experiment {
            id: "fig2",
            title: "Fig. 2 — DDR4 failure rates over deployment time",
            run: crate::fig2::run,
        },
        Experiment {
            id: "fig7",
            title: "Fig. 7 — tail latency vs load (5 app classes)",
            run: crate::fig7::run,
        },
        Experiment {
            id: "table2",
            title: "Table II — DevOps build slowdowns",
            run: crate::table2::run,
        },
        Experiment {
            id: "table3",
            title: "Table III — scaling factors (20 apps x 3 generations)",
            run: crate::table3::run,
        },
        Experiment {
            id: "fig8",
            title: "Fig. 8 — CXL impact (Moses vs HAProxy)",
            run: crate::fig8::run,
        },
        Experiment {
            id: "fig9",
            title: "Fig. 9 — packing-density CDFs (35 traces)",
            run: crate::fig9::run,
        },
        Experiment {
            id: "fig10",
            title: "Fig. 10 — per-server max memory-utilization CDFs",
            run: crate::fig10::run,
        },
        Experiment {
            id: "table8",
            title: "Tables IV/VIII — per-core savings",
            run: crate::table8::run,
        },
        Experiment {
            id: "table5_6",
            title: "Tables V/VI — input datasets",
            run: crate::table5_6::run,
        },
        Experiment {
            id: "fig11",
            title: "Fig. 11 — cluster savings vs CI (internal Table IV data)",
            run: crate::fig11::run,
        },
        Experiment {
            id: "fig12",
            title: "Fig. 12 — cluster savings vs CI (open data, full pipeline)",
            run: crate::fig12::run,
        },
        Experiment {
            id: "maintenance",
            title: "SecV maintenance example (AFR / FIP / C_OOS)",
            run: crate::maintenance::run,
        },
        Experiment {
            id: "faults",
            title: "Fault-injection robustness sweep (AFR scale x FIP effectiveness)",
            run: crate::faults::run,
        },
        Experiment {
            id: "availability",
            title: "Availability sweep (domain size x repair time x FIP)",
            run: crate::availability::run,
        },
        Experiment {
            id: "adoption",
            title: "SecVI adoption statistics and low-load latency",
            run: crate::adoption::run,
        },
        Experiment {
            id: "scale",
            title: "Scale sweep: streamed vs in-memory evaluation",
            run: crate::scale::run,
        },
        Experiment { id: "sec7", title: "SecVII-B equivalence analyses", run: crate::sec7::run },
        Experiment {
            id: "sec8",
            title: "SecVII-A TCO swap + SecVIII search/autoscaling/tiering",
            run: crate::sec8::run,
        },
    ]
}

/// Runs one experiment by id; `Ok(false)` when the id is unknown.
///
/// # Errors
///
/// Propagates the experiment's failure.
pub fn run_by_id(ctx: &ExpContext, id: &str) -> Result<bool, ExpError> {
    for exp in all_experiments() {
        if exp.id == id {
            ctx.note(&format!("== {} ==", exp.title));
            (exp.run)(ctx)?;
            return Ok(true);
        }
    }
    Ok(false)
}

/// Runs every experiment and writes the artifact manifest.
///
/// Uses the machine's full parallelism; see [`run_all_with_workers`]
/// to pin the worker count.
///
/// # Errors
///
/// Reports the first failing experiment (in registry order).
pub fn run_all(ctx: &ExpContext) -> Result<(), ExpError> {
    run_all_with_workers(ctx, default_workers())
}

/// [`run_all`] on `workers` threads. Experiments are independent (each
/// derives its own seed stream and writes distinct artifacts), so they
/// run concurrently; the manifest lists artifacts sorted by name so its
/// contents do not depend on completion order.
///
/// # Errors
///
/// Reports the first failing experiment (in registry order).
pub fn run_all_with_workers(ctx: &ExpContext, workers: usize) -> Result<(), ExpError> {
    let experiments = all_experiments();
    map_parallel(&experiments, workers, |_, exp| {
        ctx.note(&format!("== {} ==", exp.title));
        (exp.run)(ctx)
    })
    .into_iter()
    .collect::<Result<(), _>>()?;
    let mut artifacts = ctx.artifacts();
    artifacts.sort_unstable();
    let mut manifest = String::from("artifact\n");
    for a in artifacts {
        manifest.push_str(&a);
        manifest.push('\n');
    }
    ctx.write_text("manifest.csv", &manifest)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_and_lookup_works() {
        let exps = all_experiments();
        let ids: std::collections::HashSet<_> = exps.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), exps.len());
        assert_eq!(exps.len(), 21);
    }

    #[test]
    fn unknown_id_reports_false() {
        let dir = std::env::temp_dir().join(format!("gsf-reg-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 1, true).unwrap().quiet();
        assert!(!run_by_id(&ctx, "nope").unwrap());
        assert!(run_by_id(&ctx, "table1").unwrap());
        std::fs::remove_dir_all(dir).ok();
    }
}
