//! Fig. 8 — tail latency vs load under CXL memory reuse: Moses (heavily
//! penalized) vs HAProxy (mildly penalized).
//!
//! Both applications run with the core count their Gen3 SLO requires
//! (scaling factor 1.25 → 10 cores) on GreenSKU-Efficient and on
//! GreenSKU-CXL with naive placement, matching the paper's measurement.

use crate::context::{ExpContext, ExpError};
use gsf_perf::slo::derive_slo;
use gsf_perf::sweep::LoadSweep;
use gsf_perf::{MemoryPlacement, SkuPerfProfile};
use gsf_workloads::catalog;

/// Regenerates the two Fig. 8 panels.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let requests = ctx.scaled(8_000, 60_000);
    let gen3 = SkuPerfProfile::gen3();
    for name in ["Moses", "HAProxy"] {
        let app = catalog::by_name(name).expect("catalog app");
        let slo = derive_slo(&app, &gen3).expect("latency-critical app");
        let cores = 10; // both need scaling 1.25 vs Gen3
        let loads = LoadSweep::standard_loads(slo.baseline_peak_qps);

        let eff = LoadSweep::new(
            app.clone(),
            SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            cores,
        )
        .with_requests(requests)
        .run(ctx.seeds(), &loads);
        let cxl = LoadSweep::new(
            app.clone(),
            SkuPerfProfile::greensku_cxl(),
            MemoryPlacement::Naive,
            cores,
        )
        .with_requests(requests)
        .run(ctx.seeds(), &loads);

        let rows: Vec<Vec<f64>> = loads
            .iter()
            .enumerate()
            .map(|(i, &qps)| {
                vec![
                    qps,
                    slo.p95_ms,
                    eff.points[i].p95_ms.unwrap_or(f64::NAN),
                    cxl.points[i].p95_ms.unwrap_or(f64::NAN),
                ]
            })
            .collect();
        ctx.write_series(
            &format!("fig8_{}.csv", name.to_lowercase()),
            &["qps", "slo_ms", "efficient_p95_ms", "cxl_naive_p95_ms"],
            &rows,
        )?;
        let peak_loss = 1.0 - cxl.peak_qps / eff.peak_qps;
        ctx.note(&format!(
            "fig8[{name}]: CXL peak-throughput loss {:.1}% (paper: Moses large, HAProxy ~11%)",
            peak_loss * 100.0
        ));
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn moses_loses_more_peak_than_haproxy() {
        let gen3 = SkuPerfProfile::gen3();
        let loss = |name: &str| {
            let app = catalog::by_name(name).unwrap();
            let _ = derive_slo(&app, &gen3);
            let eff = LoadSweep::new(
                app.clone(),
                SkuPerfProfile::greensku_efficient(),
                MemoryPlacement::LocalOnly,
                10,
            );
            let cxl =
                LoadSweep::new(app, SkuPerfProfile::greensku_cxl(), MemoryPlacement::Naive, 10);
            1.0 - cxl.peak_qps() / eff.peak_qps()
        };
        let moses = loss("Moses");
        let haproxy = loss("HAProxy");
        assert!(moses > 0.25, "Moses loss {moses}");
        assert!((haproxy - 0.10).abs() < 0.03, "HAProxy loss {haproxy}");
    }

    #[test]
    fn writes_two_panels() {
        let dir = std::env::temp_dir().join(format!("gsf-fig8-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 7, true).unwrap().quiet();
        run(&ctx).unwrap();
        assert!(dir.join("fig8_moses.csv").exists());
        assert!(dir.join("fig8_haproxy.csv").exists());
        std::fs::remove_dir_all(dir).ok();
    }
}
