//! `experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! experiments all                 # run everything into ./results
//! experiments fig7 table8         # run selected exhibits
//! experiments --quick all         # reduced fidelity (CI-friendly)
//! experiments --results-dir out --seed 7 fig12
//! experiments --list
//! ```

use gsf_experiments::registry::{all_experiments, run_all_with_workers, run_by_id};
use gsf_experiments::ExpContext;
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: experiments [--quick] [--seed N] [--workers N] [--results-dir DIR] (all | --list | <id>...)"
    );
    eprintln!("experiment ids:");
    for exp in all_experiments() {
        eprintln!("  {:<12} {}", exp.id, exp.title);
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = 42u64;
    let mut workers = gsf_cluster::parallel::default_workers();
    let mut results_dir = "results".to_string();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => workers = v,
                _ => {
                    eprintln!("--workers requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--results-dir" => match args.next() {
                Some(v) => results_dir = v,
                None => {
                    eprintln!("--results-dir requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
                return ExitCode::FAILURE;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let ctx = match ExpContext::new(&results_dir, seed, quick) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("cannot open results dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let started = std::time::Instant::now();
    for target in &targets {
        let outcome = if target == "all" {
            run_all_with_workers(&ctx, workers).map(|()| true)
        } else {
            run_by_id(&ctx, target)
        };
        match outcome {
            Ok(true) => {}
            Ok(false) => {
                eprintln!("unknown experiment id: {target}");
                usage();
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("experiment `{target}` failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "done: {} artifact(s) in `{}` ({:.1}s)",
        ctx.artifacts().len(),
        results_dir,
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
