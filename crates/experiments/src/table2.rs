//! Table II — DevOps build slowdowns normalized to Gen3.

use crate::context::{ExpContext, ExpError};
use gsf_perf::throughput::table_ii;
use gsf_stats::table::{fmt_f, Table};

/// Published Table II values for side-by-side comparison:
/// (app, gen1, gen2, gen3, efficient, cxl).
pub fn published() -> [(&'static str, [f64; 5]); 3] {
    [
        ("Build-PHP", [1.27, 1.11, 1.00, 1.17, 1.38]),
        ("Build-Python", [1.28, 1.13, 1.00, 1.15, 1.21]),
        ("Build-Wasm", [1.34, 1.19, 1.00, 1.15, 1.28]),
    ]
}

/// Regenerates Table II and the paper-vs-reproduced comparison.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let mut t = Table::new(vec![
        "DevOps App.",
        "Gen1",
        "Gen2",
        "Gen3",
        "GreenSKU-Efficient",
        "GreenSKU-CXL",
    ])
    .with_title("Table II — normalized build slowdowns (reproduced)");
    for row in table_ii() {
        t.row(vec![
            row.app.clone(),
            fmt_f(row.gen1, 2),
            fmt_f(row.gen2, 2),
            fmt_f(row.gen3, 2),
            fmt_f(row.efficient, 2),
            fmt_f(row.cxl, 2),
        ]);
    }
    ctx.write_table("table2_build_slowdowns", &t)?;

    let mut cmp = Table::new(vec!["App", "Column", "Reproduced", "Paper", "Delta"])
        .with_title("Table II — reproduced vs published");
    for row in table_ii() {
        let pub_row = published()
            .into_iter()
            .find(|(name, _)| *name == row.app)
            .expect("published row exists");
        let cols = [
            ("Gen1", row.gen1, pub_row.1[0]),
            ("Gen2", row.gen2, pub_row.1[1]),
            ("Efficient", row.efficient, pub_row.1[3]),
            ("CXL", row.cxl, pub_row.1[4]),
        ];
        for (label, got, want) in cols {
            cmp.row(vec![
                row.app.clone(),
                label.into(),
                fmt_f(got, 2),
                fmt_f(want, 2),
                fmt_f(got - want, 2),
            ]);
        }
    }
    ctx.write_table("table2_vs_paper", &cmp)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn reproduced_close_to_published() {
        let dir = std::env::temp_dir().join(format!("gsf-table2-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 7, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("table2_vs_paper.csv")).unwrap();
        // Every delta under 0.1 in magnitude.
        for line in csv.lines().skip(1) {
            let delta: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(delta.abs() < 0.1, "{line}");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
