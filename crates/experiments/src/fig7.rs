//! Fig. 7 — p95 tail latency vs load for one representative application
//! per class (DevOps excluded: builds report throughput only).
//!
//! For each application: the Gen3 baseline at 8 cores, and
//! GreenSKU-Efficient at 8, 10, and 12 cores, with the SLO line (Gen3's
//! p95 at 90 % of its peak).

use crate::context::{ExpContext, ExpError};
use gsf_perf::slo::derive_slo;
use gsf_perf::sweep::LoadSweep;
use gsf_perf::{MemoryPlacement, SkuPerfProfile};
use gsf_workloads::catalog;

/// Regenerates the Fig. 7 curves (one CSV per application).
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let requests = ctx.scaled(8_000, 60_000);
    let gen3 = SkuPerfProfile::gen3();
    let green = SkuPerfProfile::greensku_efficient();
    for app in catalog::figure7_representatives() {
        let slo = derive_slo(&app, &gen3).expect("latency-critical app");
        let loads = LoadSweep::standard_loads(slo.baseline_peak_qps);
        let mut columns: Vec<(String, Vec<Option<f64>>, Vec<f64>)> = Vec::new();

        let base_sweep = LoadSweep::new(app.clone(), gen3.clone(), MemoryPlacement::LocalOnly, 8)
            .with_requests(requests);
        let base_curve = base_sweep.run(ctx.seeds(), &loads);
        columns.push((
            "gen3_8c_p95_ms".into(),
            base_curve.points.iter().map(|p| p.p95_ms).collect(),
            base_curve.points.iter().map(|p| p.ci99_half_width_ms).collect(),
        ));
        for cores in [8u32, 10, 12] {
            let sweep =
                LoadSweep::new(app.clone(), green.clone(), MemoryPlacement::LocalOnly, cores)
                    .with_requests(requests);
            let curve = sweep.run(ctx.seeds(), &loads);
            columns.push((
                format!("greensku_{cores}c_p95_ms"),
                curve.points.iter().map(|p| p.p95_ms).collect(),
                curve.points.iter().map(|p| p.ci99_half_width_ms).collect(),
            ));
        }

        let mut header: Vec<String> = vec!["qps".into(), "slo_ms".into()];
        for (name, _, _) in &columns {
            header.push(name.clone());
            header.push(format!("{name}_ci99"));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<f64>> = loads
            .iter()
            .enumerate()
            .map(|(i, &qps)| {
                let mut row = vec![qps, slo.p95_ms];
                for (_, p95s, cis) in &columns {
                    row.push(p95s[i].unwrap_or(f64::NAN));
                    row.push(cis[i]);
                }
                row
            })
            .collect();
        let file = format!("fig7_{}.csv", app.name().to_lowercase().replace('-', "_"));
        ctx.write_series(&file, &header_refs, &rows)?;
        ctx.note(&format!(
            "fig7[{}]: Gen3 peak {:.0} QPS, SLO {:.2} ms @ {:.0} QPS",
            app.name(),
            slo.baseline_peak_qps,
            slo.p95_ms,
            slo.load_qps
        ));
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_five_curve_files() {
        let dir = std::env::temp_dir().join(format!("gsf-fig7-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 7, true).unwrap().quiet();
        run(&ctx).unwrap();
        let files = ctx.artifacts();
        assert_eq!(files.len(), 5);
        assert!(files.iter().any(|f| f == "fig7_masstree.csv"));
        let csv = std::fs::read_to_string(dir.join("fig7_nginx.csv")).unwrap();
        assert!(csv.lines().next().unwrap().contains("greensku_12c_p95_ms"));
        std::fs::remove_dir_all(dir).ok();
    }
}
