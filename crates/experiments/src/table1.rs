//! Table I — baseline AMD CPUs vs the efficient Bergamo CPU.

use crate::context::{ExpContext, ExpError};
use gsf_carbon::datasets::table_i;
use gsf_stats::table::Table;

/// Regenerates Table I from the SKU dataset.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let mut t = Table::new(vec![
        "CPU",
        "Generation",
        "Cores/socket",
        "Max freq (GHz)",
        "LLC/socket (MiB)",
        "TDP (W)",
    ])
    .with_title("Table I — CPU characteristics");
    for cpu in table_i() {
        t.row(vec![
            cpu.name.to_string(),
            cpu.generation.to_string(),
            cpu.cores_per_socket.to_string(),
            format!("{:.1}", cpu.max_freq_ghz),
            cpu.llc_mib.to_string(),
            format!("{:.0}", cpu.tdp_w),
        ]);
    }
    ctx.write_table("table1_cpus", &t)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_four_rows() {
        let dir = std::env::temp_dir().join(format!("gsf-table1-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 7, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("table1_cpus.csv")).unwrap();
        assert_eq!(csv.lines().count(), 5); // header + 4 CPUs
        assert!(csv.contains("Bergamo"));
        std::fs::remove_dir_all(dir).ok();
    }
}
