//! Tables V and VI — the open-source component carbon data and model
//! parameters the carbon model consumes.

use crate::context::{ExpContext, ExpError};
use gsf_carbon::datasets::open_source as os;
use gsf_carbon::params::ModelParams;
use gsf_stats::table::Table;

/// Regenerates the two input-data tables.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let mut t5 = Table::new(vec!["Component", "TDP (W)", "Embodied (kgCO2e)"])
        .with_title("Table V — open-source component data");
    let rows = [
        (
            "AMD Bergamo CPU",
            format!("{}", os::BERGAMO_TDP_W),
            format!("{}", os::BERGAMO_EMBODIED_KG),
        ),
        (
            "DRAM (DDR5)",
            format!("{} per GB", os::DDR5_TDP_W_PER_GB),
            format!("{} per GB", os::DDR5_EMBODIED_KG_PER_GB),
        ),
        ("DRAM (DDR4)", format!("{} per GB", os::DDR4_TDP_W_PER_GB), "0 (reused)".to_string()),
        (
            "SSD",
            format!("{} per TB", os::SSD_TDP_W_PER_TB),
            format!("{} per TB", os::SSD_EMBODIED_KG_PER_TB),
        ),
        (
            "CXL Controller",
            format!("{}", os::CXL_CONTROLLER_TDP_W),
            format!("{}", os::CXL_CONTROLLER_EMBODIED_KG),
        ),
        ("Rack misc.", "500".to_string(), "500".to_string()),
    ];
    for (name, tdp, emb) in rows {
        t5.row(vec![name.to_string(), tdp, emb]);
    }
    ctx.write_table("table5_component_data", &t5)?;

    let params = ModelParams::default_open_source();
    let mut t6 = Table::new(vec!["Parameter", "Value"]).with_title("Table VI — model parameters");
    let rows = [
        ("Carbon intensity", format!("{} kgCO2e/kWh", params.carbon_intensity.get())),
        ("Lifetime", format!("{} years", params.lifetime.get())),
        ("Derate factor at 40% SPEC throughput", format!("{}", os::DERATE)),
        ("Rack space capacity", format!("{}U (42U - 10U overhead)", params.rack.space_u)),
        ("Rack power capacity", format!("{} kW", params.rack.power_capacity.get() / 1000.0)),
        ("CPU voltage regulator loss", format!("{}", os::CPU_VR_LOSS)),
        ("PUE (calibrated)", format!("{}", params.overheads.pue)),
        (
            "Net/storage power per rack (calibrated)",
            format!("{} W", params.overheads.network_storage_power_per_rack.get()),
        ),
        (
            "DC embodied overhead per rack (calibrated)",
            format!("{} kgCO2e", params.overheads.embodied_per_rack().get()),
        ),
        ("Calibrated Gen3 CPU TDP", format!("{} W", os::GENOA_TDP_W)),
        ("Calibrated Gen3 CPU embodied", format!("{} kgCO2e", os::GENOA_EMBODIED_KG)),
        ("Calibrated reused DDR4 power", format!("{} W/GB", os::REUSED_DDR4_TDP_W_PER_GB)),
        ("Calibrated reused SSD power", format!("{} W/TB", os::REUSED_SSD_TDP_W_PER_TB)),
    ];
    for (name, value) in rows {
        t6.row(vec![name.to_string(), value]);
    }
    ctx.write_table("table6_model_parameters", &t6)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_both_tables() {
        let dir = std::env::temp_dir().join(format!("gsf-table56-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 9, true).unwrap().quiet();
        run(&ctx).unwrap();
        let t5 = std::fs::read_to_string(dir.join("table5_component_data.csv")).unwrap();
        assert!(t5.contains("Bergamo"));
        assert!(t5.contains("0 (reused)"));
        let t6 = std::fs::read_to_string(dir.join("table6_model_parameters.csv")).unwrap();
        assert!(t6.contains("Carbon intensity"));
        std::fs::remove_dir_all(dir).ok();
    }
}
