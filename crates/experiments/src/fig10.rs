//! Fig. 10 — CDF of mean per-server maximum memory utilization for the
//! all-baseline cluster and the GreenSKU-CXL cluster, with the CXL-backed
//! memory fraction marked.

use crate::context::{ExpContext, ExpError};
use crate::fig9::packing_study;
use gsf_core::GreenSkuDesign;
use gsf_stats::cdf::EmpiricalCdf;
use gsf_stats::table::fmt_pct;

/// Regenerates Fig. 10.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let n_traces = ctx.scaled(6, 35);
    let hours = ctx.scaled(12.0, 72.0);
    let design = GreenSkuDesign::cxl();
    let stats = packing_study(ctx.seeds(), &design, n_traces, hours)?;

    let baseline =
        EmpiricalCdf::from_samples(stats.iter().map(|s| s.baseline_max_mem_util).collect());
    let green = EmpiricalCdf::from_samples(stats.iter().map(|s| s.green_max_mem_util).collect());
    for (name, cdf) in [("baseline", &baseline), ("greensku_cxl", &green)] {
        let rows: Vec<Vec<f64>> = cdf.series().iter().map(|&(x, y)| vec![x, y]).collect();
        ctx.write_series(
            &format!("fig10_max_mem_util_{name}.csv"),
            &["max_mem_utilization", "cdf"],
            &rows,
        )?;
    }

    // The shaded region of the figure: memory above (1 − CXL fraction)
    // of capacity would spill onto CXL.
    let cxl_fraction =
        design.carbon.cxl_memory_capacity().get() / design.carbon.memory_capacity().get();
    let local_boundary = 1.0 - cxl_fraction;
    let traces_needing_cxl = 1.0 - green.eval(local_boundary);
    ctx.write_text(
        "fig10_summary.txt",
        &format!(
            "CXL-backed memory fraction: {}\n\
             local-memory boundary: {}\n\
             traces whose mean max-memory utilization exceeds local memory: {}\n\
             (paper: CXL backs 25% of memory; only 3% of traces need CXL;\n\
              most traces stay below 60% utilization)\n\
             traces below 60% utilization (GreenSKU): {}\n",
            fmt_pct(cxl_fraction, 1),
            fmt_pct(local_boundary, 1),
            fmt_pct(traces_needing_cxl, 1),
            fmt_pct(green.eval(0.6), 1),
        ),
    )?;
    ctx.note(&format!(
        "fig10: {} of traces exceed local-memory capacity (paper: 3%); \
         {} below 60% utilization",
        fmt_pct(traces_needing_cxl, 1),
        fmt_pct(green.eval(0.6), 1)
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn cxl_fraction_is_a_quarter() {
        let design = GreenSkuDesign::cxl();
        let frac =
            design.carbon.cxl_memory_capacity().get() / design.carbon.memory_capacity().get();
        assert!((frac - 0.25).abs() < 1e-9);
    }

    #[test]
    fn writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("gsf-fig10-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 9, true).unwrap().quiet();
        run(&ctx).unwrap();
        assert!(dir.join("fig10_max_mem_util_baseline.csv").exists());
        assert!(dir.join("fig10_summary.txt").exists());
        std::fs::remove_dir_all(dir).ok();
    }
}
