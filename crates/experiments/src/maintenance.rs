//! §V maintenance example — AFRs, Fail-In-Place repair rates, and the
//! `C_OOS` comparison showing GreenSKU-Full's maintenance overhead is
//! negligible.

use crate::context::{ExpContext, ExpError};
use gsf_maintenance::{oos_fraction, CoosComparison, FipPolicy, ServerAfr};
use gsf_stats::table::{fmt_f, fmt_pct, Table};

/// Regenerates the maintenance numbers.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let fip = FipPolicy::paper();
    let mut t = Table::new(vec![
        "SKU",
        "DIMMs",
        "SSDs",
        "AFR (per 100 servers)",
        "Repair rate after FIP",
        "OOS fraction (5-day repair)",
    ])
    .with_title("Maintenance model (§V)");
    for (name, afr) in
        [("Baseline (Gen3)", ServerAfr::baseline()), ("GreenSKU-Full", ServerAfr::greensku_full())]
    {
        let repair = fip.repair_rate(&afr);
        t.row(vec![
            name.to_string(),
            afr.dimms.to_string(),
            afr.ssds.to_string(),
            fmt_f(afr.total, 1),
            fmt_f(repair, 1),
            fmt_pct(oos_fraction(repair, 5.0), 3),
        ]);
    }
    ctx.write_table("maintenance_afr_fip", &t)?;

    let coos = CoosComparison::paper();
    ctx.write_text(
        "maintenance_coos.txt",
        &format!(
            "C_OOS baseline: {:.2} (paper: 3.0)\n\
             C_OOS GreenSKU-Full: {:.2} (paper: 2.98)\n\
             relative overhead: {} (paper: negligible)\n",
            coos.baseline,
            coos.greensku,
            fmt_pct(coos.relative_overhead(), 1),
        ),
    )?;
    ctx.note(&format!(
        "maintenance: C_OOS {:.2} vs {:.2} — overhead {}",
        coos.baseline,
        coos.greensku,
        fmt_pct(coos.relative_overhead(), 1)
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("gsf-maint-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 13, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("maintenance_afr_fip.csv")).unwrap();
        assert!(csv.contains("4.8"));
        assert!(csv.contains("7.2"));
        assert!(csv.contains("3.6"));
        std::fs::remove_dir_all(dir).ok();
    }
}
