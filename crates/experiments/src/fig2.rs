//! Fig. 2 — DDR4 DIMM failure rates over deployment time.

use crate::context::{ExpContext, ExpError};
use gsf_maintenance::{FailureSim, FailureSimParams};

/// Regenerates the Fig. 2 series: raw monthly AFR points plus the
/// moving average, normalized to the plateau (the paper's y-axis is
/// normalized failure rate).
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let params =
        FailureSimParams { population: ctx.scaled(10_000, 50_000), ..FailureSimParams::default() };
    let plateau = params.plateau_afr;
    let sim = FailureSim::new(params);
    let mut rng = ctx.seeds().stream("fig2");
    let points = sim.run(&mut rng);
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|p| vec![f64::from(p.month), p.raw_afr / plateau, p.smoothed_afr / plateau])
        .collect();
    ctx.write_series(
        "fig2_ddr4_failure_rates.csv",
        &["month", "raw_afr_normalized", "smoothed_afr_normalized"],
        &rows,
    )?;

    // Paper's qualitative claims: early elevation, then flat for 7y.
    let early = points[3].smoothed_afr / plateau;
    let late: f64 = points[60..].iter().map(|p| p.smoothed_afr).sum::<f64>()
        / (points.len() - 60) as f64
        / plateau;
    ctx.note(&format!(
        "fig2: smoothed AFR at month 4 = {early:.2}x plateau; years 6-7 mean = {late:.2}x \
         (paper: early spike, then constant over the 7-year window)"
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_series() {
        let dir = std::env::temp_dir().join(format!("gsf-fig2-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 7, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("fig2_ddr4_failure_rates.csv")).unwrap();
        assert_eq!(csv.lines().count(), 85); // header + 84 months
        std::fs::remove_dir_all(dir).ok();
    }
}
