//! Fig. 11 — end-to-end cluster-level savings across carbon intensities,
//! reconstructed from the paper's **internal** Table IV per-core savings.
//!
//! The published Fig. 11 uses Azure's internal carbon data, which is not
//! reproducible from the open dataset (the open pipeline is Fig. 12,
//! see [`crate::fig12`]). What *is* reproducible is Fig. 11's arithmetic
//! structure: with per-SKU operational/embodied savings `(s_op, s_emb)`
//! and a baseline whose operational share at the reference intensity
//! `c₀ = 0.1 kg/kWh` is 58 % (the §II anchor), the total savings at
//! intensity `c` are
//!
//! `S(c) = (s_op · O·c/c₀ + s_emb · E) / (O·c/c₀ + E)`.
//!
//! This reproduces Fig. 11's headline shape: the Efficient↔Full
//! crossover falls between the annotated regions (~0.18 kg/kWh) because
//! the internal operational-savings gap (29 % vs 17 %) is wide.

use crate::context::{ExpContext, ExpError};
use crate::table8::published;
use gsf_carbon::datasets::region_carbon_intensities;

/// Reference carbon intensity at which the operational share anchor
/// holds.
pub const REFERENCE_CI: f64 = 0.1;
/// Operational share of baseline per-core emissions at the reference CI
/// (§II: ~58 % with the production renewables mix).
pub const OP_SHARE_AT_REFERENCE: f64 = 0.58;

/// Total savings at carbon intensity `ci` for a SKU with the given
/// operational/embodied savings.
pub fn savings_at(ci: f64, op_savings: f64, emb_savings: f64) -> f64 {
    let op_weight = OP_SHARE_AT_REFERENCE * ci / REFERENCE_CI;
    let emb_weight = 1.0 - OP_SHARE_AT_REFERENCE;
    (op_savings * op_weight + emb_savings * emb_weight) / (op_weight + emb_weight)
}

/// The CI at which two SKUs' savings curves cross, if any, in `(0, 2]`.
pub fn crossover(a: (f64, f64), b: (f64, f64)) -> Option<f64> {
    // Solve s_op_a·w(c) + s_emb_a·E = s_op_b·w(c) + s_emb_b·E.
    let d_op = a.0 - b.0;
    let d_emb = a.1 - b.1;
    if d_op.abs() < 1e-12 {
        return None;
    }
    let emb_weight = 1.0 - OP_SHARE_AT_REFERENCE;
    let w = -d_emb * emb_weight / d_op;
    let c = w * REFERENCE_CI / OP_SHARE_AT_REFERENCE;
    (c > 0.0 && c <= 2.0).then_some(c)
}

/// Regenerates the Fig. 11 curves.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let skus: Vec<(&str, [f64; 3])> = published()
        .into_iter()
        .filter(|p| p.sku.starts_with("GreenSKU"))
        .map(|p| (p.sku, p.table_iv))
        .collect();
    let cis: Vec<f64> = (0..=60).map(|i| f64::from(i) * 0.01).collect();
    let rows: Vec<Vec<f64>> = cis
        .iter()
        .map(|&ci| {
            let mut row = vec![ci];
            for (_, s) in &skus {
                row.push(savings_at(ci, s[0], s[1]));
            }
            row
        })
        .collect();
    ctx.write_series(
        "fig11_cluster_savings_internal.csv",
        &["carbon_intensity_kg_per_kwh", "efficient", "cxl", "full"],
        &rows,
    )?;

    let eff = skus[0].1;
    let full = skus[2].1;
    let cross = crossover((eff[0], eff[1]), (full[0], full[1]));
    let regions: Vec<String> =
        region_carbon_intensities().iter().map(|(name, ci)| format!("{name}={ci}")).collect();
    ctx.note(&format!(
        "fig11: Efficient/Full crossover at CI = {} kg/kWh; region markers: {} \
         (paper: Efficient wins at europe-north, Full at us-south)",
        cross.map_or("none".to_string(), |c| format!("{c:.3}")),
        regions.join(", ")
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn savings_at_reference_matches_totals() {
        // At c = c0 the formula must return the published total savings
        // (op share 58 %).
        for p in published() {
            let s = savings_at(REFERENCE_CI, p.table_iv[0], p.table_iv[1]);
            assert!((s - p.table_iv[2]).abs() < 0.02, "{}: {s}", p.sku);
        }
    }

    #[test]
    fn crossover_between_region_markers() {
        let eff = published()[1].table_iv;
        let full = published()[3].table_iv;
        let c = crossover((eff[0], eff[1]), (full[0], full[1])).expect("crossover exists");
        // Between the mid and high region markers (0.1 .. 0.33).
        assert!(c > 0.1 && c < 0.33, "crossover {c}");
        // Below: Full wins; above: Efficient wins.
        assert!(savings_at(c - 0.05, full[0], full[1]) > savings_at(c - 0.05, eff[0], eff[1]));
        assert!(savings_at(c + 0.05, eff[0], eff[1]) > savings_at(c + 0.05, full[0], full[1]));
    }

    #[test]
    fn zero_ci_is_pure_embodied() {
        assert!((savings_at(0.0, 0.29, 0.14) - 0.14).abs() < 1e-12);
    }

    #[test]
    fn no_crossover_for_parallel_curves() {
        assert!(crossover((0.2, 0.3), (0.2, 0.1)).is_none());
    }
}
