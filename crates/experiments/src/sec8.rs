//! §VIII analyses — the paper's discussion items, implemented:
//! design-space search, run-time autoscaling, hardware-tiered CXL, and
//! the §VII-A TCO swap.

use crate::context::{ExpContext, ExpError};
use gsf_carbon::cost::{CostModel, CostParams};
use gsf_carbon::datasets::open_source;
use gsf_carbon::lifetime::ComponentLifetimes;
use gsf_carbon::units::Years;
use gsf_carbon::ModelParams;
use gsf_core::search::{evaluate_space, pareto_front, CandidateSpace};
use gsf_maintenance::{SsdEndurance, SsdWear};
use gsf_perf::autoscale::{diurnal_load, AutoscaleConfig, Autoscaler};
use gsf_perf::slo::derive_slo;
use gsf_perf::{slowdown, MemoryPlacement, SkuPerfProfile};
use gsf_stats::table::{fmt_f, fmt_pct, Table};
use gsf_workloads::catalog;

/// Design-space search (§VIII): evaluate the paper-neighborhood space
/// and report the ranking plus the Pareto front.
pub fn run_search(ctx: &ExpContext) -> Result<(), ExpError> {
    let results =
        evaluate_space(&CandidateSpace::paper_neighborhood(), ModelParams::default_open_source())?;
    let front = pareto_front(&results);
    let front_names: std::collections::HashSet<&str> =
        front.iter().map(|r| r.name.as_str()).collect();
    let mut t = Table::new(vec![
        "Rank",
        "Candidate",
        "CO2e/core (kg)",
        "Adoption",
        "Effective savings",
        "Pareto",
    ])
    .with_title("§VIII — design-space search (54 candidates)");
    for (i, r) in results.iter().enumerate().take(15) {
        t.row(vec![
            (i + 1).to_string(),
            r.name.clone(),
            fmt_f(r.per_core_kg, 1),
            fmt_pct(r.adoption_rate, 0),
            fmt_pct(r.effective_savings, 1),
            if front_names.contains(r.name.as_str()) { "*".into() } else { String::new() },
        ]);
    }
    ctx.write_table("sec8_design_search", &t)?;
    ctx.note(&format!(
        "sec8 search: best candidate `{}` with effective savings {} \
         ({} Pareto-optimal of {} candidates)",
        results[0].name,
        fmt_pct(results[0].effective_savings, 1),
        front.len(),
        results.len()
    ));
    Ok(())
}

/// Run-time autoscaling (§VIII): GreenSKU-Efficient with a reactive
/// controller vs static peak provisioning on a diurnal load.
pub fn run_autoscale(ctx: &ExpContext) -> Result<(), ExpError> {
    let mut t = Table::new(vec![
        "App",
        "Static cores (peak)",
        "Static core-hours",
        "Autoscaled core-hours",
        "Saved",
        "SLO attainment",
    ])
    .with_title("§VIII — autoscaling on GreenSKU-Efficient, 48h diurnal load");
    for name in ["Xapian", "Moses", "Nginx"] {
        let app = catalog::by_name(name).expect("catalog app");
        let slo = derive_slo(&app, &SkuPerfProfile::gen3()).expect("latency app");
        let scaler = Autoscaler::new(
            app,
            SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            AutoscaleConfig::new(slo.p95_ms),
        );
        let load = diurnal_load(slo.load_qps * 0.6, 0.6, 48.0, 5.0);
        let outcome = scaler.run(&load);
        let peak = load.iter().cloned().fold(0.0, f64::max);
        let static_cores = scaler.cores_for(peak);
        let static_hours = outcome.static_core_hours(static_cores);
        t.row(vec![
            name.to_string(),
            static_cores.to_string(),
            fmt_f(static_hours, 0),
            fmt_f(outcome.core_hours, 0),
            fmt_pct(1.0 - outcome.core_hours / static_hours, 1),
            fmt_pct(outcome.slo_attainment, 1),
        ]);
    }
    ctx.write_table("sec8_autoscaling", &t)
}

/// Hardware-tiered CXL (§III forward reference): per-app slowdown under
/// naive vs tiered vs Pond placement.
pub fn run_tiering(ctx: &ExpContext) -> Result<(), ExpError> {
    let cxl = SkuPerfProfile::greensku_cxl();
    let mut t = Table::new(vec!["App", "Naive", "HW-tiered", "Pond"])
        .with_title("Hardware-tiered CXL: per-core slowdown vs local DDR5");
    for name in ["Moses", "Masstree", "Redis", "HAProxy", "Build-PHP"] {
        let app = catalog::by_name(name).expect("catalog app");
        let local = slowdown(&app, &cxl, MemoryPlacement::LocalOnly);
        let row = |p: MemoryPlacement| slowdown(&app, &cxl, p) / local;
        t.row(vec![
            name.to_string(),
            fmt_f(row(MemoryPlacement::Naive), 3),
            fmt_f(row(MemoryPlacement::HardwareTiered), 3),
            fmt_f(row(MemoryPlacement::Pond), 3),
        ]);
    }
    ctx.write_table("sec8_hw_tiering", &t)
}

/// §VII-A TCO swap plus reuse-viability analyses (SSD wear, lifetime
/// normalization).
pub fn run_tco(ctx: &ExpContext) -> Result<(), ExpError> {
    let model = CostModel::new(ModelParams::default_open_source(), CostParams::public_estimates());
    let baseline = open_source::baseline_gen3();
    let mut t =
        Table::new(vec!["SKU", "Capex $/core", "Energy $/core", "TCO $/core", "vs baseline"])
            .with_title("§VII-A — TCO model (public price estimates)");
    let base_tco = model.assess(&baseline)?.total_per_core();
    for sku in open_source::table_viii_skus() {
        let a = model.assess(&sku)?;
        t.row(vec![
            sku.name().to_string(),
            fmt_f(a.capex_per_core, 0),
            fmt_f(a.energy_per_core, 0),
            fmt_f(a.total_per_core(), 0),
            fmt_pct(1.0 - a.total_per_core() / base_tco, 1),
        ]);
    }
    ctx.write_table("sec7a_tco", &t)?;

    // Reuse viability: SSD wear after the first deployment.
    let wear = SsdWear::after_service(SsdEndurance::m2_2015(), 7.0, 0.3);
    let lifetimes = ComponentLifetimes::paper_observed();
    let penalty13 = lifetimes.extension_penalty(&baseline, Years::new(6.0), Years::new(13.0));
    ctx.write_text(
        "sec7a_reuse_viability.txt",
        &format!(
            "SSD wear after 7y at 0.3 DWPD: {} of erase budget remaining \
             (paper: most drives keep >50%)\n\
             second 6-year deployment viable at same rate: {}\n\
             lifetime-extension embodied penalty, baseline SKU 6->13y: {:.0} kg \
             ({} of server embodied) — the replacement cost the SecVII-B \
             lifetime lever optimistically ignores\n",
            fmt_pct(wear.remaining_fraction(), 1),
            wear.viable_for_reuse(6.0, 0.3),
            penalty13.get(),
            fmt_pct(penalty13.get() / baseline.embodied().get(), 1),
        ),
    )
}

/// §III residual levers: second-generation GreenSKU candidates (NIC
/// reuse, LPDDR) and their measured (small) returns.
pub fn run_residuals(ctx: &ExpContext) -> Result<(), ExpError> {
    use gsf_carbon::residuals;
    let model = gsf_carbon::CarbonModel::new(ModelParams::default_open_source());
    // Each lever is compared against the SKU it modifies: NIC reuse vs
    // GreenSKU-Full with a new NIC; LPDDR vs GreenSKU-Efficient's DDR5.
    let candidates = [
        (
            "NIC reuse (on GreenSKU-Full)",
            residuals::greensku_full_with_new_nic()?,
            residuals::greensku_gen2_nic_reuse()?,
        ),
        (
            "LPDDR (on GreenSKU-Efficient)",
            open_source::greensku_efficient(),
            residuals::greensku_gen2_lpddr()?,
        ),
    ];
    let mut t = Table::new(vec![
        "Lever",
        "Base kg/core",
        "Candidate kg/core",
        "Additional savings",
        "PCIe lanes",
    ])
    .with_title("§III — second-generation (residual) levers");
    for (name, base, candidate) in &candidates {
        let b = model.assess(base)?.total_per_core().get();
        let c = model.assess(candidate)?.total_per_core().get();
        t.row(vec![
            name.to_string(),
            fmt_f(b, 2),
            fmt_f(c, 2),
            fmt_pct(1.0 - c / b, 2),
            candidate.pcie_lanes().to_string(),
        ]);
    }
    ctx.write_table("sec3_residual_levers", &t)?;
    ctx.note(
        "sec3: NIC reuse and LPDDR move per-core carbon by <1% — the paper's 'low returns today'",
    );
    Ok(())
}

/// Umbrella runner for the registry.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    run_search(ctx)?;
    run_autoscale(ctx)?;
    run_tiering(ctx)?;
    run_residuals(ctx)?;
    run_tco(ctx)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_all_sec8_artifacts() {
        let dir = std::env::temp_dir().join(format!("gsf-sec8-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 13, true).unwrap().quiet();
        run(&ctx).unwrap();
        for f in [
            "sec3_residual_levers.csv",
            "sec8_design_search.csv",
            "sec8_autoscaling.csv",
            "sec8_hw_tiering.csv",
            "sec7a_tco.csv",
            "sec7a_reuse_viability.txt",
        ] {
            assert!(dir.join(f).exists(), "{f}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn autoscaling_saves_for_every_app() {
        let dir = std::env::temp_dir().join(format!("gsf-sec8b-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 13, true).unwrap().quiet();
        run_autoscale(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("sec8_autoscaling.csv")).unwrap();
        for line in csv.lines().skip(1) {
            // "Saved" column is second-to-last.
            let cells: Vec<&str> = line.split(',').collect();
            let saved: f64 = cells[cells.len() - 2].trim_end_matches('%').parse().unwrap();
            assert!(saved > 10.0, "{line}");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
