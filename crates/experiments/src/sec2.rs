//! §II motivation statistics — the underutilization and fleet anchors
//! the paper opens with, measured on the synthetic substrate.

use crate::context::{ExpContext, ExpError};
use gsf_stats::table::{fmt_pct, Table};
use gsf_workloads::{characterize, TraceGenerator, TraceParams};

/// Regenerates the §II statistics table.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let trace = TraceGenerator::new(TraceParams {
        duration_hours: ctx.scaled(24.0, 96.0),
        arrivals_per_hour: ctx.scaled(60.0, 120.0),
        ..TraceParams::default()
    })
    .generate(ctx.seeds(), 0);
    let p = characterize(&trace);

    let mut t = Table::new(vec!["Statistic", "Measured", "Paper (§II)"])
        .with_title("§II — fleet underutilization statistics");
    t.row(vec![
        "VMs below 25% CPU utilization".into(),
        fmt_pct(p.cpu_util_below_25pct, 1),
        "75%".into(),
    ]);
    t.row(vec![
        "VMs below 60% max memory utilization".into(),
        fmt_pct(p.mem_util_below_60pct, 1),
        "most".into(),
    ]);
    t.row(vec![
        "Full-node VMs' core-hour share".into(),
        fmt_pct(p.full_node_core_hour_share, 1),
        "- (long-living, dedicated)".into(),
    ]);
    t.row(vec![
        "Median VM lifetime".into(),
        format!("{:.2} h", p.median_lifetime_hours),
        "mostly short-lived".into(),
    ]);
    t.row(vec![
        "p95 VM lifetime".into(),
        format!("{:.1} h", p.p95_lifetime_hours),
        "heavy tail".into(),
    ]);
    ctx.write_table("sec2_underutilization", &t)?;
    ctx.write_text("sec2_trace_profile.txt", &p.render())?;
    ctx.note(&format!(
        "sec2: {} of VMs below 25% CPU utilization (paper: 75%)",
        fmt_pct(p.cpu_util_below_25pct, 1)
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn writes_artifacts_with_anchor_in_band() {
        let dir = std::env::temp_dir().join(format!("gsf-sec2-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 13, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("sec2_underutilization.csv")).unwrap();
        let cpu_row = csv.lines().find(|l| l.contains("25% CPU")).unwrap();
        let pct: f64 = cpu_row.split(',').nth(1).unwrap().trim_end_matches('%').parse().unwrap();
        assert!((pct - 75.0).abs() < 8.0, "{pct}");
        std::fs::remove_dir_all(dir).ok();
    }
}
