//! Fig. 12 — end-to-end cluster-level savings across carbon intensities
//! using the open-source data and the full GSF pipeline (adoption →
//! allocation → sizing → growth buffer → emissions).

use crate::context::{ExpContext, ExpError};
use gsf_carbon::datasets::region_carbon_intensities;
use gsf_core::{GreenSkuDesign, GsfPipeline, PipelineConfig};
use gsf_stats::rng::SeedFactory;
use gsf_stats::table::fmt_pct;
use gsf_workloads::{Trace, TraceGenerator, TraceParams};

/// Builds the reference trace used by the sweep.
pub fn reference_trace(seeds: &SeedFactory, quick: bool) -> Trace {
    // Quick mode still needs a cluster large enough that ±1-server
    // discretization does not swing the savings sign.
    let params = TraceParams {
        duration_hours: if quick { 24.0 } else { 96.0 },
        arrivals_per_hour: if quick { 80.0 } else { 150.0 },
        ..TraceParams::default()
    };
    TraceGenerator::new(params).generate(seeds, 0)
}

/// Regenerates the Fig. 12 sweep and the headline average savings.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let pipeline = GsfPipeline::new(PipelineConfig::default());
    let trace = reference_trace(ctx.seeds(), ctx.is_quick());
    let cis: Vec<f64> = if ctx.is_quick() {
        vec![0.02, 0.1, 0.33]
    } else {
        (1..=50).map(|i| f64::from(i) * 0.01).collect()
    };

    let designs = GreenSkuDesign::all_three();
    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    for design in &designs {
        columns.push(pipeline.savings_sweep(design, &trace, &cis)?);
    }
    let rows: Vec<Vec<f64>> = cis
        .iter()
        .enumerate()
        .map(|(i, &ci)| {
            let mut row = vec![ci];
            for col in &columns {
                row.push(col[i].1);
            }
            row
        })
        .collect();
    ctx.write_series(
        "fig12_cluster_savings_open.csv",
        &["carbon_intensity_kg_per_kwh", "efficient", "cxl", "full"],
        &rows,
    )?;

    // Headline numbers: average cluster savings across the three region
    // carbon intensities, and the fleet roll-up (many cluster traces)
    // at the reference intensity, which removes single-trace sizing
    // noise. Paper (open data): cluster 14 %, data center 7 %.
    let regions = region_carbon_intensities();
    let mut region_savings = Vec::new();
    for (_, ci) in regions {
        let o = pipeline.evaluate_at(
            &GreenSkuDesign::full(),
            &trace,
            gsf_carbon::units::CarbonIntensity::new(ci),
        )?;
        region_savings.push(o.cluster_savings);
    }
    let avg_cluster = region_savings.iter().sum::<f64>() / region_savings.len() as f64;

    let n_fleet = ctx.scaled(3, 10);
    let fleet_hours = ctx.scaled(24.0, 72.0);
    let fleet_traces: Vec<Trace> = gsf_workloads::tracegen::standard_suite()
        .into_iter()
        .take(n_fleet)
        .enumerate()
        .map(|(i, mut p)| {
            p.duration_hours = fleet_hours;
            TraceGenerator::new(p).generate(ctx.seeds(), 100 + i as u64)
        })
        .collect();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let fleet = pipeline.evaluate_fleet(&GreenSkuDesign::full(), &fleet_traces, workers)?;

    ctx.write_text(
        "fig12_summary.txt",
        &format!(
            "average cluster-level savings across region CIs: {}\n\
             (paper artifact: 14%)\n\
             fleet roll-up over {} cluster traces at CI 0.1:\n\
               cluster savings mean {} (min {}, max {})\n\
               data-center savings mean {}\n\
             (paper artifact: data-center savings 7%; internal: 8%)\n\
             adoption rate (core-hour weighted, vs Gen3): {}\n",
            fmt_pct(avg_cluster, 1),
            fleet.per_trace.len(),
            fmt_pct(fleet.mean_cluster_savings, 1),
            fmt_pct(fleet.min_cluster_savings, 1),
            fmt_pct(fleet.max_cluster_savings, 1),
            fmt_pct(fleet.mean_dc_savings, 1),
            fmt_pct(fleet.per_trace[0].adoption_rate, 1),
        ),
    )?;
    ctx.note(&format!(
        "fig12: avg cluster savings {} across regions; fleet mean {} (paper 14%), \
         DC mean {} (paper 7%)",
        fmt_pct(avg_cluster, 1),
        fmt_pct(fleet.mean_cluster_savings, 1),
        fmt_pct(fleet.mean_dc_savings, 1)
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_positive_savings_everywhere() {
        let dir = std::env::temp_dir().join(format!("gsf-fig12-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 11, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("fig12_cluster_savings_open.csv")).unwrap();
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            for s in &cells[1..] {
                assert!(*s > 0.0 && *s < 0.5, "{line}");
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
