//! Fault-injection robustness sweep: AFR scale × FIP effectiveness.
//!
//! Replays the GreenSKU-Full deployment with the fault-injected
//! pipeline across a grid of annualized-failure-rate multipliers and
//! Fail-In-Place effectiveness values. Higher AFRs grow the plan (the
//! sizing search must survive evacuations); higher FIP effectiveness
//! converts full-server failures into partial capacity degrades, which
//! displace fewer VMs per event.

use crate::context::{ExpContext, ExpError};
use gsf_core::{GreenSkuDesign, GsfPipeline, PipelineConfig};
use gsf_maintenance::{ComponentAfrs, FaultModel, FipPolicy};
use gsf_stats::table::fmt_pct;
use gsf_workloads::{TraceGenerator, TraceParams};

/// Regenerates the AFR × FIP sweep.
pub fn run(ctx: &ExpContext) -> Result<(), ExpError> {
    let params = TraceParams {
        duration_hours: ctx.scaled(12.0, 48.0),
        arrivals_per_hour: ctx.scaled(40.0, 80.0),
        ..TraceParams::default()
    };
    let trace = TraceGenerator::new(params).generate(ctx.seeds(), 0);
    let design = GreenSkuDesign::full();

    let afr_scales: Vec<f64> = ctx.scaled(vec![0.0, 10.0], vec![0.0, 1.0, 5.0, 10.0, 20.0]);
    let fips: Vec<f64> = ctx.scaled(vec![0.0, 0.75], vec![0.0, 0.5, 0.75, 1.0]);
    let fault_seed = 7;

    let clean = GsfPipeline::new(PipelineConfig::default()).evaluate(&design, &trace)?;

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for &afr_scale in &afr_scales {
        for &fip in &fips {
            let outcome = if afr_scale == 0.0 {
                // AFR×0 injects nothing; report the identity row from
                // the fault-free pipeline rather than a zero-rate model.
                clean.clone()
            } else {
                let reference = FaultModel::paper(fault_seed);
                let model = FaultModel::new(
                    ComponentAfrs::paper(),
                    FipPolicy { effectiveness: fip },
                    afr_scale,
                    1.0,
                    reference.degrade_core_fraction,
                    reference.degrade_mem_fraction,
                    reference.max_evac_passes,
                    fault_seed,
                )
                .map_err(|e| ExpError::Gsf(gsf_core::GsfError::InvalidConfig(e.to_string())))?;
                let config = PipelineConfig { faults: model, ..PipelineConfig::default() };
                GsfPipeline::new(config).evaluate(&design, &trace)?
            };
            rows.push(vec![
                afr_scale,
                fip,
                f64::from(outcome.plan.baseline),
                f64::from(outcome.plan.green),
                outcome.expected_capacity_loss,
                outcome.faults.full_failures as f64,
                outcome.faults.partial_degrades as f64,
                outcome.faults.displaced as f64,
                outcome.faults.evacuation_failures as f64,
                outcome.cluster_savings,
            ]);
        }
    }
    ctx.write_series(
        "faults_afr_fip_sweep.csv",
        &[
            "afr_scale",
            "fip_effectiveness",
            "plan_baseline",
            "plan_green",
            "expected_capacity_loss",
            "full_failures",
            "partial_degrades",
            "vms_displaced",
            "evacuation_failures",
            "cluster_savings",
        ],
        &rows,
    )?;

    let worst = rows.iter().map(|r| r[9]).fold(f64::INFINITY, f64::min);
    ctx.note(&format!(
        "faults: fault-free savings {}, worst faulted savings {} across {} grid points",
        fmt_pct(clean.cluster_savings, 1),
        fmt_pct(worst, 1),
        rows.len(),
    ));
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn sweep_writes_grid_and_identity_row() {
        let dir = std::env::temp_dir().join(format!("gsf-faults-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 99, true).unwrap().quiet();
        run(&ctx).unwrap();
        let csv = std::fs::read_to_string(dir.join("faults_afr_fip_sweep.csv")).unwrap();
        // Quick grid: 2 AFR scales x 2 FIP points + header.
        assert_eq!(csv.lines().count(), 5, "{csv}");
        // The AFR x0 rows are fault-free identities: zero events.
        let identity = csv.lines().nth(1).unwrap();
        let cols: Vec<&str> = identity.split(',').collect();
        assert_eq!(cols[5..9].join(","), "0,0,0,0", "{identity}");
        std::fs::remove_dir_all(dir).ok();
    }
}
