//! Confidence intervals for the mean.
//!
//! The paper reports three-trial measurements with 99 % confidence
//! intervals; [`ConfidenceInterval`] implements the Student-t interval the
//! experiment harness attaches to every latency series.

use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    mean: f64,
    half_width: f64,
    level: f64,
}

impl ConfidenceInterval {
    /// Computes a confidence interval for the mean of `samples` at the
    /// given confidence `level` (e.g. `0.99`).
    ///
    /// Returns `None` for fewer than two samples (the interval is
    /// undefined).
    pub fn from_samples(samples: &[f64], level: f64) -> Option<Self> {
        let s = Summary::from_samples(samples);
        if s.count() < 2 {
            return None;
        }
        let t = t_critical(level, s.count() - 1);
        Some(Self { mean: s.mean(), half_width: t * s.std_error(), level })
    }

    /// Sample mean at the interval's centre.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// The confidence level (e.g. 0.99).
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

/// Two-sided Student-t critical value for the given confidence level and
/// degrees of freedom.
///
/// Tabulated for the levels the experiments use (90 %, 95 %, 99 %) at
/// small degrees of freedom, falling back to the normal-approximation z
/// value for large `df` or other levels.
pub fn t_critical(level: f64, df: usize) -> f64 {
    // Rows: df 1..=30; columns chosen per level below.
    const T95: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    const T99: [f64; 30] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
        2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
        2.771, 2.763, 2.756, 2.750,
    ];
    const T90: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
        1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
        1.703, 1.701, 1.699, 1.697,
    ];
    let df = df.max(1);
    let table = if (level - 0.99).abs() < 1e-9 {
        Some(&T99)
    } else if (level - 0.95).abs() < 1e-9 {
        Some(&T95)
    } else if (level - 0.90).abs() < 1e-9 {
        Some(&T90)
    } else {
        None
    };
    match table {
        Some(t) if df <= 30 => t[df - 1],
        Some(t) => {
            // Beyond the table the t-distribution is close to normal; use
            // the df=30 entry relaxed toward the z-value.
            let z = z_value(level);
            let t30 = t[29];
            // Simple 1/df interpolation between t30 and z.
            z + (t30 - z) * 30.0 / df as f64
        }
        None => z_value(level),
    }
}

/// Two-sided standard-normal critical value for common levels.
fn z_value(level: f64) -> f64 {
    if (level - 0.99).abs() < 1e-9 {
        2.576
    } else if (level - 0.95).abs() < 1e-9 {
        1.960
    } else if (level - 0.90).abs() < 1e-9 {
        1.645
    } else {
        // Rough inverse via bisection on erf-based CDF approximation.
        let target = 0.5 + level / 2.0;
        let (mut lo, mut hi) = (0.0_f64, 10.0_f64);
        for _ in 0..80 {
            let mid = (lo + hi) / 2.0;
            if normal_cdf(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, max error ~1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn too_few_samples_is_none() {
        assert!(ConfidenceInterval::from_samples(&[1.0], 0.99).is_none());
        assert!(ConfidenceInterval::from_samples(&[], 0.99).is_none());
    }

    #[test]
    fn three_trials_99pct() {
        // df = 2, t = 9.925; samples mean 10, sd 1.
        let ci = ConfidenceInterval::from_samples(&[9.0, 10.0, 11.0], 0.99).unwrap();
        assert!((ci.mean() - 10.0).abs() < 1e-12);
        let expected_hw = 9.925 * 1.0 / 3.0_f64.sqrt();
        assert!((ci.half_width() - expected_hw).abs() < 1e-9);
        assert!(ci.contains(10.0));
        assert!(!ci.contains(100.0));
    }

    #[test]
    fn wider_at_higher_confidence() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let c90 = ConfidenceInterval::from_samples(&xs, 0.90).unwrap();
        let c99 = ConfidenceInterval::from_samples(&xs, 0.99).unwrap();
        assert!(c99.half_width() > c90.half_width());
    }

    #[test]
    fn t_approaches_z_for_large_df() {
        let t = t_critical(0.95, 10_000);
        assert!((t - 1.960).abs() < 0.01, "t={t}");
    }

    #[test]
    fn generic_level_reasonable() {
        // 98% two-sided z is about 2.326.
        let z = t_critical(0.98, 100_000);
        assert!((z - 2.326).abs() < 0.02, "z={z}");
    }

    #[test]
    fn erf_sanity() {
        // The A&S approximation has ~1.5e-7 absolute error.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
    }
}
