//! Empirical cumulative distribution functions.
//!
//! Figures 9 and 10 of the paper are CDFs across traces/servers; this
//! module provides the container that backs them and the `(x, F(x))`
//! series the experiment harness writes out.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// # Example
///
/// ```
/// # use gsf_stats::cdf::EmpiricalCdf;
/// let cdf = EmpiricalCdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.eval(2.5), 0.5);
/// assert_eq!(cdf.quantile(1.0), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from samples; non-finite samples are dropped.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of samples `<= x`. Returns 0 for an empty CDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile by closest-rank interpolation; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::percentile::percentile_sorted(&self.sorted, q)
    }

    /// Minimum sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Renders the CDF as `(x, F(x))` pairs at each distinct sample —
    /// the series plotted in the paper's Figs. 9 and 10.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::with_capacity(n);
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            // Advance past duplicates so F jumps once per distinct value.
            let mut j = i + 1;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Renders the CDF sampled at `points` evenly spaced x-values between
    /// `lo` and `hi` inclusive. Useful for fixed-grid comparisons.
    pub fn series_on_grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if points == 0 {
            return Vec::new();
        }
        if points == 1 {
            return vec![(lo, self.eval(lo))];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for EmpiricalCdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::from_samples(iter.into_iter().collect())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_behaves() {
        let cdf = EmpiricalCdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert!(cdf.series().is_empty());
    }

    #[test]
    fn eval_is_right_continuous_step() {
        let cdf = EmpiricalCdf::from_samples(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.eval(9.0), 1.0);
    }

    #[test]
    fn series_jumps_once_per_distinct_value() {
        let cdf = EmpiricalCdf::from_samples(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.series(), vec![(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let cdf = EmpiricalCdf::from_samples(vec![f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn grid_series_monotone() {
        let cdf: EmpiricalCdf = (0..100).map(|i| i as f64).collect();
        let series = cdf.series_on_grid(0.0, 99.0, 25);
        assert_eq!(series.len(), 25);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn quantile_bounds() {
        let cdf = EmpiricalCdf::from_samples(vec![5.0, 1.0, 3.0]);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(5.0));
    }
}
