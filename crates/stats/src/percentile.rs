//! Exact and streaming percentile estimation.
//!
//! The performance simulator reports p95/p99 tail latencies (Figs. 7–8 of
//! the paper). [`Percentiles`] collects samples and computes exact order
//! statistics; [`StreamingQuantile`] is a P²-style constant-memory
//! estimator used when sample counts would be prohibitive.

/// Computes the `q`-quantile (`q` in `[0, 1]`) of an already **sorted**
/// slice by linear interpolation between closest ranks.
///
/// Returns `None` for an empty slice.
///
/// # Example
///
/// ```
/// # use gsf_stats::percentile::percentile_sorted;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_sorted(&xs, 0.5), Some(2.5));
/// assert_eq!(percentile_sorted(&xs, 1.0), Some(4.0));
/// ```
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Collects samples and computes exact percentiles on demand.
///
/// Maintains an insertion buffer and sorts lazily, so repeated queries are
/// cheap. All latencies in the tail-latency experiments flow through this.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self { samples: Vec::with_capacity(n), sorted: true }
    }

    /// Records a sample. Non-finite samples are ignored (and would
    /// otherwise poison sorting).
    pub fn record(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile of the recorded samples; `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        self.ensure_sorted();
        percentile_sorted(&self.samples, q)
    }

    /// Convenience: the 95th percentile.
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the recorded samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Maximum recorded sample; `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Returns the samples, sorted ascending.
    pub fn into_sorted(mut self) -> Vec<f64> {
        self.ensure_sorted();
        self.samples
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }
}

impl Extend<f64> for Percentiles {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Percentiles {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut p = Percentiles::new();
        p.extend(iter);
        p
    }
}

/// Constant-memory quantile estimator (the P² algorithm of Jain & Chlamtac).
///
/// Tracks five markers whose heights converge to the target quantile. Used
/// by long simulations where retaining every latency sample would be
/// wasteful; accuracy is validated against [`Percentiles`] in tests.
#[derive(Debug, Clone)]
pub struct StreamingQuantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Number of observations seen.
    count: usize,
    /// Initial buffer until five observations arrive.
    initial: Vec<f64>,
}

impl StreamingQuantile {
    /// Creates an estimator for the `q`-quantile (`q` clamped to `(0,1)`).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(1e-6, 1.0 - 1e-6);
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The targeted quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation. Non-finite observations are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(f64::total_cmp);
                for (h, v) in self.heights.iter_mut().zip(&self.initial) {
                    *h = *v;
                }
            }
            return;
        }

        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust interior markers with piecewise-parabolic interpolation.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let np = self.positions[i + 1] - self.positions[i];
            let pp = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && np > 1.0) || (d <= -1.0 && pp < -1.0) {
                let sign = d.signum();
                let parabolic = self.parabolic(i, sign);
                let new_h = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    parabolic
                } else {
                    self.linear(i, sign)
                };
                self.heights[i] = new_h;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        let term1 = sign / (p[i + 1] - p[i - 1]);
        let term2 = (p[i] - p[i - 1] + sign) * (h[i + 1] - h[i]) / (p[i + 1] - p[i]);
        let term3 = (p[i + 1] - p[i] - sign) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]);
        h[i] + term1 * (term2 + term3)
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = (i as f64 + sign) as usize;
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate of the quantile; `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut buf = self.initial.clone();
            buf.sort_by(f64::total_cmp);
            return percentile_sorted(&buf, self.q);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::dist::LogNormal;
    use crate::rng::SeedFactory;
    use rand::distributions::Distribution;

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(percentile_sorted(&[], 0.5), None);
        assert!(Percentiles::new().quantile(0.5).is_none());
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile_sorted(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile_sorted(&xs, 0.25), Some(12.5));
    }

    #[test]
    fn collector_matches_direct_computation() {
        let mut p: Percentiles = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p.quantile(0.95), Some(95.05));
        assert_eq!(p.mean(), Some(50.5));
        assert_eq!(p.max(), Some(100.0));
    }

    #[test]
    fn collector_ignores_non_finite() {
        let mut p = Percentiles::new();
        p.record(f64::NAN);
        p.record(f64::INFINITY);
        p.record(1.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.quantile(0.5), Some(1.0));
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut p: Percentiles = (0..1000).map(|i| ((i * 37) % 997) as f64).collect();
        let q50 = p.quantile(0.5).unwrap();
        let q95 = p.quantile(0.95).unwrap();
        let q99 = p.quantile(0.99).unwrap();
        assert!(q50 <= q95 && q95 <= q99);
    }

    #[test]
    fn streaming_estimator_close_to_exact() {
        let d = LogNormal::with_mean(5.0, 0.8).unwrap();
        let mut rng = SeedFactory::new(11).stream("p2");
        let mut exact = Percentiles::new();
        let mut stream = StreamingQuantile::new(0.95);
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            exact.record(x);
            stream.record(x);
        }
        let e = exact.p95().unwrap();
        let s = stream.estimate().unwrap();
        assert!((s - e).abs() / e < 0.05, "stream {s} vs exact {e}");
    }

    #[test]
    fn streaming_estimator_small_counts() {
        let mut s = StreamingQuantile::new(0.5);
        assert!(s.estimate().is_none());
        s.record(3.0);
        s.record(1.0);
        s.record(2.0);
        let est = s.estimate().unwrap();
        assert!((est - 2.0).abs() < 1e-9);
    }
}
