//! Moving averages.
//!
//! Fig. 2 of the paper overlays a moving average on raw monthly failure
//! rates; [`MovingAverage`] reproduces that smoothing. [`Ewma`] is used by
//! the load-sweep warm-up detection in the performance simulator.

/// Fixed-window moving average over a sequence.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    buf: std::collections::VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { window, buf: std::collections::VecDeque::with_capacity(window), sum: 0.0 }
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Pushes a value and returns the current average over the (possibly
    /// not yet full) window.
    pub fn push(&mut self, x: f64) -> f64 {
        self.buf.push_back(x);
        self.sum += x;
        if self.buf.len() > self.window {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
            }
        }
        self.sum / self.buf.len() as f64
    }

    /// Current average; `None` if nothing has been pushed.
    pub fn current(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Smooths an entire series, returning one output per input (the
    /// average of the trailing window at each position).
    pub fn smooth(window: usize, series: &[f64]) -> Vec<f64> {
        let mut ma = MovingAverage::new(window);
        series.iter().map(|&x| ma.push(x)).collect()
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Pushes a value and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        };
        self.value = Some(next);
        next
    }

    /// Current average; `None` if nothing has been pushed.
    pub fn current(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_partial_window() {
        let mut ma = MovingAverage::new(3);
        assert_eq!(ma.push(3.0), 3.0);
        assert_eq!(ma.push(5.0), 4.0);
        assert_eq!(ma.push(7.0), 5.0);
        assert_eq!(ma.push(9.0), 7.0); // window slides past 3.0
    }

    #[test]
    fn moving_average_smooth_length_preserved() {
        let xs = vec![1.0; 10];
        let s = MovingAverage::smooth(4, &xs);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn moving_average_zero_window_panics() {
        MovingAverage::new(0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.push(4.0);
        }
        assert!((e.current().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_value_initializes() {
        let mut e = Ewma::new(0.5);
        assert!(e.current().is_none());
        assert_eq!(e.push(10.0), 10.0);
    }
}
