//! Kolmogorov–Smirnov goodness-of-fit tests.
//!
//! The performance simulator's point estimates (mean, p95) are checked
//! against analytic M/M/c values elsewhere; the KS test checks the whole
//! *distribution* of simulated response times against the analytic
//! survival function — the strongest cross-validation the workspace
//! applies to the DES.

use crate::cdf::EmpiricalCdf;

/// Result of a KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F_empirical − F_reference|`.
    pub statistic: f64,
    /// Effective sample size (n for one-sample, harmonic-style
    /// combination for two-sample).
    pub n_effective: f64,
}

impl KsResult {
    /// Critical value at significance `alpha` (asymptotic formula
    /// `c(α)·√(1/n)` with `c(α) = √(−ln(α/2)/2)`).
    pub fn critical_value(&self, alpha: f64) -> f64 {
        let alpha = alpha.clamp(1e-9, 0.5);
        let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
        c / self.n_effective.sqrt()
    }

    /// Whether the empirical distribution is consistent with the
    /// reference at significance `alpha` (fails to reject).
    pub fn consistent_at(&self, alpha: f64) -> bool {
        self.statistic <= self.critical_value(alpha)
    }
}

/// One-sample KS test of `samples` against a reference CDF given as a
/// function `F(x)`.
///
/// Returns `None` for an empty sample.
pub fn ks_one_sample(samples: &[f64], reference_cdf: impl Fn(f64) -> f64) -> Option<KsResult> {
    let cdf = EmpiricalCdf::from_samples(samples.to_vec());
    if cdf.is_empty() {
        return None;
    }
    let n = cdf.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in cdf.samples().iter().enumerate() {
        let f_ref = reference_cdf(x).clamp(0.0, 1.0);
        // Compare against the empirical CDF just below and at the jump.
        let f_lo = i as f64 / n;
        let f_hi = (i + 1) as f64 / n;
        d = d.max((f_ref - f_lo).abs()).max((f_hi - f_ref).abs());
    }
    Some(KsResult { statistic: d, n_effective: n })
}

/// Two-sample KS test between two empirical samples.
///
/// Returns `None` if either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<KsResult> {
    let ca = EmpiricalCdf::from_samples(a.to_vec());
    let cb = EmpiricalCdf::from_samples(b.to_vec());
    if ca.is_empty() || cb.is_empty() {
        return None;
    }
    let mut d = 0.0f64;
    for &x in ca.samples().iter().chain(cb.samples()) {
        d = d.max((ca.eval(x) - cb.eval(x)).abs());
    }
    let (na, nb) = (ca.len() as f64, cb.len() as f64);
    Some(KsResult { statistic: d, n_effective: na * nb / (na + nb) })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::dist::Exponential;
    use crate::rng::SeedFactory;
    use rand::distributions::Distribution;

    // Root seed chosen so each fixed-seed draw lands outside the KS
    // rejection region at alpha = 0.01 (the test is statistical; ~1% of
    // seeds fail by construction).
    fn exp_samples(mean: f64, n: usize, label: &str) -> Vec<f64> {
        let d = Exponential::with_mean(mean).unwrap();
        let mut rng = SeedFactory::new(3).stream(label);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fits_its_own_cdf() {
        let xs = exp_samples(2.0, 5_000, "fit");
        let r = ks_one_sample(&xs, |x| 1.0 - (-x / 2.0).exp()).unwrap();
        assert!(r.consistent_at(0.01), "D = {}", r.statistic);
    }

    #[test]
    fn exponential_rejects_wrong_mean() {
        let xs = exp_samples(2.0, 5_000, "reject");
        let r = ks_one_sample(&xs, |x| 1.0 - (-x / 3.0).exp()).unwrap();
        assert!(!r.consistent_at(0.01), "D = {}", r.statistic);
    }

    #[test]
    fn two_sample_same_distribution_consistent() {
        let a = exp_samples(1.0, 3_000, "a");
        let b = exp_samples(1.0, 3_000, "b");
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.consistent_at(0.01), "D = {}", r.statistic);
    }

    #[test]
    fn two_sample_different_distributions_rejected() {
        let a = exp_samples(1.0, 3_000, "a2");
        let b = exp_samples(1.6, 3_000, "b2");
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(!r.consistent_at(0.01), "D = {}", r.statistic);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(ks_one_sample(&[], |_| 0.5).is_none());
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[]).is_none());
    }

    #[test]
    fn critical_value_shrinks_with_n() {
        let small = KsResult { statistic: 0.0, n_effective: 100.0 };
        let large = KsResult { statistic: 0.0, n_effective: 10_000.0 };
        assert!(large.critical_value(0.05) < small.critical_value(0.05));
    }

    #[test]
    fn statistic_bounded_by_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![100.0, 200.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
    }
}
