//! Text-table and CSV rendering for the experiment harness.
//!
//! Every regenerated paper table is emitted twice: as an aligned text
//! table for the console and as a CSV file under `results/`.

use std::fmt::Write as _;

/// A simple column-aligned text table that can also render itself as CSV.
///
/// # Example
///
/// ```
/// # use gsf_stats::table::Table;
/// let mut t = Table::new(vec!["SKU", "Savings"]);
/// t.row(vec!["GreenSKU-Full".into(), "28%".into()]);
/// let text = t.render_text();
/// assert!(text.contains("GreenSKU-Full"));
/// let csv = t.render_csv();
/// assert!(csv.starts_with("SKU,Savings"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title rendered above the text table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are allowed (headers are padded at render time).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders an aligned text table.
    #[allow(clippy::needless_range_loop)] // widths and cells are indexed in lockstep
    pub fn render_text(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        fn cell(row: &[String], c: usize) -> &str {
            row.get(c).map(String::as_str).unwrap_or("")
        }
        for c in 0..ncols {
            widths[c] = cell(&self.headers, c).chars().count();
            for row in &self.rows {
                widths[c] = widths[c].max(cell(row, c).chars().count());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "== {title} ==");
        }
        let render_row = |out: &mut String, row: &[String]| {
            let mut line = String::new();
            for c in 0..ncols {
                let text = cell(row, c);
                let pad = widths[c] - text.chars().count();
                let _ = write!(line, "{}{}", text, " ".repeat(pad));
                if c + 1 < ncols {
                    let _ = write!(line, "  ");
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting where needed).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", csv_line(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", csv_line(row));
        }
        out
    }
}

/// Joins cells into one CSV line, quoting cells that contain commas,
/// quotes, or newlines.
pub fn csv_line<S: AsRef<str>>(cells: &[S]) -> String {
    cells
        .iter()
        .map(|c| {
            let c = c.as_ref();
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats a float with `digits` decimal places, trimming `-0`.
pub fn fmt_f(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.starts_with("-0") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

/// Formats a ratio as a percentage with `digits` decimal places, e.g.
/// `0.283 -> "28.3%"`.
pub fn fmt_pct(ratio: f64, digits: usize) -> String {
    format!("{}%", fmt_f(ratio * 100.0, digits))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn text_alignment() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let text = t.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a      long-header");
        assert_eq!(lines[2], "xxxxx  1");
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_line(&["a,b", "c\"d", "plain"]), "\"a,b\",\"c\"\"d\",plain");
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new(vec!["h1"]);
        t.row(vec!["a".into(), "extra".into()]);
        t.row(vec![]);
        let text = t.render_text();
        assert!(text.contains("extra"));
        assert_eq!(t.render_csv().lines().count(), 3);
    }

    #[test]
    fn title_rendered() {
        let t = Table::new(vec!["x"]).with_title("Table IV");
        assert!(t.render_text().starts_with("== Table IV =="));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(-0.0001, 2), "0.00");
        assert_eq!(fmt_pct(0.283, 0), "28%");
        assert_eq!(fmt_pct(0.2834, 1), "28.3%");
    }
}
