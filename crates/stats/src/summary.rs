//! Summary statistics over a finite sample.

use serde::{Deserialize, Serialize};

/// Mean, variance, extrema, and count of a sample, computed in one pass
/// (Welford's algorithm for numerical stability).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Builds a summary from a slice; non-finite entries are ignored.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in samples {
            s.push(x);
        }
        s
    }

    /// Adds one observation; non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (unbiased, `n-1` denominator; 0 when `n < 2`).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn ignores_non_finite() {
        let s = Summary::from_samples(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(20);
        let mut sa = Summary::from_samples(a);
        let sb = Summary::from_samples(b);
        sa.merge(&sb);
        let full = Summary::from_samples(&xs);
        assert_eq!(sa.count(), full.count());
        assert!((sa.mean() - full.mean()).abs() < 1e-9);
        assert!((sa.variance() - full.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_samples(&[1.0, 2.0]);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }
}
