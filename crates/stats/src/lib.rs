//! Statistical substrate for the GreenSKU/GSF reproduction.
//!
//! The offline dependency set does not include `rand_distr`, so this crate
//! implements the distribution samplers the simulators need (exponential,
//! lognormal, Pareto, Zipf, categorical) on top of [`rand`], together with
//! the descriptive-statistics utilities used throughout the evaluation:
//! empirical CDFs, exact and streaming percentiles, moving averages,
//! confidence intervals, and text/CSV table rendering.
//!
//! Everything is deterministic given a seed; the simulators in the rest of
//! the workspace derive their sub-streams from [`rng::SeedFactory`].
//!
//! # Example
//!
//! ```
//! use gsf_stats::rng::SeedFactory;
//! use gsf_stats::dist::Exponential;
//! use gsf_stats::summary::Summary;
//! use rand::Rng;
//!
//! let mut rng = SeedFactory::new(42).stream("example");
//! let exp = Exponential::new(2.0).unwrap();
//! let samples: Vec<f64> = (0..10_000).map(|_| rng.sample(&exp)).collect();
//! let summary = Summary::from_samples(&samples);
//! assert!((summary.mean() - 0.5).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod cdf;
pub mod ci;
pub mod dist;
pub mod ks;
pub mod moving;
pub mod percentile;
pub mod rng;
pub mod summary;
pub mod table;

pub use cdf::EmpiricalCdf;
pub use ci::ConfidenceInterval;
pub use dist::{Categorical, DistError, Exponential, LogNormal, Pareto, Zipf};
pub use ks::{ks_one_sample, ks_two_sample, KsResult};
pub use moving::{Ewma, MovingAverage};
pub use percentile::{percentile_sorted, Percentiles, StreamingQuantile};
pub use rng::{SeedFactory, SimRng};
pub use summary::Summary;
pub use table::{csv_line, Table};
