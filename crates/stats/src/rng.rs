//! Deterministic random-number plumbing.
//!
//! Every simulator in the workspace takes its randomness from a
//! [`SeedFactory`], which derives independent, reproducible sub-streams
//! from a single root seed and a textual label. This keeps experiments
//! bit-reproducible while letting parallel sweeps (e.g. the 35-trace
//! packing study) use uncorrelated streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used by all simulators in this workspace.
///
/// `StdRng` is a seedable, portable-enough CSPRNG; we never rely on its
/// exact stream across `rand` versions, only on determinism within a build.
pub type SimRng = StdRng;

/// Derives independent reproducible RNG streams from a root seed.
///
/// Streams are labelled with a string so call sites read as
/// `factory.stream("arrivals")` rather than magic offsets.
///
/// # Example
///
/// ```
/// use gsf_stats::rng::SeedFactory;
/// use rand::Rng;
///
/// let factory = SeedFactory::new(7);
/// let mut a = factory.stream("arrivals");
/// let mut b = factory.stream("service");
/// // Different labels give different streams...
/// assert_ne!(a.gen::<u64>(), b.gen::<u64>());
/// // ...and the same label is reproducible.
/// let x: u64 = factory.stream("arrivals").gen();
/// let y: u64 = factory.stream("arrivals").gen();
/// assert_eq!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedFactory {
    root: u64,
}

impl SeedFactory {
    /// Creates a factory rooted at `root`.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed this factory was created with.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Returns a new RNG stream derived from the root seed and `label`.
    pub fn stream(&self, label: &str) -> SimRng {
        SimRng::seed_from_u64(self.derive(label, 0))
    }

    /// Returns a new RNG stream derived from the root seed, `label`, and an
    /// index (for per-trial or per-trace streams).
    pub fn stream_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::seed_from_u64(self.derive(label, index))
    }

    /// Returns a child factory; useful to hand a component its own seed
    /// space without sharing streams.
    pub fn child(&self, label: &str) -> SeedFactory {
        SeedFactory::new(self.derive(label, u64::MAX))
    }

    /// FNV-1a-style mix of root seed, label bytes, and index.
    fn derive(&self, label: &str, index: u64) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET ^ self.root;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        for b in index.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Final avalanche (splitmix64 finalizer) so nearby indices diverge.
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_reproduces() {
        let f = SeedFactory::new(123);
        let a: Vec<u64> =
            f.stream("x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u64> =
            f.stream("x").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_diverge() {
        let f = SeedFactory::new(123);
        let a: u64 = f.stream("x").gen();
        let b: u64 = f.stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_diverge() {
        let f = SeedFactory::new(123);
        let a: u64 = f.stream_indexed("t", 0).gen();
        let b: u64 = f.stream_indexed("t", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn child_factory_is_reproducible_and_distinct() {
        let f = SeedFactory::new(5);
        let c1 = f.child("perf");
        let c2 = f.child("perf");
        assert_eq!(c1, c2);
        assert_ne!(c1.root(), f.root());
        let g: u64 = c1.stream("s").gen();
        let h: u64 = f.stream("s").gen();
        assert_ne!(g, h);
    }

    #[test]
    fn different_roots_diverge() {
        let a: u64 = SeedFactory::new(1).stream("s").gen();
        let b: u64 = SeedFactory::new(2).stream("s").gen();
        assert_ne!(a, b);
    }
}
