//! Distribution samplers implemented from first principles.
//!
//! `rand_distr` is not available in the offline dependency set, so the
//! samplers the workload and performance simulators need are implemented
//! here: [`Exponential`] (inverse CDF), [`LogNormal`] (Box–Muller),
//! [`Pareto`] (inverse CDF), [`Zipf`] (rejection-free CDF table for the
//! sizes used here), and [`Categorical`] (cumulative-weight table).
//!
//! All samplers implement [`rand::distributions::Distribution<f64>`] (or
//! `<usize>` for the discrete ones), so they compose with any
//! [`rand::Rng`].

use rand::distributions::Distribution;
use rand::Rng;
use std::fmt;

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Human-readable parameter name.
        param: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A weight table was empty or summed to zero.
    DegenerateWeights,
    /// A parameter was not finite.
    NotFinite {
        /// Human-readable parameter name.
        param: &'static str,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NonPositive { param, value } => {
                write!(f, "parameter `{param}` must be positive, got {value}")
            }
            DistError::DegenerateWeights => {
                write!(f, "weight table was empty or summed to zero")
            }
            DistError::NotFinite { param } => {
                write!(f, "parameter `{param}` must be finite")
            }
        }
    }
}

impl std::error::Error for DistError {}

fn check_positive(param: &'static str, value: f64) -> Result<f64, DistError> {
    if !value.is_finite() {
        return Err(DistError::NotFinite { param });
    }
    if value <= 0.0 {
        return Err(DistError::NonPositive { param, value });
    }
    Ok(value)
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Sampled by inverse-CDF: `-ln(1-U)/lambda`.
///
/// # Example
///
/// ```
/// # use gsf_stats::dist::Exponential;
/// let d = Exponential::new(4.0)?;
/// assert_eq!(d.mean(), 0.25);
/// # Ok::<(), gsf_stats::dist::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonPositive`] if `lambda <= 0` and
    /// [`DistError::NotFinite`] if it is NaN or infinite.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        Ok(Self { lambda: check_positive("lambda", lambda)? })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Result<Self, DistError> {
        let mean = check_positive("mean", mean)?;
        Self::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Analytic mean, `1/lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl Distribution<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1-U in (0,1]; ln is finite.
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.lambda
    }
}

/// Lognormal distribution parameterized by the mean and sigma of the
/// underlying normal (`mu`, `sigma`).
///
/// Sampled via Box–Muller. Commonly used here for service times, which are
/// right-skewed with occasional stragglers — the property that produces
/// realistic tail-latency knees in the queueing simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the underlying normal's `mu` and `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma` is not strictly positive and finite, or
    /// `mu` is not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() {
            return Err(DistError::NotFinite { param: "mu" });
        }
        Ok(Self { mu, sigma: check_positive("sigma", sigma)? })
    }

    /// Creates a lognormal with a target arithmetic `mean` and a shape
    /// `sigma` of the underlying normal.
    ///
    /// Solves `mean = exp(mu + sigma^2/2)` for `mu`.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` or `sigma` is not strictly positive and
    /// finite.
    pub fn with_mean(mean: f64, sigma: f64) -> Result<Self, DistError> {
        let mean = check_positive("mean", mean)?;
        let sigma = check_positive("sigma", sigma)?;
        Self::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// Analytic arithmetic mean, `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// `mu` of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// `sigma` of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: one normal variate per sample (we discard the pair's
        // second half for simplicity; throughput is not a concern here).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Pareto (Type I) distribution with scale `x_min` and shape `alpha`.
///
/// Used for heavy-tailed VM lifetimes: most VMs are short-lived while a
/// small mass lives for a long time, matching public cloud traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with scale `x_min` and shape `alpha`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not strictly positive and
    /// finite.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, DistError> {
        Ok(Self { x_min: check_positive("x_min", x_min)?, alpha: check_positive("alpha", alpha)? })
    }

    /// Analytic mean; infinite when `alpha <= 1`.
    pub fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }

    /// The scale (minimum value).
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// The shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        self.x_min / (1.0 - u).max(f64::MIN_POSITIVE).powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over `{0, 1, ..., n-1}` with exponent `s`.
///
/// Implemented with a precomputed cumulative table (the `n` used in this
/// workspace is small — application catalogs, VM size classes), sampled by
/// binary search. Rank 0 is the most probable element.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `s` is not positive and finite.
    pub fn new(n: usize, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::DegenerateWeights);
        }
        let s = check_positive("s", s)?;
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(Self { cumulative })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has no ranks (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of rank `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cumulative[k];
        let lo = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        hi - lo
    }
}

impl Distribution<usize> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Categorical distribution over `{0, ..., n-1}` with arbitrary weights.
///
/// Used to assign application classes to VMs proportionally to fleet
/// core-hours (Table III of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights.
    ///
    /// Weights are normalized internally.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::DegenerateWeights`] if `weights` is empty, sums
    /// to zero, or contains a negative or non-finite entry.
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        if weights.is_empty() {
            return Err(DistError::DegenerateWeights);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(DistError::DegenerateWeights);
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(DistError::DegenerateWeights);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has no categories (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of category `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cumulative[k];
        let lo = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        hi - lo
    }
}

impl Distribution<usize> for Categorical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::rng::SeedFactory;

    fn sample_mean<D: Distribution<f64>>(d: &D, n: usize) -> f64 {
        let mut rng = SeedFactory::new(99).stream("dist-tests");
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(3.0).unwrap();
        let m = sample_mean(&d, 200_000);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn lognormal_mean_matches() {
        let d = LogNormal::with_mean(2.0, 0.5).unwrap();
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let m = sample_mean(&d, 200_000);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::with_mean(-1.0, 0.5).is_err());
    }

    #[test]
    fn pareto_mean_matches() {
        let d = Pareto::new(1.0, 3.0).unwrap();
        assert!((d.mean() - 1.5).abs() < 1e-12);
        let m = sample_mean(&d, 400_000);
        assert!((m - 1.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn pareto_infinite_mean_flagged() {
        let d = Pareto::new(1.0, 0.9).unwrap();
        assert!(d.mean().is_infinite());
    }

    #[test]
    fn pareto_samples_at_least_x_min() {
        let d = Pareto::new(2.5, 1.2).unwrap();
        let mut rng = SeedFactory::new(1).stream("pareto");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 2.5);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(10, 1.1).unwrap();
        let total: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..10 {
            assert!(z.pmf(k) <= z.pmf(k - 1));
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(5, 1.0).unwrap();
        let mut rng = SeedFactory::new(3).stream("zipf");
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!((emp - z.pmf(k)).abs() < 0.01, "rank {k}: {emp} vs {}", z.pmf(k));
        }
    }

    #[test]
    fn categorical_rejects_degenerate() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[1.0, -0.5]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn categorical_empirical_matches_weights() {
        let c = Categorical::new(&[32.0, 27.0, 24.0, 11.0, 4.0, 1.0]).unwrap();
        let mut rng = SeedFactory::new(4).stream("cat");
        let n = 300_000;
        let mut counts = [0usize; 6];
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        let expected = [0.3232, 0.2727, 0.2424, 0.1111, 0.0404, 0.0101];
        for k in 0..6 {
            let emp = counts[k] as f64 / n as f64;
            assert!((emp - expected[k]).abs() < 0.01, "class {k}: {emp}");
        }
    }

    #[test]
    fn categorical_zero_weight_class_never_sampled() {
        let c = Categorical::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = SeedFactory::new(5).stream("cat0");
        for _ in 0..50_000 {
            assert_ne!(c.sample(&mut rng), 1);
        }
    }
}
