//! Property tests for the statistical substrate.

use gsf_stats::cdf::EmpiricalCdf;
use gsf_stats::dist::{Categorical, Exponential, LogNormal, Pareto, Zipf};
use gsf_stats::moving::MovingAverage;
use gsf_stats::percentile::{percentile_sorted, Percentiles, StreamingQuantile};
use gsf_stats::rng::SeedFactory;
use gsf_stats::summary::Summary;
use proptest::prelude::*;
use rand::distributions::Distribution;

proptest! {
    #[test]
    fn exponential_samples_nonnegative(mean in 0.001..1000.0f64, seed in 0u64..500) {
        let d = Exponential::with_mean(mean).unwrap();
        let mut rng = SeedFactory::new(seed).stream("p");
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn lognormal_samples_positive(mean in 0.001..1000.0f64, sigma in 0.01..2.0f64, seed in 0u64..500) {
        let d = LogNormal::with_mean(mean, sigma).unwrap();
        let mut rng = SeedFactory::new(seed).stream("p");
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn pareto_respects_scale(x_min in 0.01..100.0f64, alpha in 0.2..5.0f64, seed in 0u64..500) {
        let d = Pareto::new(x_min, alpha).unwrap();
        let mut rng = SeedFactory::new(seed).stream("p");
        for _ in 0..200 {
            prop_assert!(d.sample(&mut rng) >= x_min);
        }
    }

    #[test]
    fn zipf_in_range(n in 1usize..50, s in 0.1..3.0f64, seed in 0u64..200) {
        let d = Zipf::new(n, s).unwrap();
        let mut rng = SeedFactory::new(seed).stream("p");
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) < n);
        }
    }

    #[test]
    fn categorical_never_samples_zero_weight(
        weights in prop::collection::vec(0.0..10.0f64, 1..12),
        seed in 0u64..200,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Categorical::new(&weights).unwrap();
        let mut rng = SeedFactory::new(seed).stream("p");
        for _ in 0..200 {
            let k = d.sample(&mut rng);
            prop_assert!(weights[k] > 0.0, "sampled zero-weight class {k}");
        }
    }

    #[test]
    fn percentiles_within_sample_range(
        mut xs in prop::collection::vec(-1e6..1e6f64, 1..200),
        q in 0.0..1.0f64,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let v = percentile_sorted(&xs, q).unwrap();
        prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn summary_merge_associative(
        a in prop::collection::vec(-100.0..100.0f64, 0..50),
        b in prop::collection::vec(-100.0..100.0f64, 0..50),
        c in prop::collection::vec(-100.0..100.0f64, 0..50),
    ) {
        let mut left = Summary::from_samples(&a);
        left.merge(&Summary::from_samples(&b));
        left.merge(&Summary::from_samples(&c));
        let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = Summary::from_samples(&all);
        prop_assert_eq!(left.count(), direct.count());
        if direct.count() > 0 {
            prop_assert!((left.mean() - direct.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - direct.variance()).abs() < 1e-5);
        }
    }

    #[test]
    fn moving_average_bounded_by_window_extremes(
        xs in prop::collection::vec(-1000.0..1000.0f64, 1..80),
        window in 1usize..10,
    ) {
        let smoothed = MovingAverage::smooth(window, &xs);
        prop_assert_eq!(smoothed.len(), xs.len());
        for (i, &s) in smoothed.iter().enumerate() {
            let lo = i.saturating_sub(window - 1);
            let win = &xs[lo..=i];
            let min = win.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = win.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s >= min - 1e-9 && s <= max + 1e-9);
        }
    }

    #[test]
    fn streaming_quantile_within_range(
        xs in prop::collection::vec(0.0..1e4f64, 5..500),
        q in 0.05..0.95f64,
    ) {
        let mut sq = StreamingQuantile::new(q);
        let mut exact = Percentiles::new();
        for &x in &xs {
            sq.record(x);
            exact.record(x);
        }
        let est = sq.estimate().unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
    }

    #[test]
    fn cdf_quantile_and_eval_are_pseudo_inverses(
        xs in prop::collection::vec(0.0..1000.0f64, 2..100),
        q in 0.01..0.99f64,
    ) {
        let cdf = EmpiricalCdf::from_samples(xs);
        let x = cdf.quantile(q).unwrap();
        // F(quantile(q)) >= q (within one sample step).
        let step = 1.0 / cdf.len() as f64;
        prop_assert!(cdf.eval(x) >= q - step - 1e-9);
    }
}
