//! Regression pin for the N1 migration (ISSUE 5): every comparator
//! that moved from `partial_cmp(..).expect(..)` to `f64::total_cmp`
//! must order finite inputs identically to the old code, and must no
//! longer panic on NaN.
//!
//! On finite, non-zero-signed inputs the two comparators agree exactly;
//! the only divergences `total_cmp` introduces are the ones we want:
//! a deterministic `-0.0 < 0.0` and NaN sorted to the ends instead of
//! a panic.

use gsf_stats::cdf::EmpiricalCdf;
use proptest::prelude::*;

proptest! {
    /// The headline guarantee: for finite inputs, sorting by
    /// `total_cmp` is bitwise the same permutation the old
    /// `partial_cmp().expect()` comparator produced.
    #[test]
    fn total_cmp_sort_matches_partial_cmp_on_finite(
        xs in prop::collection::vec(-1e12..1e12f64, 0..300),
    ) {
        let mut new = xs.clone();
        new.sort_by(f64::total_cmp);
        let mut old = xs;
        old.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let same_bits =
            new.iter().zip(&old).all(|(a, b)| a.to_bits() == b.to_bits());
        prop_assert!(same_bits, "orderings diverged: {new:?} vs {old:?}");
    }

    /// Descending comparators (search ranking, attribution tables)
    /// agree the same way.
    #[test]
    fn descending_total_cmp_matches(
        xs in prop::collection::vec(-1e9..1e9f64, 0..200),
    ) {
        let mut new = xs.clone();
        new.sort_by(|a, b| b.total_cmp(a));
        let mut old = xs;
        old.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let same_bits =
            new.iter().zip(&old).all(|(a, b)| a.to_bits() == b.to_bits());
        prop_assert!(same_bits);
    }

    /// `min_by`/`max_by` call sites (cleanest-hour argmin) pick the
    /// same element.
    #[test]
    fn min_max_by_total_cmp_match(
        xs in prop::collection::vec(-1e9..1e9f64, 1..100),
    ) {
        let min_new = xs.iter().copied().min_by(|a, b| a.total_cmp(b));
        let min_old =
            xs.iter().copied().min_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(min_new.map(f64::to_bits), min_old.map(f64::to_bits));
        let max_new = xs.iter().copied().max_by(|a, b| a.total_cmp(b));
        let max_old =
            xs.iter().copied().max_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(max_new.map(f64::to_bits), max_old.map(f64::to_bits));
    }
}

/// The other half of the migration's point: NaN input no longer panics
/// the sorts (the old comparator aborted the whole evaluation).
#[test]
fn nan_input_no_longer_panics() {
    let mut xs = [3.0, f64::NAN, 1.0, 2.0, f64::NAN];
    xs.sort_by(f64::total_cmp);
    // total_cmp sorts (positive) NaN above every finite value.
    assert_eq!(xs[0], 1.0);
    assert_eq!(xs[1], 2.0);
    assert_eq!(xs[2], 3.0);
    assert!(xs[3].is_nan() && xs[4].is_nan());
    // The CDF constructor keeps dropping non-finite samples before the
    // sort, so quantiles stay NaN-free end to end.
    let cdf = EmpiricalCdf::from_samples(vec![1.0, f64::NAN, 2.0]);
    assert_eq!(cdf.len(), 2);
}
