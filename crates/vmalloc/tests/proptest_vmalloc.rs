//! Property tests for the allocation simulator.

use gsf_vmalloc::{
    AllocationSim, ClusterConfig, PlacementPolicy, PlacementRequest, ServerShape, ServerState,
};
use gsf_workloads::{ServerGeneration, Trace, VmEvent, VmEventKind, VmSpec};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_trace(n_vms: usize, seed: u64, full_node_pct: f64) -> Trace {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut vms = Vec::new();
    let mut events = Vec::new();
    for id in 0..n_vms as u64 {
        let full_node = rng.gen_bool(full_node_pct);
        let cores =
            if full_node { 80 } else { *[1u32, 2, 4, 8, 16].get(rng.gen_range(0..5)).unwrap() };
        let mem = if full_node { 768.0 } else { f64::from(cores) * rng.gen_range(2.0..10.0) };
        vms.push(VmSpec {
            id,
            cores,
            mem_gb: mem,
            app_index: rng.gen_range(0..20),
            generation: ServerGeneration::Gen3,
            full_node,
            max_mem_util: rng.gen_range(0.1..1.0),
            avg_cpu_util: rng.gen_range(0.05..0.6),
        });
        let t = rng.gen_range(0.0..1000.0);
        events.push(VmEvent { time_s: t, kind: VmEventKind::Arrival, vm_id: id });
        events.push(VmEvent {
            time_s: t + rng.gen_range(1.0..1000.0),
            kind: VmEventKind::Departure,
            vm_id: id,
        });
    }
    Trace::new(2100.0, vms, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn policies_agree_on_conservation(
        n_vms in 1usize..80,
        baseline in 1u32..8,
        green in 0u32..4,
        seed in 0u64..500,
    ) {
        let trace = random_trace(n_vms, seed, 0.02);
        for policy in
            [PlacementPolicy::BestFit, PlacementPolicy::FirstFit, PlacementPolicy::WorstFit]
        {
            let transform = |vm: &VmSpec| {
                if vm.full_node {
                    PlacementRequest::baseline_only(vm)
                } else {
                    PlacementRequest::prefer_green(vm, 1.25)
                }
            };
            let out = AllocationSim::new(ClusterConfig::mixed(baseline, green), policy)
                .replay(&trace, &transform);
            prop_assert_eq!(
                out.placed_baseline + out.placed_green + out.rejected,
                n_vms,
                "policy {}", policy
            );
            if green == 0 {
                prop_assert_eq!(out.placed_green, 0);
            }
        }
    }

    #[test]
    fn bigger_clusters_never_reject_more(
        n_vms in 1usize..60,
        baseline in 1u32..6,
        seed in 0u64..300,
    ) {
        let trace = random_trace(n_vms, seed, 0.0);
        let reject = |n: u32| {
            AllocationSim::new(ClusterConfig::baseline_only(n), PlacementPolicy::BestFit)
                .replay(&trace, &|vm: &VmSpec| PlacementRequest::baseline_only(vm))
                .rejected
        };
        prop_assert!(reject(baseline + 2) <= reject(baseline));
    }

    #[test]
    fn densities_always_fractions(
        n_vms in 1usize..60,
        seed in 0u64..300,
    ) {
        let trace = random_trace(n_vms, seed, 0.05);
        let out = AllocationSim::new(ClusterConfig::mixed(4, 2), PlacementPolicy::BestFit)
            .replay(&trace, &|vm: &VmSpec| {
                if vm.full_node {
                    PlacementRequest::baseline_only(vm)
                } else {
                    PlacementRequest::prefer_green(vm, 1.0)
                }
            });
        for pool in [&out.metrics.baseline, &out.metrics.green] {
            for v in [
                pool.mean_core_density(),
                pool.mean_mem_density(),
                pool.mean_max_mem_util(),
            ] {
                prop_assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn chosen_server_always_fits(
        loads in prop::collection::vec(0u32..16, 1..12),
        cores in 1u32..16,
        mem in 1.0..128.0f64,
    ) {
        use gsf_vmalloc::server::PlacedVm;
        use gsf_vmalloc::VmArena;
        let mut arena = VmArena::new();
        let servers: Vec<ServerState> = loads
            .iter()
            .map(|&used| {
                let mut s = ServerState::new(ServerShape { cores: 16, mem_gb: 128.0 });
                if used > 0 {
                    s.place(
                        &mut arena,
                        999,
                        PlacedVm {
                            cores: used,
                            mem_gb: f64::from(used) * 8.0,
                            max_mem_util: 0.5,
                        },
                    );
                }
                s
            })
            .collect();
        for policy in
            [PlacementPolicy::BestFit, PlacementPolicy::FirstFit, PlacementPolicy::WorstFit]
        {
            if let Some(i) = policy.choose_linear(&servers, cores, mem) {
                prop_assert!(servers[i].fits(cores, mem), "{} chose a non-fitting server", policy);
            } else {
                // None means genuinely nothing fits.
                prop_assert!(servers.iter().all(|s| !s.fits(cores, mem)), "{}", policy);
            }
        }
    }

    #[test]
    fn scaled_requests_preserve_mem_core_ratio(
        cores in 1u32..32,
        mem_per_core in 1.0..16.0f64,
        factor in 1.0..1.51f64,
    ) {
        let vm = VmSpec {
            id: 0,
            cores,
            mem_gb: f64::from(cores) * mem_per_core,
            app_index: 0,
            generation: ServerGeneration::Gen3,
            full_node: false,
            max_mem_util: 0.5,
            avg_cpu_util: 0.2,
        };
        let req = PlacementRequest::prefer_green(&vm, factor);
        prop_assert!(req.green_cores >= vm.cores);
        let ratio_before = vm.mem_gb / f64::from(vm.cores);
        let ratio_after = req.green_mem_gb / f64::from(req.green_cores);
        prop_assert!((ratio_before - ratio_after).abs() < 1e-9);
    }
}
