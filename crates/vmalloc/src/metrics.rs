//! Packing metrics: the quantities behind Figs. 9 and 10.
//!
//! Packing density is the ratio of allocated to allocatable resources on
//! **non-empty** servers (the paper's definition, following Protean).
//! Memory-utilization snapshots aggregate the maximum memory hosted VMs
//! will touch per server, the statistic Fig. 10 plots per cluster.

use crate::arena::VmArena;
use crate::server::ServerState;
use gsf_stats::summary::Summary;
use serde::{Deserialize, Serialize};

/// Accumulated metrics for one server pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PoolMetrics {
    core_density: Summary,
    mem_density: Summary,
    max_mem_util: Summary,
}

impl PoolMetrics {
    /// Records one snapshot of a pool; `arena` resolves the servers'
    /// occupancy slots.
    fn record(&mut self, servers: &[ServerState], arena: &VmArena) {
        for s in servers {
            if s.is_empty() {
                continue;
            }
            self.core_density.push(s.core_density());
            self.mem_density.push(s.mem_density());
            self.max_mem_util.push(s.max_touched_mem_fraction(arena));
        }
    }

    /// Mean core packing density across snapshots and non-empty servers.
    pub fn mean_core_density(&self) -> f64 {
        self.core_density.mean()
    }

    /// Mean memory packing density.
    pub fn mean_mem_density(&self) -> f64 {
        self.mem_density.mean()
    }

    /// Mean per-server maximum touched-memory fraction (Fig. 10).
    pub fn mean_max_mem_util(&self) -> f64 {
        self.max_mem_util.mean()
    }

    /// Number of (snapshot × non-empty server) samples.
    pub fn samples(&self) -> usize {
        self.core_density.count()
    }

    /// Merges another pool's summaries (the sharded replay's
    /// fixed-order reduction; see [`crate::shard`]).
    pub(crate) fn merge(&mut self, other: &PoolMetrics) {
        self.core_density.merge(&other.core_density);
        self.mem_density.merge(&other.mem_density);
        self.max_mem_util.merge(&other.max_mem_util);
    }
}

/// Metrics for both pools of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PackingMetrics {
    /// Baseline-pool metrics.
    pub baseline: PoolMetrics,
    /// GreenSKU-pool metrics.
    pub green: PoolMetrics,
    snapshots: usize,
}

impl PackingMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one snapshot of both pools; `arena` resolves the
    /// servers' occupancy slots.
    pub fn snapshot(&mut self, baseline: &[ServerState], green: &[ServerState], arena: &VmArena) {
        self.baseline.record(baseline, arena);
        self.green.record(green, arena);
        self.snapshots += 1;
    }

    /// Number of snapshots taken.
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }

    /// Merges another cluster's metrics; shard snapshots are summed,
    /// so a K-shard replay reports K× the per-shard snapshot count.
    pub(crate) fn merge(&mut self, other: &PackingMetrics) {
        self.baseline.merge(&other.baseline);
        self.green.merge(&other.green);
        self.snapshots += other.snapshots;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cluster::ServerShape;
    use crate::server::PlacedVm;

    fn loaded_server(arena: &mut VmArena, id: u64, cores: u32) -> ServerState {
        let mut s = ServerState::new(ServerShape { cores: 80, mem_gb: 768.0 });
        if cores > 0 {
            s.place(
                arena,
                id,
                PlacedVm { cores, mem_gb: f64::from(cores) * 9.6, max_mem_util: 0.5 },
            );
        }
        s
    }

    #[test]
    fn empty_servers_excluded_from_density() {
        let mut arena = VmArena::new();
        let mut m = PackingMetrics::new();
        m.snapshot(
            &[loaded_server(&mut arena, 1, 40), loaded_server(&mut arena, 2, 0)],
            &[],
            &arena,
        );
        // Only the loaded server counts: density 0.5.
        assert_eq!(m.baseline.samples(), 1);
        assert!((m.baseline.mean_core_density() - 0.5).abs() < 1e-12);
        assert!((m.baseline.mean_mem_density() - 0.5).abs() < 1e-12);
        assert!((m.baseline.mean_max_mem_util() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn snapshots_accumulate() {
        let mut arena = VmArena::new();
        let mut m = PackingMetrics::new();
        m.snapshot(
            &[loaded_server(&mut arena, 1, 20)],
            &[loaded_server(&mut arena, 2, 40)],
            &arena,
        );
        m.snapshot(
            &[loaded_server(&mut arena, 3, 60)],
            &[loaded_server(&mut arena, 4, 40)],
            &arena,
        );
        assert_eq!(m.snapshots(), 2);
        assert_eq!(m.baseline.samples(), 2);
        assert!((m.baseline.mean_core_density() - 0.5).abs() < 1e-12);
        assert_eq!(m.green.samples(), 2);
    }

    #[test]
    fn all_empty_pool_has_no_samples() {
        let mut arena = VmArena::new();
        let mut m = PackingMetrics::new();
        m.snapshot(&[loaded_server(&mut arena, 1, 0)], &[], &arena);
        assert_eq!(m.baseline.samples(), 0);
        assert_eq!(m.baseline.mean_core_density(), 0.0);
    }
}
