//! Global slot arena for placed VMs.
//!
//! The replay hot loop used to keep each server's VMs in a
//! `BTreeMap<u64, PlacedVm>` — a node allocation on every placement and
//! pointer-chasing on every reduction. [`VmArena`] replaces that with
//! one struct-of-arrays allocation shared by the whole cluster: four
//! parallel columns (`ids`, `cores`, `mem_gb`, `max_mem_util`) indexed
//! by a dense `u32` slot, plus a LIFO free list so slots are recycled
//! as VMs depart. Each [`crate::ServerState`] then holds only a sorted
//! occupancy list of slot numbers.
//!
//! # Slot lifecycle
//!
//! Slots are **simulator-owned residencies**, not trace identities: a
//! slot is allocated when a VM lands on a server and released when it
//! leaves (departure, displacement, eviction). The same VM occupies a
//! fresh slot after an evacuation re-placement. This deliberately does
//! *not* reuse the dense slots a [`crate::PreparedTrace`] assigns —
//! a simulator can replay a second trace without [`VmArena::reset`]
//! (leaving stale residents from the first), and binding arena slots
//! to the new trace's numbering would corrupt those residents.
//!
//! # Determinism
//!
//! Occupancy lists are sorted by **VM id** (not slot number), so every
//! float reduction over a server's VMs visits them in exactly the
//! ascending-id order the `BTreeMap` iteration used to produce — the
//! bit-identity contract the equivalence suites pin. Slot numbers
//! themselves are an internal detail: they depend on free-list history
//! and never feed a float or an output.

use crate::server::PlacedVm;

/// Struct-of-arrays storage for every VM currently placed anywhere in
/// one simulator's cluster. See the module docs for the slot lifecycle
/// and determinism contract.
#[derive(Debug, Clone, Default)]
pub struct VmArena {
    ids: Vec<u64>,
    cores: Vec<u32>,
    mem_gb: Vec<f64>,
    max_mem_util: Vec<f64>,
    /// Released slots, recycled LIFO so hot slots stay cache-warm.
    free: Vec<u32>,
    live: usize,
}

impl VmArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently live (allocated, unreleased) slots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever grown (live + free). Capacity diagnostic only.
    pub fn capacity(&self) -> usize {
        self.ids.len()
    }

    /// Allocates a slot for `vm` under `id`, recycling a released slot
    /// when one exists and growing the columns otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed `u32::MAX` slots.
    pub fn alloc(&mut self, id: u64, vm: PlacedVm) -> u32 {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.ids[i] = id;
            self.cores[i] = vm.cores;
            self.mem_gb[i] = vm.mem_gb;
            self.max_mem_util[i] = vm.max_mem_util;
            return slot;
        }
        let slot = u32::try_from(self.ids.len()).expect("VM arena exceeded u32 slots");
        self.ids.push(id);
        self.cores.push(vm.cores);
        self.mem_gb.push(vm.mem_gb);
        self.max_mem_util.push(vm.max_mem_util);
        slot
    }

    /// Releases a slot back to the free list. The slot's columns keep
    /// their stale values until the slot is recycled; reading a
    /// released slot is a logic error the occupancy lists make
    /// unreachable.
    pub fn release(&mut self, slot: u32) {
        debug_assert!((slot as usize) < self.ids.len(), "release of an ungrown slot");
        self.live -= 1;
        self.free.push(slot);
    }

    /// The VM id stored in `slot`.
    #[inline]
    pub fn id(&self, slot: u32) -> u64 {
        self.ids[slot as usize]
    }

    /// Cores allocated to the VM in `slot`.
    #[inline]
    pub fn cores(&self, slot: u32) -> u32 {
        self.cores[slot as usize]
    }

    /// Memory allocated to the VM in `slot`, GB.
    #[inline]
    pub fn mem_gb(&self, slot: u32) -> f64 {
        self.mem_gb[slot as usize]
    }

    /// Maximum fraction of its memory the VM in `slot` will touch.
    #[inline]
    pub fn max_mem_util(&self, slot: u32) -> f64 {
        self.max_mem_util[slot as usize]
    }

    /// The full placement record in `slot`.
    #[inline]
    pub fn placed(&self, slot: u32) -> PlacedVm {
        let i = slot as usize;
        PlacedVm {
            cores: self.cores[i],
            mem_gb: self.mem_gb[i],
            max_mem_util: self.max_mem_util[i],
        }
    }

    /// Empties the arena, keeping every column's capacity so the next
    /// replay allocates nothing until it outgrows the last one.
    pub fn reset(&mut self) {
        self.ids.clear();
        self.cores.clear();
        self.mem_gb.clear();
        self.max_mem_util.clear();
        self.free.clear();
        self.live = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn vm(cores: u32) -> PlacedVm {
        PlacedVm { cores, mem_gb: f64::from(cores) * 4.0, max_mem_util: 0.5 }
    }

    #[test]
    fn alloc_release_recycles_lifo() {
        let mut a = VmArena::new();
        let s0 = a.alloc(10, vm(2));
        let s1 = a.alloc(11, vm(4));
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(a.live(), 2);
        a.release(s0);
        assert_eq!(a.live(), 1);
        // LIFO: the freshly released slot is handed out next.
        let s2 = a.alloc(12, vm(8));
        assert_eq!(s2, s0);
        assert_eq!(a.id(s2), 12);
        assert_eq!(a.cores(s2), 8);
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    fn placed_roundtrips_columns() {
        let mut a = VmArena::new();
        let p = PlacedVm { cores: 6, mem_gb: 23.5, max_mem_util: 0.75 };
        let s = a.alloc(42, p);
        assert_eq!(a.placed(s), p);
        assert_eq!(a.id(s), 42);
        assert_eq!(a.mem_gb(s).to_bits(), 23.5f64.to_bits());
        assert_eq!(a.max_mem_util(s).to_bits(), 0.75f64.to_bits());
    }

    #[test]
    fn reset_keeps_nothing_live_but_reuses_storage() {
        let mut a = VmArena::new();
        for i in 0..100 {
            a.alloc(i, vm(1));
        }
        a.reset();
        assert_eq!(a.live(), 0);
        assert_eq!(a.capacity(), 0);
        let s = a.alloc(7, vm(3));
        assert_eq!(s, 0, "columns restart dense after reset");
        assert_eq!(a.id(s), 7);
    }
}
