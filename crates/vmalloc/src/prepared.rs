//! Prepared-trace replay: per-(trace, routing decision) precomputation.
//!
//! Every sizing feasibility probe replays the same trace with the same
//! placement transform — only the candidate cluster changes. The
//! unprepared path re-resolves each event's VM (a by-id lookup) and
//! recomputes its [`PlacementRequest`] on every probe even though
//! neither depends on the cluster. A [`PreparedTrace`] does that work
//! once: every event carries its VM's dense slot, every VM carries its
//! precomputed request, arrivals are paired with departures (via
//! [`gsf_workloads::Trace::index`]) so dwell times are known up front,
//! and the peak concurrent demand that seeds the sizing bounds is
//! precomputed.
//!
//! The prepared engine ([`crate::AllocationSim::replay_prepared`] /
//! [`crate::AllocationSim::replay_prepared_faulted`]) is pinned
//! bit-identical to the unprepared reference path by the
//! `prepared_equivalence` suite in `gsf-cluster` (a `ci.sh` gate):
//! same `SimOutcome`, same `FaultSummary`, faulted and fault-free.

use crate::simulator::{PlacementRequest, VmTransform};
use gsf_workloads::{Trace, TraceChunkReader, TraceStreamError, VmEventKind, VmSpec};
use std::collections::{BTreeMap, VecDeque};
use std::io::BufRead;

/// One trace event with its VM resolved to a dense slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PreparedEvent {
    /// Event time, seconds.
    pub time_s: f64,
    /// Arrival or departure.
    pub kind: VmEventKind,
    /// Index into [`PreparedTrace::vms`].
    pub slot: u32,
    /// End of the residency this event opens (arrivals: the paired
    /// departure time, or the horizon; departures: their own time).
    pub end_time_s: f64,
}

/// One VM with its placement request resolved once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PreparedVm {
    /// The VM's trace id (servers and fault evacuation address VMs by
    /// id).
    pub id: u64,
    /// Index into the application catalog, for usage attribution.
    pub app_index: u16,
    /// Maximum fraction of allocated memory the VM touches.
    pub max_mem_util: f64,
    /// The transform's placement request for this VM.
    pub request: PlacementRequest,
}

/// A trace resolved against one routing decision: every event indexed,
/// every request precomputed, shared across `reset()` cycles and
/// sizing probes.
///
/// Bit-exactness contract: replaying a `PreparedTrace` built from
/// `(trace, transform)` is bitwise identical to replaying
/// `(trace, transform)` through the unprepared reference path, provided
/// `transform` is a pure function of the `VmSpec` (every transform in
/// this workspace is).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedTrace {
    duration_s: f64,
    events: Vec<PreparedEvent>,
    vms: Vec<PreparedVm>,
    /// VM slots in ascending-id order: the horizon settlement order,
    /// and the index the by-id lookup binary-searches.
    slots_by_id: Vec<u32>,
    peak_demand: (u64, f64),
}

impl PreparedTrace {
    /// Resolves `trace` against `transform` once.
    pub fn new(trace: &Trace, transform: &VmTransform<'_>) -> Self {
        let index = trace.index();
        let vms: Vec<PreparedVm> = trace
            .vms()
            .iter()
            .map(|vm| PreparedVm {
                id: vm.id,
                app_index: vm.app_index,
                max_mem_util: vm.max_mem_util,
                request: transform(vm),
            })
            .collect();
        let events: Vec<PreparedEvent> = trace
            .events()
            .iter()
            .enumerate()
            .map(|(i, e)| PreparedEvent {
                time_s: e.time_s,
                kind: e.kind,
                slot: index.vm_slot(i),
                end_time_s: index.end_time_s(i),
            })
            .collect();
        let mut slots_by_id: Vec<u32> = (0..vms.len() as u32).collect();
        slots_by_id.sort_unstable_by_key(|&s| vms[s as usize].id);
        Self {
            duration_s: trace.duration_s(),
            events,
            vms,
            slots_by_id,
            peak_demand: trace.peak_demand(),
        }
    }

    /// Builds a prepared trace by draining a chunked stream, without
    /// ever materializing a [`Trace`]. Bit-identical to
    /// `PreparedTrace::new(&decode_chunks(stream)?, transform)` — the
    /// stream's replay-order contract makes the in-memory path's
    /// re-sort a no-op, and the builder replicates its pairing and
    /// peak-demand arithmetic event-for-event.
    ///
    /// The reader is left positioned after the footer, so the caller
    /// can take the verified
    /// [`content_hash`](TraceChunkReader::content_hash) for cache
    /// keying.
    ///
    /// # Errors
    ///
    /// Propagates stream I/O and codec errors.
    pub fn from_chunk_stream<R: BufRead>(
        reader: &mut TraceChunkReader<R>,
        transform: &VmTransform<'_>,
    ) -> Result<Self, TraceStreamError> {
        let mut builder = PreparedTraceBuilder::new(reader.duration_s(), transform);
        while let Some(chunk) = reader.next_chunk()? {
            for vm in &chunk.vms {
                builder.push_vm(vm);
            }
            for e in &chunk.events {
                builder.push_event(e.time_s, e.kind, e.slot);
            }
        }
        Ok(builder.finish())
    }

    /// Trace horizon in seconds.
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Peak concurrent demand in (cores, memory GB) at original VM
    /// sizes — the same lower bound [`Trace::peak_demand`] computes,
    /// cached here so sizing searches stop re-walking the event list.
    pub fn peak_demand(&self) -> (u64, f64) {
        self.peak_demand
    }

    /// End of the residency event `event_idx` belongs to: for an
    /// arrival, the paired departure time (or the horizon if the VM
    /// never departs); for a departure, its own time.
    pub fn event_end_time_s(&self, event_idx: usize) -> f64 {
        self.events[event_idx].end_time_s
    }

    pub(crate) fn events(&self) -> &[PreparedEvent] {
        &self.events
    }

    pub(crate) fn vm(&self, slot: u32) -> &PreparedVm {
        &self.vms[slot as usize]
    }

    /// VM slots in ascending-id order (the settlement order).
    pub(crate) fn slots_by_id(&self) -> &[u32] {
        &self.slots_by_id
    }

    /// Resolves a VM id (as servers report them) back to its slot.
    pub(crate) fn slot_of_id(&self, id: u64) -> Option<u32> {
        self.slots_by_id
            .binary_search_by_key(&id, |&s| self.vms[s as usize].id)
            .ok()
            .map(|i| self.slots_by_id[i])
    }
}

/// Incremental [`PreparedTrace`] construction for chunked streams.
///
/// Push VMs (in slot order) and events (in replay order) as they
/// arrive; the builder applies the transform, pairs arrivals with
/// departures, and accumulates peak demand on the fly. Auxiliary state
/// beyond the prepared columns themselves is O(peak concurrent VMs)
/// (the open-residency map) plus 12 bytes per VM (the shape table the
/// peak-demand walk reads) — no intermediate [`Trace`], id map, or
/// sort buffer is ever materialized.
///
/// The arithmetic is ordered exactly as [`Trace::peak_demand`] and
/// [`Trace::index`] order it, so the result is bit-identical to
/// [`PreparedTrace::new`] on the materialized equivalent (pinned by
/// this module's tests and the `prepared_equivalence` suite).
pub struct PreparedTraceBuilder<'t> {
    duration_s: f64,
    transform: &'t VmTransform<'t>,
    events: Vec<PreparedEvent>,
    vms: Vec<PreparedVm>,
    /// Per-slot (cores, mem_gb): the only VmSpec fields the
    /// peak-demand walk needs after the request is resolved.
    shapes: Vec<(u32, f64)>,
    /// Slot → indices of its open (unpaired) arrival events. Entries
    /// are removed as soon as they empty, keeping the map at the
    /// trace's concurrency, not its VM count.
    open: BTreeMap<u32, VecDeque<usize>>,
    cores: i64,
    mem: f64,
    peak_cores: i64,
    peak_mem: f64,
}

impl<'t> PreparedTraceBuilder<'t> {
    /// Starts a builder for a trace with horizon `duration_s`.
    pub fn new(duration_s: f64, transform: &'t VmTransform<'t>) -> Self {
        Self {
            duration_s,
            transform,
            events: Vec::new(),
            vms: Vec::new(),
            shapes: Vec::new(),
            open: BTreeMap::new(),
            cores: 0,
            mem: 0.0,
            peak_cores: 0,
            peak_mem: 0.0,
        }
    }

    /// Appends the next VM (slot = push order) and resolves its
    /// placement request through the transform.
    pub fn push_vm(&mut self, vm: &VmSpec) {
        self.vms.push(PreparedVm {
            id: vm.id,
            app_index: vm.app_index,
            max_mem_util: vm.max_mem_util,
            request: (self.transform)(vm),
        });
        self.shapes.push((vm.cores, vm.mem_gb));
    }

    /// Appends the next event (in replay order). The referenced slot
    /// must already be pushed.
    ///
    /// # Panics
    ///
    /// Panics if `slot` has not been pushed (the same contract as
    /// [`PreparedTrace::new`], whose index resolution expects known
    /// VMs; the chunked decoder validates slots before they get here).
    pub fn push_event(&mut self, time_s: f64, kind: VmEventKind, slot: u32) {
        let (vm_cores, vm_mem) = self.shapes[slot as usize];
        let end_time_s = match kind {
            VmEventKind::Arrival => {
                self.open.entry(slot).or_default().push_back(self.events.len());
                self.duration_s
            }
            VmEventKind::Departure => {
                // FIFO pairing, exactly as `Trace::index`: the earliest
                // open arrival of this VM ends now; a departure with no
                // open arrival pairs with nothing.
                if let Some(queue) = self.open.get_mut(&slot) {
                    if let Some(arrival_idx) = queue.pop_front() {
                        self.events[arrival_idx].end_time_s = time_s;
                    }
                    if queue.is_empty() {
                        self.open.remove(&slot);
                    }
                }
                time_s
            }
        };
        self.events.push(PreparedEvent { time_s, kind, slot, end_time_s });
        // Peak-demand walk in the same operation order as
        // `Trace::peak_demand`, for a bit-equal (f64) result.
        match kind {
            VmEventKind::Arrival => {
                self.cores += i64::from(vm_cores);
                self.mem += vm_mem;
            }
            VmEventKind::Departure => {
                self.cores -= i64::from(vm_cores);
                self.mem -= vm_mem;
            }
        }
        self.peak_cores = self.peak_cores.max(self.cores);
        self.peak_mem = self.peak_mem.max(self.mem);
    }

    /// Finalizes into a [`PreparedTrace`] (sorts the settlement order,
    /// drops the auxiliary state).
    pub fn finish(self) -> PreparedTrace {
        let mut slots_by_id: Vec<u32> = (0..self.vms.len() as u32).collect();
        slots_by_id.sort_unstable_by_key(|&s| self.vms[s as usize].id);
        PreparedTrace {
            duration_s: self.duration_s,
            events: self.events,
            vms: self.vms,
            slots_by_id,
            peak_demand: (self.peak_cores.max(0) as u64, self.peak_mem.max(0.0)),
        }
    }
}

impl std::fmt::Debug for PreparedTraceBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedTraceBuilder")
            .field("duration_s", &self.duration_s)
            .field("vms", &self.vms.len())
            .field("events", &self.events.len())
            .field("open_residencies", &self.open.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_workloads::{ServerGeneration, VmEvent, VmSpec};

    fn vm(id: u64, cores: u32) -> VmSpec {
        VmSpec {
            id,
            cores,
            mem_gb: f64::from(cores) * 4.0,
            app_index: (id % 5) as u16,
            generation: ServerGeneration::Gen3,
            full_node: false,
            max_mem_util: 0.5,
            avg_cpu_util: 0.2,
        }
    }

    fn sample() -> Trace {
        Trace::new(
            1000.0,
            vec![vm(5, 4), vm(2, 8), vm(9, 2)],
            vec![
                VmEvent { time_s: 10.0, kind: VmEventKind::Arrival, vm_id: 5 },
                VmEvent { time_s: 20.0, kind: VmEventKind::Arrival, vm_id: 2 },
                VmEvent { time_s: 30.0, kind: VmEventKind::Departure, vm_id: 5 },
                VmEvent { time_s: 40.0, kind: VmEventKind::Arrival, vm_id: 9 },
            ],
        )
    }

    #[test]
    fn prepares_slots_requests_and_pairing() {
        let t = sample();
        let p = PreparedTrace::new(&t, &|v: &VmSpec| PlacementRequest::prefer_green(v, 1.25));
        assert_eq!(p.event_count(), 4);
        assert_eq!(p.vm_count(), 3);
        assert_eq!(p.duration_s(), 1000.0);
        // Event 0 refers to VM id 5, stored at slot 0.
        assert_eq!(p.events()[0].slot, 0);
        assert_eq!(p.vm(p.events()[0].slot).id, 5);
        // Requests precomputed through the transform.
        assert_eq!(p.vm(0).request, PlacementRequest::prefer_green(&vm(5, 4), 1.25));
        // Pairing: VM 5 arrives at 10, departs at 30; VM 2 runs to the
        // horizon.
        assert_eq!(p.events()[0].end_time_s, 30.0);
        assert_eq!(p.events()[1].end_time_s, 1000.0);
        // Peak demand matches the trace's own computation bit-for-bit.
        assert_eq!(p.peak_demand(), t.peak_demand());
    }

    /// Feeds a materialized trace through the builder the way a chunk
    /// stream would (VMs in slot order interleaved before first use,
    /// events in replay order).
    fn build_incrementally(t: &Trace, transform: &VmTransform<'_>) -> PreparedTrace {
        let index = t.index();
        let mut b = PreparedTraceBuilder::new(t.duration_s(), transform);
        let mut next_vm = 0usize;
        for (i, e) in t.events().iter().enumerate() {
            let slot = index.vm_slot(i);
            while next_vm <= slot as usize {
                b.push_vm(&t.vms()[next_vm]);
                next_vm += 1;
            }
            b.push_event(e.time_s, e.kind, slot);
        }
        for vm in &t.vms()[next_vm..] {
            b.push_vm(vm);
        }
        b.finish()
    }

    #[test]
    fn builder_is_bit_identical_to_batch_preparation() {
        let transform: &VmTransform<'_> = &|v: &VmSpec| PlacementRequest::prefer_green(v, 1.25);
        // Sparse permuted ids, a VM running to the horizon, FIFO
        // re-arrival pairing, equal-time departure-then-arrival, and a
        // zero-lifetime residency.
        let tricky = Trace::new(
            500.0,
            vec![vm(5, 4), vm(2, 8), vm(9, 2)],
            vec![
                VmEvent { time_s: 10.0, kind: VmEventKind::Arrival, vm_id: 5 },
                VmEvent { time_s: 20.0, kind: VmEventKind::Arrival, vm_id: 2 },
                VmEvent { time_s: 20.0, kind: VmEventKind::Departure, vm_id: 5 },
                VmEvent { time_s: 20.0, kind: VmEventKind::Arrival, vm_id: 5 },
                VmEvent { time_s: 40.0, kind: VmEventKind::Arrival, vm_id: 9 },
                VmEvent { time_s: 40.0, kind: VmEventKind::Departure, vm_id: 9 },
                VmEvent { time_s: 60.0, kind: VmEventKind::Departure, vm_id: 5 },
            ],
        );
        for t in [sample(), tricky] {
            let batch = PreparedTrace::new(&t, transform);
            let streamed = build_incrementally(&t, transform);
            assert_eq!(batch, streamed);
        }
    }

    #[test]
    fn from_chunk_stream_matches_batch_preparation() {
        let t = sample();
        let transform: &VmTransform<'_> = &|v: &VmSpec| PlacementRequest::prefer_green(v, 1.25);
        for chunk_events in [1usize, 3, 1024] {
            let mut buf = Vec::new();
            gsf_workloads::write_chunks(&t, &mut buf, chunk_events).unwrap();
            let mut reader = gsf_workloads::TraceChunkReader::new(&buf[..]).unwrap();
            let streamed = PreparedTrace::from_chunk_stream(&mut reader, transform).unwrap();
            assert_eq!(streamed, PreparedTrace::new(&t, transform));
            // The reader has consumed the footer: hash available and
            // equal to the in-memory key.
            assert_eq!(reader.content_hash(), Some(t.content_hash()));
        }
    }

    #[test]
    fn id_lookup_round_trips_sparse_ids() {
        let t = sample();
        let p = PreparedTrace::new(&t, &|v: &VmSpec| PlacementRequest::baseline_only(v));
        assert_eq!(p.slots_by_id().iter().map(|&s| p.vm(s).id).collect::<Vec<_>>(), vec![2, 5, 9]);
        for id in [2u64, 5, 9] {
            assert_eq!(p.vm(p.slot_of_id(id).unwrap()).id, id);
        }
        assert_eq!(p.slot_of_id(7), None);
    }
}
