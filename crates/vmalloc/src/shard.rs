//! Sharded fleet replay: deterministic pool partitioning for
//! parallel-within-one-simulation replay.
//!
//! The baseline and green pools are split into `K` contiguous shards;
//! every shard is a full [`AllocationSim`] over its slice of the
//! cluster (own servers, own [`crate::PlacementIndex`]es). Each VM is
//! routed to exactly one *home shard* by a stable hash of its id over
//! the shards that could ever host its request, so the per-shard event
//! streams — and therefore the per-shard replays — are independent of
//! each other and of whatever order shards execute in.
//!
//! # Exact determinism
//!
//! Sharded replay is **its own semantics**: a VM whose home shard is
//! full is rejected even if another shard had room (there is no
//! cross-shard retry — that would couple shards and serialize them).
//! What is pinned bit-identical is *parallel vs serial execution of the
//! same sharded semantics*: every shard's replay touches only its own
//! `AllocationSim` and its own event/fault slice, and the per-shard
//! `(SimOutcome, FaultSummary)` results are merged in ascending shard
//! order by [`merge_outcomes`] — so a run on `N` workers is bitwise
//! equal to the serial reference
//! ([`ShardedSim::replay_prepared_faulted`]), which the
//! `shard_equivalence` suite in `gsf-cluster` gates in CI. At `K = 1`
//! every VM routes to shard 0 and the merge is the identity, so the
//! sharded engine degenerates to the unsharded one bit-for-bit.
//!
//! # Fault ownership
//!
//! A fault addresses `(pool, global server index)`; the shard plan maps
//! it to the shard owning that server and rewrites the index to be
//! shard-local, so faults strike and evacuate entirely within one
//! shard (evacuation targets are the home shard's surviving servers,
//! consistent with the no-cross-shard-placement rule). Faults
//! addressing servers beyond the pool are dropped, exactly as the
//! unsharded engine ignores them.

use crate::cluster::{ClusterConfig, ServerShape};
use crate::faults::{FaultPlan, FaultPool, FaultSummary};
use crate::policy::PlacementPolicy;
use crate::prepared::{PreparedEvent, PreparedTrace};
use crate::server::mem_fits;
use crate::simulator::{AllocationSim, PlacementRequest, SimOutcome, TargetPool};

/// Version tag of the routing policy below; cache keys over sharded
/// evaluations include it so a future routing change invalidates them.
pub const SHARD_ROUTING_VERSION: u64 = 1;

/// SplitMix64 finalizer: the stable id → shard hash. Fixed constants,
/// no per-run state — the same VM id routes identically in every
/// process, which is what makes sharded results reproducible.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether a server of `shape` could host `(cores, mem_gb)` when
/// empty — the static half of [`crate::ServerState::fits`], sharing its
/// memory-epsilon predicate.
fn shape_admits(shape: ServerShape, cores: u32, mem_gb: f64) -> bool {
    shape.cores >= cores && mem_fits(shape.mem_gb, mem_gb)
}

/// Splits `count` servers into `shards` contiguous `[lo, hi)` ranges;
/// the first `count % shards` shards take one extra server.
fn split_bounds(count: u32, shards: usize) -> Vec<(u32, u32)> {
    let shards_u32 = shards as u32;
    let base = count / shards_u32;
    let extra = count % shards_u32;
    let mut bounds = Vec::with_capacity(shards);
    let mut lo = 0u32;
    for s in 0..shards_u32 {
        let len = base + u32::from(s < extra);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

/// Resolves a global pool index to `(shard, local index)` against
/// contiguous bounds; `None` when the index is past the pool.
fn locate(bounds: &[(u32, u32)], global: u32) -> Option<(usize, u32)> {
    // First shard whose range ends past `global`; ranges are contiguous
    // and ascending, so it is the only candidate.
    let s = bounds.partition_point(|&(_, hi)| hi <= global);
    let &(lo, hi) = bounds.get(s)?;
    (global >= lo && global < hi).then_some((s, global - lo))
}

/// How a cluster is partitioned into shards, and where requests route.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    config: ClusterConfig,
    baseline_bounds: Vec<(u32, u32)>,
    green_bounds: Vec<(u32, u32)>,
    /// Shards with ≥1 baseline server, ascending.
    with_baseline: Vec<u32>,
    /// Shards with ≥1 green server, ascending.
    with_green: Vec<u32>,
    /// Shards with ≥1 server in either pool, ascending.
    with_any: Vec<u32>,
}

impl ShardPlan {
    /// Partitions `config` into `shards` contiguous slices per pool
    /// (`shards` floors at 1).
    pub fn new(config: ClusterConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        let baseline_bounds = split_bounds(config.baseline_count, shards);
        let green_bounds = split_bounds(config.green_count, shards);
        let nonempty = |bounds: &[(u32, u32)]| {
            bounds
                .iter()
                .enumerate()
                .filter(|(_, &(lo, hi))| hi > lo)
                .map(|(s, _)| s as u32)
                .collect::<Vec<u32>>()
        };
        let with_baseline = nonempty(&baseline_bounds);
        let with_green = nonempty(&green_bounds);
        let mut with_any: Vec<u32> =
            with_baseline.iter().chain(with_green.iter()).copied().collect();
        with_any.sort_unstable();
        with_any.dedup();
        Self { config, baseline_bounds, green_bounds, with_baseline, with_green, with_any }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.baseline_bounds.len()
    }

    /// The cluster slice owned by shard `s`.
    pub fn shard_config(&self, s: usize) -> ClusterConfig {
        let (blo, bhi) = self.baseline_bounds[s];
        let (glo, ghi) = self.green_bounds[s];
        ClusterConfig {
            baseline_count: bhi - blo,
            baseline_shape: self.config.baseline_shape,
            green_count: ghi - glo,
            green_shape: self.config.green_shape,
        }
    }

    /// Shard `s`'s `[lo, hi)` slice of the global baseline pool.
    pub fn baseline_range(&self, s: usize) -> (u32, u32) {
        self.baseline_bounds[s]
    }

    /// Shard `s`'s `[lo, hi)` slice of the global green pool.
    pub fn green_range(&self, s: usize) -> (u32, u32) {
        self.green_bounds[s]
    }

    /// The home shard for a request: a stable hash of the VM id over
    /// the shards that could ever host it (≥1 server of an admitting
    /// shape in a pool the request targets). A request no shard could
    /// host hashes over all shards — it will be rejected wherever it
    /// lands, matching the unsharded engine's rejection.
    pub fn route(&self, vm_id: u64, request: &PlacementRequest) -> usize {
        let admits_baseline = shape_admits(
            self.config.baseline_shape,
            request.baseline_cores,
            request.baseline_mem_gb,
        );
        let candidates: &[u32] = match request.target {
            TargetPool::BaselineOnly => {
                if admits_baseline {
                    &self.with_baseline
                } else {
                    &[]
                }
            }
            TargetPool::PreferGreen => {
                let admits_green = shape_admits(
                    self.config.green_shape,
                    request.green_cores,
                    request.green_mem_gb,
                );
                match (admits_green, admits_baseline) {
                    (true, true) => &self.with_any,
                    (true, false) => &self.with_green,
                    (false, true) => &self.with_baseline,
                    (false, false) => &[],
                }
            }
        };
        let h = splitmix64(vm_id);
        if candidates.is_empty() {
            (h % self.shards() as u64) as usize
        } else {
            candidates[(h % candidates.len() as u64) as usize] as usize
        }
    }

    /// Splits `prepared`'s events into per-shard streams: both events
    /// of a VM follow its home shard, relative order preserved.
    pub(crate) fn split_events(&self, prepared: &PreparedTrace) -> Vec<Vec<PreparedEvent>> {
        let home: Vec<usize> = (0..prepared.vm_count() as u32)
            .map(|slot| {
                let vm = prepared.vm(slot);
                self.route(vm.id, &vm.request)
            })
            .collect();
        let mut by_shard: Vec<Vec<PreparedEvent>> = vec![Vec::new(); self.shards()];
        for event in prepared.events() {
            by_shard[home[event.slot as usize]].push(*event);
        }
        by_shard
    }

    /// Splits a fault plan by struck-server ownership, rewriting each
    /// event's server index to be shard-local. Faults addressing
    /// servers past the pool are dropped (the unsharded engine ignores
    /// them identically).
    pub fn split_faults(&self, plan: &FaultPlan) -> Vec<FaultPlan> {
        let mut by_shard: Vec<Vec<crate::faults::FaultEvent>> = vec![Vec::new(); self.shards()];
        for event in plan.events() {
            let bounds = match event.pool {
                FaultPool::Baseline => &self.baseline_bounds,
                FaultPool::Green => &self.green_bounds,
            };
            if let Some((s, local)) = locate(bounds, event.server) {
                let mut local_event = *event;
                local_event.server = local;
                by_shard[s].push(local_event);
            }
        }
        // `presorted` skips validation: every local index came out of
        // `locate`, so it is in range for its shard by construction.
        by_shard
            .into_iter()
            .map(|events| FaultPlan::presorted(events, plan.max_evac_passes()))
            .collect()
    }
}

/// One shard's share of a replay: its simulator plus its event and
/// fault slices. Tasks are independent (`Send`), so a driver may run
/// them serially or on worker threads; either way the results must be
/// merged in ascending shard order ([`merge_outcomes`]).
pub struct ShardTask<'a> {
    sim: &'a mut AllocationSim,
    events: Vec<PreparedEvent>,
    faults: FaultPlan,
}

impl ShardTask<'_> {
    /// Replays this shard's slice. `prepared` must be the trace the
    /// task was built from.
    pub fn run(&mut self, prepared: &PreparedTrace) -> (SimOutcome, FaultSummary) {
        self.sim.replay_prepared_events(prepared, &self.events, &self.faults)
    }
}

/// Merges per-shard results in the order given (callers pass ascending
/// shard order): counters sum, packing summaries combine via the
/// Welford parallel reduction, usage ledgers add per-app in ascending
/// app order. With a single part this is the identity.
///
/// # Panics
///
/// Panics when `parts` is empty: a merge needs at least one shard.
pub fn merge_outcomes(parts: Vec<(SimOutcome, FaultSummary)>) -> (SimOutcome, FaultSummary) {
    let mut iter = parts.into_iter();
    let (mut out, mut summary) = iter.next().expect("merge_outcomes needs at least one shard");
    for (o, s) in iter {
        out.rejected += o.rejected;
        out.placed_green += o.placed_green;
        out.placed_baseline += o.placed_baseline;
        out.green_overflow += o.green_overflow;
        out.metrics.merge(&o.metrics);
        out.usage.merge(&o.usage);
        summary.full_failures += s.full_failures;
        summary.partial_degrades += s.partial_degrades;
        summary.revivals += s.revivals;
        summary.displaced += s.displaced;
        summary.evacuated += s.evacuated;
        summary.evacuation_failures += s.evacuation_failures;
        summary.cores_lost += s.cores_lost;
        summary.mem_lost_gb += s.mem_lost_gb;
        summary.availability.merge(&s.availability);
    }
    (out, summary)
}

/// A cluster partitioned into `K` independent [`AllocationSim`] shards.
#[derive(Debug)]
pub struct ShardedSim {
    sims: Vec<AllocationSim>,
    plan: ShardPlan,
    policy: PlacementPolicy,
}

impl ShardedSim {
    /// Creates `shards` shard simulators over `config` (floors at 1).
    pub fn new(config: ClusterConfig, policy: PlacementPolicy, shards: usize) -> Self {
        let plan = ShardPlan::new(config, shards);
        let sims =
            (0..plan.shards()).map(|s| AllocationSim::new(plan.shard_config(s), policy)).collect();
        Self { sims, plan, policy }
    }

    /// Switches every shard to the linear reference selection (see
    /// [`AllocationSim::with_linear_selection`]); survives `reset`.
    pub fn with_linear_selection(mut self) -> Self {
        self.sims = self.sims.into_iter().map(AllocationSim::with_linear_selection).collect();
        self
    }

    /// Re-shapes to `config`, keeping the shard count; every shard
    /// resets like a fresh simulator.
    pub fn reset(&mut self, config: ClusterConfig) {
        self.plan = ShardPlan::new(config, self.plan.shards());
        for (s, sim) in self.sims.iter_mut().enumerate() {
            sim.reset(self.plan.shard_config(s));
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.sims.len()
    }

    /// The current shard plan (partition bounds and routing).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The placement policy every shard uses.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Splits `prepared` and `faults` across the shards, returning one
    /// independent task per shard (ascending shard order). Drivers run
    /// the tasks however they like and merge results **in this order**
    /// with [`merge_outcomes`]; [`Self::replay_prepared_faulted`] is
    /// the serial reference driver.
    pub fn shard_tasks<'a>(
        &'a mut self,
        prepared: &PreparedTrace,
        faults: &FaultPlan,
    ) -> Vec<ShardTask<'a>> {
        let events = self.plan.split_events(prepared);
        let fault_plans = self.plan.split_faults(faults);
        self.sims
            .iter_mut()
            .zip(events.into_iter().zip(fault_plans))
            .map(|(sim, (events, faults))| ShardTask { sim, events, faults })
            .collect()
    }

    /// Serial reference replay: runs shard 0, 1, … in order and merges.
    /// Any parallel driver over [`Self::shard_tasks`] must be bitwise
    /// equal to this — including the blast radius, which is assigned
    /// from the *global* plan after the merge (per-shard replays only
    /// see their local slice of a correlated domain event).
    pub fn replay_prepared_faulted(
        &mut self,
        prepared: &PreparedTrace,
        faults: &FaultPlan,
    ) -> (SimOutcome, FaultSummary) {
        let mut parts = Vec::with_capacity(self.shards());
        for task in &mut self.shard_tasks(prepared, faults) {
            parts.push(task.run(prepared));
        }
        let (out, mut summary) = merge_outcomes(parts);
        if summary.faults_applied() {
            summary.availability.blast_radius_servers = faults.max_correlated_strikes();
        }
        (out, summary)
    }

    /// Serial reference replay without faults.
    pub fn replay_prepared(&mut self, prepared: &PreparedTrace) -> SimOutcome {
        self.replay_prepared_faulted(prepared, &FaultPlan::empty()).0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind};
    use gsf_workloads::{ServerGeneration, Trace, VmEvent, VmEventKind, VmSpec};

    fn vm(id: u64, cores: u32, mem: f64) -> VmSpec {
        VmSpec {
            id,
            cores,
            mem_gb: mem,
            app_index: (id % 3) as u16,
            generation: ServerGeneration::Gen3,
            full_node: false,
            max_mem_util: 0.5,
            avg_cpu_util: 0.2,
        }
    }

    fn arrive(id: u64, t: f64) -> VmEvent {
        VmEvent { time_s: t, kind: VmEventKind::Arrival, vm_id: id }
    }

    fn depart(id: u64, t: f64) -> VmEvent {
        VmEvent { time_s: t, kind: VmEventKind::Departure, vm_id: id }
    }

    fn sample_trace(n: u64) -> Trace {
        let vms: Vec<VmSpec> = (0..n).map(|i| vm(i, 8, 32.0)).collect();
        let mut events: Vec<VmEvent> = (0..n).map(|i| arrive(i, 1.0 + i as f64)).collect();
        events.extend((0..n / 2).map(|i| depart(i, 5000.0 + i as f64)));
        Trace::new(10_000.0, vms, events)
    }

    fn transform(v: &VmSpec) -> PlacementRequest {
        PlacementRequest::prefer_green(v, 1.25)
    }

    #[test]
    fn bounds_partition_contiguously() {
        assert_eq!(split_bounds(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(split_bounds(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
        assert_eq!(split_bounds(0, 2), vec![(0, 0), (0, 0)]);
        for (bounds, count) in [(split_bounds(10, 3), 10), (split_bounds(2, 4), 2)] {
            assert_eq!(bounds.first().unwrap().0, 0);
            assert_eq!(bounds.last().unwrap().1, count);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn locate_maps_globals_to_shard_locals() {
        let bounds = split_bounds(10, 3);
        assert_eq!(locate(&bounds, 0), Some((0, 0)));
        assert_eq!(locate(&bounds, 3), Some((0, 3)));
        assert_eq!(locate(&bounds, 4), Some((1, 0)));
        assert_eq!(locate(&bounds, 9), Some((2, 2)));
        assert_eq!(locate(&bounds, 10), None);
        // Empty trailing shards are never located into.
        let sparse = split_bounds(2, 4);
        assert_eq!(locate(&sparse, 1), Some((1, 0)));
        assert_eq!(locate(&sparse, 2), None);
    }

    #[test]
    fn routing_is_stable_and_respects_feasibility() {
        let plan = ShardPlan::new(ClusterConfig::mixed(6, 2), 4);
        // Green servers only exist in shards 0 and 1 (1 each); a
        // green-only-feasible request must route there.
        assert_eq!(plan.green_range(0), (0, 1));
        assert_eq!(plan.green_range(1), (1, 2));
        let big_green = PlacementRequest {
            target: TargetPool::PreferGreen,
            baseline_cores: 100, // > 80: no baseline server admits it
            baseline_mem_gb: 32.0,
            green_cores: 100,
            green_mem_gb: 32.0,
        };
        for id in 0..64u64 {
            let s = plan.route(id, &big_green);
            assert!(s < 2, "green-only request routed to greenless shard {s}");
            assert_eq!(s, plan.route(id, &big_green), "routing must be stable");
        }
        // An infeasible-everywhere request still routes somewhere.
        let impossible = PlacementRequest {
            target: TargetPool::BaselineOnly,
            baseline_cores: 1000,
            baseline_mem_gb: 32.0,
            green_cores: 1000,
            green_mem_gb: 32.0,
        };
        assert!(plan.route(7, &impossible) < plan.shards());
    }

    #[test]
    fn split_events_keeps_vm_pairs_together_in_order() {
        let t = sample_trace(40);
        let prepared = PreparedTrace::new(&t, &transform);
        let plan = ShardPlan::new(ClusterConfig::mixed(4, 2), 3);
        let by_shard = plan.split_events(&prepared);
        assert_eq!(by_shard.len(), 3);
        let total: usize = by_shard.iter().map(Vec::len).sum();
        assert_eq!(total, prepared.event_count());
        for events in &by_shard {
            // Time order preserved within each shard.
            for w in events.windows(2) {
                assert!(w[0].time_s <= w[1].time_s);
            }
        }
        // A VM's arrival and departure land in the same shard.
        for (s, events) in by_shard.iter().enumerate() {
            for e in events {
                let home = plan.route(prepared.vm(e.slot).id, &prepared.vm(e.slot).request);
                assert_eq!(home, s);
            }
        }
    }

    #[test]
    fn split_faults_remaps_to_local_indices() {
        let plan = ShardPlan::new(ClusterConfig::mixed(10, 0), 3);
        let fault = |server: u32| FaultEvent {
            time_s: 5.0,
            pool: FaultPool::Baseline,
            server,
            kind: FaultKind::FullFailure,
        };
        // Globals 0, 4 (first of shard 1), 9 (last of shard 2), and an
        // out-of-range 10 (dropped — the plan declares an 11-server
        // pool, but the sharded cluster only has 10).
        let split = plan.split_faults(
            &FaultPlan::new(vec![fault(0), fault(4), fault(9), fault(10)], 7, 11, 0).unwrap(),
        );
        assert_eq!(split.len(), 3);
        assert_eq!(split[0].events().iter().map(|e| e.server).collect::<Vec<_>>(), vec![0]);
        assert_eq!(split[1].events().iter().map(|e| e.server).collect::<Vec<_>>(), vec![0]);
        assert_eq!(split[2].events().iter().map(|e| e.server).collect::<Vec<_>>(), vec![2]);
        for p in &split {
            assert_eq!(p.max_evac_passes(), 7);
        }
    }

    #[test]
    fn single_shard_is_bitwise_the_unsharded_engine() {
        let t = sample_trace(60);
        let prepared = PreparedTrace::new(&t, &transform);
        let config = ClusterConfig::mixed(4, 3);
        let plan = FaultPlan::new(
            vec![FaultEvent {
                time_s: 100.0,
                pool: FaultPool::Green,
                server: 0,
                kind: FaultKind::FullFailure,
            }],
            3,
            4,
            3,
        )
        .unwrap();
        let mut flat = AllocationSim::new(config, PlacementPolicy::BestFit);
        let expected = flat.replay_prepared_faulted(&prepared, &plan);
        let mut sharded = ShardedSim::new(config, PlacementPolicy::BestFit, 1);
        let got = sharded.replay_prepared_faulted(&prepared, &plan);
        assert_eq!(got, expected);
    }

    #[test]
    fn sharded_replay_is_deterministic_across_runs_and_resets() {
        let t = sample_trace(50);
        let prepared = PreparedTrace::new(&t, &transform);
        let config = ClusterConfig::mixed(5, 3);
        let mut sim = ShardedSim::new(config, PlacementPolicy::BestFit, 3);
        let first = sim.replay_prepared(&prepared);
        sim.reset(config);
        let second = sim.replay_prepared(&prepared);
        assert_eq!(first, second);
        let fresh = ShardedSim::new(config, PlacementPolicy::BestFit, 3).replay_prepared(&prepared);
        assert_eq!(first, fresh);
    }

    #[test]
    fn shard_counts_conserve_placements() {
        // Whatever the shard count, every arrival is either placed or
        // rejected — nothing disappears in the split/merge.
        let t = sample_trace(80);
        let prepared = PreparedTrace::new(&t, &transform);
        let config = ClusterConfig::mixed(6, 4);
        for shards in [1usize, 2, 3, 5, 8] {
            let out = ShardedSim::new(config, PlacementPolicy::BestFit, shards)
                .replay_prepared(&prepared);
            assert_eq!(out.rejected + out.placed_green + out.placed_baseline, 80, "K={shards}");
        }
    }

    #[test]
    fn merge_is_identity_for_one_part_and_sums_counters() {
        let t = sample_trace(30);
        let prepared = PreparedTrace::new(&t, &transform);
        let mut sim = AllocationSim::new(ClusterConfig::mixed(3, 2), PlacementPolicy::BestFit);
        let part = sim.replay_prepared_faulted(&prepared, &FaultPlan::empty());
        let merged = merge_outcomes(vec![part.clone()]);
        assert_eq!(merged, part);
        let doubled = merge_outcomes(vec![part.clone(), part.clone()]);
        assert_eq!(doubled.0.placed_green, 2 * part.0.placed_green);
        assert_eq!(doubled.0.placed_baseline, 2 * part.0.placed_baseline);
        assert_eq!(doubled.0.metrics.snapshots(), 2 * part.0.metrics.snapshots());
    }
}
