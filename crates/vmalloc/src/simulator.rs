//! The allocation simulator: replays a trace against a two-pool cluster.
//!
//! Two replay engines share the same semantics and are pinned bitwise
//! identical to each other (the `prepared_equivalence` suite in
//! `gsf-cluster` is a CI gate):
//!
//! - the **prepared** engine ([`AllocationSim::replay_prepared`],
//!   [`AllocationSim::replay_prepared_faulted`]) consumes a
//!   [`PreparedTrace`] — events carry dense VM slots and precomputed
//!   [`PlacementRequest`]s, so a sizing search replays the same plan
//!   across every probe without re-resolving anything;
//! - the **unprepared** reference engine
//!   ([`AllocationSim::replay_unprepared`],
//!   [`AllocationSim::replay_faulted_unprepared`]) resolves VMs and
//!   requests on the fly, per event. It exists as the independent
//!   reference the equivalence suite and the
//!   `ablation_prepared_replay` bench compare against.
//!
//! [`AllocationSim::replay`] / [`AllocationSim::replay_faulted`] build
//! a [`PreparedTrace`] and route through the prepared engine.
//!
//! Server selection likewise has two pinned-equivalent paths: the
//! default **indexed** selection routes every `choose` through a
//! [`PlacementIndex`] per pool (maintained incrementally across
//! `place`/`remove`/`fail`/`degrade`/`reset`), while
//! [`AllocationSim::with_linear_selection`] keeps the original O(N)
//! [`PlacementPolicy::choose_linear`] scan as the reference engine. The
//! two are bit-identical on every request (debug builds assert it per
//! selection; the `index_equivalence` suite in `gsf-cluster` is the CI
//! gate).

use crate::arena::VmArena;
use crate::cluster::ClusterConfig;
use crate::cluster::ServerShape;
use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultPool, FaultSummary};
use crate::index::PlacementIndex;
use crate::metrics::PackingMetrics;
use crate::policy::PlacementPolicy;
use crate::prepared::{PreparedEvent, PreparedTrace};
use crate::server::{PlacedVm, ServerState};
use crate::usage::UsageLedger;
use gsf_workloads::{Trace, VmEventKind, VmSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which pool(s) a VM may be placed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetPool {
    /// Only baseline servers (full-node VMs, non-adopting apps).
    BaselineOnly,
    /// GreenSKU preferred; falls back to a baseline server at the
    /// original (unscaled) size when no GreenSKU has room — the paper's
    /// fungible-placement workaround that keeps the growth buffer
    /// baseline-only.
    PreferGreen,
}

/// The resolved placement request for one VM: how large it is on each
/// pool and where it may go.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// Pool constraint.
    pub target: TargetPool,
    /// Cores if placed on a baseline server.
    pub baseline_cores: u32,
    /// Memory on a baseline server, GB.
    pub baseline_mem_gb: f64,
    /// Cores if placed on a GreenSKU (scaled by the app's scaling
    /// factor).
    pub green_cores: u32,
    /// Memory on a GreenSKU, GB (scaled likewise).
    pub green_mem_gb: f64,
}

impl PlacementRequest {
    /// A baseline-only request at the VM's original size.
    pub fn baseline_only(vm: &VmSpec) -> Self {
        Self {
            target: TargetPool::BaselineOnly,
            baseline_cores: vm.cores,
            baseline_mem_gb: vm.mem_gb,
            green_cores: vm.cores,
            green_mem_gb: vm.mem_gb,
        }
    }

    /// A green-preferring request scaled by `factor` on the GreenSKU.
    ///
    /// Cores round up to whole cores; memory scales by the *realized*
    /// core multiplier so the VM keeps its memory:core ratio (per §VIII,
    /// GSF pessimistically scales memory and cores proportionally — a
    /// 1-core VM scaled 1.25× becomes a 2-core VM with 2× memory).
    pub fn prefer_green(vm: &VmSpec, factor: f64) -> Self {
        let green_cores = (f64::from(vm.cores) * factor).ceil() as u32;
        let realized = f64::from(green_cores) / f64::from(vm.cores);
        Self {
            target: TargetPool::PreferGreen,
            baseline_cores: vm.cores,
            baseline_mem_gb: vm.mem_gb,
            green_cores,
            green_mem_gb: vm.mem_gb * realized,
        }
    }
}

/// Decides each VM's [`PlacementRequest`] — the hook through which the
/// GSF adoption component plugs into allocation.
pub type VmTransform<'a> = dyn Fn(&VmSpec) -> PlacementRequest + 'a;

/// Where a VM ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    Baseline(usize),
    Green(usize),
}

/// Book-keeping for a currently placed VM.
#[derive(Debug, Clone, Copy)]
struct ActiveVm {
    placement: Placement,
    arrival_s: f64,
    cores: u32,
    app_index: u16,
}

/// Result of replaying a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Number of VM requests that could not be placed anywhere.
    pub rejected: usize,
    /// Number of VMs placed on GreenSKU servers.
    pub placed_green: usize,
    /// Number of VMs placed on baseline servers.
    pub placed_baseline: usize,
    /// Of the green-preferring VMs, how many overflowed to baseline.
    pub green_overflow: usize,
    /// Packing metrics sampled over the replay.
    pub metrics: PackingMetrics,
    /// Per-application core-hour usage, for carbon attribution.
    pub usage: UsageLedger,
}

impl SimOutcome {
    /// Whether the cluster hosted the entire trace without rejection.
    pub fn no_rejections(&self) -> bool {
        self.rejected == 0
    }
}

/// The allocation simulator.
#[derive(Debug)]
pub struct AllocationSim {
    baseline: Vec<ServerState>,
    green: Vec<ServerState>,
    policy: PlacementPolicy,
    snapshot_interval_s: f64,
    /// Free-capacity index per pool; `None` selects through the linear
    /// reference scan (and skips all index maintenance).
    baseline_index: Option<PlacementIndex>,
    green_index: Option<PlacementIndex>,
    /// Pristine per-pool shapes, kept so a [`FaultKind::Revive`] can
    /// restore a repaired server to its original capacity even after a
    /// degrade took it offline-adjacent.
    baseline_shape: ServerShape,
    green_shape: ServerShape,
    /// Cluster-wide slot storage for every placed VM; servers hold
    /// occupancy lists of arena slots (see [`crate::arena`]).
    arena: VmArena,
    /// Persistent replay buffers; see [`ReplayScratch`].
    scratch: ReplayScratch,
}

/// Simulator-owned buffers reused across replays and events so the
/// steady-state event loop performs no heap allocation: the active-VM
/// table of the prepared engine plus the displaced/retry/pending-drain
/// buffers of the fault paths. Each buffer is taken
/// ([`std::mem::take`]) for the duration of a pass that also needs
/// `&mut self`, then cleared and put back, which preserves its
/// capacity for the next replay.
#[derive(Debug, Default)]
struct ReplayScratch {
    /// Prepared-path active-VM table, indexed by trace slot.
    placements: Vec<Option<ActiveVm>>,
    /// Ids displaced by the current fault (strike output, then the
    /// still-homeless set between retry passes).
    displaced: Vec<u64>,
    /// The ids a retry pass failed to place; swapped with `displaced`
    /// between passes.
    unplaced: Vec<u64>,
    /// Snapshot of the pending-queue keys for a revive drain, reused
    /// instead of collecting a fresh `Vec` per drain.
    pending_ids: Vec<u64>,
}

/// Per-replay fault bookkeeping shared by both engines: the pending
/// re-placement queue and offline-server tracking that turn terminal
/// evacuation failures into measured downtime once repairs exist.
struct FaultRuntime {
    /// VMs displaced into a saturated fleet, waiting for capacity to
    /// return: id → time the wait began. Drained (ascending id) when a
    /// revive brings a server back; entries still here when the VM
    /// departs or the horizon arrives become
    /// [`FaultSummary::evacuation_failures`].
    pending: BTreeMap<u64, f64>,
    /// Fully-failed servers: (pool, index) → failure time. Closed out
    /// by the matching revive or at the horizon into
    /// [`crate::AvailabilitySummary::server_down_seconds`].
    down_since: BTreeMap<(FaultPool, u32), f64>,
    /// VM-seconds of settled residency, accumulated at every usage
    /// settlement site in exactly the order the engines settle.
    served_s: f64,
}

impl FaultRuntime {
    fn new() -> Self {
        Self { pending: BTreeMap::new(), down_since: BTreeMap::new(), served_s: 0.0 }
    }
}

impl AllocationSim {
    /// Creates a simulator for `config` with the given policy, selecting
    /// servers through the placement index.
    pub fn new(config: ClusterConfig, policy: PlacementPolicy) -> Self {
        let baseline: Vec<ServerState> =
            (0..config.baseline_count).map(|_| ServerState::new(config.baseline_shape)).collect();
        let green: Vec<ServerState> =
            (0..config.green_count).map(|_| ServerState::new(config.green_shape)).collect();
        let baseline_index = Some(PlacementIndex::new(&baseline));
        let green_index = Some(PlacementIndex::new(&green));
        Self {
            baseline,
            green,
            policy,
            snapshot_interval_s: 3600.0,
            baseline_index,
            green_index,
            baseline_shape: config.baseline_shape,
            green_shape: config.green_shape,
            arena: VmArena::new(),
            scratch: ReplayScratch::default(),
        }
    }

    /// Whether every server's occupancy list agrees with the arena:
    /// lists sorted ascending by VM id, per-server aggregates matching
    /// a fresh fold over the slots, and the total occupancy equal to
    /// the arena's live-slot count. The proptest invariant suite calls
    /// this after random place/remove/fail/degrade/reset sequences.
    pub fn storage_consistent(&self) -> bool {
        let occupancy: usize =
            self.baseline.iter().chain(&self.green).map(ServerState::vm_count).sum();
        occupancy == self.arena.live()
            && self.baseline.iter().chain(&self.green).all(|s| s.storage_consistent(&self.arena))
    }

    /// Overrides the metrics snapshot interval (default hourly).
    pub fn with_snapshot_interval(mut self, seconds: f64) -> Self {
        self.snapshot_interval_s = seconds.max(1.0);
        self
    }

    /// Switches to the linear full-scan reference selection
    /// ([`PlacementPolicy::choose_linear`]) and drops the placement
    /// indexes, so no maintenance cost is paid either. Placement
    /// decisions are bit-identical to the indexed default; this mode
    /// exists as the executable spec for the `index_equivalence` suite
    /// and the `ablation_indexed_placement` bench.
    pub fn with_linear_selection(mut self) -> Self {
        self.baseline_index = None;
        self.green_index = None;
        self
    }

    /// Re-shapes the cluster to `config` and empties every server,
    /// reusing the pool vectors, the occupancy lists, the VM arena's
    /// columns, and the replay scratch buffers. A reset
    /// simulator replays exactly like a freshly constructed one; the
    /// sizing searches call this between feasibility probes instead of
    /// rebuilding the simulator.
    pub fn reset(&mut self, config: ClusterConfig) {
        fn resize_pool(pool: &mut Vec<ServerState>, count: u32, shape: crate::ServerShape) {
            let count = count as usize;
            pool.truncate(count);
            for server in pool.iter_mut() {
                server.reset(shape);
            }
            while pool.len() < count {
                pool.push(ServerState::new(shape));
            }
        }
        resize_pool(&mut self.baseline, config.baseline_count, config.baseline_shape);
        resize_pool(&mut self.green, config.green_count, config.green_shape);
        self.arena.reset();
        self.baseline_shape = config.baseline_shape;
        self.green_shape = config.green_shape;
        if let Some(index) = &mut self.baseline_index {
            index.rebuild(&self.baseline);
        }
        if let Some(index) = &mut self.green_index {
            index.rebuild(&self.green);
        }
    }

    /// Replays `trace`, resolving each VM through `transform`.
    ///
    /// Rejected VMs are counted and dropped (their later departure is a
    /// no-op); the cluster-sizing search treats any rejection as "this
    /// cluster is too small".
    ///
    /// Builds a [`PreparedTrace`] and routes through
    /// [`Self::replay_prepared`]; callers replaying the same
    /// (trace, transform) repeatedly should build the plan once
    /// themselves.
    ///
    /// Leaves the simulator holding the end-of-trace allocation state;
    /// call [`Self::reset`] before replaying again.
    pub fn replay(&mut self, trace: &Trace, transform: &VmTransform<'_>) -> SimOutcome {
        let prepared = PreparedTrace::new(trace, transform);
        self.replay_prepared(&prepared)
    }

    /// Replays `trace` while injecting the failures scheduled in
    /// `plan`. Routes through [`Self::replay_prepared_faulted`]; see
    /// there for fault semantics.
    pub fn replay_faulted(
        &mut self,
        trace: &Trace,
        transform: &VmTransform<'_>,
        plan: &FaultPlan,
    ) -> (SimOutcome, FaultSummary) {
        let prepared = PreparedTrace::new(trace, transform);
        self.replay_prepared_faulted(&prepared, plan)
    }

    /// Replays a prepared plan with no faults.
    pub fn replay_prepared(&mut self, prepared: &PreparedTrace) -> SimOutcome {
        self.replay_prepared_faulted(prepared, &FaultPlan::empty()).0
    }

    /// Replays a prepared plan while injecting the failures scheduled
    /// in `plan`.
    ///
    /// Faults due at time `t` are applied before any trace event at
    /// `t`, and after any metrics snapshot due at `t` (the snapshot
    /// samples the pre-fault cluster). A full failure takes the server
    /// offline and displaces every hosted VM; a partial degrade shrinks
    /// the server in place and displaces only VMs that no longer fit.
    /// Displaced VMs are re-placed through the policy (in ascending id
    /// order, with a bounded number of retry passes); those that cannot
    /// be re-placed anywhere join the pending-placement queue and wait.
    /// A [`FaultKind::Revive`] brings an offline server back empty at
    /// its pristine pool shape and drains the pending queue (ascending
    /// id, single pass — placements only consume capacity, so one pass
    /// is complete). Pending VMs that depart or reach the horizon
    /// without ever finding a home are counted as
    /// [`FaultSummary::evacuation_failures`], and every second a VM
    /// spends in the queue accrues to
    /// [`crate::AvailabilitySummary::vm_seconds_lost`]. An empty plan
    /// makes this bit-identical to [`Self::replay_prepared`], and a
    /// revive-free plan leaves every displaced-but-unplaceable VM
    /// failing exactly as before (only the time at which the failure is
    /// counted moves from the fault to the departure/horizon).
    pub fn replay_prepared_faulted(
        &mut self,
        prepared: &PreparedTrace,
        plan: &FaultPlan,
    ) -> (SimOutcome, FaultSummary) {
        let (outcome, mut summary) = self.replay_prepared_events(prepared, prepared.events(), plan);
        if summary.faults_applied() {
            summary.availability.blast_radius_servers = plan.max_correlated_strikes();
        }
        (outcome, summary)
    }

    /// Replays an explicit event slice of `prepared` — the whole trace
    /// ([`Self::replay_prepared_faulted`] passes `prepared.events()`) or
    /// one shard's share of it (see [`crate::shard`]). `events` must be
    /// a time-sorted subsequence of `prepared.events()`; slots resolve
    /// against the full prepared trace either way, so the horizon
    /// settlement walks the global ascending-id order and simply skips
    /// VMs this replay never placed.
    pub(crate) fn replay_prepared_events(
        &mut self,
        prepared: &PreparedTrace,
        events: &[PreparedEvent],
        plan: &FaultPlan,
    ) -> (SimOutcome, FaultSummary) {
        let mut placements = std::mem::take(&mut self.scratch.placements);
        placements.clear();
        placements.resize(prepared.vm_count(), None);
        let mut usage = UsageLedger::new();
        let mut metrics = PackingMetrics::new();
        let mut rejected = 0usize;
        let mut placed_green = 0usize;
        let mut placed_baseline = 0usize;
        let mut green_overflow = 0usize;
        let mut next_snapshot = self.snapshot_interval_s;
        let mut summary = FaultSummary::default();
        let mut runtime = FaultRuntime::new();
        let faults = plan.events();
        let mut next_fault = 0usize;
        let duration_s = prepared.duration_s();

        for event in events {
            // Faults due by this event apply first — but never past the
            // horizon, even when the trace's event tail extends beyond
            // it (a repair completing after the horizon must not land).
            while next_fault < faults.len()
                && faults[next_fault].time_s <= event.time_s
                && faults[next_fault].time_s <= duration_s
            {
                self.drain_snapshots(
                    &mut metrics,
                    &mut next_snapshot,
                    faults[next_fault].time_s,
                    duration_s,
                );
                self.apply_fault_prepared(
                    &faults[next_fault],
                    plan.max_evac_passes(),
                    prepared,
                    &mut placements,
                    &mut usage,
                    &mut summary,
                    &mut runtime,
                );
                next_fault += 1;
            }
            self.drain_snapshots(&mut metrics, &mut next_snapshot, event.time_s, duration_s);
            let vm = prepared.vm(event.slot);
            match event.kind {
                VmEventKind::Arrival => {
                    let request = &vm.request;
                    match self.place(vm.id, vm.max_mem_util, request) {
                        Some(p @ Placement::Green(_)) => {
                            placed_green += 1;
                            placements[event.slot as usize] = Some(ActiveVm {
                                placement: p,
                                arrival_s: event.time_s,
                                cores: request.green_cores,
                                app_index: vm.app_index,
                            });
                        }
                        Some(p @ Placement::Baseline(_)) => {
                            placed_baseline += 1;
                            if request.target == TargetPool::PreferGreen {
                                green_overflow += 1;
                            }
                            placements[event.slot as usize] = Some(ActiveVm {
                                placement: p,
                                arrival_s: event.time_s,
                                cores: request.baseline_cores,
                                app_index: vm.app_index,
                            });
                        }
                        None => rejected += 1,
                    }
                }
                VmEventKind::Departure => {
                    // A miss means the VM was rejected on arrival — or
                    // displaced into the pending queue, in which case
                    // the wait ends here as a failure.
                    if let Some(active) = placements[event.slot as usize].take() {
                        let dwell = event.time_s - active.arrival_s;
                        runtime.served_s += dwell;
                        self.remove_placed(active.placement, vm.id);
                        match active.placement {
                            Placement::Baseline(_) => {
                                usage.record_baseline(active.app_index, active.cores, dwell);
                            }
                            Placement::Green(_) => {
                                usage.record_green(active.app_index, active.cores, dwell);
                            }
                        }
                    } else if let Some(since) = runtime.pending.remove(&vm.id) {
                        summary.evacuation_failures += 1;
                        summary.availability.vm_seconds_lost += event.time_s - since;
                    }
                }
            }
        }
        // Faults past the last trace event but within the horizon still
        // strike (their evacuation failures count).
        while next_fault < faults.len() && faults[next_fault].time_s <= duration_s {
            self.drain_snapshots(
                &mut metrics,
                &mut next_snapshot,
                faults[next_fault].time_s,
                duration_s,
            );
            self.apply_fault_prepared(
                &faults[next_fault],
                plan.max_evac_passes(),
                prepared,
                &mut placements,
                &mut usage,
                &mut summary,
                &mut runtime,
            );
            next_fault += 1;
        }
        // Interim snapshots run to the horizon even when the trace tail
        // is event-free, then the horizon itself is sampled once.
        self.drain_snapshots(&mut metrics, &mut next_snapshot, duration_s, duration_s);
        metrics.snapshot(&self.baseline, &self.green, &self.arena);
        // VMs still resident at the horizon are charged to the end of
        // the trace, in ascending VM-id order so the per-app float
        // accumulation is reproducible.
        for &slot in prepared.slots_by_id() {
            if let Some(active) = placements[slot as usize].take() {
                let dwell = duration_s - active.arrival_s;
                runtime.served_s += dwell;
                match active.placement {
                    Placement::Baseline(_) => {
                        usage.record_baseline(active.app_index, active.cores, dwell);
                    }
                    Placement::Green(_) => {
                        usage.record_green(active.app_index, active.cores, dwell);
                    }
                }
            }
        }
        placements.clear();
        self.scratch.placements = placements;
        Self::settle_fault_runtime(&mut summary, &runtime, duration_s);
        (
            SimOutcome { rejected, placed_green, placed_baseline, green_overflow, metrics, usage },
            summary,
        )
    }

    /// Horizon close-out of the fault runtime, identical for both
    /// engines: pending VMs never re-placed become evacuation failures
    /// with downtime to the horizon, still-offline servers accrue
    /// down-seconds to the horizon, and the served-time denominator is
    /// published — but only when at least one fault actually struck, so
    /// an inert plan keeps the summary bit-identical to the default.
    fn settle_fault_runtime(summary: &mut FaultSummary, runtime: &FaultRuntime, duration_s: f64) {
        for since in runtime.pending.values() {
            summary.evacuation_failures += 1;
            summary.availability.vm_seconds_lost += duration_s - since;
        }
        for since in runtime.down_since.values() {
            summary.availability.server_down_seconds += duration_s - since;
        }
        if summary.faults_applied() {
            summary.availability.vm_seconds_served = runtime.served_s;
        }
    }

    /// Reference replay that resolves each VM through `transform` per
    /// event, without a [`PreparedTrace`]. Bit-identical to
    /// [`Self::replay`]; kept as the independent path the equivalence
    /// suite and the prepared-replay ablation compare against.
    pub fn replay_unprepared(&mut self, trace: &Trace, transform: &VmTransform<'_>) -> SimOutcome {
        self.replay_faulted_unprepared(trace, transform, &FaultPlan::empty()).0
    }

    /// Reference faulted replay without a [`PreparedTrace`];
    /// bit-identical to [`Self::replay_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if a trace event references a VM id missing from the
    /// trace's VM table (generated traces are always self-consistent).
    pub fn replay_faulted_unprepared(
        &mut self,
        trace: &Trace,
        transform: &VmTransform<'_>,
        plan: &FaultPlan,
    ) -> (SimOutcome, FaultSummary) {
        let mut placements: BTreeMap<u64, ActiveVm> = BTreeMap::new();
        let mut usage = UsageLedger::new();
        let mut metrics = PackingMetrics::new();
        let mut rejected = 0usize;
        let mut placed_green = 0usize;
        let mut placed_baseline = 0usize;
        let mut green_overflow = 0usize;
        let mut next_snapshot = self.snapshot_interval_s;
        let mut summary = FaultSummary::default();
        let mut runtime = FaultRuntime::new();
        let faults = plan.events();
        let mut next_fault = 0usize;
        let duration_s = trace.duration_s();

        for event in trace.events() {
            // Faults due by this event apply first — but never past the
            // horizon, even when the trace's event tail extends beyond
            // it (a repair completing after the horizon must not land).
            while next_fault < faults.len()
                && faults[next_fault].time_s <= event.time_s
                && faults[next_fault].time_s <= duration_s
            {
                self.drain_snapshots(
                    &mut metrics,
                    &mut next_snapshot,
                    faults[next_fault].time_s,
                    duration_s,
                );
                self.apply_fault(
                    &faults[next_fault],
                    plan.max_evac_passes(),
                    trace,
                    transform,
                    &mut placements,
                    &mut usage,
                    &mut summary,
                    &mut runtime,
                );
                next_fault += 1;
            }
            self.drain_snapshots(&mut metrics, &mut next_snapshot, event.time_s, duration_s);
            let vm = trace.vm(event.vm_id).expect("trace events reference known VMs");
            match event.kind {
                VmEventKind::Arrival => {
                    let request = transform(vm);
                    match self.place(vm.id, vm.max_mem_util, &request) {
                        Some(p @ Placement::Green(_)) => {
                            placed_green += 1;
                            placements.insert(
                                vm.id,
                                ActiveVm {
                                    placement: p,
                                    arrival_s: event.time_s,
                                    cores: request.green_cores,
                                    app_index: vm.app_index,
                                },
                            );
                        }
                        Some(p @ Placement::Baseline(_)) => {
                            placed_baseline += 1;
                            if request.target == TargetPool::PreferGreen {
                                green_overflow += 1;
                            }
                            placements.insert(
                                vm.id,
                                ActiveVm {
                                    placement: p,
                                    arrival_s: event.time_s,
                                    cores: request.baseline_cores,
                                    app_index: vm.app_index,
                                },
                            );
                        }
                        None => rejected += 1,
                    }
                }
                VmEventKind::Departure => {
                    // A miss means the VM was rejected on arrival — or
                    // displaced into the pending queue, in which case
                    // the wait ends here as a failure.
                    if let Some(active) = placements.remove(&vm.id) {
                        let dwell = event.time_s - active.arrival_s;
                        runtime.served_s += dwell;
                        self.remove_placed(active.placement, vm.id);
                        match active.placement {
                            Placement::Baseline(_) => {
                                usage.record_baseline(active.app_index, active.cores, dwell);
                            }
                            Placement::Green(_) => {
                                usage.record_green(active.app_index, active.cores, dwell);
                            }
                        }
                    } else if let Some(since) = runtime.pending.remove(&vm.id) {
                        summary.evacuation_failures += 1;
                        summary.availability.vm_seconds_lost += event.time_s - since;
                    }
                }
            }
        }
        // Faults past the last trace event but within the horizon still
        // strike (their evacuation failures count).
        while next_fault < faults.len() && faults[next_fault].time_s <= duration_s {
            self.drain_snapshots(
                &mut metrics,
                &mut next_snapshot,
                faults[next_fault].time_s,
                duration_s,
            );
            self.apply_fault(
                &faults[next_fault],
                plan.max_evac_passes(),
                trace,
                transform,
                &mut placements,
                &mut usage,
                &mut summary,
                &mut runtime,
            );
            next_fault += 1;
        }
        self.drain_snapshots(&mut metrics, &mut next_snapshot, duration_s, duration_s);
        metrics.snapshot(&self.baseline, &self.green, &self.arena);
        // VMs still resident at the horizon are charged to the end of
        // the trace. Settlement must run in ascending VM-id order — a
        // `HashMap` here once made the per-app `+=` accumulation order
        // (and thus the low bits of usage totals) vary run-to-run; the
        // `BTreeMap` iterates ascending by id, which is exactly that
        // order.
        for (_, active) in placements {
            let dwell = duration_s - active.arrival_s;
            runtime.served_s += dwell;
            match active.placement {
                Placement::Baseline(_) => {
                    usage.record_baseline(active.app_index, active.cores, dwell);
                }
                Placement::Green(_) => {
                    usage.record_green(active.app_index, active.cores, dwell);
                }
            }
        }
        Self::settle_fault_runtime(&mut summary, &runtime, duration_s);
        if summary.faults_applied() {
            summary.availability.blast_radius_servers = plan.max_correlated_strikes();
        }
        (
            SimOutcome { rejected, placed_green, placed_baseline, green_overflow, metrics, usage },
            summary,
        )
    }

    /// Takes every metrics snapshot due at or before `upto`, leaving
    /// the horizon sample (taken unconditionally once per replay) to
    /// the caller.
    fn drain_snapshots(
        &self,
        metrics: &mut PackingMetrics,
        next_snapshot: &mut f64,
        upto: f64,
        duration_s: f64,
    ) {
        while *next_snapshot <= upto && *next_snapshot < duration_s {
            metrics.snapshot(&self.baseline, &self.green, &self.arena);
            *next_snapshot += self.snapshot_interval_s;
        }
    }

    /// Applies the capacity change of one fault to the struck server
    /// and updates the loss accounting. Appends the displaced VM ids to
    /// `displaced` in ascending order (none for a revive) and returns
    /// `Some(())`, or `None` when the fault strikes nothing: the plan
    /// addresses a server this configuration does not have, a failure
    /// lands on a server already offline, or a revive lands on a server
    /// that is not offline (it may have been repaired by an earlier
    /// rack-level revive already).
    fn strike(
        &mut self,
        fault: &FaultEvent,
        summary: &mut FaultSummary,
        displaced: &mut Vec<u64>,
    ) -> Option<()> {
        let arena = &mut self.arena;
        let (pool, index, pristine) = match fault.pool {
            FaultPool::Baseline => {
                (&mut self.baseline, &mut self.baseline_index, self.baseline_shape)
            }
            FaultPool::Green => (&mut self.green, &mut self.green_index, self.green_shape),
        };
        let struck = fault.server as usize;
        let server = pool.get_mut(struck)?;
        if matches!(fault.kind, FaultKind::Revive) {
            // Only a fully-failed server is repairable; degraded ones
            // failed in place and stay degraded. (An offline server is
            // empty, so the reset leaks no arena slots.)
            if !server.is_offline() {
                return None;
            }
            server.reset(pristine);
            summary.revivals += 1;
            if let Some(index) = index.as_mut() {
                index.refresh(struck, server);
            }
            return Some(());
        }
        if server.is_offline() {
            return None;
        }
        match fault.kind {
            FaultKind::FullFailure => {
                summary.full_failures += 1;
                summary.cores_lost += u64::from(server.shape().cores);
                summary.mem_lost_gb += server.shape().mem_gb;
                server.fail(arena, displaced);
            }
            FaultKind::PartialDegrade { cores_lost, mem_lost_gb } => {
                summary.partial_degrades += 1;
                let before = server.shape();
                server.degrade(arena, cores_lost, mem_lost_gb, displaced);
                let after = server.shape();
                summary.cores_lost += u64::from(before.cores - after.cores);
                summary.mem_lost_gb += before.mem_gb - after.mem_gb;
            }
            // Handled by the early return above; kept total so the
            // match needs no panic arm.
            FaultKind::Revive => {}
        }
        if let Some(index) = index.as_mut() {
            index.refresh(struck, server);
        }
        displaced.sort_unstable();
        Some(())
    }

    /// Applies one fault on the prepared path: strikes the server,
    /// settles usage for displaced VMs up to the fault time, then tries
    /// to re-place them (ascending id order) with bounded retry passes;
    /// VMs still homeless afterwards join the pending queue. A revive
    /// instead closes the server's downtime and drains the queue.
    #[allow(clippy::too_many_arguments)]
    fn apply_fault_prepared(
        &mut self,
        fault: &FaultEvent,
        max_passes: u32,
        prepared: &PreparedTrace,
        placements: &mut [Option<ActiveVm>],
        usage: &mut UsageLedger,
        summary: &mut FaultSummary,
        runtime: &mut FaultRuntime,
    ) {
        // The displaced/retry buffers are scratch fields, taken out so
        // the inner pass can keep borrowing `&mut self`.
        let mut pending = std::mem::take(&mut self.scratch.displaced);
        let mut unplaced = std::mem::take(&mut self.scratch.unplaced);
        self.apply_fault_prepared_buffered(
            fault,
            max_passes,
            prepared,
            placements,
            usage,
            summary,
            runtime,
            &mut pending,
            &mut unplaced,
        );
        pending.clear();
        unplaced.clear();
        self.scratch.displaced = pending;
        self.scratch.unplaced = unplaced;
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_fault_prepared_buffered(
        &mut self,
        fault: &FaultEvent,
        max_passes: u32,
        prepared: &PreparedTrace,
        placements: &mut [Option<ActiveVm>],
        usage: &mut UsageLedger,
        summary: &mut FaultSummary,
        runtime: &mut FaultRuntime,
        pending: &mut Vec<u64>,
        unplaced: &mut Vec<u64>,
    ) {
        if self.strike(fault, summary, pending).is_none() {
            return;
        }
        if matches!(fault.kind, FaultKind::Revive) {
            if let Some(since) = runtime.down_since.remove(&(fault.pool, fault.server)) {
                summary.availability.server_down_seconds += fault.time_s - since;
            }
            self.drain_pending_prepared(fault.time_s, prepared, placements, summary, runtime);
            return;
        }
        if matches!(fault.kind, FaultKind::FullFailure) {
            runtime.down_since.insert((fault.pool, fault.server), fault.time_s);
        }
        if pending.is_empty() {
            return;
        }
        summary.displaced += pending.len();
        summary.availability.max_simultaneous_displaced = summary
            .availability
            .max_simultaneous_displaced
            .max(runtime.pending.len() + pending.len());
        // Close out the displaced VMs' residency on their old server.
        for id in pending.iter() {
            let Some(slot) = prepared.slot_of_id(*id) else {
                continue;
            };
            if let Some(active) = placements[slot as usize].take() {
                let dwell = fault.time_s - active.arrival_s;
                runtime.served_s += dwell;
                match active.placement {
                    Placement::Baseline(_) => {
                        usage.record_baseline(active.app_index, active.cores, dwell);
                    }
                    Placement::Green(_) => {
                        usage.record_green(active.app_index, active.cores, dwell);
                    }
                }
            }
        }
        // Bounded re-placement: each pass retries the still-homeless
        // VMs; a pass that places nothing ends the loop early (nothing
        // will change on the next pass either). The pass output buffer
        // swaps with the input instead of allocating per pass.
        for _ in 0..max_passes {
            if pending.is_empty() {
                break;
            }
            unplaced.clear();
            for &id in pending.iter() {
                let Some(slot) = prepared.slot_of_id(id) else {
                    // A displaced id the prepared trace cannot resolve
                    // has no request to re-place with. Keep it pending
                    // so it lands in `evacuation_failures` below — a
                    // plain `continue` once dropped it out of the
                    // accounting entirely (the no-progress check ends
                    // the retry loop, so this cannot spin).
                    unplaced.push(id);
                    continue;
                };
                let vm = prepared.vm(slot);
                match self.place(vm.id, vm.max_mem_util, &vm.request) {
                    Some(p) => {
                        summary.evacuated += 1;
                        let cores = match p {
                            Placement::Green(_) => vm.request.green_cores,
                            Placement::Baseline(_) => vm.request.baseline_cores,
                        };
                        placements[slot as usize] = Some(ActiveVm {
                            placement: p,
                            arrival_s: fault.time_s,
                            cores,
                            app_index: vm.app_index,
                        });
                    }
                    None => unplaced.push(id),
                }
            }
            let progressed = unplaced.len() < pending.len();
            std::mem::swap(pending, unplaced);
            if !progressed {
                break;
            }
        }
        // Still homeless: wait in the pending queue for capacity to
        // return (a revive drains it; departure/horizon fail it).
        for &id in pending.iter() {
            runtime.pending.insert(id, fault.time_s);
        }
    }

    /// Drains the pending queue on the prepared path after a revive, in
    /// ascending VM-id order. A single pass is complete: placements
    /// only consume capacity, so a VM that does not fit now will not
    /// fit later in the same drain. Unresolvable ids stay queued (they
    /// have no request to re-place with) and fail at the horizon.
    fn drain_pending_prepared(
        &mut self,
        now: f64,
        prepared: &PreparedTrace,
        placements: &mut [Option<ActiveVm>],
        summary: &mut FaultSummary,
        runtime: &mut FaultRuntime,
    ) {
        if runtime.pending.is_empty() {
            return;
        }
        // Reuse the scratch id buffer instead of collect()ing a fresh
        // Vec per drain; `pending` is a BTreeMap, so extend() yields
        // the same ascending-id order the collect() produced.
        let mut ids = std::mem::take(&mut self.scratch.pending_ids);
        ids.clear();
        ids.extend(runtime.pending.keys().copied());
        for &id in &ids {
            let Some(slot) = prepared.slot_of_id(id) else {
                continue;
            };
            let vm = prepared.vm(slot);
            if let Some(p) = self.place(vm.id, vm.max_mem_util, &vm.request) {
                summary.evacuated += 1;
                if let Some(since) = runtime.pending.remove(&id) {
                    summary.availability.vm_seconds_lost += now - since;
                }
                let cores = match p {
                    Placement::Green(_) => vm.request.green_cores,
                    Placement::Baseline(_) => vm.request.baseline_cores,
                };
                placements[slot as usize] =
                    Some(ActiveVm { placement: p, arrival_s: now, cores, app_index: vm.app_index });
            }
        }
        ids.clear();
        self.scratch.pending_ids = ids;
    }

    /// Applies one fault on the unprepared path; mirrors
    /// [`Self::apply_fault_prepared`] exactly.
    #[allow(clippy::too_many_arguments)]
    fn apply_fault(
        &mut self,
        fault: &FaultEvent,
        max_passes: u32,
        trace: &Trace,
        transform: &VmTransform<'_>,
        placements: &mut BTreeMap<u64, ActiveVm>,
        usage: &mut UsageLedger,
        summary: &mut FaultSummary,
        runtime: &mut FaultRuntime,
    ) {
        let mut pending = std::mem::take(&mut self.scratch.displaced);
        let mut unplaced = std::mem::take(&mut self.scratch.unplaced);
        self.apply_fault_buffered(
            fault,
            max_passes,
            trace,
            transform,
            placements,
            usage,
            summary,
            runtime,
            &mut pending,
            &mut unplaced,
        );
        pending.clear();
        unplaced.clear();
        self.scratch.displaced = pending;
        self.scratch.unplaced = unplaced;
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_fault_buffered(
        &mut self,
        fault: &FaultEvent,
        max_passes: u32,
        trace: &Trace,
        transform: &VmTransform<'_>,
        placements: &mut BTreeMap<u64, ActiveVm>,
        usage: &mut UsageLedger,
        summary: &mut FaultSummary,
        runtime: &mut FaultRuntime,
        pending: &mut Vec<u64>,
        unplaced: &mut Vec<u64>,
    ) {
        if self.strike(fault, summary, pending).is_none() {
            return;
        }
        if matches!(fault.kind, FaultKind::Revive) {
            if let Some(since) = runtime.down_since.remove(&(fault.pool, fault.server)) {
                summary.availability.server_down_seconds += fault.time_s - since;
            }
            self.drain_pending(fault.time_s, trace, transform, placements, summary, runtime);
            return;
        }
        if matches!(fault.kind, FaultKind::FullFailure) {
            runtime.down_since.insert((fault.pool, fault.server), fault.time_s);
        }
        if pending.is_empty() {
            return;
        }
        summary.displaced += pending.len();
        summary.availability.max_simultaneous_displaced = summary
            .availability
            .max_simultaneous_displaced
            .max(runtime.pending.len() + pending.len());
        // Close out the displaced VMs' residency on their old server.
        for id in pending.iter() {
            if let Some(active) = placements.remove(id) {
                let dwell = fault.time_s - active.arrival_s;
                runtime.served_s += dwell;
                match active.placement {
                    Placement::Baseline(_) => {
                        usage.record_baseline(active.app_index, active.cores, dwell);
                    }
                    Placement::Green(_) => {
                        usage.record_green(active.app_index, active.cores, dwell);
                    }
                }
            }
        }
        // Bounded re-placement: each pass retries the still-homeless
        // VMs; a pass that places nothing ends the loop early (nothing
        // will change on the next pass either). The pass output buffer
        // swaps with the input instead of allocating per pass.
        for _ in 0..max_passes {
            if pending.is_empty() {
                break;
            }
            unplaced.clear();
            for &id in pending.iter() {
                let Some(vm) = trace.vm(id) else {
                    // Mirror of the prepared path: an unresolvable
                    // displaced id must still be counted as an
                    // evacuation failure, not silently dropped.
                    unplaced.push(id);
                    continue;
                };
                let request = transform(vm);
                match self.place(vm.id, vm.max_mem_util, &request) {
                    Some(p) => {
                        summary.evacuated += 1;
                        let cores = match p {
                            Placement::Green(_) => request.green_cores,
                            Placement::Baseline(_) => request.baseline_cores,
                        };
                        placements.insert(
                            id,
                            ActiveVm {
                                placement: p,
                                arrival_s: fault.time_s,
                                cores,
                                app_index: vm.app_index,
                            },
                        );
                    }
                    None => unplaced.push(id),
                }
            }
            let progressed = unplaced.len() < pending.len();
            std::mem::swap(pending, unplaced);
            if !progressed {
                break;
            }
        }
        // Still homeless: wait in the pending queue for capacity to
        // return (a revive drains it; departure/horizon fail it).
        for &id in pending.iter() {
            runtime.pending.insert(id, fault.time_s);
        }
    }

    /// Unprepared mirror of [`Self::drain_pending_prepared`].
    fn drain_pending(
        &mut self,
        now: f64,
        trace: &Trace,
        transform: &VmTransform<'_>,
        placements: &mut BTreeMap<u64, ActiveVm>,
        summary: &mut FaultSummary,
        runtime: &mut FaultRuntime,
    ) {
        if runtime.pending.is_empty() {
            return;
        }
        // Same reused id buffer as the prepared drain.
        let mut ids = std::mem::take(&mut self.scratch.pending_ids);
        ids.clear();
        ids.extend(runtime.pending.keys().copied());
        for &id in &ids {
            let Some(vm) = trace.vm(id) else {
                continue;
            };
            let request = transform(vm);
            if let Some(p) = self.place(vm.id, vm.max_mem_util, &request) {
                summary.evacuated += 1;
                if let Some(since) = runtime.pending.remove(&id) {
                    summary.availability.vm_seconds_lost += now - since;
                }
                let cores = match p {
                    Placement::Green(_) => request.green_cores,
                    Placement::Baseline(_) => request.baseline_cores,
                };
                placements.insert(
                    id,
                    ActiveVm { placement: p, arrival_s: now, cores, app_index: vm.app_index },
                );
            }
        }
        ids.clear();
        self.scratch.pending_ids = ids;
    }

    /// Removes a VM from the server it occupies, keeping that pool's
    /// index in sync.
    fn remove_placed(&mut self, placement: Placement, vm_id: u64) {
        match placement {
            Placement::Baseline(i) => {
                self.baseline[i].remove(&mut self.arena, vm_id);
                if let Some(index) = &mut self.baseline_index {
                    index.refresh(i, &self.baseline[i]);
                }
            }
            Placement::Green(i) => {
                self.green[i].remove(&mut self.arena, vm_id);
                if let Some(index) = &mut self.green_index {
                    index.refresh(i, &self.green[i]);
                }
            }
        }
    }

    fn place(
        &mut self,
        vm_id: u64,
        max_mem_util: f64,
        request: &PlacementRequest,
    ) -> Option<Placement> {
        let choose_baseline = |sim: &Self| {
            choose_in(
                sim.policy,
                &sim.baseline,
                sim.baseline_index.as_ref(),
                request.baseline_cores,
                request.baseline_mem_gb,
            )
        };
        let placement = match request.target {
            TargetPool::BaselineOnly => choose_baseline(self).map(Placement::Baseline),
            TargetPool::PreferGreen => choose_in(
                self.policy,
                &self.green,
                self.green_index.as_ref(),
                request.green_cores,
                request.green_mem_gb,
            )
            .map(Placement::Green)
            .or_else(|| choose_baseline(self).map(Placement::Baseline)),
        };
        match placement {
            Some(Placement::Baseline(i)) => {
                self.baseline[i].place(
                    &mut self.arena,
                    vm_id,
                    PlacedVm {
                        cores: request.baseline_cores,
                        mem_gb: request.baseline_mem_gb,
                        max_mem_util,
                    },
                );
                if let Some(index) = &mut self.baseline_index {
                    index.refresh(i, &self.baseline[i]);
                }
            }
            Some(Placement::Green(i)) => {
                self.green[i].place(
                    &mut self.arena,
                    vm_id,
                    PlacedVm {
                        cores: request.green_cores,
                        mem_gb: request.green_mem_gb,
                        max_mem_util,
                    },
                );
                if let Some(index) = &mut self.green_index {
                    index.refresh(i, &self.green[i]);
                }
            }
            None => {}
        }
        placement
    }
}

/// Selects a server for one request: through the pool's placement index
/// when one is maintained, through the linear reference scan otherwise.
///
/// Debug builds cross-check every indexed selection against
/// [`PlacementPolicy::choose_linear`] *and* re-validate the whole index
/// against the pool, so any mutation path that forgets to refresh the
/// index fails loudly in tests instead of silently diverging.
fn choose_in(
    policy: PlacementPolicy,
    servers: &[ServerState],
    index: Option<&PlacementIndex>,
    cores: u32,
    mem_gb: f64,
) -> Option<usize> {
    match index {
        Some(index) => {
            debug_assert!(index.validate(servers), "placement index out of sync with its pool");
            let chosen = index.choose(policy, servers, cores, mem_gb);
            debug_assert_eq!(
                chosen,
                policy.choose_linear(servers, cores, mem_gb),
                "indexed selection diverged from the linear reference \
                 ({policy}, cores={cores}, mem_gb={mem_gb})"
            );
            chosen
        }
        None => policy.choose_linear(servers, cores, mem_gb),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_workloads::{ServerGeneration, VmEvent};

    fn vm(id: u64, cores: u32, mem: f64, full_node: bool) -> VmSpec {
        VmSpec {
            id,
            cores,
            mem_gb: mem,
            app_index: 0,
            generation: ServerGeneration::Gen3,
            full_node,
            max_mem_util: 0.5,
            avg_cpu_util: 0.2,
        }
    }

    fn trace(vms: Vec<VmSpec>, events: Vec<VmEvent>) -> Trace {
        Trace::new(1_000_000.0, vms, events)
    }

    fn arrive(id: u64, t: f64) -> VmEvent {
        VmEvent { time_s: t, kind: VmEventKind::Arrival, vm_id: id }
    }

    fn depart(id: u64, t: f64) -> VmEvent {
        VmEvent { time_s: t, kind: VmEventKind::Departure, vm_id: id }
    }

    fn baseline_transform(vm: &VmSpec) -> PlacementRequest {
        PlacementRequest::baseline_only(vm)
    }

    #[test]
    fn places_until_full_then_rejects() {
        // One baseline server: 80 cores. Eleven 8-core VMs: ten fit.
        let vms: Vec<VmSpec> = (0..11).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..11).map(|i| arrive(i, f64::from(i as u32))).collect();
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        let out = sim.replay(&trace(vms, events), &baseline_transform);
        assert_eq!(out.placed_baseline, 10);
        assert_eq!(out.rejected, 1);
    }

    #[test]
    fn departures_free_capacity() {
        let vms: Vec<VmSpec> = (0..3).map(|i| vm(i, 80, 768.0, false)).collect();
        let events =
            vec![arrive(0, 1.0), depart(0, 2.0), arrive(1, 3.0), depart(1, 4.0), arrive(2, 5.0)];
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        let out = sim.replay(&trace(vms, events), &baseline_transform);
        assert_eq!(out.rejected, 0);
        assert_eq!(out.placed_baseline, 3);
    }

    #[test]
    fn prefer_green_scales_and_overflows() {
        // Green pool with one 128-core server; VM factor 1.25.
        let transform = |v: &VmSpec| PlacementRequest::prefer_green(v, 1.25);
        // 12 VMs of 8 cores → 10 green cores each: 12 fit on 128? 12*10=120 ✓,
        // 13th overflows to baseline at original 8 cores.
        let vms: Vec<VmSpec> = (0..13).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..13).map(|i| arrive(i, f64::from(i as u32))).collect();
        let mut sim = AllocationSim::new(ClusterConfig::mixed(1, 1), PlacementPolicy::BestFit);
        let out = sim.replay(&trace(vms, events), &transform);
        assert_eq!(out.placed_green, 12);
        assert_eq!(out.placed_baseline, 1);
        assert_eq!(out.green_overflow, 1);
        assert_eq!(out.rejected, 0);
    }

    #[test]
    fn full_node_vms_stay_on_baseline() {
        let transform = |v: &VmSpec| {
            if v.full_node {
                PlacementRequest::baseline_only(v)
            } else {
                PlacementRequest::prefer_green(v, 1.0)
            }
        };
        let vms = vec![vm(0, 80, 768.0, true), vm(1, 8, 32.0, false)];
        let events = vec![arrive(0, 1.0), arrive(1, 2.0)];
        let mut sim = AllocationSim::new(ClusterConfig::mixed(1, 1), PlacementPolicy::BestFit);
        let out = sim.replay(&trace(vms, events), &transform);
        assert_eq!(out.placed_baseline, 1);
        assert_eq!(out.placed_green, 1);
        assert_eq!(out.green_overflow, 0);
    }

    #[test]
    fn memory_bound_rejection() {
        // Server has 768 GB; two 400 GB VMs cannot coexist even though
        // cores would fit.
        let vms = vec![vm(0, 8, 400.0, false), vm(1, 8, 400.0, false)];
        let events = vec![arrive(0, 1.0), arrive(1, 2.0)];
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        let out = sim.replay(&trace(vms, events), &baseline_transform);
        assert_eq!(out.placed_baseline, 1);
        assert_eq!(out.rejected, 1);
    }

    #[test]
    fn metrics_snapshots_collected() {
        let vms: Vec<VmSpec> = (0..4).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> =
            (0..4).map(|i| arrive(i, f64::from(i as u32) * 4000.0)).collect();
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(2), PlacementPolicy::BestFit)
            .with_snapshot_interval(3600.0);
        let out = sim.replay(&trace(vms, events), &baseline_transform);
        assert!(out.metrics.snapshots() >= 3);
        // Density on the non-empty server should be positive.
        assert!(out.metrics.baseline.mean_core_density() > 0.0);
    }

    #[test]
    fn sparse_tail_trace_keeps_snapshotting() {
        // All events land in the first interval; the horizon is ten
        // intervals out. Interim snapshots must keep firing across the
        // event-free tail: nine interim (3600..32400) plus the horizon
        // sample.
        let vms = vec![vm(0, 8, 32.0, false)];
        let events = vec![arrive(0, 10.0)];
        let t = Trace::new(36_000.0, vms, events);
        for prepared in [false, true] {
            let mut sim =
                AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit)
                    .with_snapshot_interval(3600.0);
            let out = if prepared {
                sim.replay(&t, &baseline_transform)
            } else {
                sim.replay_unprepared(&t, &baseline_transform)
            };
            assert_eq!(out.metrics.snapshots(), 10);
            // The VM stays resident, so every snapshot samples it.
            assert_eq!(out.metrics.baseline.samples(), 10);
        }
    }

    #[test]
    fn snapshot_due_at_fault_time_samples_pre_fault_state() {
        // One server hosting a 40-core VM; a full failure lands exactly
        // when the first snapshot is due (t=3600). The snapshot must
        // sample the pre-fault cluster (one loaded server, density
        // 0.5), not the post-fault wreckage (offline and empty, zero
        // samples).
        let vms = vec![vm(0, 40, 32.0, false)];
        let events = vec![arrive(0, 0.0)];
        let t = Trace::new(7200.0, vms, events);
        let plan =
            FaultPlan::new(vec![full_fault(3600.0, FaultPool::Baseline, 0)], 3, 1, 0).unwrap();
        for prepared in [false, true] {
            let mut sim =
                AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit)
                    .with_snapshot_interval(3600.0);
            let (out, summary) = if prepared {
                sim.replay_faulted(&t, &baseline_transform, &plan)
            } else {
                sim.replay_faulted_unprepared(&t, &baseline_transform, &plan)
            };
            assert_eq!(summary.full_failures, 1);
            // t=3600 interim + horizon sample.
            assert_eq!(out.metrics.snapshots(), 2);
            // Only the interim snapshot saw a non-empty server.
            assert_eq!(out.metrics.baseline.samples(), 1);
            assert!((out.metrics.baseline.mean_core_density() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn horizon_settlement_is_ascending_id_bitwise() {
        // Dwell magnitudes chosen so the per-app accumulation order is
        // observable in the low bits: settling 1e16 first absorbs the
        // two 1.0s ((1e16 + 1) + 1 == 1e16), settling it last does not
        // ((1 + 1) + 1e16 == 1e16 + 2). Both engines must settle in
        // ascending VM-id order, bit-for-bit.
        let d = 1e16;
        let vms: Vec<VmSpec> = (0..3).map(|i| vm(i, 1, 4.0, false)).collect();
        let events = vec![arrive(0, 0.0), arrive(1, d - 1.0), arrive(2, d - 1.0)];
        let t = Trace::new(d, vms, events);
        let expected = (((d - 0.0) + 1.0) + 1.0) / 3600.0;
        assert_ne!(expected.to_bits(), (((1.0 + 1.0) + d) / 3600.0).to_bits());
        for prepared in [false, true] {
            // Snapshot interval = horizon, or the drain loop would walk
            // ~3e12 hourly snapshots across the 1e16 s trace.
            let mut sim =
                AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit)
                    .with_snapshot_interval(d);
            let out = if prepared {
                sim.replay(&t, &baseline_transform)
            } else {
                sim.replay_unprepared(&t, &baseline_transform)
            };
            assert_eq!(out.usage.total_baseline_core_hours().to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn usage_ledger_tracks_core_hours() {
        // One VM: 8 cores for 7200 s on baseline = 16 core-hours; one
        // green-preferring VM scaled 1.25 (8 -> 10 cores) resident from
        // t=0 to the 10 000 s horizon: 10 * 10 000 / 3600 core-hours.
        let vms = vec![vm(0, 8, 32.0, false), vm(1, 8, 32.0, false)];
        let events = vec![
            arrive(0, 0.0),
            depart(0, 7200.0),
            arrive(1, 0.0),
            // VM 1 never departs within the horizon.
        ];
        let trace = Trace::new(10_000.0, vms, events);
        let transform = |v: &VmSpec| {
            if v.id == 0 {
                PlacementRequest::baseline_only(v)
            } else {
                PlacementRequest::prefer_green(v, 1.25)
            }
        };
        let mut sim = AllocationSim::new(ClusterConfig::mixed(1, 1), PlacementPolicy::BestFit);
        let out = sim.replay(&trace, &transform);
        assert!((out.usage.baseline_core_hours(0) - 16.0).abs() < 1e-9);
        assert!((out.usage.green_core_hours(0) - 10.0 * 10_000.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn reset_replays_like_a_fresh_simulator() {
        let vms: Vec<VmSpec> = (0..20).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..20).map(|i| arrive(i, f64::from(i as u32))).collect();
        let t = trace(vms, events);
        let transform = |v: &VmSpec| PlacementRequest::prefer_green(v, 1.25);

        // One simulator reset across growing, shrinking, and re-shaped
        // configs must match a fresh simulator at every step.
        let mut reused = AllocationSim::new(ClusterConfig::mixed(1, 1), PlacementPolicy::BestFit);
        for config in [
            ClusterConfig::mixed(1, 1),
            ClusterConfig::mixed(3, 2),
            ClusterConfig::baseline_only(2),
            ClusterConfig::mixed(0, 2),
        ] {
            reused.reset(config);
            let out = reused.replay(&t, &transform);
            let fresh = AllocationSim::new(config, PlacementPolicy::BestFit).replay(&t, &transform);
            assert_eq!(out, fresh);
        }
    }

    #[test]
    fn prepared_trace_is_reusable_across_resets() {
        let vms: Vec<VmSpec> = (0..20).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..20).map(|i| arrive(i, f64::from(i as u32))).collect();
        let t = trace(vms, events);
        let transform = |v: &VmSpec| PlacementRequest::prefer_green(v, 1.25);
        let prepared = PreparedTrace::new(&t, &transform);

        let mut sim = AllocationSim::new(ClusterConfig::mixed(1, 1), PlacementPolicy::BestFit);
        for config in [ClusterConfig::mixed(1, 1), ClusterConfig::mixed(3, 2)] {
            sim.reset(config);
            let out = sim.replay_prepared(&prepared);
            let fresh = AllocationSim::new(config, PlacementPolicy::BestFit)
                .replay_unprepared(&t, &transform);
            assert_eq!(out, fresh);
        }
    }

    fn full_fault(time_s: f64, pool: FaultPool, server: u32) -> FaultEvent {
        FaultEvent { time_s, pool, server, kind: FaultKind::FullFailure }
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_plain_replay() {
        let vms: Vec<VmSpec> = (0..30).map(|i| vm(i, 8, 32.0, false)).collect();
        let mut events: Vec<VmEvent> = (0..30).map(|i| arrive(i, f64::from(i as u32))).collect();
        events.extend((0..10).map(|i| depart(i, 500.0 + f64::from(i as u32))));
        let t = trace(vms, events);
        let transform = |v: &VmSpec| PlacementRequest::prefer_green(v, 1.25);
        let config = ClusterConfig::mixed(2, 2);

        let plain = AllocationSim::new(config, PlacementPolicy::BestFit).replay(&t, &transform);
        let (faulted, summary) = AllocationSim::new(config, PlacementPolicy::BestFit)
            .replay_faulted(&t, &transform, &FaultPlan::empty());
        assert_eq!(plain, faulted);
        assert_eq!(summary, FaultSummary::default());
    }

    #[test]
    fn prepared_matches_unprepared_under_faults() {
        let vms: Vec<VmSpec> = (0..40).map(|i| vm(i, 8, 32.0, false)).collect();
        let mut events: Vec<VmEvent> =
            (0..40).map(|i| arrive(i, f64::from(i as u32) * 10.0)).collect();
        events.extend((0..15).map(|i| depart(i, 1000.0 + f64::from(i as u32))));
        let t = trace(vms, events);
        let transform = |v: &VmSpec| PlacementRequest::prefer_green(v, 1.25);
        let plan = FaultPlan::new(
            vec![
                full_fault(100.0, FaultPool::Green, 0),
                FaultEvent {
                    time_s: 200.0,
                    pool: FaultPool::Baseline,
                    server: 1,
                    kind: FaultKind::PartialDegrade { cores_lost: 40, mem_lost_gb: 384.0 },
                },
            ],
            3,
            3,
            2,
        )
        .unwrap();
        let config = ClusterConfig::mixed(3, 2);
        let (a_out, a_sum) = AllocationSim::new(config, PlacementPolicy::BestFit)
            .replay_faulted(&t, &transform, &plan);
        let (b_out, b_sum) = AllocationSim::new(config, PlacementPolicy::BestFit)
            .replay_faulted_unprepared(&t, &transform, &plan);
        assert_eq!(a_out, b_out);
        assert_eq!(a_sum, b_sum);
    }

    #[test]
    fn full_failure_evacuates_to_surviving_servers() {
        // Two baseline servers, four 8-core VMs. Server 0 fails at
        // t=10: its VMs must move to server 1.
        let vms: Vec<VmSpec> = (0..4).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..4).map(|i| arrive(i, f64::from(i as u32))).collect();
        let t = trace(vms, events);
        let plan = FaultPlan::new(vec![full_fault(10.0, FaultPool::Baseline, 0)], 3, 2, 0).unwrap();
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(2), PlacementPolicy::BestFit);
        let (out, summary) = sim.replay_faulted(&t, &baseline_transform, &plan);
        assert_eq!(out.rejected, 0);
        assert_eq!(summary.full_failures, 1);
        assert!(summary.displaced > 0);
        assert_eq!(summary.evacuated, summary.displaced);
        assert_eq!(summary.evacuation_failures, 0);
        assert_eq!(summary.cores_lost, 80);
    }

    #[test]
    fn evacuation_fails_and_terminates_on_saturated_cluster() {
        // One server, fully packed. It fails: nowhere to evacuate. The
        // retry loop must terminate and count every VM as a failure.
        let vms: Vec<VmSpec> = (0..10).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..10).map(|i| arrive(i, f64::from(i as u32))).collect();
        let t = trace(vms, events);
        let plan =
            FaultPlan::new(vec![full_fault(100.0, FaultPool::Baseline, 0)], 1000, 1, 0).unwrap();
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        let (out, summary) = sim.replay_faulted(&t, &baseline_transform, &plan);
        assert_eq!(summary.displaced, 10);
        assert_eq!(summary.evacuated, 0);
        assert_eq!(summary.evacuation_failures, 10);
        assert!(!summary.all_evacuated());
        // Arrival placements happened before the fault.
        assert_eq!(out.placed_baseline, 10);
    }

    #[test]
    fn partial_degrade_displaces_only_what_no_longer_fits() {
        // One server (80 cores) with five 8-core VMs (40 allocated).
        // Losing 48 cores leaves 32: exactly one VM (the newest) must
        // be displaced, and with no second server it fails evacuation.
        let vms: Vec<VmSpec> = (0..5).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..5).map(|i| arrive(i, f64::from(i as u32))).collect();
        let t = trace(vms, events);
        let plan = FaultPlan::new(
            vec![FaultEvent {
                time_s: 50.0,
                pool: FaultPool::Baseline,
                server: 0,
                kind: FaultKind::PartialDegrade { cores_lost: 48, mem_lost_gb: 0.0 },
            }],
            3,
            1,
            0,
        )
        .unwrap();
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        let (_, summary) = sim.replay_faulted(&t, &baseline_transform, &plan);
        assert_eq!(summary.partial_degrades, 1);
        assert_eq!(summary.displaced, 1);
        assert_eq!(summary.evacuation_failures, 1);
        assert_eq!(summary.cores_lost, 48);
    }

    #[test]
    fn faulted_replay_is_deterministic() {
        let vms: Vec<VmSpec> = (0..40).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..40).map(|i| arrive(i, f64::from(i as u32) * 10.0)).collect();
        let t = trace(vms, events);
        let transform = |v: &VmSpec| PlacementRequest::prefer_green(v, 1.25);
        let plan = FaultPlan::new(
            vec![
                full_fault(100.0, FaultPool::Green, 0),
                FaultEvent {
                    time_s: 200.0,
                    pool: FaultPool::Baseline,
                    server: 1,
                    kind: FaultKind::PartialDegrade { cores_lost: 40, mem_lost_gb: 384.0 },
                },
            ],
            3,
            3,
            2,
        )
        .unwrap();
        let config = ClusterConfig::mixed(3, 2);
        let run = || {
            AllocationSim::new(config, PlacementPolicy::BestFit)
                .replay_faulted(&t, &transform, &plan)
        };
        let (a_out, a_sum) = run();
        let (b_out, b_sum) = run();
        assert_eq!(a_out, b_out);
        assert_eq!(a_sum, b_sum);
    }

    #[test]
    fn fault_on_missing_server_index_is_ignored() {
        let vms = vec![vm(0, 8, 32.0, false)];
        let events = vec![arrive(0, 1.0)];
        let t = trace(vms, events);
        // The plan is valid for an 8-server pool, but the replayed
        // cluster has only one server: the strike lands on nothing.
        let plan = FaultPlan::new(vec![full_fault(5.0, FaultPool::Baseline, 7)], 3, 8, 0).unwrap();
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        let (out, summary) = sim.replay_faulted(&t, &baseline_transform, &plan);
        assert_eq!(summary, FaultSummary::default());
        assert_eq!(out.rejected, 0);
    }

    #[test]
    fn double_fault_on_same_server_applies_once() {
        let vms: Vec<VmSpec> = (0..4).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..4).map(|i| arrive(i, f64::from(i as u32))).collect();
        let t = trace(vms, events);
        let plan = FaultPlan::new(
            vec![
                full_fault(10.0, FaultPool::Baseline, 0),
                full_fault(20.0, FaultPool::Baseline, 0),
            ],
            3,
            2,
            0,
        )
        .unwrap();
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(2), PlacementPolicy::BestFit);
        let (_, summary) = sim.replay_faulted(&t, &baseline_transform, &plan);
        assert_eq!(summary.full_failures, 1);
    }

    #[test]
    fn evacuated_vm_usage_splits_across_servers() {
        // One VM (8 cores) arrives at t=0 on server 0, which fails at
        // t=3600; the VM moves to server 1 until the 7200 s horizon.
        // Usage must total 8 cores × 2 h regardless of the move.
        let vms = vec![vm(0, 8, 32.0, false)];
        let events = vec![arrive(0, 0.0)];
        let t = Trace::new(7200.0, vms, events);
        let plan =
            FaultPlan::new(vec![full_fault(3600.0, FaultPool::Baseline, 0)], 3, 2, 0).unwrap();
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(2), PlacementPolicy::BestFit);
        let (out, summary) = sim.replay_faulted(&t, &baseline_transform, &plan);
        assert_eq!(summary.evacuated, 1);
        assert!((out.usage.baseline_core_hours(0) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn displaced_vm_unknown_to_the_trace_counts_as_evacuation_failure() {
        // Replay a first trace without resetting, leaving VM 100
        // resident, then replay a *different* trace whose fault strikes
        // its server. The displaced id resolves through neither the new
        // prepared trace nor the new raw trace, so it can never be
        // re-placed — it must still be counted as an evacuation
        // failure. (It used to be `continue`d out of the retry pass and
        // vanish from the accounting entirely.)
        let stale = trace(vec![vm(100, 8, 32.0, false)], vec![arrive(100, 0.0)]);
        let fresh = trace(vec![vm(0, 4, 16.0, false)], vec![arrive(0, 5.0)]);
        let plan = FaultPlan::new(vec![full_fault(1.0, FaultPool::Baseline, 0)], 3, 1, 0).unwrap();

        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        sim.replay(&stale, &baseline_transform);
        let prepared = PreparedTrace::new(&fresh, &baseline_transform);
        let (_, summary) = sim.replay_prepared_faulted(&prepared, &plan);
        assert_eq!(summary.displaced, 1);
        assert_eq!(summary.evacuated, 0);
        assert_eq!(
            summary.evacuation_failures, 1,
            "a displaced id missing from the prepared trace must still be accounted"
        );

        // The unprepared mirror has the same accounting duty.
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        sim.replay(&stale, &baseline_transform);
        let (_, summary) = sim.replay_faulted_unprepared(&fresh, &baseline_transform, &plan);
        assert_eq!((summary.displaced, summary.evacuation_failures), (1, 1));
    }

    fn revive(time_s: f64, pool: FaultPool, server: u32) -> FaultEvent {
        FaultEvent { time_s, pool, server, kind: FaultKind::Revive }
    }

    #[test]
    fn revive_restores_capacity_and_drains_pending_queue() {
        // One server fully packed with ten 8-core VMs fails at t=100
        // with nowhere to evacuate; a repair at t=200 brings it back
        // and every waiting VM re-places on it.
        let vms: Vec<VmSpec> = (0..10).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..10).map(|i| arrive(i, f64::from(i as u32))).collect();
        let t = trace(vms, events);
        let plan = FaultPlan::new(
            vec![full_fault(100.0, FaultPool::Baseline, 0), revive(200.0, FaultPool::Baseline, 0)],
            3,
            1,
            0,
        )
        .unwrap();
        let run = |unprepared: bool| {
            let mut sim =
                AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
            if unprepared {
                sim.replay_faulted_unprepared(&t, &baseline_transform, &plan)
            } else {
                sim.replay_faulted(&t, &baseline_transform, &plan)
            }
        };
        let (p_out, p_sum) = run(false);
        let (u_out, u_sum) = run(true);
        assert_eq!(p_out, u_out);
        assert_eq!(p_sum, u_sum);

        assert_eq!(p_sum.full_failures, 1);
        assert_eq!(p_sum.revivals, 1);
        assert_eq!(p_sum.displaced, 10);
        assert_eq!(p_sum.evacuated, 10);
        assert_eq!(p_sum.evacuation_failures, 0);
        assert!(p_sum.all_evacuated());
        // Each VM waited exactly 100 s in the queue.
        assert!((p_sum.availability.vm_seconds_lost - 10.0 * 100.0).abs() < 1e-9);
        assert!((p_sum.availability.server_down_seconds - 100.0).abs() < 1e-9);
        assert_eq!(p_sum.availability.max_simultaneous_displaced, 10);
        assert_eq!(p_sum.availability.blast_radius_servers, 1);
        assert!(p_sum.availability.vm_seconds_served > 0.0);
        assert!(p_sum.availability.availability() < 1.0);
        // Usage keeps flowing after the re-placement: ten 8-core VMs
        // resident to the 1 000 000 s horizon dominate the total.
        assert!(p_out.usage.baseline_core_hours(0) > 10.0 * 8.0 * 900_000.0 / 3600.0);
    }

    #[test]
    fn revive_on_online_server_is_noop() {
        let vms: Vec<VmSpec> = (0..4).map(|i| vm(i, 8, 32.0, false)).collect();
        let events: Vec<VmEvent> = (0..4).map(|i| arrive(i, f64::from(i as u32))).collect();
        let t = trace(vms, events);
        let plan = FaultPlan::new(vec![revive(50.0, FaultPool::Baseline, 0)], 3, 2, 0).unwrap();
        let plain = AllocationSim::new(ClusterConfig::baseline_only(2), PlacementPolicy::BestFit)
            .replay(&t, &baseline_transform);
        let (out, summary) =
            AllocationSim::new(ClusterConfig::baseline_only(2), PlacementPolicy::BestFit)
                .replay_faulted(&t, &baseline_transform, &plan);
        assert_eq!(summary, FaultSummary::default());
        assert_eq!(out, plain);
    }

    #[test]
    fn pending_vm_departure_is_an_evacuation_failure() {
        // The VM is displaced into a saturated fleet at t=10 and
        // departs at t=50 still homeless: 40 s of downtime, one
        // failure, in both engines.
        let vms = vec![vm(0, 8, 32.0, false)];
        let events = vec![arrive(0, 0.0), depart(0, 50.0)];
        let t = trace(vms, events);
        let plan = FaultPlan::new(vec![full_fault(10.0, FaultPool::Baseline, 0)], 3, 1, 0).unwrap();
        for unprepared in [false, true] {
            let mut sim =
                AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
            let (_, summary) = if unprepared {
                sim.replay_faulted_unprepared(&t, &baseline_transform, &plan)
            } else {
                sim.replay_faulted(&t, &baseline_transform, &plan)
            };
            assert_eq!(summary.displaced, 1);
            assert_eq!(summary.evacuated, 0);
            assert_eq!(summary.evacuation_failures, 1);
            assert!((summary.availability.vm_seconds_lost - 40.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejected_vm_departure_is_noop() {
        let vms = vec![vm(0, 200, 32.0, false)]; // cannot fit anywhere
        let events = vec![arrive(0, 1.0), depart(0, 2.0)];
        let mut sim = AllocationSim::new(ClusterConfig::baseline_only(1), PlacementPolicy::BestFit);
        let out = sim.replay(&trace(vms, events), &baseline_transform);
        assert_eq!(out.rejected, 1);
        assert_eq!(out.placed_baseline, 0);
    }

    #[test]
    fn pending_drain_retries_in_ascending_id_order() {
        // Regression for the reused drain buffer: the pending queue must
        // still be retried in ascending VM-id order. Both 80-core
        // servers fill up and fail, queueing four VMs (20+40+40+60
        // cores); reviving only server 0 restores 80 cores, so the
        // drain re-places exactly the two *lowest ids* (1: 20c, 2: 40c)
        // and leaves 4 and 9 as evacuation failures.
        let mut vms = vec![
            vm(9, 60, 240.0, false), // t=1 → server 0
            vm(4, 40, 160.0, false), // t=2 → server 1 (20 free on 0)
            vm(1, 20, 80.0, false),  // t=3 → server 0 (tightest fit), now full
            vm(2, 40, 160.0, false), // t=4 → server 1, now full
        ];
        for (i, v) in vms.iter_mut().enumerate() {
            v.app_index = u16::try_from(i).unwrap(); // 0:id9, 1:id4, 2:id1, 3:id2
        }
        let events = vec![arrive(9, 1.0), arrive(4, 2.0), arrive(1, 3.0), arrive(2, 4.0)];
        let t = trace(vms, events);
        let plan = FaultPlan::new(
            vec![
                full_fault(10.0, FaultPool::Baseline, 0),
                full_fault(11.0, FaultPool::Baseline, 1),
                revive(100.0, FaultPool::Baseline, 0),
            ],
            3,
            2,
            0,
        )
        .unwrap();
        for unprepared in [false, true] {
            let mut sim =
                AllocationSim::new(ClusterConfig::baseline_only(2), PlacementPolicy::BestFit);
            let (out, summary) = if unprepared {
                sim.replay_faulted_unprepared(&t, &baseline_transform, &plan)
            } else {
                sim.replay_faulted(&t, &baseline_transform, &plan)
            };
            assert_eq!(summary.displaced, 4);
            assert_eq!(summary.evacuated, 2);
            assert_eq!(summary.evacuation_failures, 2);
            // Ids 1 (app 2) and 2 (app 3) won the drain and served to
            // the horizon; ids 9 (app 0) and 4 (app 1) only banked
            // their pre-fault dwell.
            assert!(out.usage.baseline_core_hours(2) > 1_000.0);
            assert!(out.usage.baseline_core_hours(3) > 1_000.0);
            assert!(out.usage.baseline_core_hours(0) < 1.0);
            assert!(out.usage.baseline_core_hours(1) < 1.0);
            assert!(sim.storage_consistent());
        }
    }

    #[test]
    fn arena_storage_stays_consistent_across_faulted_replays_and_reset() {
        let vms: Vec<VmSpec> = (0..12).map(|i| vm(i, 8, 32.0, false)).collect();
        let mut events: Vec<VmEvent> = (0..12).map(|i| arrive(i, f64::from(i as u32))).collect();
        events.push(depart(3, 500.0));
        events.push(depart(7, 600.0));
        let t = trace(vms, events);
        let plan = FaultPlan::new(
            vec![
                full_fault(100.0, FaultPool::Baseline, 0),
                FaultEvent {
                    time_s: 200.0,
                    pool: FaultPool::Baseline,
                    server: 1,
                    kind: FaultKind::PartialDegrade { cores_lost: 48, mem_lost_gb: 256.0 },
                },
                revive(700.0, FaultPool::Baseline, 0),
            ],
            3,
            3,
            0,
        )
        .unwrap();
        let config = ClusterConfig::baseline_only(3);
        let mut sim = AllocationSim::new(config, PlacementPolicy::BestFit);
        let (first, _) = sim.replay_faulted(&t, &baseline_transform, &plan);
        assert!(sim.storage_consistent());
        sim.reset(config);
        assert!(sim.storage_consistent());
        let (second, _) = sim.replay_faulted(&t, &baseline_transform, &plan);
        assert!(sim.storage_consistent());
        assert_eq!(first, second);
    }
}
