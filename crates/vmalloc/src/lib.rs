//! GSF VM-allocation component: an allocation and packing simulator
//! capturing the Azure production scheduler's key placement rules (§V):
//!
//! 1. best-fit placement heuristics that reduce resource fragmentation,
//! 2. a preference for placing VMs on non-empty servers,
//! 3. VM placement constraints (full-node VMs pinned to baseline
//!    servers; GreenSKU-adopting VMs scaled by their application's
//!    scaling factor, falling back to baseline servers at original size
//!    when GreenSKU capacity runs out — the growth-buffer workaround).
//!
//! The simulator replays [`gsf_workloads::Trace`]s against a
//! [`cluster::ClusterConfig`] and reports packing densities (Fig. 9),
//! per-server maximum memory utilization (Fig. 10), and rejection counts
//! (which drive the cluster-sizing search in `gsf-cluster`).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod arena;
pub mod cluster;
pub mod faults;
pub mod index;
pub mod metrics;
pub mod policy;
pub mod prepared;
pub mod server;
pub mod shard;
pub mod simulator;
pub mod usage;

pub use arena::VmArena;
pub use cluster::{ClusterConfig, ServerShape};
pub use faults::{
    AvailabilitySummary, FaultEvent, FaultKind, FaultPlan, FaultPlanError, FaultPool, FaultSummary,
};
pub use index::PlacementIndex;
pub use metrics::{PackingMetrics, PoolMetrics};
pub use policy::PlacementPolicy;
pub use prepared::{PreparedTrace, PreparedTraceBuilder};
pub use server::ServerState;
pub use shard::{merge_outcomes, ShardPlan, ShardTask, ShardedSim, SHARD_ROUTING_VERSION};
pub use simulator::{AllocationSim, PlacementRequest, SimOutcome, TargetPool, VmTransform};
pub use usage::UsageLedger;
