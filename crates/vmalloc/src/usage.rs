//! Core-hour usage accounting, the substrate for per-VM carbon
//! attribution (§IV-A: the model must "allow attributing emissions to
//! VMs").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Core-seconds consumed per application index, split by pool.
///
/// The per-pool maps are `BTreeMap`s so every float reduction over them
/// ([`Self::total_baseline_core_hours`] and friends) accumulates in
/// ascending app-index order — a `HashMap` here summed `values()` in a
/// per-instance random order, so totals differed in the last bits
/// between otherwise identical runs (the same bug class `ServerState`'s
/// VM map had).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct UsageLedger {
    baseline_core_s: BTreeMap<u16, f64>,
    green_core_s: BTreeMap<u16, f64>,
}

impl UsageLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed residency on the baseline pool.
    pub fn record_baseline(&mut self, app_index: u16, cores: u32, seconds: f64) {
        *self.baseline_core_s.entry(app_index).or_default() += f64::from(cores) * seconds.max(0.0);
    }

    /// Records a completed residency on the green pool.
    pub fn record_green(&mut self, app_index: u16, cores: u32, seconds: f64) {
        *self.green_core_s.entry(app_index).or_default() += f64::from(cores) * seconds.max(0.0);
    }

    /// Core-hours an application consumed on baseline servers.
    pub fn baseline_core_hours(&self, app_index: u16) -> f64 {
        self.baseline_core_s.get(&app_index).copied().unwrap_or(0.0) / 3600.0
    }

    /// Core-hours an application consumed on GreenSKUs.
    pub fn green_core_hours(&self, app_index: u16) -> f64 {
        self.green_core_s.get(&app_index).copied().unwrap_or(0.0) / 3600.0
    }

    /// Total core-hours across the baseline pool.
    pub fn total_baseline_core_hours(&self) -> f64 {
        self.baseline_core_s.values().sum::<f64>() / 3600.0
    }

    /// Total core-hours across the green pool.
    pub fn total_green_core_hours(&self) -> f64 {
        self.green_core_s.values().sum::<f64>() / 3600.0
    }

    /// Merges another ledger into this one, per-app in ascending app
    /// order on both pools — the sharded replay's fixed-order
    /// reduction (see [`crate::shard`]). Merging into an empty ledger
    /// reproduces `other` bit-for-bit (`0.0 + x == x` for the
    /// non-negative core-seconds recorded here).
    pub(crate) fn merge(&mut self, other: &UsageLedger) {
        for (&app, &core_s) in &other.baseline_core_s {
            *self.baseline_core_s.entry(app).or_default() += core_s;
        }
        for (&app, &core_s) in &other.green_core_s {
            *self.green_core_s.entry(app).or_default() += core_s;
        }
    }

    /// Application indices with any recorded usage, ascending.
    pub fn app_indices(&self) -> Vec<u16> {
        let mut idx: Vec<u16> =
            self.baseline_core_s.keys().chain(self.green_core_s.keys()).copied().collect();
        idx.sort_unstable();
        idx.dedup();
        idx
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut l = UsageLedger::new();
        l.record_baseline(3, 8, 3600.0);
        l.record_baseline(3, 4, 1800.0);
        l.record_green(3, 10, 7200.0);
        assert!((l.baseline_core_hours(3) - 10.0).abs() < 1e-9);
        assert!((l.green_core_hours(3) - 20.0).abs() < 1e-9);
        assert_eq!(l.baseline_core_hours(4), 0.0);
        assert_eq!(l.app_indices(), vec![3]);
    }

    #[test]
    fn negative_durations_clamped() {
        let mut l = UsageLedger::new();
        l.record_green(1, 8, -5.0);
        assert_eq!(l.total_green_core_hours(), 0.0);
    }

    #[test]
    fn totals_bitwise_independent_of_recording_order() {
        // Magnitudes chosen so float addition is order-sensitive:
        // 1e16 + 1.0 + 1.0 summed left-to-right loses one unit
        // ((1e16 + 1.0) == 1e16) while (1.0 + 1.0) + 1e16 does not.
        // The ledger must therefore fix the summation order (ascending
        // app index), making totals bitwise equal no matter the order
        // apps were recorded in.
        let contributions: [(u16, f64); 3] = [(0, 1e16), (1, 1.0), (2, 1.0)];
        let total_of = |order: &[usize]| {
            let mut l = UsageLedger::new();
            for &i in order {
                let (app, secs) = contributions[i];
                l.record_baseline(app, 1, secs);
            }
            l.total_baseline_core_hours().to_bits()
        };
        let reference = total_of(&[0, 1, 2]);
        for order in [[1, 0, 2], [2, 1, 0], [1, 2, 0], [2, 0, 1], [0, 2, 1]] {
            assert_eq!(total_of(&order), reference);
        }
        // And the fixed order is ascending app index: 1e16 first.
        assert_eq!(f64::from_bits(reference), (1e16 + 1.0 + 1.0) / 3600.0);
    }

    #[test]
    fn totals_sum_across_apps() {
        let mut l = UsageLedger::new();
        l.record_baseline(0, 2, 3600.0);
        l.record_baseline(1, 4, 3600.0);
        assert!((l.total_baseline_core_hours() - 6.0).abs() < 1e-9);
        assert_eq!(l.app_indices(), vec![0, 1]);
    }
}
