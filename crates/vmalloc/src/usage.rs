//! Core-hour usage accounting, the substrate for per-VM carbon
//! attribution (§IV-A: the model must "allow attributing emissions to
//! VMs").

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Core-seconds consumed per application index, split by pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct UsageLedger {
    baseline_core_s: HashMap<u16, f64>,
    green_core_s: HashMap<u16, f64>,
}

impl UsageLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed residency on the baseline pool.
    pub fn record_baseline(&mut self, app_index: u16, cores: u32, seconds: f64) {
        *self.baseline_core_s.entry(app_index).or_default() += f64::from(cores) * seconds.max(0.0);
    }

    /// Records a completed residency on the green pool.
    pub fn record_green(&mut self, app_index: u16, cores: u32, seconds: f64) {
        *self.green_core_s.entry(app_index).or_default() += f64::from(cores) * seconds.max(0.0);
    }

    /// Core-hours an application consumed on baseline servers.
    pub fn baseline_core_hours(&self, app_index: u16) -> f64 {
        self.baseline_core_s.get(&app_index).copied().unwrap_or(0.0) / 3600.0
    }

    /// Core-hours an application consumed on GreenSKUs.
    pub fn green_core_hours(&self, app_index: u16) -> f64 {
        self.green_core_s.get(&app_index).copied().unwrap_or(0.0) / 3600.0
    }

    /// Total core-hours across the baseline pool.
    pub fn total_baseline_core_hours(&self) -> f64 {
        self.baseline_core_s.values().sum::<f64>() / 3600.0
    }

    /// Total core-hours across the green pool.
    pub fn total_green_core_hours(&self) -> f64 {
        self.green_core_s.values().sum::<f64>() / 3600.0
    }

    /// Application indices with any recorded usage, ascending.
    pub fn app_indices(&self) -> Vec<u16> {
        let mut idx: Vec<u16> =
            self.baseline_core_s.keys().chain(self.green_core_s.keys()).copied().collect();
        idx.sort_unstable();
        idx.dedup();
        idx
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut l = UsageLedger::new();
        l.record_baseline(3, 8, 3600.0);
        l.record_baseline(3, 4, 1800.0);
        l.record_green(3, 10, 7200.0);
        assert!((l.baseline_core_hours(3) - 10.0).abs() < 1e-9);
        assert!((l.green_core_hours(3) - 20.0).abs() < 1e-9);
        assert_eq!(l.baseline_core_hours(4), 0.0);
        assert_eq!(l.app_indices(), vec![3]);
    }

    #[test]
    fn negative_durations_clamped() {
        let mut l = UsageLedger::new();
        l.record_green(1, 8, -5.0);
        assert_eq!(l.total_green_core_hours(), 0.0);
    }

    #[test]
    fn totals_sum_across_apps() {
        let mut l = UsageLedger::new();
        l.record_baseline(0, 2, 3600.0);
        l.record_baseline(1, 4, 3600.0);
        assert!((l.total_baseline_core_hours() - 6.0).abs() < 1e-9);
        assert_eq!(l.app_indices(), vec![0, 1]);
    }
}
