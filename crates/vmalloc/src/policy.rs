//! Placement policies.
//!
//! The production scheduler uses best-fit with a preference for
//! non-empty servers; first-fit and worst-fit are provided for the
//! ablation benches.
//!
//! [`PlacementPolicy::choose_linear`] is the executable reference
//! specification: a full O(N) scan of the pool. The production path
//! selects through the incrementally maintained
//! [`crate::index::PlacementIndex`], which is pinned bit-identical to
//! this scan (same chosen index on every request) by a per-selection
//! `debug_assert` in the simulator and the `index_equivalence` property
//! suite in `gsf-cluster`.

use crate::server::ServerState;
use serde::{Deserialize, Serialize};

/// Which server, among those that fit, receives a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Tightest fit first (minimize leftover), preferring non-empty
    /// servers — the Azure production heuristic the paper describes.
    BestFit,
    /// First server that fits, in index order.
    FirstFit,
    /// Loosest fit first (maximize leftover), still preferring
    /// non-empty servers.
    WorstFit,
}

impl PlacementPolicy {
    /// The fit score a feasible server competes on: normalized free
    /// space after placement, combining both dimensions (negated for
    /// worst-fit so smaller is always better). Shared verbatim between
    /// the linear scan and the placement index so the two paths compute
    /// bit-identical floats.
    pub(crate) fn leftover_key(&self, s: &ServerState, cores: u32, mem_gb: f64) -> f64 {
        let core_left = f64::from(s.free_cores() - cores) / f64::from(s.shape().cores);
        let mem_left = (s.free_mem_gb() - mem_gb) / s.shape().mem_gb;
        let leftover = core_left + mem_left;
        if *self == PlacementPolicy::WorstFit {
            -leftover
        } else {
            leftover
        }
    }

    /// Chooses a server index for a `cores`/`mem_gb` request among
    /// `servers`, or `None` if nothing fits, by scanning the whole pool
    /// in index order — the reference spec the placement index is
    /// pinned against.
    pub fn choose_linear(&self, servers: &[ServerState], cores: u32, mem_gb: f64) -> Option<usize> {
        match self {
            PlacementPolicy::FirstFit => servers.iter().position(|s| s.fits(cores, mem_gb)),
            PlacementPolicy::BestFit | PlacementPolicy::WorstFit => {
                let mut best: Option<(usize, (bool, f64))> = None;
                for (i, s) in servers.iter().enumerate() {
                    if !s.fits(cores, mem_gb) {
                        continue;
                    }
                    let leftover = self.leftover_key(s, cores, mem_gb);
                    // Key: (is_empty, leftover) lexicographically — the
                    // non-empty preference dominates the fit score.
                    let key = (s.is_empty(), leftover);
                    let better = match &best {
                        None => true,
                        Some((_, best_key)) => {
                            key.0 == best_key.0 && key.1 < best_key.1 || !key.0 && best_key.0
                        }
                    };
                    if better {
                        best = Some((i, key));
                    }
                }
                best.map(|(i, _)| i)
            }
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlacementPolicy::BestFit => "best-fit",
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::WorstFit => "worst-fit",
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::arena::VmArena;
    use crate::cluster::ServerShape;
    use crate::server::PlacedVm;

    // Policies only read server aggregates, so the arena backing the
    // occupancy lists can be dropped after loading.
    fn servers_with_loads(loads: &[u32]) -> Vec<ServerState> {
        let mut arena = VmArena::new();
        loads
            .iter()
            .map(|&used| {
                let mut s = ServerState::new(ServerShape { cores: 16, mem_gb: 128.0 });
                if used > 0 {
                    s.place(
                        &mut arena,
                        1000 + u64::from(used),
                        PlacedVm { cores: used, mem_gb: f64::from(used) * 8.0, max_mem_util: 0.5 },
                    );
                }
                s
            })
            .collect()
    }

    #[test]
    fn best_fit_prefers_tightest_non_empty() {
        // Loads: empty, half, nearly full. Request 2 cores: the nearly
        // full server is the tightest fit.
        let servers = servers_with_loads(&[0, 8, 14]);
        let choice = PlacementPolicy::BestFit.choose_linear(&servers, 2, 16.0);
        assert_eq!(choice, Some(2));
    }

    #[test]
    fn best_fit_prefers_non_empty_over_tighter_empty() {
        // An empty server can never beat a non-empty one that fits.
        let servers = servers_with_loads(&[0, 2]);
        let choice = PlacementPolicy::BestFit.choose_linear(&servers, 4, 32.0);
        assert_eq!(choice, Some(1));
    }

    #[test]
    fn best_fit_uses_empty_when_nothing_else_fits() {
        let servers = servers_with_loads(&[0, 14, 14]);
        let choice = PlacementPolicy::BestFit.choose_linear(&servers, 8, 64.0);
        assert_eq!(choice, Some(0));
    }

    #[test]
    fn first_fit_takes_first() {
        let servers = servers_with_loads(&[0, 8, 14]);
        assert_eq!(PlacementPolicy::FirstFit.choose_linear(&servers, 2, 16.0), Some(0));
    }

    #[test]
    fn worst_fit_takes_loosest_non_empty() {
        let servers = servers_with_loads(&[0, 8, 14]);
        assert_eq!(PlacementPolicy::WorstFit.choose_linear(&servers, 2, 16.0), Some(1));
    }

    #[test]
    fn none_when_nothing_fits() {
        let servers = servers_with_loads(&[14, 15]);
        for policy in
            [PlacementPolicy::BestFit, PlacementPolicy::FirstFit, PlacementPolicy::WorstFit]
        {
            assert_eq!(policy.choose_linear(&servers, 8, 64.0), None, "{policy}");
        }
    }
}
