//! Cluster configuration: server shapes and pool sizes.

use serde::{Deserialize, Serialize};

/// The allocatable shape of one server SKU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerShape {
    /// Allocatable cores per server.
    pub cores: u32,
    /// Allocatable memory per server, GB.
    pub mem_gb: f64,
}

impl ServerShape {
    /// The Gen3 baseline shape: 80 cores, 768 GB (memory:core 9.6).
    pub fn baseline_gen3() -> Self {
        Self { cores: 80, mem_gb: 768.0 }
    }

    /// The GreenSKU shape: 128 cores, 1024 GB (memory:core 8).
    pub fn greensku() -> Self {
        Self { cores: 128, mem_gb: 1024.0 }
    }

    /// Memory per core in GB.
    pub fn memory_per_core(&self) -> f64 {
        self.mem_gb / f64::from(self.cores)
    }
}

/// A two-pool cluster: baseline SKUs plus GreenSKUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of baseline servers.
    pub baseline_count: u32,
    /// Baseline server shape.
    pub baseline_shape: ServerShape,
    /// Number of GreenSKU servers.
    pub green_count: u32,
    /// GreenSKU server shape.
    pub green_shape: ServerShape,
}

impl ClusterConfig {
    /// A baseline-only cluster of `n` Gen3 servers.
    pub fn baseline_only(n: u32) -> Self {
        Self {
            baseline_count: n,
            baseline_shape: ServerShape::baseline_gen3(),
            green_count: 0,
            green_shape: ServerShape::greensku(),
        }
    }

    /// A mixed cluster with the standard shapes.
    pub fn mixed(baseline: u32, green: u32) -> Self {
        Self {
            baseline_count: baseline,
            baseline_shape: ServerShape::baseline_gen3(),
            green_count: green,
            green_shape: ServerShape::greensku(),
        }
    }

    /// Total servers in the cluster.
    pub fn total_servers(&self) -> u32 {
        self.baseline_count + self.green_count
    }

    /// Total allocatable cores across both pools.
    pub fn total_cores(&self) -> u64 {
        u64::from(self.baseline_count) * u64::from(self.baseline_shape.cores)
            + u64::from(self.green_count) * u64::from(self.green_shape.cores)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn standard_shapes_match_paper() {
        let b = ServerShape::baseline_gen3();
        assert!((b.memory_per_core() - 9.6).abs() < 1e-9);
        let g = ServerShape::greensku();
        assert!((g.memory_per_core() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn totals() {
        let c = ClusterConfig::mixed(10, 5);
        assert_eq!(c.total_servers(), 15);
        assert_eq!(c.total_cores(), 10 * 80 + 5 * 128);
        assert_eq!(ClusterConfig::baseline_only(3).green_count, 0);
    }
}
