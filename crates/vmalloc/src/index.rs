//! Free-capacity placement index: sub-linear server selection.
//!
//! [`PlacementPolicy::choose_linear`] scans the whole pool on every
//! placement, so replay cost is O(events × servers) — the dominant term
//! in the sizing binary searches once pools reach fleet scale. The
//! [`PlacementIndex`] keeps two structures per pool, maintained
//! incrementally by [`crate::AllocationSim`] on every
//! `place`/`remove`/`fail`/`degrade`/`reset`:
//!
//! * a segment tree over server index keyed by free cores, split into
//!   two lanes (non-empty / empty servers, because the production
//!   heuristic's tie-break makes any feasible non-empty server beat
//!   every feasible empty one), and
//! * exact free-core **buckets** over the online non-empty servers:
//!   `buckets[fc]` lists the servers with exactly `fc` free cores, in
//!   arbitrary order.
//!
//! Selection:
//!
//! - FirstFit descends the tree to the leftmost leaf with
//!   `free_cores ≥ request` in O(log N) per candidate, skipping whole
//!   subtrees of full servers;
//! - BestFit scans the buckets upward from `fc = cores`. For a
//!   *feasible* server the memory term of the leftover key is at least
//!   `−1e-9/mem_gb` (admission requires `free_mem ≥ mem − 1e-9`), so
//!   every candidate at bucket level `fc` has
//!   `leftover ≥ (fc − cores)/C_max − tiny`: once that core-term bound
//!   alone exceeds the best candidate found so far, no higher level can
//!   win and the scan stops — typically after a level or two instead of
//!   enumerating every core-feasible server. Visited candidates are
//!   compared with the exact `(leftover, index)` lexicographic key,
//!   which is traversal-order independent, so the unsorted buckets
//!   still reproduce the linear scan's first-index tie-break.
//!   An all-pristine empty lane short-circuits to the leftmost
//!   core-feasible leaf (empty servers of one bitwise shape are
//!   indistinguishable, so the linear scan's strict-`<` keeps the
//!   first); degenerate pools (zero-capacity degraded shapes paired
//!   with zero-size requests, where a leftover can be non-finite) fall
//!   back to exhaustive in-order tree enumeration;
//! - WorstFit enumerates the core-feasible servers of each lane in
//!   index order, evaluating memory feasibility and the leftover key
//!   exactly as the linear scan does.
//!
//! Exact-equivalence contract (DESIGN.md §9): for every pool state and
//! request, [`PlacementIndex::choose`] returns the same server index as
//! [`PlacementPolicy::choose_linear`] — same `fits()` predicate
//! (including the `1e-9` memory epsilon), same float expression for the
//! leftover score, same strict-`<` first-index tie-break, same
//! non-empty-beats-empty lexicographic order. The simulator cross-checks
//! this on every selection in debug builds, and the
//! `index_equivalence` suite in `gsf-cluster` pins it end to end.

use crate::cluster::ServerShape;
use crate::policy::PlacementPolicy;
use crate::server::{ServerState, MEM_EPSILON_GB};

/// Which leaf lane a tree walk consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    /// Online servers currently hosting at least one VM.
    NonEmpty,
    /// Online servers hosting nothing.
    Empty,
    /// Union of both lanes (FirstFit ignores emptiness).
    Either,
}

/// Encodes one server's lane values: `free_cores + 1` in the lane it
/// belongs to, 0 elsewhere. The +1 sentinel keeps "absent" (0) distinct
/// from "present with zero free cores", so a walk for `cores + 1` never
/// visits servers outside the lane — even for a zero-core request.
fn lane_values(s: &ServerState) -> (u64, u64) {
    if s.is_offline() {
        (0, 0)
    } else {
        let v = u64::from(s.free_cores()) + 1;
        if s.is_empty() {
            (0, v)
        } else {
            (v, 0)
        }
    }
}

/// Per-leaf bookkeeping bit: this server is online, empty, and shaped
/// unlike the pool's uniform build shape (so the empty lane is not
/// all-pristine and its leftmost shortcut is off).
const FLAG_DEVIANT_EMPTY: u8 = 1;
/// Per-leaf bookkeeping bit: this server has a zero-capacity dimension
/// (its leftover key can be non-finite for zero-size requests).
const FLAG_ZERO_CAP: u8 = 2;

/// Sentinel for "not in any bucket" (offline or empty servers).
const NO_BUCKET: u32 = u32::MAX;

/// Bitwise shape equality: `PartialEq` on `f64` would conflate the
/// pathological `-0.0`/`+0.0` pair, whose shapes divide differently.
fn same_shape(a: ServerShape, b: ServerShape) -> bool {
    a.cores == b.cores && a.mem_gb.to_bits() == b.mem_gb.to_bits()
}

/// Incrementally maintained free-capacity index over one server pool.
///
/// Two max-segment-trees share one node layout: leaf `size + i` holds
/// server `i`'s lane value, internal node `k` holds the max of its
/// children `2k` / `2k+1`. Padding leaves (`n..size`) stay 0 and are
/// never feasible. The free-core buckets ride along for BestFit.
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    /// Number of indexed servers.
    n: usize,
    /// Leaf span: smallest power of two ≥ max(n, 1).
    size: usize,
    /// Non-empty-lane tree, length `2 * size`.
    nonempty: Vec<u64>,
    /// Empty-lane tree, length `2 * size`.
    empty: Vec<u64>,
    /// `buckets[fc]` = online non-empty servers with exactly `fc` free
    /// cores, unordered; levels span `0..=max_shape_cores` at build.
    buckets: Vec<Vec<u32>>,
    /// The bucket level each server occupies, or [`NO_BUCKET`].
    bucket_of: Vec<u32>,
    /// The server's position within that bucket.
    bucket_pos: Vec<u32>,
    /// The bitwise shape every server had at the last full (re)build,
    /// if they agreed on one; gates the empty-lane leftmost shortcut.
    uniform_shape: Option<ServerShape>,
    /// Per-leaf `FLAG_*` bits mirrored into the counters below.
    flags: Vec<u8>,
    /// Servers currently counted under [`FLAG_DEVIANT_EMPTY`].
    deviant_empty: usize,
    /// Servers currently counted under [`FLAG_ZERO_CAP`].
    zero_cap: usize,
    /// Upper bound on `shape.cores` over every shape the pool has held
    /// since the last full (re)build. Only ever ratchets up between
    /// rebuilds — a stale-high bound merely weakens the BestFit bucket
    /// stop rule, never correctness.
    max_shape_cores: u32,
    /// Upper bound on `1/shape.mem_gb` over every positive-memory
    /// shape, maintained like [`Self::max_shape_cores`].
    inv_mem_bound: f64,
}

impl PlacementIndex {
    /// Builds the index for the current state of `servers`.
    pub fn new(servers: &[ServerState]) -> Self {
        let n = servers.len();
        let size = n.next_power_of_two().max(1);
        let mut index = Self {
            n,
            size,
            nonempty: vec![0; 2 * size],
            empty: vec![0; 2 * size],
            buckets: Vec::new(),
            bucket_of: vec![NO_BUCKET; n],
            bucket_pos: vec![0; n],
            uniform_shape: None,
            flags: vec![0; n],
            deviant_empty: 0,
            zero_cap: 0,
            max_shape_cores: 0,
            inv_mem_bound: 0.0,
        };
        index.fill(servers);
        index
    }

    /// Rebuilds in place for `servers` (after a pool-wide `reset`),
    /// reusing the allocations when the pool size is unchanged.
    pub fn rebuild(&mut self, servers: &[ServerState]) {
        if servers.len() != self.n {
            *self = Self::new(servers);
            return;
        }
        self.fill(servers);
    }

    fn fill(&mut self, servers: &[ServerState]) {
        self.uniform_shape = servers
            .first()
            .map(|s| s.shape())
            .filter(|&first| servers.iter().all(|s| same_shape(s.shape(), first)));
        self.deviant_empty = 0;
        self.zero_cap = 0;
        self.max_shape_cores = 0;
        self.inv_mem_bound = 0.0;
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        for (i, s) in servers.iter().enumerate() {
            let (ne, e) = lane_values(s);
            self.nonempty[self.size + i] = ne;
            self.empty[self.size + i] = e;
            let flags = self.leaf_flags(s);
            self.flags[i] = flags;
            self.deviant_empty += usize::from(flags & FLAG_DEVIANT_EMPTY != 0);
            self.zero_cap += usize::from(flags & FLAG_ZERO_CAP != 0);
            self.ratchet_bounds(s.shape());
        }
        // Bucket levels span every free-core count a server can reach.
        let levels = self.max_shape_cores as usize + 1;
        if self.buckets.len() < levels {
            self.buckets.resize_with(levels, Vec::new);
        }
        for (i, s) in servers.iter().enumerate() {
            self.bucket_of[i] = NO_BUCKET;
            if !s.is_offline() && !s.is_empty() {
                self.bucket_insert(i, s.free_cores());
            }
        }
        for leaf in self.n..self.size {
            self.nonempty[self.size + leaf] = 0;
            self.empty[self.size + leaf] = 0;
        }
        for node in (1..self.size).rev() {
            self.nonempty[node] = self.nonempty[2 * node].max(self.nonempty[2 * node + 1]);
            self.empty[node] = self.empty[2 * node].max(self.empty[2 * node + 1]);
        }
    }

    fn leaf_flags(&self, s: &ServerState) -> u8 {
        let deviant = match self.uniform_shape {
            Some(uniform) => !s.is_offline() && s.is_empty() && !same_shape(s.shape(), uniform),
            None => false,
        };
        let zero_cap = s.shape().cores == 0 || s.shape().mem_gb <= 0.0;
        u8::from(deviant) | (u8::from(zero_cap) << 1)
    }

    fn ratchet_bounds(&mut self, shape: ServerShape) {
        self.max_shape_cores = self.max_shape_cores.max(shape.cores);
        if shape.mem_gb > 0.0 {
            self.inv_mem_bound = self.inv_mem_bound.max(1.0 / shape.mem_gb);
        }
    }

    fn bucket_insert(&mut self, i: usize, level: u32) {
        let level_ix = level as usize;
        if level_ix >= self.buckets.len() {
            self.buckets.resize_with(level_ix + 1, Vec::new);
        }
        self.bucket_of[i] = level;
        self.bucket_pos[i] = u32::try_from(self.buckets[level_ix].len()).unwrap_or(u32::MAX);
        self.buckets[level_ix].push(u32::try_from(i).unwrap_or(u32::MAX));
    }

    fn bucket_remove(&mut self, i: usize) {
        let level = self.bucket_of[i] as usize;
        let pos = self.bucket_pos[i] as usize;
        self.buckets[level].swap_remove(pos);
        if let Some(&moved) = self.buckets[level].get(pos) {
            self.bucket_pos[moved as usize] = self.bucket_pos[i];
        }
        self.bucket_of[i] = NO_BUCKET;
    }

    /// Re-reads server `i`'s state into its leaf and repairs the path to
    /// the root — called after every mutation of that server.
    pub fn refresh(&mut self, i: usize, server: &ServerState) {
        debug_assert!(i < self.n, "refresh({i}) beyond indexed pool of {}", self.n);
        let flags = self.leaf_flags(server);
        let old = self.flags[i];
        if flags != old {
            self.deviant_empty += usize::from(flags & FLAG_DEVIANT_EMPTY != 0);
            self.deviant_empty -= usize::from(old & FLAG_DEVIANT_EMPTY != 0);
            self.zero_cap += usize::from(flags & FLAG_ZERO_CAP != 0);
            self.zero_cap -= usize::from(old & FLAG_ZERO_CAP != 0);
            self.flags[i] = flags;
        }
        self.ratchet_bounds(server.shape());
        let level =
            if server.is_offline() || server.is_empty() { NO_BUCKET } else { server.free_cores() };
        if level != self.bucket_of[i] {
            if self.bucket_of[i] != NO_BUCKET {
                self.bucket_remove(i);
            }
            if level != NO_BUCKET {
                self.bucket_insert(i, level);
            }
        }
        let (ne, e) = lane_values(server);
        let mut node = self.size + i;
        self.nonempty[node] = ne;
        self.empty[node] = e;
        node /= 2;
        while node >= 1 {
            self.nonempty[node] = self.nonempty[2 * node].max(self.nonempty[2 * node + 1]);
            self.empty[node] = self.empty[2 * node].max(self.empty[2 * node + 1]);
            node /= 2;
        }
    }

    fn node_val(&self, lane: Lane, node: usize) -> u64 {
        match lane {
            Lane::NonEmpty => self.nonempty[node],
            Lane::Empty => self.empty[node],
            Lane::Either => self.nonempty[node].max(self.empty[node]),
        }
    }

    /// Visits, in ascending server order, every leaf whose `lane` value
    /// is ≥ `want`; `f` returns `false` to stop early. Returns whether
    /// the walk ran to completion.
    fn walk(&self, lane: Lane, want: u64, f: &mut impl FnMut(usize) -> bool) -> bool {
        if self.n == 0 {
            return true;
        }
        self.walk_node(1, lane, want, f)
    }

    fn walk_node(
        &self,
        node: usize,
        lane: Lane,
        want: u64,
        f: &mut impl FnMut(usize) -> bool,
    ) -> bool {
        if self.node_val(lane, node) < want {
            return true;
        }
        if node >= self.size {
            return f(node - self.size);
        }
        self.walk_node(2 * node, lane, want, f) && self.walk_node(2 * node + 1, lane, want, f)
    }

    /// Chooses a server for a `cores`/`mem_gb` request exactly as
    /// [`PlacementPolicy::choose_linear`] would, touching only
    /// core-feasible servers.
    ///
    /// `servers` must be the pool this index is maintained against.
    pub fn choose(
        &self,
        policy: PlacementPolicy,
        servers: &[ServerState],
        cores: u32,
        mem_gb: f64,
    ) -> Option<usize> {
        debug_assert_eq!(servers.len(), self.n, "index maintained for a different pool");
        let want = u64::from(cores) + 1;
        match policy {
            PlacementPolicy::FirstFit => {
                let mut found = None;
                self.walk(Lane::Either, want, &mut |i| {
                    if servers[i].fits(cores, mem_gb) {
                        found = Some(i);
                        false
                    } else {
                        true
                    }
                });
                found
            }
            PlacementPolicy::BestFit => {
                // A feasible leftover key is non-finite only when a
                // zero-capacity dimension meets a request small enough
                // to fit on it (`0/0` or `-mem/0`). Non-finite keys
                // break the bucket stop rule and make the linear fold
                // order-dependent (NaN never compares `<`), so those
                // requests take the exhaustive in-order path.
                let degenerate = self.zero_cap > 0 && (cores == 0 || mem_gb <= MEM_EPSILON_GB);
                let nonempty = if degenerate {
                    self.best_in_lane(Lane::NonEmpty, policy, servers, cores, mem_gb, want)
                } else {
                    self.bestfit_buckets(servers, cores, mem_gb)
                };
                // The linear scan's key is (is_empty, leftover)
                // lexicographic: any feasible non-empty server beats
                // every feasible empty one, so the empty lane is
                // consulted only when the non-empty lane has no fit.
                nonempty.or_else(|| {
                    if degenerate || self.uniform_shape.is_none() || self.deviant_empty > 0 {
                        self.best_in_lane(Lane::Empty, policy, servers, cores, mem_gb, want)
                    } else {
                        // Every online empty server is bitwise
                        // identical (uniform shape; `remove()` resets
                        // the memory counter to exact zero when a
                        // server empties), so all leftover keys tie and
                        // the linear scan's strict-`<` keeps the first
                        // feasible index. One probe decides for all.
                        let mut found = None;
                        self.walk(Lane::Empty, want, &mut |i| {
                            if servers[i].fits(cores, mem_gb) {
                                found = Some(i);
                            }
                            false
                        });
                        found
                    }
                })
            }
            PlacementPolicy::WorstFit => {
                // WorstFit maximizes the leftover key, which the bucket
                // stop rule's lower bound says nothing about; it keeps
                // the in-order enumeration (the production policy the
                // replay hot path cares about is BestFit).
                self.best_in_lane(Lane::NonEmpty, policy, servers, cores, mem_gb, want).or_else(
                    || self.best_in_lane(Lane::Empty, policy, servers, cores, mem_gb, want),
                )
            }
        }
    }

    /// Bucketed BestFit over the online non-empty servers: returns the
    /// feasible server minimizing the exact `(leftover, index)`
    /// lexicographic key — identical to the lane-restricted linear
    /// scan.
    ///
    /// Scans bucket levels upward from `fc = cores`. Soundness of the
    /// stop rule: a feasible server at level `fc` has
    /// `free_mem ≥ mem − 1e-9`, so its leftover key is at least
    /// `(fc − cores)/shape.cores − 1e-9/shape.mem_gb` in real
    /// arithmetic, and `shape.cores ≤ max_shape_cores` makes
    /// `(fc − cores)/max_shape_cores` a further lower bound on the core
    /// term. `mem_slack` covers both the memory epsilon (scaled by the
    /// ratcheted `1/mem_gb` bound) and float rounding with ~6 orders of
    /// magnitude to spare, so a level pruned by the stop rule cannot
    /// hold a candidate that ties or beats the incumbent.
    fn bestfit_buckets(&self, servers: &[ServerState], cores: u32, mem_gb: f64) -> Option<usize> {
        let mem_slack = 1e-9 * (1.0 + self.inv_mem_bound);
        let c_max = f64::from(self.max_shape_cores.max(1));
        let mut best: Option<(usize, f64)> = None;
        let mut level = cores;
        while (level as usize) < self.buckets.len() {
            if let Some((_, best_leftover)) = best {
                if f64::from(level - cores) / c_max - mem_slack > best_leftover {
                    break;
                }
            }
            for &raw in &self.buckets[level as usize] {
                let i = raw as usize;
                let s = &servers[i];
                if s.fits(cores, mem_gb) {
                    let leftover = PlacementPolicy::BestFit.leftover_key(s, cores, mem_gb);
                    let replace = match best {
                        None => true,
                        // Exact float `==` deliberately: "tie" must
                        // mean what the linear fold's strict-`<` means
                        // (−0.0 ties +0.0), and ties go to the lower
                        // index. The resulting lexicographic minimum is
                        // independent of visit order, which is what
                        // licenses the unsorted buckets.
                        Some((best_i, best_leftover)) => {
                            leftover < best_leftover || (leftover == best_leftover && i < best_i)
                        }
                    };
                    if replace {
                        best = Some((i, leftover));
                    }
                }
            }
            level += 1;
        }
        best.map(|(i, _)| i)
    }

    fn best_in_lane(
        &self,
        lane: Lane,
        policy: PlacementPolicy,
        servers: &[ServerState],
        cores: u32,
        mem_gb: f64,
        want: u64,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        self.walk(lane, want, &mut |i| {
            let s = &servers[i];
            if s.fits(cores, mem_gb) {
                let leftover = policy.leftover_key(s, cores, mem_gb);
                let better = match best {
                    None => true,
                    Some((_, best_leftover)) => leftover < best_leftover,
                };
                if better {
                    best = Some((i, leftover));
                }
            }
            true
        });
        best.map(|(i, _)| i)
    }

    /// Full-rescan consistency check: every leaf matches the lane
    /// values of its server, padding leaves are 0, every internal node
    /// is the max of its children, the buckets mirror the online
    /// non-empty servers exactly, the flag bits and their counters
    /// agree with the pool, and the ratcheted bounds still cover every
    /// current shape. The simulator `debug_assert`s this on every
    /// selection, so a mutation path that forgets to [`Self::refresh`]
    /// fails loudly in tests rather than silently diverging.
    pub fn validate(&self, servers: &[ServerState]) -> bool {
        if servers.len() != self.n {
            return false;
        }
        let mut deviant_empty = 0;
        let mut zero_cap = 0;
        let mut bucketed = 0usize;
        for (i, s) in servers.iter().enumerate() {
            if (self.nonempty[self.size + i], self.empty[self.size + i]) != lane_values(s) {
                return false;
            }
            let flags = self.leaf_flags(s);
            if self.flags[i] != flags {
                return false;
            }
            deviant_empty += usize::from(flags & FLAG_DEVIANT_EMPTY != 0);
            zero_cap += usize::from(flags & FLAG_ZERO_CAP != 0);
            let shape = s.shape();
            if shape.cores > self.max_shape_cores {
                return false;
            }
            if shape.mem_gb > 0.0 && self.inv_mem_bound < 1.0 / shape.mem_gb {
                return false;
            }
            if s.is_offline() || s.is_empty() {
                if self.bucket_of[i] != NO_BUCKET {
                    return false;
                }
            } else {
                bucketed += 1;
                let (level, pos) = (self.bucket_of[i] as usize, self.bucket_pos[i] as usize);
                if level != s.free_cores() as usize
                    || self.buckets.get(level).and_then(|b| b.get(pos)).copied()
                        != u32::try_from(i).ok()
                {
                    return false;
                }
            }
        }
        if deviant_empty != self.deviant_empty || zero_cap != self.zero_cap {
            return false;
        }
        if self.buckets.iter().map(Vec::len).sum::<usize>() != bucketed {
            return false;
        }
        for leaf in self.n..self.size {
            if self.nonempty[self.size + leaf] != 0 || self.empty[self.size + leaf] != 0 {
                return false;
            }
        }
        for node in 1..self.size {
            if self.nonempty[node] != self.nonempty[2 * node].max(self.nonempty[2 * node + 1])
                || self.empty[node] != self.empty[2 * node].max(self.empty[2 * node + 1])
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::arena::VmArena;
    use crate::cluster::ServerShape;
    use crate::server::PlacedVm;

    fn servers_with_loads(arena: &mut VmArena, loads: &[u32]) -> Vec<ServerState> {
        loads
            .iter()
            .map(|&used| {
                let mut s = ServerState::new(ServerShape { cores: 16, mem_gb: 128.0 });
                if used > 0 {
                    s.place(
                        arena,
                        1000 + u64::from(used),
                        PlacedVm { cores: used, mem_gb: f64::from(used) * 8.0, max_mem_util: 0.5 },
                    );
                }
                s
            })
            .collect()
    }

    const POLICIES: [PlacementPolicy; 3] =
        [PlacementPolicy::BestFit, PlacementPolicy::FirstFit, PlacementPolicy::WorstFit];

    #[test]
    fn matches_linear_on_mixed_loads() {
        let mut arena = VmArena::new();
        let servers = servers_with_loads(&mut arena, &[0, 8, 14, 16, 2, 0, 15]);
        let index = PlacementIndex::new(&servers);
        assert!(index.validate(&servers));
        for policy in POLICIES {
            for cores in 0..=17u32 {
                for mem in [0.0, 8.0, 64.0, 120.0, 129.0] {
                    assert_eq!(
                        index.choose(policy, &servers, cores, mem),
                        policy.choose_linear(&servers, cores, mem),
                        "{policy} cores={cores} mem={mem}"
                    );
                }
            }
        }
    }

    #[test]
    fn refresh_tracks_place_remove_fail_degrade() {
        let mut arena = VmArena::new();
        let mut servers = servers_with_loads(&mut arena, &[0, 4, 8, 12]);
        let mut index = PlacementIndex::new(&servers);

        servers[0].place(&mut arena, 1, PlacedVm { cores: 6, mem_gb: 24.0, max_mem_util: 0.5 });
        index.refresh(0, &servers[0]);
        assert!(index.validate(&servers));

        servers[1].remove(&mut arena, 1004).unwrap();
        index.refresh(1, &servers[1]);
        assert!(index.validate(&servers));

        let mut displaced = Vec::new();
        servers[2].fail(&mut arena, &mut displaced);
        index.refresh(2, &servers[2]);
        assert!(index.validate(&servers));

        servers[3].degrade(&mut arena, 10, 0.0, &mut displaced);
        index.refresh(3, &servers[3]);
        assert!(index.validate(&servers));

        for policy in POLICIES {
            for cores in 1..=16u32 {
                assert_eq!(
                    index.choose(policy, &servers, cores, 4.0),
                    policy.choose_linear(&servers, cores, 4.0),
                    "{policy} cores={cores}"
                );
            }
        }
    }

    #[test]
    fn matches_linear_with_degraded_and_zero_capacity_shapes() {
        // Mixed shapes after degrades — including a zero-capacity
        // husk — exercise the ratcheted stop-rule bounds, the
        // deviant-empty fallback, and the degenerate-request guard.
        let mut arena = VmArena::new();
        let mut servers = servers_with_loads(&mut arena, &[0, 8, 0, 3, 0, 12]);
        let mut index = PlacementIndex::new(&servers);
        let mut displaced = Vec::new();
        // A loaded server degraded in place, an empty server degraded
        // (deviant-empty), and one degraded to nothing.
        servers[1].degrade(&mut arena, 6, 48.0, &mut displaced);
        index.refresh(1, &servers[1]);
        servers[2].degrade(&mut arena, 9, 100.0, &mut displaced);
        index.refresh(2, &servers[2]);
        servers[4].degrade(&mut arena, 1_000, 1e9, &mut displaced);
        index.refresh(4, &servers[4]);
        assert!(index.validate(&servers));
        for policy in POLICIES {
            for cores in 0..=17u32 {
                for mem in [0.0, 1e-10, 4.0, 28.0, 64.0, 129.0] {
                    assert_eq!(
                        index.choose(policy, &servers, cores, mem),
                        policy.choose_linear(&servers, cores, mem),
                        "{policy} cores={cores} mem={mem}"
                    );
                }
            }
        }
    }

    #[test]
    fn best_fit_resolves_a_pristine_empty_lane_from_one_probe() {
        // All-empty pristine pool: the shortcut must pick the leftmost
        // feasible server (bitwise ties, first index wins) and decide
        // infeasibility from a single probe.
        let servers: Vec<ServerState> =
            (0..9).map(|_| ServerState::new(ServerShape { cores: 16, mem_gb: 128.0 })).collect();
        let index = PlacementIndex::new(&servers);
        assert_eq!(index.choose(PlacementPolicy::BestFit, &servers, 8, 32.0), Some(0));
        // Core-infeasible and mem-infeasible requests both say no.
        assert_eq!(index.choose(PlacementPolicy::BestFit, &servers, 17, 32.0), None);
        assert_eq!(index.choose(PlacementPolicy::BestFit, &servers, 8, 129.0), None);
    }

    #[test]
    fn offline_servers_are_never_chosen() {
        let mut arena = VmArena::new();
        let mut servers = servers_with_loads(&mut arena, &[0, 0]);
        servers[0].fail(&mut arena, &mut Vec::new());
        let index = PlacementIndex::new(&servers);
        for policy in POLICIES {
            assert_eq!(index.choose(policy, &servers, 1, 1.0), Some(1), "{policy}");
        }
    }

    #[test]
    fn empty_pool_chooses_nothing() {
        let servers: Vec<ServerState> = Vec::new();
        let index = PlacementIndex::new(&servers);
        for policy in POLICIES {
            assert_eq!(index.choose(policy, &servers, 1, 1.0), None, "{policy}");
        }
        assert!(index.validate(&servers));
    }

    #[test]
    fn rebuild_resizes_with_the_pool() {
        let mut arena = VmArena::new();
        let servers = servers_with_loads(&mut arena, &[4, 0, 9]);
        let mut index = PlacementIndex::new(&servers);
        let grown = servers_with_loads(&mut arena, &[0, 0, 2, 15, 16]);
        index.rebuild(&grown);
        assert!(index.validate(&grown));
        let shrunk = servers_with_loads(&mut arena, &[16]);
        index.rebuild(&shrunk);
        assert!(index.validate(&shrunk));
        assert_eq!(index.choose(PlacementPolicy::FirstFit, &shrunk, 1, 1.0), None);
    }

    #[test]
    fn validate_detects_a_stale_leaf() {
        let mut arena = VmArena::new();
        let mut servers = servers_with_loads(&mut arena, &[0, 8]);
        let index = PlacementIndex::new(&servers);
        // Mutate a server without refreshing: the validator must notice.
        servers[1].remove(&mut arena, 1008).unwrap();
        assert!(!index.validate(&servers));
    }
}
