//! Free-capacity placement index: sub-linear server selection.
//!
//! [`PlacementPolicy::choose_linear`] scans the whole pool on every
//! placement, so replay cost is O(events × servers) — the dominant term
//! in the sizing binary searches once pools reach fleet scale. The
//! [`PlacementIndex`] is a segment tree over server index keyed by free
//! cores, split into two lanes (non-empty / empty servers, because the
//! production heuristic's tie-break makes any feasible non-empty server
//! beat every feasible empty one), maintained incrementally by
//! [`crate::AllocationSim`] on every `place`/`remove`/`fail`/`degrade`/
//! `reset`. Selection then touches **only core-feasible servers**:
//!
//! - FirstFit descends to the leftmost leaf with
//!   `free_cores ≥ request` in O(log N) per candidate, skipping whole
//!   subtrees of full servers;
//! - BestFit/WorstFit enumerate the core-feasible servers of the
//!   non-empty lane (falling back to the empty lane only when nothing
//!   non-empty fits) in index order, evaluating memory feasibility and
//!   the `(is_empty, leftover)` key exactly as the linear scan does.
//!
//! Exact-equivalence contract (DESIGN.md §9): for every pool state and
//! request, [`PlacementIndex::choose`] returns the same server index as
//! [`PlacementPolicy::choose_linear`] — same `fits()` predicate
//! (including the `1e-9` memory epsilon), same float expression for the
//! leftover score, same strict-`<` first-index tie-break, same
//! non-empty-beats-empty lexicographic order. The simulator cross-checks
//! this on every selection in debug builds, and the
//! `index_equivalence` suite in `gsf-cluster` pins it end to end.

use crate::policy::PlacementPolicy;
use crate::server::ServerState;

/// Which leaf lane a tree walk consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    /// Online servers currently hosting at least one VM.
    NonEmpty,
    /// Online servers hosting nothing.
    Empty,
    /// Union of both lanes (FirstFit ignores emptiness).
    Either,
}

/// Encodes one server's lane values: `free_cores + 1` in the lane it
/// belongs to, 0 elsewhere. The +1 sentinel keeps "absent" (0) distinct
/// from "present with zero free cores", so a walk for `cores + 1` never
/// visits servers outside the lane — even for a zero-core request.
fn lane_values(s: &ServerState) -> (u64, u64) {
    if s.is_offline() {
        (0, 0)
    } else {
        let v = u64::from(s.free_cores()) + 1;
        if s.is_empty() {
            (0, v)
        } else {
            (v, 0)
        }
    }
}

/// Incrementally maintained free-capacity index over one server pool.
///
/// Two max-segment-trees share one node layout: leaf `size + i` holds
/// server `i`'s lane value, internal node `k` holds the max of its
/// children `2k` / `2k+1`. Padding leaves (`n..size`) stay 0 and are
/// never feasible.
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    /// Number of indexed servers.
    n: usize,
    /// Leaf span: smallest power of two ≥ max(n, 1).
    size: usize,
    /// Non-empty-lane tree, length `2 * size`.
    nonempty: Vec<u64>,
    /// Empty-lane tree, length `2 * size`.
    empty: Vec<u64>,
}

impl PlacementIndex {
    /// Builds the index for the current state of `servers`.
    pub fn new(servers: &[ServerState]) -> Self {
        let n = servers.len();
        let size = n.next_power_of_two().max(1);
        let mut index = Self { n, size, nonempty: vec![0; 2 * size], empty: vec![0; 2 * size] };
        index.fill(servers);
        index
    }

    /// Rebuilds in place for `servers` (after a pool-wide `reset`),
    /// reusing the allocations when the pool size is unchanged.
    pub fn rebuild(&mut self, servers: &[ServerState]) {
        if servers.len() != self.n {
            *self = Self::new(servers);
            return;
        }
        self.fill(servers);
    }

    fn fill(&mut self, servers: &[ServerState]) {
        for (i, s) in servers.iter().enumerate() {
            let (ne, e) = lane_values(s);
            self.nonempty[self.size + i] = ne;
            self.empty[self.size + i] = e;
        }
        for leaf in self.n..self.size {
            self.nonempty[self.size + leaf] = 0;
            self.empty[self.size + leaf] = 0;
        }
        for node in (1..self.size).rev() {
            self.nonempty[node] = self.nonempty[2 * node].max(self.nonempty[2 * node + 1]);
            self.empty[node] = self.empty[2 * node].max(self.empty[2 * node + 1]);
        }
    }

    /// Re-reads server `i`'s state into its leaf and repairs the path to
    /// the root — called after every mutation of that server.
    pub fn refresh(&mut self, i: usize, server: &ServerState) {
        debug_assert!(i < self.n, "refresh({i}) beyond indexed pool of {}", self.n);
        let (ne, e) = lane_values(server);
        let mut node = self.size + i;
        self.nonempty[node] = ne;
        self.empty[node] = e;
        node /= 2;
        while node >= 1 {
            self.nonempty[node] = self.nonempty[2 * node].max(self.nonempty[2 * node + 1]);
            self.empty[node] = self.empty[2 * node].max(self.empty[2 * node + 1]);
            node /= 2;
        }
    }

    fn node_val(&self, lane: Lane, node: usize) -> u64 {
        match lane {
            Lane::NonEmpty => self.nonempty[node],
            Lane::Empty => self.empty[node],
            Lane::Either => self.nonempty[node].max(self.empty[node]),
        }
    }

    /// Visits, in ascending server order, every leaf whose `lane` value
    /// is ≥ `want`; `f` returns `false` to stop early. Returns whether
    /// the walk ran to completion.
    fn walk(&self, lane: Lane, want: u64, f: &mut impl FnMut(usize) -> bool) -> bool {
        if self.n == 0 {
            return true;
        }
        self.walk_node(1, lane, want, f)
    }

    fn walk_node(
        &self,
        node: usize,
        lane: Lane,
        want: u64,
        f: &mut impl FnMut(usize) -> bool,
    ) -> bool {
        if self.node_val(lane, node) < want {
            return true;
        }
        if node >= self.size {
            return f(node - self.size);
        }
        self.walk_node(2 * node, lane, want, f) && self.walk_node(2 * node + 1, lane, want, f)
    }

    /// Chooses a server for a `cores`/`mem_gb` request exactly as
    /// [`PlacementPolicy::choose_linear`] would, touching only
    /// core-feasible servers.
    ///
    /// `servers` must be the pool this index is maintained against.
    pub fn choose(
        &self,
        policy: PlacementPolicy,
        servers: &[ServerState],
        cores: u32,
        mem_gb: f64,
    ) -> Option<usize> {
        debug_assert_eq!(servers.len(), self.n, "index maintained for a different pool");
        let want = u64::from(cores) + 1;
        match policy {
            PlacementPolicy::FirstFit => {
                let mut found = None;
                self.walk(Lane::Either, want, &mut |i| {
                    if servers[i].fits(cores, mem_gb) {
                        found = Some(i);
                        false
                    } else {
                        true
                    }
                });
                found
            }
            PlacementPolicy::BestFit | PlacementPolicy::WorstFit => {
                // The linear scan's key is (is_empty, leftover)
                // lexicographic: any feasible non-empty server beats
                // every feasible empty one, so the empty lane is
                // consulted only when the non-empty lane has no fit.
                // Within one lane the key degenerates to the leftover
                // score with strict-< (first index wins ties) — the
                // same comparison, restricted to equal first elements.
                self.best_in_lane(Lane::NonEmpty, policy, servers, cores, mem_gb, want).or_else(
                    || self.best_in_lane(Lane::Empty, policy, servers, cores, mem_gb, want),
                )
            }
        }
    }

    fn best_in_lane(
        &self,
        lane: Lane,
        policy: PlacementPolicy,
        servers: &[ServerState],
        cores: u32,
        mem_gb: f64,
        want: u64,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        self.walk(lane, want, &mut |i| {
            let s = &servers[i];
            if s.fits(cores, mem_gb) {
                let leftover = policy.leftover_key(s, cores, mem_gb);
                let better = match best {
                    None => true,
                    Some((_, best_leftover)) => leftover < best_leftover,
                };
                if better {
                    best = Some((i, leftover));
                }
            }
            true
        });
        best.map(|(i, _)| i)
    }

    /// Full-rescan consistency check: every leaf matches the lane values
    /// of its server, padding leaves are 0, and every internal node is
    /// the max of its children. The simulator `debug_assert`s this on
    /// every selection, so a mutation path that forgets to [`Self::refresh`]
    /// fails loudly in tests rather than silently diverging.
    pub fn validate(&self, servers: &[ServerState]) -> bool {
        if servers.len() != self.n {
            return false;
        }
        for (i, s) in servers.iter().enumerate() {
            if (self.nonempty[self.size + i], self.empty[self.size + i]) != lane_values(s) {
                return false;
            }
        }
        for leaf in self.n..self.size {
            if self.nonempty[self.size + leaf] != 0 || self.empty[self.size + leaf] != 0 {
                return false;
            }
        }
        for node in 1..self.size {
            if self.nonempty[node] != self.nonempty[2 * node].max(self.nonempty[2 * node + 1])
                || self.empty[node] != self.empty[2 * node].max(self.empty[2 * node + 1])
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cluster::ServerShape;
    use crate::server::PlacedVm;

    fn servers_with_loads(loads: &[u32]) -> Vec<ServerState> {
        loads
            .iter()
            .map(|&used| {
                let mut s = ServerState::new(ServerShape { cores: 16, mem_gb: 128.0 });
                if used > 0 {
                    s.place(
                        1000 + u64::from(used),
                        PlacedVm { cores: used, mem_gb: f64::from(used) * 8.0, max_mem_util: 0.5 },
                    );
                }
                s
            })
            .collect()
    }

    const POLICIES: [PlacementPolicy; 3] =
        [PlacementPolicy::BestFit, PlacementPolicy::FirstFit, PlacementPolicy::WorstFit];

    #[test]
    fn matches_linear_on_mixed_loads() {
        let servers = servers_with_loads(&[0, 8, 14, 16, 2, 0, 15]);
        let index = PlacementIndex::new(&servers);
        assert!(index.validate(&servers));
        for policy in POLICIES {
            for cores in 0..=17u32 {
                for mem in [0.0, 8.0, 64.0, 120.0, 129.0] {
                    assert_eq!(
                        index.choose(policy, &servers, cores, mem),
                        policy.choose_linear(&servers, cores, mem),
                        "{policy} cores={cores} mem={mem}"
                    );
                }
            }
        }
    }

    #[test]
    fn refresh_tracks_place_remove_fail_degrade() {
        let mut servers = servers_with_loads(&[0, 4, 8, 12]);
        let mut index = PlacementIndex::new(&servers);

        servers[0].place(1, PlacedVm { cores: 6, mem_gb: 24.0, max_mem_util: 0.5 });
        index.refresh(0, &servers[0]);
        assert!(index.validate(&servers));

        servers[1].remove(1004).unwrap();
        index.refresh(1, &servers[1]);
        assert!(index.validate(&servers));

        servers[2].fail();
        index.refresh(2, &servers[2]);
        assert!(index.validate(&servers));

        servers[3].degrade(10, 0.0);
        index.refresh(3, &servers[3]);
        assert!(index.validate(&servers));

        for policy in POLICIES {
            for cores in 1..=16u32 {
                assert_eq!(
                    index.choose(policy, &servers, cores, 4.0),
                    policy.choose_linear(&servers, cores, 4.0),
                    "{policy} cores={cores}"
                );
            }
        }
    }

    #[test]
    fn offline_servers_are_never_chosen() {
        let mut servers = servers_with_loads(&[0, 0]);
        servers[0].fail();
        let index = PlacementIndex::new(&servers);
        for policy in POLICIES {
            assert_eq!(index.choose(policy, &servers, 1, 1.0), Some(1), "{policy}");
        }
    }

    #[test]
    fn empty_pool_chooses_nothing() {
        let servers: Vec<ServerState> = Vec::new();
        let index = PlacementIndex::new(&servers);
        for policy in POLICIES {
            assert_eq!(index.choose(policy, &servers, 1, 1.0), None, "{policy}");
        }
        assert!(index.validate(&servers));
    }

    #[test]
    fn rebuild_resizes_with_the_pool() {
        let servers = servers_with_loads(&[4, 0, 9]);
        let mut index = PlacementIndex::new(&servers);
        let grown = servers_with_loads(&[0, 0, 2, 15, 16]);
        index.rebuild(&grown);
        assert!(index.validate(&grown));
        let shrunk = servers_with_loads(&[16]);
        index.rebuild(&shrunk);
        assert!(index.validate(&shrunk));
        assert_eq!(index.choose(PlacementPolicy::FirstFit, &shrunk, 1, 1.0), None);
    }

    #[test]
    fn validate_detects_a_stale_leaf() {
        let mut servers = servers_with_loads(&[0, 8]);
        let index = PlacementIndex::new(&servers);
        // Mutate a server without refreshing: the validator must notice.
        servers[1].remove(1008).unwrap();
        assert!(!index.validate(&servers));
    }
}
