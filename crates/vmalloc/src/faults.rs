//! Fault-plan data types consumed by the faulted replay.
//!
//! A [`FaultPlan`] is a time-ordered list of server-level failure and
//! repair events. Plans are *data only*: the stochastic generator that
//! samples them from AFR models lives in `gsf-maintenance` (which
//! depends on this crate), keeping the simulator itself deterministic
//! and free of randomness. An empty plan is the identity — replaying
//! with it is bit-for-bit the same as the plain replay path.
//!
//! [`FaultPlan::new`] validates its events the way `Trace::try_new`
//! validates trace events: non-finite or negative times, negative or
//! non-finite degrade amounts, and server indices past the declared
//! pool sizes are rejected at construction instead of replaying
//! garbage. The replay engines still tolerate out-of-range indices
//! defensively (a strike on a missing server is a no-op), but a plan
//! built through the public constructor cannot contain one.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which server pool a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultPool {
    /// The baseline (Gen3) pool.
    Baseline,
    /// The GreenSKU pool.
    Green,
}

impl fmt::Display for FaultPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPool::Baseline => write!(f, "baseline"),
            FaultPool::Green => write!(f, "green"),
        }
    }
}

/// What a fault does to the server it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The whole server goes offline and displaces every hosted VM.
    /// Without a matching [`FaultKind::Revive`] later in the plan the
    /// server stays down for the rest of the trace (fail-in-place
    /// fleets schedule no repairs).
    FullFailure,
    /// A component failure absorbed in place (FIP): the server keeps
    /// serving with reduced capacity. Only VMs that no longer fit are
    /// displaced.
    PartialDegrade {
        /// Usable cores removed from the server's shape.
        cores_lost: u32,
        /// Usable memory removed from the server's shape, GB.
        mem_lost_gb: f64,
    },
    /// Repair completed: the server returns to service empty, restored
    /// to its pool's pristine shape. A revive addressed at a server
    /// that is not offline is a no-op (it may have been revived by an
    /// earlier rack-level repair already).
    Revive,
}

/// One failure or repair event against one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Trace time at which the fault strikes, seconds.
    pub time_s: f64,
    /// Pool of the struck server.
    pub pool: FaultPool,
    /// Index of the struck server within its pool.
    pub server: u32,
    /// Effect of the fault.
    pub kind: FaultKind,
}

/// Why [`FaultPlan::new`] rejected an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// An event time was NaN or infinite.
    NonFiniteTime {
        /// Index of the offending event in the input order.
        event: usize,
    },
    /// An event time was negative.
    NegativeTime {
        /// Index of the offending event in the input order.
        event: usize,
    },
    /// A partial degrade carried a NaN, infinite, or negative memory
    /// loss.
    BadDegrade {
        /// Index of the offending event in the input order.
        event: usize,
    },
    /// An event addressed a server index past the declared pool size.
    ServerOutOfRange {
        /// Pool of the offending event.
        pool: FaultPool,
        /// The out-of-range server index.
        server: u32,
        /// Declared size of that pool.
        count: u32,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NonFiniteTime { event } => {
                write!(f, "fault event {event} has a non-finite time")
            }
            FaultPlanError::NegativeTime { event } => {
                write!(f, "fault event {event} has a negative time")
            }
            FaultPlanError::BadDegrade { event } => {
                write!(f, "fault event {event} has a non-finite or negative degrade amount")
            }
            FaultPlanError::ServerOutOfRange { pool, server, count } => {
                write!(
                    f,
                    "fault addresses {pool} server {server} but the pool has {count} server(s)"
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A time-ordered fault schedule for one replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    max_evac_passes: u32,
}

impl FaultPlan {
    /// Builds a validated plan for a cluster of `baseline_servers` +
    /// `green_servers`, sorting events by (time, pool, server) so
    /// replay order is independent of generation order.
    /// `max_evac_passes` bounds the re-placement retry loop per fault
    /// (at least 1).
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] for the first event with a
    /// non-finite or negative time, a non-finite or negative degrade
    /// amount, or a server index past its declared pool size.
    pub fn new(
        events: Vec<FaultEvent>,
        max_evac_passes: u32,
        baseline_servers: u32,
        green_servers: u32,
    ) -> Result<Self, FaultPlanError> {
        for (i, e) in events.iter().enumerate() {
            if !e.time_s.is_finite() {
                return Err(FaultPlanError::NonFiniteTime { event: i });
            }
            if e.time_s < 0.0 {
                return Err(FaultPlanError::NegativeTime { event: i });
            }
            if let FaultKind::PartialDegrade { mem_lost_gb, .. } = e.kind {
                if !mem_lost_gb.is_finite() || mem_lost_gb < 0.0 {
                    return Err(FaultPlanError::BadDegrade { event: i });
                }
            }
            let count = match e.pool {
                FaultPool::Baseline => baseline_servers,
                FaultPool::Green => green_servers,
            };
            if e.server >= count {
                return Err(FaultPlanError::ServerOutOfRange {
                    pool: e.pool,
                    server: e.server,
                    count,
                });
            }
        }
        Ok(Self::presorted(events, max_evac_passes))
    }

    /// Sorts and wraps events without validation. Internal escape hatch
    /// for plans derived from an already-validated plan (shard-local
    /// splits rewrite indices that are in range by construction).
    pub(crate) fn presorted(mut events: Vec<FaultEvent>, max_evac_passes: u32) -> Self {
        events.sort_by(|a, b| {
            a.time_s.total_cmp(&b.time_s).then(a.pool.cmp(&b.pool)).then(a.server.cmp(&b.server))
        });
        Self { events, max_evac_passes: max_evac_passes.max(1) }
    }

    /// The empty plan: replaying with it is the identity.
    pub fn empty() -> Self {
        Self { events: Vec::new(), max_evac_passes: 1 }
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in replay order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Bound on evacuation re-placement passes per fault.
    pub fn max_evac_passes(&self) -> u32 {
        self.max_evac_passes
    }

    /// The largest number of failure events (full or partial, not
    /// revives) sharing one strike time — the blast radius in servers
    /// of the widest correlated (fault-domain) event in the plan.
    /// Independent per-server samples almost surely give 1; an empty
    /// plan gives 0.
    pub fn max_correlated_strikes(&self) -> usize {
        let mut best = 0usize;
        let mut i = 0usize;
        while i < self.events.len() {
            let t = self.events[i].time_s;
            let mut group = 0usize;
            while i < self.events.len() && self.events[i].time_s.to_bits() == t.to_bits() {
                if !matches!(self.events[i].kind, FaultKind::Revive) {
                    group += 1;
                }
                i += 1;
            }
            best = best.max(group);
        }
        best
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::empty()
    }
}

/// Availability accounting over one faulted replay: how much VM service
/// time the injected failures actually cost, and how wide their blast
/// radius was. All fields are zero until at least one fault strikes
/// (so an inert plan keeps the summary bit-identical to the default).
///
/// When the sharded engine merges per-shard summaries, the additive
/// fields (`vm_seconds_lost`, `vm_seconds_served`,
/// `server_down_seconds`) are exact; `max_simultaneous_displaced` sums
/// per-shard peaks (an upper bound on the global instantaneous peak),
/// and `blast_radius_servers` is assigned from the *global* fault plan
/// by every replay driver, so serial and parallel execution agree
/// bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AvailabilitySummary {
    /// VM-seconds spent in the pending-placement queue: time between a
    /// VM's displacement into a saturated fleet and its re-placement,
    /// its departure, or the horizon.
    pub vm_seconds_lost: f64,
    /// VM-seconds actually served (settled residencies over the
    /// replay) — the denominator for [`Self::availability`].
    pub vm_seconds_served: f64,
    /// Peak number of VMs simultaneously waiting for capacity.
    pub max_simultaneous_displaced: usize,
    /// Servers struck by the widest correlated fault-domain event in
    /// the plan ([`FaultPlan::max_correlated_strikes`]).
    pub blast_radius_servers: usize,
    /// Server-seconds spent offline between full failures and their
    /// repairs (or the horizon) — the simulated counterpart of the
    /// analytic `oos_fraction` in `gsf-maintenance`.
    pub server_down_seconds: f64,
}

impl AvailabilitySummary {
    /// VM-minutes of downtime (the unit the availability SLO uses).
    pub fn vm_minutes_lost(&self) -> f64 {
        self.vm_seconds_lost / 60.0
    }

    /// Fraction of demanded VM time actually served: `served / (served
    /// + lost)`; 1.0 when nothing was served or lost.
    pub fn availability(&self) -> f64 {
        let demanded = self.vm_seconds_served + self.vm_seconds_lost;
        if demanded <= 0.0 {
            1.0
        } else {
            self.vm_seconds_served / demanded
        }
    }

    /// Availability expressed in nines (`-log10(1 - availability)`),
    /// capped at 9.0 for a lossless replay.
    pub fn nines(&self) -> f64 {
        let a = self.availability();
        if a >= 1.0 {
            9.0
        } else {
            (-(1.0 - a).log10()).clamp(0.0, 9.0)
        }
    }

    /// Accumulates another summary (ascending-shard-order merge).
    pub fn merge(&mut self, other: &Self) {
        self.vm_seconds_lost += other.vm_seconds_lost;
        self.vm_seconds_served += other.vm_seconds_served;
        self.max_simultaneous_displaced += other.max_simultaneous_displaced;
        self.blast_radius_servers = self.blast_radius_servers.max(other.blast_radius_servers);
        self.server_down_seconds += other.server_down_seconds;
    }
}

/// What fault injection did to one replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultSummary {
    /// Servers taken fully offline.
    pub full_failures: usize,
    /// Partial (FIP-absorbed) capacity-degradation events applied.
    pub partial_degrades: usize,
    /// Servers returned to service by a repair.
    pub revivals: usize,
    /// VMs displaced from their server by a fault.
    pub displaced: usize,
    /// Displaced VMs successfully re-placed elsewhere — either
    /// immediately during evacuation or later from the pending queue
    /// when capacity returned.
    pub evacuated: usize,
    /// Displaced VMs that never found a new home before departing or
    /// reaching the horizon — counted as violations by the
    /// fault-aware sizing searches (unless an availability SLO relaxes
    /// them into measured downtime).
    pub evacuation_failures: usize,
    /// Total usable cores removed from the cluster by faults
    /// (cumulative: revivals do not subtract).
    pub cores_lost: u64,
    /// Total usable memory removed from the cluster by faults, GB
    /// (cumulative: revivals do not subtract).
    pub mem_lost_gb: f64,
    /// Availability accounting (downtime, blast radius) for the same
    /// replay.
    pub availability: AvailabilitySummary,
}

impl FaultSummary {
    /// Whether every displaced VM found a new home.
    pub fn all_evacuated(&self) -> bool {
        self.evacuation_failures == 0
    }

    /// Whether any fault actually changed the cluster. Availability
    /// accounting is only populated when this holds, so inert plans
    /// keep the summary bit-identical to [`FaultSummary::default`].
    pub fn faults_applied(&self) -> bool {
        self.full_failures + self.partial_degrades + self.revivals > 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ev(time_s: f64, pool: FaultPool, server: u32) -> FaultEvent {
        FaultEvent { time_s, pool, server, kind: FaultKind::FullFailure }
    }

    #[test]
    fn plan_sorts_by_time_pool_server() {
        let plan = FaultPlan::new(
            vec![
                ev(5.0, FaultPool::Green, 1),
                ev(1.0, FaultPool::Baseline, 2),
                ev(5.0, FaultPool::Baseline, 0),
                ev(5.0, FaultPool::Green, 0),
            ],
            3,
            4,
            4,
        )
        .unwrap();
        let order: Vec<(f64, FaultPool, u32)> =
            plan.events().iter().map(|e| (e.time_s, e.pool, e.server)).collect();
        assert_eq!(
            order,
            vec![
                (1.0, FaultPool::Baseline, 2),
                (5.0, FaultPool::Baseline, 0),
                (5.0, FaultPool::Green, 0),
                (5.0, FaultPool::Green, 1),
            ]
        );
    }

    #[test]
    fn empty_plan_is_identity_shaped() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.max_evac_passes(), 1);
        assert_eq!(plan, FaultPlan::default());
        assert_eq!(plan.max_correlated_strikes(), 0);
    }

    #[test]
    fn evac_passes_floor_at_one() {
        let plan = FaultPlan::new(Vec::new(), 0, 0, 0).unwrap();
        assert_eq!(plan.max_evac_passes(), 1);
    }

    #[test]
    fn new_rejects_non_finite_time() {
        let e = FaultPlan::new(vec![ev(f64::NAN, FaultPool::Baseline, 0)], 1, 4, 0).unwrap_err();
        assert_eq!(e, FaultPlanError::NonFiniteTime { event: 0 });
        let e =
            FaultPlan::new(vec![ev(f64::INFINITY, FaultPool::Baseline, 0)], 1, 4, 0).unwrap_err();
        assert_eq!(e, FaultPlanError::NonFiniteTime { event: 0 });
    }

    #[test]
    fn new_rejects_negative_time() {
        let e = FaultPlan::new(
            vec![ev(1.0, FaultPool::Baseline, 0), ev(-1.0, FaultPool::Baseline, 1)],
            1,
            4,
            0,
        )
        .unwrap_err();
        assert_eq!(e, FaultPlanError::NegativeTime { event: 1 });
    }

    #[test]
    fn new_rejects_out_of_range_server_per_pool() {
        let e = FaultPlan::new(vec![ev(1.0, FaultPool::Baseline, 4)], 1, 4, 8).unwrap_err();
        assert_eq!(
            e,
            FaultPlanError::ServerOutOfRange { pool: FaultPool::Baseline, server: 4, count: 4 }
        );
        let e = FaultPlan::new(vec![ev(1.0, FaultPool::Green, 8)], 1, 4, 8).unwrap_err();
        assert_eq!(
            e,
            FaultPlanError::ServerOutOfRange { pool: FaultPool::Green, server: 8, count: 8 }
        );
        // In-range indices in both pools pass.
        assert!(FaultPlan::new(
            vec![ev(1.0, FaultPool::Baseline, 3), ev(1.0, FaultPool::Green, 7)],
            1,
            4,
            8
        )
        .is_ok());
    }

    #[test]
    fn new_rejects_bad_degrade_amounts() {
        let bad = |mem_lost_gb: f64| FaultEvent {
            time_s: 1.0,
            pool: FaultPool::Baseline,
            server: 0,
            kind: FaultKind::PartialDegrade { cores_lost: 1, mem_lost_gb },
        };
        for mem in [f64::NAN, f64::INFINITY, -1.0] {
            let e = FaultPlan::new(vec![bad(mem)], 1, 1, 0).unwrap_err();
            assert_eq!(e, FaultPlanError::BadDegrade { event: 0 }, "mem_lost_gb = {mem}");
        }
        assert!(FaultPlan::new(vec![bad(0.0)], 1, 1, 0).is_ok());
    }

    #[test]
    fn max_correlated_strikes_counts_widest_same_time_group() {
        let revive = |t: f64, server: u32| FaultEvent {
            time_s: t,
            pool: FaultPool::Baseline,
            server,
            kind: FaultKind::Revive,
        };
        let plan = FaultPlan::new(
            vec![
                ev(1.0, FaultPool::Baseline, 0),
                // Domain event at t=5 striking three servers.
                ev(5.0, FaultPool::Baseline, 1),
                ev(5.0, FaultPool::Baseline, 2),
                ev(5.0, FaultPool::Green, 0),
                // Revives never count toward the blast radius.
                revive(9.0, 0),
                revive(9.0, 1),
                revive(9.0, 2),
            ],
            1,
            4,
            4,
        )
        .unwrap();
        assert_eq!(plan.max_correlated_strikes(), 3);
    }

    #[test]
    fn availability_summary_math() {
        let mut a = AvailabilitySummary::default();
        assert_eq!(a.availability(), 1.0);
        assert_eq!(a.nines(), 9.0);
        a.vm_seconds_served = 999.0;
        a.vm_seconds_lost = 1.0;
        assert!((a.availability() - 0.999).abs() < 1e-12);
        assert!((a.nines() - 3.0).abs() < 1e-9);
        assert!((a.vm_minutes_lost() - 1.0 / 60.0).abs() < 1e-12);

        let mut b = AvailabilitySummary {
            vm_seconds_lost: 2.0,
            vm_seconds_served: 1.0,
            max_simultaneous_displaced: 3,
            blast_radius_servers: 5,
            server_down_seconds: 7.0,
        };
        b.merge(&AvailabilitySummary {
            vm_seconds_lost: 1.0,
            vm_seconds_served: 9.0,
            max_simultaneous_displaced: 4,
            blast_radius_servers: 2,
            server_down_seconds: 3.0,
        });
        assert_eq!(b.vm_seconds_lost, 3.0);
        assert_eq!(b.vm_seconds_served, 10.0);
        assert_eq!(b.max_simultaneous_displaced, 7);
        assert_eq!(b.blast_radius_servers, 5);
        assert_eq!(b.server_down_seconds, 10.0);
    }
}
