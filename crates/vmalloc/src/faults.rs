//! Fault-plan data types consumed by the faulted replay.
//!
//! A [`FaultPlan`] is a time-ordered list of server-level failure
//! events. Plans are *data only*: the stochastic generator that samples
//! them from AFR models lives in `gsf-maintenance` (which depends on
//! this crate), keeping the simulator itself deterministic and free of
//! randomness. An empty plan is the identity — replaying with it is
//! bit-for-bit the same as the plain replay path.

use serde::{Deserialize, Serialize};

/// Which server pool a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultPool {
    /// The baseline (Gen3) pool.
    Baseline,
    /// The GreenSKU pool.
    Green,
}

/// What a fault does to the server it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The whole server goes offline for the rest of the trace
    /// (fail-in-place: no mid-trace repair). Every hosted VM is
    /// displaced and must be evacuated.
    FullFailure,
    /// A component failure absorbed in place (FIP): the server keeps
    /// serving with reduced capacity. Only VMs that no longer fit are
    /// displaced.
    PartialDegrade {
        /// Usable cores removed from the server's shape.
        cores_lost: u32,
        /// Usable memory removed from the server's shape, GB.
        mem_lost_gb: f64,
    },
}

/// One failure event against one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Trace time at which the fault strikes, seconds.
    pub time_s: f64,
    /// Pool of the struck server.
    pub pool: FaultPool,
    /// Index of the struck server within its pool.
    pub server: u32,
    /// Effect of the fault.
    pub kind: FaultKind,
}

/// A time-ordered fault schedule for one replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    max_evac_passes: u32,
}

impl FaultPlan {
    /// Builds a plan, sorting events by (time, pool, server) so replay
    /// order is independent of generation order. `max_evac_passes`
    /// bounds the re-placement retry loop per fault (at least 1).
    pub fn new(mut events: Vec<FaultEvent>, max_evac_passes: u32) -> Self {
        events.sort_by(|a, b| {
            a.time_s.total_cmp(&b.time_s).then(a.pool.cmp(&b.pool)).then(a.server.cmp(&b.server))
        });
        Self { events, max_evac_passes: max_evac_passes.max(1) }
    }

    /// The empty plan: replaying with it is the identity.
    pub fn empty() -> Self {
        Self { events: Vec::new(), max_evac_passes: 1 }
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in replay order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Bound on evacuation re-placement passes per fault.
    pub fn max_evac_passes(&self) -> u32 {
        self.max_evac_passes
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::empty()
    }
}

/// What fault injection did to one replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultSummary {
    /// Servers taken fully offline.
    pub full_failures: usize,
    /// Partial (FIP-absorbed) capacity-degradation events applied.
    pub partial_degrades: usize,
    /// VMs displaced from their server by a fault.
    pub displaced: usize,
    /// Displaced VMs successfully re-placed elsewhere.
    pub evacuated: usize,
    /// Displaced VMs that could not be re-placed — counted as
    /// violations by the fault-aware sizing searches.
    pub evacuation_failures: usize,
    /// Total usable cores removed from the cluster by faults.
    pub cores_lost: u64,
    /// Total usable memory removed from the cluster by faults, GB.
    pub mem_lost_gb: f64,
}

impl FaultSummary {
    /// Whether every displaced VM found a new home.
    pub fn all_evacuated(&self) -> bool {
        self.evacuation_failures == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ev(time_s: f64, pool: FaultPool, server: u32) -> FaultEvent {
        FaultEvent { time_s, pool, server, kind: FaultKind::FullFailure }
    }

    #[test]
    fn plan_sorts_by_time_pool_server() {
        let plan = FaultPlan::new(
            vec![
                ev(5.0, FaultPool::Green, 1),
                ev(1.0, FaultPool::Baseline, 2),
                ev(5.0, FaultPool::Baseline, 0),
                ev(5.0, FaultPool::Green, 0),
            ],
            3,
        );
        let order: Vec<(f64, FaultPool, u32)> =
            plan.events().iter().map(|e| (e.time_s, e.pool, e.server)).collect();
        assert_eq!(
            order,
            vec![
                (1.0, FaultPool::Baseline, 2),
                (5.0, FaultPool::Baseline, 0),
                (5.0, FaultPool::Green, 0),
                (5.0, FaultPool::Green, 1),
            ]
        );
    }

    #[test]
    fn empty_plan_is_identity_shaped() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.max_evac_passes(), 1);
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn evac_passes_floor_at_one() {
        let plan = FaultPlan::new(Vec::new(), 0);
        assert_eq!(plan.max_evac_passes(), 1);
    }
}
