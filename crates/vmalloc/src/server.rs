//! Per-server allocation state.

use crate::arena::VmArena;
use crate::cluster::ServerShape;
use serde::{Deserialize, Serialize};

/// Tolerance on memory-feasibility comparisons, GB. Placement sizes are
/// products of trace memory and scaling factors, so requests that
/// logically equal the free capacity can differ from it in the last
/// bits; comparisons allow this much slack.
pub(crate) const MEM_EPSILON_GB: f64 = 1e-9;

/// The one memory-feasibility predicate: `free_gb` accommodates a
/// `mem_gb` request when it covers it to within [`MEM_EPSILON_GB`].
///
/// Both admission ([`ServerState::fits`]) and violation detection
/// ([`ServerState::degrade`]'s eviction loop, via a zero-size request)
/// must route through this function. They previously used two
/// independently written comparisons (`free >= mem - 1e-9` vs
/// `allocated > capacity + 1e-9`), which tolerated a band where a
/// server the admission side would call over-committed survived a
/// degrade un-evicted; one shared predicate makes that drift
/// impossible.
pub(crate) fn mem_fits(free_gb: f64, mem_gb: f64) -> bool {
    free_gb >= mem_gb - MEM_EPSILON_GB
}

/// A VM as placed on a server (possibly scaled relative to its trace
/// request).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedVm {
    /// Cores actually allocated.
    pub cores: u32,
    /// Memory actually allocated, GB.
    pub mem_gb: f64,
    /// Maximum fraction of allocated memory the VM will touch.
    pub max_mem_util: f64,
}

/// Allocation state of one server.
///
/// The VMs themselves live in the cluster-wide [`VmArena`]; the server
/// holds only an occupancy list of arena slots, **sorted ascending by
/// VM id**. Every float reduction over a server's VMs (e.g.
/// [`Self::max_touched_mem_fraction`], the degrade eviction loop) walks
/// that list in order, so accumulation order — and therefore every low
/// bit the equivalence suites pin — is exactly what the former
/// `BTreeMap<u64, PlacedVm>` storage produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerState {
    shape: ServerShape,
    cores_allocated: u32,
    mem_allocated_gb: f64,
    /// Arena slots of hosted VMs, sorted ascending by `arena.id(slot)`.
    vms: Vec<u32>,
    offline: bool,
}

impl ServerState {
    /// Creates an empty server of the given shape.
    pub fn new(shape: ServerShape) -> Self {
        Self { shape, cores_allocated: 0, mem_allocated_gb: 0.0, vms: Vec::new(), offline: false }
    }

    /// The server's shape.
    pub fn shape(&self) -> ServerShape {
        self.shape
    }

    /// Empties the server and re-shapes it, so repeated simulations
    /// reuse the server (and its occupancy list's capacity) instead of
    /// re-allocating.
    ///
    /// Does **not** release the occupants' arena slots: callers either
    /// reset the whole arena alongside ([`crate::AllocationSim::reset`])
    /// or only reset servers that are already empty (a fault revive).
    pub fn reset(&mut self, shape: ServerShape) {
        self.shape = shape;
        self.cores_allocated = 0;
        self.mem_allocated_gb = 0.0;
        self.vms.clear();
        self.offline = false;
    }

    /// Currently allocated cores.
    pub fn cores_allocated(&self) -> u32 {
        self.cores_allocated
    }

    /// Currently allocated memory, GB.
    pub fn mem_allocated_gb(&self) -> f64 {
        self.mem_allocated_gb
    }

    /// Number of VMs currently hosted.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Whether the server hosts no VMs.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Free cores.
    pub fn free_cores(&self) -> u32 {
        self.shape.cores - self.cores_allocated
    }

    /// Free memory, GB.
    pub fn free_mem_gb(&self) -> f64 {
        self.shape.mem_gb - self.mem_allocated_gb
    }

    /// Whether a request of `cores`/`mem_gb` fits. An offline server
    /// fits nothing.
    pub fn fits(&self, cores: u32, mem_gb: f64) -> bool {
        !self.offline && self.free_cores() >= cores && mem_fits(self.free_mem_gb(), mem_gb)
    }

    /// Whether the server has been taken offline by a full failure.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Position of `vm_id` in the occupancy list, or the insertion
    /// point keeping the list sorted ascending by id.
    fn search(&self, arena: &VmArena, vm_id: u64) -> Result<usize, usize> {
        self.vms.binary_search_by(|&slot| arena.id(slot).cmp(&vm_id))
    }

    /// Fully fails the server: it goes offline for good (fail-in-place,
    /// no mid-trace repair) and every hosted VM is displaced. Appends
    /// the displaced VM ids to `displaced` in ascending order and
    /// releases their arena slots.
    pub fn fail(&mut self, arena: &mut VmArena, displaced: &mut Vec<u64>) {
        self.offline = true;
        for &slot in &self.vms {
            displaced.push(arena.id(slot));
            arena.release(slot);
        }
        self.vms.clear();
        self.cores_allocated = 0;
        self.mem_allocated_gb = 0.0;
    }

    /// Shrinks the server's usable shape in place (an FIP-absorbed
    /// partial failure), evicting the newest VMs (highest id first)
    /// until the remaining allocation fits — "fits" judged by the same
    /// [`mem_fits`] predicate admission uses (as a zero-size request
    /// against the shrunken free capacity), so the eviction loop stops
    /// exactly where [`Self::fits`] would start admitting again.
    /// Appends the evicted ids to `evicted`, newest first.
    pub fn degrade(
        &mut self,
        arena: &mut VmArena,
        cores_lost: u32,
        mem_lost_gb: f64,
        evicted: &mut Vec<u64>,
    ) {
        self.shape.cores = self.shape.cores.saturating_sub(cores_lost);
        self.shape.mem_gb = (self.shape.mem_gb - mem_lost_gb.max(0.0)).max(0.0);
        while self.cores_allocated > self.shape.cores || !mem_fits(self.free_mem_gb(), 0.0) {
            let Some(slot) = self.vms.pop() else { break };
            self.cores_allocated -= arena.cores(slot);
            self.mem_allocated_gb = if self.vms.is_empty() {
                0.0
            } else {
                (self.mem_allocated_gb - arena.mem_gb(slot)).max(0.0)
            };
            evicted.push(arena.id(slot));
            arena.release(slot);
        }
    }

    /// Core packing density `allocated / allocatable`; 0.0 once a
    /// degrade has shrunk the shape to zero cores (an empty husk packs
    /// nothing — the former `x / 0` here fed NaN/inf into metrics).
    pub fn core_density(&self) -> f64 {
        if self.shape.cores == 0 {
            return 0.0;
        }
        f64::from(self.cores_allocated) / f64::from(self.shape.cores)
    }

    /// Memory packing density `allocated / allocatable`; 0.0 for a
    /// zero-capacity shape, as with [`Self::core_density`].
    pub fn mem_density(&self) -> f64 {
        if self.shape.mem_gb <= 0.0 {
            return 0.0;
        }
        self.mem_allocated_gb / self.shape.mem_gb
    }

    /// Maximum memory the hosted VMs will ever touch, as a fraction of
    /// the server's capacity (the Fig. 10 per-server statistic); 0.0
    /// for a zero-capacity shape.
    pub fn max_touched_mem_fraction(&self, arena: &VmArena) -> f64 {
        if self.shape.mem_gb <= 0.0 {
            return 0.0;
        }
        let touched: f64 =
            self.vms.iter().map(|&slot| arena.mem_gb(slot) * arena.max_mem_util(slot)).sum();
        touched / self.shape.mem_gb
    }

    /// Places a VM, allocating its arena slot.
    ///
    /// # Panics
    ///
    /// Panics if the VM does not fit or the id is already present —
    /// callers must check [`Self::fits`] first; violating this is a
    /// scheduler bug, not an input error.
    pub fn place(&mut self, arena: &mut VmArena, vm_id: u64, vm: PlacedVm) {
        assert!(self.fits(vm.cores, vm.mem_gb), "place() called without fits() check");
        let Err(pos) = self.search(arena, vm_id) else {
            // gsf-lint: allow(P1) -- documented contract panic: a duplicate id is a scheduler bug
            panic!("VM {vm_id} placed twice on one server");
        };
        let slot = arena.alloc(vm_id, vm);
        self.vms.insert(pos, slot);
        self.cores_allocated += vm.cores;
        self.mem_allocated_gb += vm.mem_gb;
    }

    /// Removes a VM, releasing its arena slot; returns the placement if
    /// it was present.
    ///
    /// When the last VM leaves, the memory counter is reset to exactly
    /// zero instead of trusting the running `+=`/`-=` sum: repeated
    /// place/remove cycles accumulate float error (the `.max(0.0)`
    /// clamp only hides the negative half of it), and a drifted counter
    /// would skew every `free_mem_gb()` comparison [`Self::fits`] and
    /// the placement index share for the rest of the replay.
    pub fn remove(&mut self, arena: &mut VmArena, vm_id: u64) -> Option<PlacedVm> {
        let pos = self.search(arena, vm_id).ok()?;
        let slot = self.vms.remove(pos);
        let vm = arena.placed(slot);
        arena.release(slot);
        self.cores_allocated -= vm.cores;
        self.mem_allocated_gb =
            if self.vms.is_empty() { 0.0 } else { (self.mem_allocated_gb - vm.mem_gb).max(0.0) };
        Some(vm)
    }

    /// Whether this server's occupancy list is internally consistent
    /// with `arena`: sorted strictly ascending by VM id, with the
    /// `cores_allocated` aggregate exactly equal to a fresh fold over
    /// the slots and `mem_allocated_gb` within float-drift tolerance of
    /// one (the running `+=`/`-=` sum legitimately drifts sub-epsilon
    /// between exact-zero resets).
    pub fn storage_consistent(&self, arena: &VmArena) -> bool {
        let sorted = self.vms.windows(2).all(|w| arena.id(w[0]) < arena.id(w[1]));
        let cores: u32 = self.vms.iter().map(|&slot| arena.cores(slot)).sum();
        let mem: f64 = self.vms.iter().map(|&slot| arena.mem_gb(slot)).sum();
        sorted && cores == self.cores_allocated && (mem - self.mem_allocated_gb).abs() <= 1e-6
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn shape() -> ServerShape {
        ServerShape { cores: 80, mem_gb: 768.0 }
    }

    fn vm(cores: u32) -> PlacedVm {
        PlacedVm { cores, mem_gb: f64::from(cores) * 4.0, max_mem_util: 0.5 }
    }

    #[test]
    fn place_and_remove_roundtrip() {
        let mut arena = VmArena::new();
        let mut s = ServerState::new(shape());
        assert!(s.is_empty());
        s.place(&mut arena, 1, vm(8));
        s.place(&mut arena, 2, vm(16));
        assert_eq!(s.cores_allocated(), 24);
        assert_eq!(s.vm_count(), 2);
        assert!(!s.is_empty());
        assert!(s.storage_consistent(&arena));
        assert_eq!(s.remove(&mut arena, 1).unwrap().cores, 8);
        assert_eq!(s.cores_allocated(), 16);
        assert!(s.remove(&mut arena, 1).is_none());
        assert_eq!(arena.live(), 1);
    }

    #[test]
    fn occupancy_stays_sorted_by_id_not_slot() {
        // Ids placed out of order while slots recycle LIFO: the
        // occupancy list must order by id regardless.
        let mut arena = VmArena::new();
        let mut s = ServerState::new(shape());
        s.place(&mut arena, 30, vm(1));
        s.place(&mut arena, 10, vm(1));
        s.remove(&mut arena, 30).unwrap();
        s.place(&mut arena, 20, vm(1)); // recycles 30's slot
        s.place(&mut arena, 5, vm(1));
        assert!(s.storage_consistent(&arena));
        let mut displaced = Vec::new();
        s.fail(&mut arena, &mut displaced);
        assert_eq!(displaced, vec![5, 10, 20], "displacement walks ascending ids");
    }

    #[test]
    fn fits_respects_both_resources() {
        let mut arena = VmArena::new();
        let mut s = ServerState::new(ServerShape { cores: 16, mem_gb: 64.0 });
        assert!(s.fits(16, 64.0));
        assert!(!s.fits(17, 1.0));
        assert!(!s.fits(1, 65.0));
        s.place(&mut arena, 1, PlacedVm { cores: 8, mem_gb: 60.0, max_mem_util: 1.0 });
        assert!(s.fits(8, 4.0));
        assert!(!s.fits(8, 5.0));
    }

    #[test]
    #[should_panic(expected = "without fits()")]
    fn place_without_fit_panics() {
        let mut arena = VmArena::new();
        let mut s = ServerState::new(ServerShape { cores: 4, mem_gb: 16.0 });
        s.place(&mut arena, 1, vm(8));
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn duplicate_placement_panics() {
        let mut arena = VmArena::new();
        let mut s = ServerState::new(shape());
        s.place(&mut arena, 1, vm(2));
        s.place(&mut arena, 1, vm(2));
    }

    #[test]
    fn fail_takes_server_offline_and_displaces_all() {
        let mut arena = VmArena::new();
        let mut s = ServerState::new(shape());
        s.place(&mut arena, 3, vm(8));
        s.place(&mut arena, 1, vm(4));
        let mut displaced = Vec::new();
        s.fail(&mut arena, &mut displaced);
        assert_eq!(displaced, vec![1, 3]);
        assert!(s.is_offline());
        assert!(s.is_empty());
        assert_eq!(s.cores_allocated(), 0);
        assert_eq!(arena.live(), 0, "failure releases the arena slots");
        assert!(!s.fits(1, 1.0), "offline server must not accept VMs");
        s.reset(shape());
        assert!(!s.is_offline(), "reset brings the server back");
        assert!(s.fits(1, 1.0));
    }

    #[test]
    fn degrade_evicts_newest_until_fit() {
        let mut arena = VmArena::new();
        let mut s = ServerState::new(ServerShape { cores: 16, mem_gb: 64.0 });
        s.place(&mut arena, 1, PlacedVm { cores: 6, mem_gb: 24.0, max_mem_util: 0.5 });
        s.place(&mut arena, 2, PlacedVm { cores: 6, mem_gb: 24.0, max_mem_util: 0.5 });
        // Lose half the cores: 12 allocated > 8 remaining, so the
        // newest VM (id 2) is evicted; id 1 (6 <= 8) stays.
        let mut evicted = Vec::new();
        s.degrade(&mut arena, 8, 0.0, &mut evicted);
        assert_eq!(evicted, vec![2]);
        assert_eq!(s.shape().cores, 8);
        assert_eq!(s.cores_allocated(), 6);
        assert_eq!(arena.live(), 1);
        assert!(!s.is_offline());
        assert!(s.fits(2, 8.0));
        assert!(!s.fits(3, 8.0));
    }

    #[test]
    fn degrade_clamps_at_zero_capacity() {
        let mut arena = VmArena::new();
        let mut s = ServerState::new(ServerShape { cores: 4, mem_gb: 16.0 });
        s.place(&mut arena, 1, PlacedVm { cores: 2, mem_gb: 8.0, max_mem_util: 0.5 });
        let mut evicted = Vec::new();
        s.degrade(&mut arena, 100, 1000.0, &mut evicted);
        assert_eq!(evicted, vec![1]);
        assert_eq!(s.shape().cores, 0);
        assert_eq!(s.shape().mem_gb, 0.0);
        assert!(s.is_empty());
        assert!(!s.fits(1, 0.0));
    }

    #[test]
    fn zero_capacity_shapes_report_zero_density_not_nan() {
        // A degrade that wipes the whole shape used to leave
        // `core_density()`/`mem_density()` dividing by zero, feeding
        // NaN (0/0) or inf into the metrics summaries. Zero-capacity
        // shapes now report density 0.0 across all three statistics.
        let mut arena = VmArena::new();
        let mut s = ServerState::new(ServerShape { cores: 4, mem_gb: 16.0 });
        s.place(&mut arena, 1, PlacedVm { cores: 2, mem_gb: 8.0, max_mem_util: 0.5 });
        let mut evicted = Vec::new();
        s.degrade(&mut arena, 100, 1000.0, &mut evicted);
        assert_eq!(s.shape().cores, 0);
        assert_eq!(s.shape().mem_gb, 0.0);
        assert_eq!(s.core_density(), 0.0);
        assert_eq!(s.mem_density(), 0.0);
        assert_eq!(s.max_touched_mem_fraction(&arena), 0.0);
        // A cores-only wipe leaves memory capacity: only the core
        // density needs the guard.
        let mut s = ServerState::new(ServerShape { cores: 4, mem_gb: 16.0 });
        s.place(&mut arena, 2, PlacedVm { cores: 2, mem_gb: 8.0, max_mem_util: 0.5 });
        s.degrade(&mut arena, 100, 0.0, &mut evicted);
        assert_eq!(s.core_density(), 0.0);
        assert!(s.core_density().is_finite());
        assert!(s.mem_density().is_finite());
    }

    #[test]
    fn mem_counter_does_not_drift_across_place_remove_cycles() {
        // Fractional memory sizes whose running sum is not exactly
        // representable: a long alternating place/remove sequence must
        // end with the counter at exactly zero once the server empties,
        // not at an accumulated ±ε the `.max(0.0)` clamp half-hides.
        let shape = ServerShape { cores: 64, mem_gb: 768.0 };
        let mut arena = VmArena::new();
        let mut s = ServerState::new(shape);
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..500u64 {
            // Up to four residents at a time, sizes like 0.1·k GB that
            // sum inexactly in binary floating point.
            let residents: Vec<u64> = (0..(next() % 4 + 1)).map(|k| round * 10 + k).collect();
            for &id in &residents {
                let mem = 0.1 * (next() % 400 + 1) as f64;
                s.place(&mut arena, id, PlacedVm { cores: 1, mem_gb: mem, max_mem_util: 0.5 });
            }
            for &id in &residents {
                s.remove(&mut arena, id).unwrap();
            }
            assert!(s.is_empty());
            // Exact equality, not an epsilon band: the regression this
            // pins is precisely the sub-epsilon drift.
            assert_eq!(s.mem_allocated_gb(), 0.0, "drift after round {round}");
            assert_eq!(s.free_mem_gb(), shape.mem_gb, "free-mem drift after round {round}");
        }
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn admission_and_eviction_share_one_memory_epsilon() {
        // The drift this pins: `fits` and `degrade` previously wrote
        // their memory comparisons independently (`free >= mem - 1e-9`
        // vs `allocated > capacity + 1e-9`); both now route through
        // `mem_fits`, so the eviction threshold sits exactly at the
        // admission threshold. Probe both sides of the shared band.
        let shape = ServerShape { cores: 16, mem_gb: 32.0 };
        let mut arena = VmArena::new();

        // Admission tolerates a request half an epsilon over the free
        // capacity; the resulting over-commit is *feasible*, so a
        // zero-loss degrade must not evict.
        let mut s = ServerState::new(shape);
        assert!(s.fits(1, 32.0 + 0.5 * MEM_EPSILON_GB));
        s.place(
            &mut arena,
            1,
            PlacedVm { cores: 1, mem_gb: 32.0 + 0.5 * MEM_EPSILON_GB, max_mem_util: 0.5 },
        );
        let mut evicted = Vec::new();
        s.degrade(&mut arena, 0, 0.0, &mut evicted);
        assert!(evicted.is_empty(), "within-epsilon over-commit must survive");
        assert!(mem_fits(s.free_mem_gb(), 0.0));

        // An over-commit of 2 epsilon (reachable only through a shape
        // shrink, never through admission) violates the same predicate
        // and must be evicted.
        let mut s = ServerState::new(shape);
        s.place(&mut arena, 1, PlacedVm { cores: 1, mem_gb: 31.0, max_mem_util: 0.5 });
        let mut evicted = Vec::new();
        s.degrade(&mut arena, 0, 1.0 + 2.0 * MEM_EPSILON_GB, &mut evicted);
        assert_eq!(evicted, vec![1], "past-epsilon over-commit must evict");

        // Invariant across the boundary: after any degrade, whatever
        // survives satisfies the admission predicate for a zero-size
        // request — the two call sites agree on what "fits" means.
        for extra in [0.0, 0.5 * MEM_EPSILON_GB, 2.0 * MEM_EPSILON_GB, 0.3, 1.0] {
            let mut arena = VmArena::new();
            let mut s = ServerState::new(shape);
            s.place(&mut arena, 1, PlacedVm { cores: 2, mem_gb: 20.0, max_mem_util: 0.5 });
            s.place(&mut arena, 2, PlacedVm { cores: 2, mem_gb: 10.0, max_mem_util: 0.5 });
            let mut evicted = Vec::new();
            s.degrade(&mut arena, 0, 2.0 + extra, &mut evicted);
            assert!(
                s.is_empty() || s.fits(0, 0.0),
                "degrade(0, {extra}) left an allocation the admission predicate rejects"
            );
        }
    }

    #[test]
    fn densities() {
        let mut arena = VmArena::new();
        let mut s = ServerState::new(shape());
        s.place(&mut arena, 1, PlacedVm { cores: 40, mem_gb: 384.0, max_mem_util: 0.5 });
        assert!((s.core_density() - 0.5).abs() < 1e-12);
        assert!((s.mem_density() - 0.5).abs() < 1e-12);
        assert!((s.max_touched_mem_fraction(&arena) - 0.25).abs() < 1e-12);
    }
}
