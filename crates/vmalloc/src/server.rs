//! Per-server allocation state.

use crate::cluster::ServerShape;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tolerance on memory-feasibility comparisons, GB. Placement sizes are
/// products of trace memory and scaling factors, so requests that
/// logically equal the free capacity can differ from it in the last
/// bits; comparisons allow this much slack.
pub(crate) const MEM_EPSILON_GB: f64 = 1e-9;

/// The one memory-feasibility predicate: `free_gb` accommodates a
/// `mem_gb` request when it covers it to within [`MEM_EPSILON_GB`].
///
/// Both admission ([`ServerState::fits`]) and violation detection
/// ([`ServerState::degrade`]'s eviction loop, via a zero-size request)
/// must route through this function. They previously used two
/// independently written comparisons (`free >= mem - 1e-9` vs
/// `allocated > capacity + 1e-9`), which tolerated a band where a
/// server the admission side would call over-committed survived a
/// degrade un-evicted; one shared predicate makes that drift
/// impossible.
pub(crate) fn mem_fits(free_gb: f64, mem_gb: f64) -> bool {
    free_gb >= mem_gb - MEM_EPSILON_GB
}

/// A VM as placed on a server (possibly scaled relative to its trace
/// request).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedVm {
    /// Cores actually allocated.
    pub cores: u32,
    /// Memory actually allocated, GB.
    pub mem_gb: f64,
    /// Maximum fraction of allocated memory the VM will touch.
    pub max_mem_util: f64,
}

/// Allocation state of one server.
///
/// VMs live in a `BTreeMap` keyed by id so every float reduction over
/// them (e.g. [`Self::max_touched_mem_fraction`]) accumulates in a
/// fixed order — a `HashMap` here made outcomes differ in the last bits
/// between otherwise identical runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerState {
    shape: ServerShape,
    cores_allocated: u32,
    mem_allocated_gb: f64,
    vms: BTreeMap<u64, PlacedVm>,
    offline: bool,
}

impl ServerState {
    /// Creates an empty server of the given shape.
    pub fn new(shape: ServerShape) -> Self {
        Self {
            shape,
            cores_allocated: 0,
            mem_allocated_gb: 0.0,
            vms: BTreeMap::new(),
            offline: false,
        }
    }

    /// The server's shape.
    pub fn shape(&self) -> ServerShape {
        self.shape
    }

    /// Empties the server and re-shapes it, so repeated simulations
    /// reuse the server (and its pool slot) instead of re-allocating.
    pub fn reset(&mut self, shape: ServerShape) {
        self.shape = shape;
        self.cores_allocated = 0;
        self.mem_allocated_gb = 0.0;
        self.vms.clear();
        self.offline = false;
    }

    /// Currently allocated cores.
    pub fn cores_allocated(&self) -> u32 {
        self.cores_allocated
    }

    /// Currently allocated memory, GB.
    pub fn mem_allocated_gb(&self) -> f64 {
        self.mem_allocated_gb
    }

    /// Number of VMs currently hosted.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Whether the server hosts no VMs.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Free cores.
    pub fn free_cores(&self) -> u32 {
        self.shape.cores - self.cores_allocated
    }

    /// Free memory, GB.
    pub fn free_mem_gb(&self) -> f64 {
        self.shape.mem_gb - self.mem_allocated_gb
    }

    /// Whether a request of `cores`/`mem_gb` fits. An offline server
    /// fits nothing.
    pub fn fits(&self, cores: u32, mem_gb: f64) -> bool {
        !self.offline && self.free_cores() >= cores && mem_fits(self.free_mem_gb(), mem_gb)
    }

    /// Whether the server has been taken offline by a full failure.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Fully fails the server: it goes offline for good (fail-in-place,
    /// no mid-trace repair) and every hosted VM is displaced. Returns
    /// the displaced VM ids in ascending order.
    pub fn fail(&mut self) -> Vec<u64> {
        self.offline = true;
        let displaced: Vec<u64> = self.vms.keys().copied().collect();
        self.vms.clear();
        self.cores_allocated = 0;
        self.mem_allocated_gb = 0.0;
        displaced
    }

    /// Shrinks the server's usable shape in place (an FIP-absorbed
    /// partial failure), evicting the newest VMs (highest id first)
    /// until the remaining allocation fits — "fits" judged by the same
    /// [`mem_fits`] predicate admission uses (as a zero-size request
    /// against the shrunken free capacity), so the eviction loop stops
    /// exactly where [`Self::fits`] would start admitting again.
    pub fn degrade(&mut self, cores_lost: u32, mem_lost_gb: f64) -> Vec<u64> {
        self.shape.cores = self.shape.cores.saturating_sub(cores_lost);
        self.shape.mem_gb = (self.shape.mem_gb - mem_lost_gb.max(0.0)).max(0.0);
        let mut evicted = Vec::new();
        while self.cores_allocated > self.shape.cores || !mem_fits(self.free_mem_gb(), 0.0) {
            let Some((&id, _)) = self.vms.last_key_value() else { break };
            self.remove(id);
            evicted.push(id);
        }
        evicted
    }

    /// Core packing density `allocated / allocatable`.
    pub fn core_density(&self) -> f64 {
        f64::from(self.cores_allocated) / f64::from(self.shape.cores)
    }

    /// Memory packing density `allocated / allocatable`.
    pub fn mem_density(&self) -> f64 {
        self.mem_allocated_gb / self.shape.mem_gb
    }

    /// Maximum memory the hosted VMs will ever touch, as a fraction of
    /// the server's capacity (the Fig. 10 per-server statistic).
    pub fn max_touched_mem_fraction(&self) -> f64 {
        let touched: f64 = self.vms.values().map(|v| v.mem_gb * v.max_mem_util).sum();
        touched / self.shape.mem_gb
    }

    /// Places a VM.
    ///
    /// # Panics
    ///
    /// Panics if the VM does not fit or the id is already present —
    /// callers must check [`Self::fits`] first; violating this is a
    /// scheduler bug, not an input error.
    pub fn place(&mut self, vm_id: u64, vm: PlacedVm) {
        assert!(self.fits(vm.cores, vm.mem_gb), "place() called without fits() check");
        let prev = self.vms.insert(vm_id, vm);
        assert!(prev.is_none(), "VM {vm_id} placed twice on one server");
        self.cores_allocated += vm.cores;
        self.mem_allocated_gb += vm.mem_gb;
    }

    /// Removes a VM; returns the placement if it was present.
    ///
    /// When the last VM leaves, the memory counter is reset to exactly
    /// zero instead of trusting the running `+=`/`-=` sum: repeated
    /// place/remove cycles accumulate float error (the `.max(0.0)`
    /// clamp only hides the negative half of it), and a drifted counter
    /// would skew every `free_mem_gb()` comparison [`Self::fits`] and
    /// the placement index share for the rest of the replay.
    pub fn remove(&mut self, vm_id: u64) -> Option<PlacedVm> {
        let vm = self.vms.remove(&vm_id)?;
        self.cores_allocated -= vm.cores;
        self.mem_allocated_gb =
            if self.vms.is_empty() { 0.0 } else { (self.mem_allocated_gb - vm.mem_gb).max(0.0) };
        Some(vm)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn shape() -> ServerShape {
        ServerShape { cores: 80, mem_gb: 768.0 }
    }

    fn vm(cores: u32) -> PlacedVm {
        PlacedVm { cores, mem_gb: f64::from(cores) * 4.0, max_mem_util: 0.5 }
    }

    #[test]
    fn place_and_remove_roundtrip() {
        let mut s = ServerState::new(shape());
        assert!(s.is_empty());
        s.place(1, vm(8));
        s.place(2, vm(16));
        assert_eq!(s.cores_allocated(), 24);
        assert_eq!(s.vm_count(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.remove(1).unwrap().cores, 8);
        assert_eq!(s.cores_allocated(), 16);
        assert!(s.remove(1).is_none());
    }

    #[test]
    fn fits_respects_both_resources() {
        let mut s = ServerState::new(ServerShape { cores: 16, mem_gb: 64.0 });
        assert!(s.fits(16, 64.0));
        assert!(!s.fits(17, 1.0));
        assert!(!s.fits(1, 65.0));
        s.place(1, PlacedVm { cores: 8, mem_gb: 60.0, max_mem_util: 1.0 });
        assert!(s.fits(8, 4.0));
        assert!(!s.fits(8, 5.0));
    }

    #[test]
    #[should_panic(expected = "without fits()")]
    fn place_without_fit_panics() {
        let mut s = ServerState::new(ServerShape { cores: 4, mem_gb: 16.0 });
        s.place(1, vm(8));
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn duplicate_placement_panics() {
        let mut s = ServerState::new(shape());
        s.place(1, vm(2));
        s.place(1, vm(2));
    }

    #[test]
    fn fail_takes_server_offline_and_displaces_all() {
        let mut s = ServerState::new(shape());
        s.place(3, vm(8));
        s.place(1, vm(4));
        let displaced = s.fail();
        assert_eq!(displaced, vec![1, 3]);
        assert!(s.is_offline());
        assert!(s.is_empty());
        assert_eq!(s.cores_allocated(), 0);
        assert!(!s.fits(1, 1.0), "offline server must not accept VMs");
        s.reset(shape());
        assert!(!s.is_offline(), "reset brings the server back");
        assert!(s.fits(1, 1.0));
    }

    #[test]
    fn degrade_evicts_newest_until_fit() {
        let mut s = ServerState::new(ServerShape { cores: 16, mem_gb: 64.0 });
        s.place(1, PlacedVm { cores: 6, mem_gb: 24.0, max_mem_util: 0.5 });
        s.place(2, PlacedVm { cores: 6, mem_gb: 24.0, max_mem_util: 0.5 });
        // Lose half the cores: 12 allocated > 8 remaining, so the
        // newest VM (id 2) is evicted; id 1 (6 <= 8) stays.
        let evicted = s.degrade(8, 0.0);
        assert_eq!(evicted, vec![2]);
        assert_eq!(s.shape().cores, 8);
        assert_eq!(s.cores_allocated(), 6);
        assert!(!s.is_offline());
        assert!(s.fits(2, 8.0));
        assert!(!s.fits(3, 8.0));
    }

    #[test]
    fn degrade_clamps_at_zero_capacity() {
        let mut s = ServerState::new(ServerShape { cores: 4, mem_gb: 16.0 });
        s.place(1, PlacedVm { cores: 2, mem_gb: 8.0, max_mem_util: 0.5 });
        let evicted = s.degrade(100, 1000.0);
        assert_eq!(evicted, vec![1]);
        assert_eq!(s.shape().cores, 0);
        assert_eq!(s.shape().mem_gb, 0.0);
        assert!(s.is_empty());
        assert!(!s.fits(1, 0.0));
    }

    #[test]
    fn mem_counter_does_not_drift_across_place_remove_cycles() {
        // Fractional memory sizes whose running sum is not exactly
        // representable: a long alternating place/remove sequence must
        // end with the counter at exactly zero once the server empties,
        // not at an accumulated ±ε the `.max(0.0)` clamp half-hides.
        let shape = ServerShape { cores: 64, mem_gb: 768.0 };
        let mut s = ServerState::new(shape);
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..500u64 {
            // Up to four residents at a time, sizes like 0.1·k GB that
            // sum inexactly in binary floating point.
            let residents: Vec<u64> = (0..(next() % 4 + 1)).map(|k| round * 10 + k).collect();
            for &id in &residents {
                let mem = 0.1 * (next() % 400 + 1) as f64;
                s.place(id, PlacedVm { cores: 1, mem_gb: mem, max_mem_util: 0.5 });
            }
            for &id in &residents {
                s.remove(id).unwrap();
            }
            assert!(s.is_empty());
            // Exact equality, not an epsilon band: the regression this
            // pins is precisely the sub-epsilon drift.
            assert_eq!(s.mem_allocated_gb(), 0.0, "drift after round {round}");
            assert_eq!(s.free_mem_gb(), shape.mem_gb, "free-mem drift after round {round}");
        }
    }

    #[test]
    fn admission_and_eviction_share_one_memory_epsilon() {
        // The drift this pins: `fits` and `degrade` previously wrote
        // their memory comparisons independently (`free >= mem - 1e-9`
        // vs `allocated > capacity + 1e-9`); both now route through
        // `mem_fits`, so the eviction threshold sits exactly at the
        // admission threshold. Probe both sides of the shared band.
        let shape = ServerShape { cores: 16, mem_gb: 32.0 };

        // Admission tolerates a request half an epsilon over the free
        // capacity; the resulting over-commit is *feasible*, so a
        // zero-loss degrade must not evict.
        let mut s = ServerState::new(shape);
        assert!(s.fits(1, 32.0 + 0.5 * MEM_EPSILON_GB));
        s.place(1, PlacedVm { cores: 1, mem_gb: 32.0 + 0.5 * MEM_EPSILON_GB, max_mem_util: 0.5 });
        assert!(s.degrade(0, 0.0).is_empty(), "within-epsilon over-commit must survive");
        assert!(mem_fits(s.free_mem_gb(), 0.0));

        // An over-commit of 2 epsilon (reachable only through a shape
        // shrink, never through admission) violates the same predicate
        // and must be evicted.
        let mut s = ServerState::new(shape);
        s.place(1, PlacedVm { cores: 1, mem_gb: 31.0, max_mem_util: 0.5 });
        let evicted = s.degrade(0, 1.0 + 2.0 * MEM_EPSILON_GB);
        assert_eq!(evicted, vec![1], "past-epsilon over-commit must evict");

        // Invariant across the boundary: after any degrade, whatever
        // survives satisfies the admission predicate for a zero-size
        // request — the two call sites agree on what "fits" means.
        for extra in [0.0, 0.5 * MEM_EPSILON_GB, 2.0 * MEM_EPSILON_GB, 0.3, 1.0] {
            let mut s = ServerState::new(shape);
            s.place(1, PlacedVm { cores: 2, mem_gb: 20.0, max_mem_util: 0.5 });
            s.place(2, PlacedVm { cores: 2, mem_gb: 10.0, max_mem_util: 0.5 });
            s.degrade(0, 2.0 + extra);
            assert!(
                s.is_empty() || s.fits(0, 0.0),
                "degrade(0, {extra}) left an allocation the admission predicate rejects"
            );
        }
    }

    #[test]
    fn densities() {
        let mut s = ServerState::new(shape());
        s.place(1, PlacedVm { cores: 40, mem_gb: 384.0, max_mem_util: 0.5 });
        assert!((s.core_density() - 0.5).abs() < 1e-12);
        assert!((s.mem_density() - 0.5).abs() < 1e-12);
        assert!((s.max_touched_mem_fraction() - 0.25).abs() < 1e-12);
    }
}
