//! Seed-deterministic fault-plan generation from AFR models.
//!
//! [`FaultModel`] turns the crate's failure-rate models
//! ([`ComponentAfrs`], [`FipPolicy`]) into concrete
//! [`gsf_vmalloc::FaultPlan`]s the allocation simulator can replay
//! against. Each server gets its own RNG stream (derived from the model
//! seed, the pool label, and the server index), so:
//!
//! - plans are independent of iteration order and bit-reproducible,
//! - growing a pool from `n` to `n + 1` servers leaves servers
//!   `0..n`'s fault schedules unchanged — which keeps the cluster
//!   right-sizing searches' feasibility predicate effectively monotone
//!   in server count.
//!
//! A sampled failure is *FIP-absorbed* (a partial, in-place capacity
//! degrade) with probability `fip.effectiveness × repairable_share`,
//! mirroring [`FipPolicy::repair_rate`]; otherwise it is a full-server
//! failure. With `repair_days == 0` (the default) the server then stays
//! offline for the rest of the trace — fail-in-place semantics, and
//! bit-identical to the model before repairs existed. With
//! `repair_days > 0` every full failure schedules a deterministic
//! return-to-service: a repair duration is sampled from the *same*
//! per-server (or per-domain) stream, compressed from wall-clock days
//! onto the trace horizon exactly like the AFRs are, and a
//! [`FaultKind::Revive`] brings the server back empty — connecting the
//! analytic `oos_fraction`/`C_OOS` story in [`crate::oos`] to the
//! replayed simulation.
//!
//! A [`FaultTopology`] adds *correlated* fault domains on top of the
//! independent per-server streams: servers are grouped into
//! fixed-size domains (rack PSU / ToR blast radii), each domain gets
//! its own seed-deterministic stream, and a domain event strikes every
//! member with a full failure at the same instant (FIP cannot absorb a
//! rack-level power loss). Domain repairs likewise revive every member
//! together.
//!
//! Real AFRs (≈5 per 100 servers per year) produce essentially no
//! events over a day-long trace, so the model exposes `horizon_years`:
//! the deployment period the trace horizon stands in for. With
//! `horizon_years = 1.0`, a 24 h trace carries one year's worth of
//! failures — the question the growth buffer exists to answer.

use crate::afr::{ComponentAfrs, ServerAfr};
use crate::error::{check_fraction, check_non_negative, MaintenanceError};
use crate::fip::FipPolicy;
use gsf_stats::dist::Exponential;
use gsf_stats::rng::SeedFactory;
use gsf_vmalloc::{ClusterConfig, FaultEvent, FaultKind, FaultPlan, FaultPool, ServerShape};
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Failure-relevant device counts for one server pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolDevices {
    /// DIMMs per server (new + reused).
    pub dimms: u32,
    /// SSDs per server (new + reused).
    pub ssds: u32,
}

impl PoolDevices {
    /// The paper's baseline SKU: 12 DIMMs, 6 SSDs.
    pub fn baseline() -> Self {
        Self { dimms: 12, ssds: 6 }
    }

    /// The paper's GreenSKU-Full: 20 DIMMs, 14 SSDs.
    pub fn greensku_full() -> Self {
        Self { dimms: 20, ssds: 14 }
    }
}

/// Correlated fault-domain structure for one cluster: servers are
/// grouped into contiguous fixed-size domains per pool, modelling the
/// shared blast radius of a rack PSU or ToR switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultTopology {
    /// Servers per fault domain; `0` disables domain events entirely
    /// (the flat topology, bit-identical to the pre-topology model).
    /// The last domain of a pool may be smaller than this.
    pub domain_size: u32,
    /// Domain-wide events per 100 domains per year (scaled by the
    /// model's `afr_scale` and `horizon_years` like the server AFRs).
    pub domain_events_per_100: f64,
}

impl FaultTopology {
    /// No fault domains: only independent per-server failures.
    pub fn flat() -> Self {
        Self { domain_size: 0, domain_events_per_100: 0.0 }
    }

    /// Rack-sized domains of `size` servers at a default rate of one
    /// event per 100 domain-years.
    pub fn rack(size: u32) -> Self {
        Self { domain_size: size, domain_events_per_100: 1.0 }
    }
}

impl Default for FaultTopology {
    fn default() -> Self {
        Self::flat()
    }
}

/// Configuration of the stochastic fault injector.
///
/// [`FaultModel::none`] is the disabled model: it generates only empty
/// plans, reports zero expected capacity loss, and every consumer is
/// required to treat it as a strict identity (bit-for-bit identical
/// results to a build without fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    enabled: bool,
    /// Per-device AFR contributions.
    pub afrs: ComponentAfrs,
    /// FIP policy deciding how many failures are absorbed in place.
    pub fip: FipPolicy,
    /// Multiplier on server AFRs (sensitivity-sweep knob).
    pub afr_scale: f64,
    /// Deployment years the trace horizon stands in for.
    pub horizon_years: f64,
    /// Fraction of a server's cores lost per FIP-absorbed event.
    pub degrade_core_fraction: f64,
    /// Fraction of a server's memory lost per FIP-absorbed event.
    pub degrade_mem_fraction: f64,
    /// Bound on evacuation re-placement passes per fault.
    pub max_evac_passes: u32,
    /// Root seed for the per-server fault streams.
    pub seed: u64,
    /// Correlated fault-domain structure (flat = none).
    pub topology: FaultTopology,
    /// Mean wall-clock repair time after a full failure, days; `0`
    /// disables repair (fail-in-place, the pre-repair behavior).
    pub repair_days: f64,
}

impl FaultModel {
    /// The disabled model: a strict, zero-cost identity.
    pub fn none() -> Self {
        Self {
            enabled: false,
            afrs: ComponentAfrs { per_dimm: 0.0, per_ssd: 0.0, other: 0.0 },
            fip: FipPolicy::disabled(),
            afr_scale: 0.0,
            horizon_years: 0.0,
            degrade_core_fraction: 0.0,
            degrade_mem_fraction: 0.0,
            max_evac_passes: 1,
            seed: 0,
            topology: FaultTopology::flat(),
            repair_days: 0.0,
        }
    }

    /// An enabled model at the paper's AFR/FIP operating point: one
    /// year of failures compressed onto the trace horizon, and each
    /// FIP-absorbed event costing 1/32 of the cores and 1/16 of the
    /// memory (≈ one DIMM's worth) of the struck server.
    pub fn paper(seed: u64) -> Self {
        Self {
            enabled: true,
            afrs: ComponentAfrs::paper(),
            fip: FipPolicy::paper(),
            afr_scale: 1.0,
            horizon_years: 1.0,
            degrade_core_fraction: 1.0 / 32.0,
            degrade_mem_fraction: 1.0 / 16.0,
            max_evac_passes: 3,
            seed,
            topology: FaultTopology::flat(),
            repair_days: 0.0,
        }
    }

    /// Validates and enables a fully custom model.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        afrs: ComponentAfrs,
        fip: FipPolicy,
        afr_scale: f64,
        horizon_years: f64,
        degrade_core_fraction: f64,
        degrade_mem_fraction: f64,
        max_evac_passes: u32,
        seed: u64,
    ) -> Result<Self, MaintenanceError> {
        let model = Self {
            enabled: true,
            afrs,
            fip,
            afr_scale,
            horizon_years,
            degrade_core_fraction,
            degrade_mem_fraction,
            max_evac_passes: max_evac_passes.max(1),
            seed,
            topology: FaultTopology::flat(),
            repair_days: 0.0,
        };
        model.validate()?;
        Ok(model)
    }

    /// Replaces the fault-domain topology, re-validating.
    pub fn with_topology(mut self, topology: FaultTopology) -> Result<Self, MaintenanceError> {
        self.topology = topology;
        self.validate()?;
        Ok(self)
    }

    /// Replaces the mean repair time (days; `0` = fail-in-place),
    /// re-validating.
    pub fn with_repair_days(mut self, repair_days: f64) -> Result<Self, MaintenanceError> {
        self.repair_days = repair_days;
        self.validate()?;
        Ok(self)
    }

    /// Whether this is the disabled identity model.
    pub fn is_none(&self) -> bool {
        !self.enabled
    }

    /// Checks every numeric field against its constraint.
    pub fn validate(&self) -> Result<(), MaintenanceError> {
        check_non_negative("afrs.per_dimm", self.afrs.per_dimm)?;
        check_non_negative("afrs.per_ssd", self.afrs.per_ssd)?;
        check_non_negative("afrs.other", self.afrs.other)?;
        check_fraction("fip.effectiveness", self.fip.effectiveness)?;
        check_non_negative("afr_scale", self.afr_scale)?;
        check_non_negative("horizon_years", self.horizon_years)?;
        check_fraction("degrade_core_fraction", self.degrade_core_fraction)?;
        check_fraction("degrade_mem_fraction", self.degrade_mem_fraction)?;
        check_non_negative("topology.domain_events_per_100", self.topology.domain_events_per_100)?;
        check_non_negative("repair_days", self.repair_days)?;
        Ok(())
    }

    /// Structural signature for memoization keys: two models with equal
    /// signatures generate identical plans for every cluster/trace.
    pub fn signature(&self) -> Vec<u64> {
        vec![
            u64::from(self.enabled),
            self.afrs.per_dimm.to_bits(),
            self.afrs.per_ssd.to_bits(),
            self.afrs.other.to_bits(),
            self.fip.effectiveness.to_bits(),
            self.afr_scale.to_bits(),
            self.horizon_years.to_bits(),
            self.degrade_core_fraction.to_bits(),
            self.degrade_mem_fraction.to_bits(),
            u64::from(self.max_evac_passes),
            self.seed,
            u64::from(self.topology.domain_size),
            self.topology.domain_events_per_100.to_bits(),
            self.repair_days.to_bits(),
        ]
    }

    /// Samples a fault plan for `config` over a trace of `duration_s`
    /// seconds. Deterministic in (model, config, duration).
    pub fn plan(
        &self,
        config: &ClusterConfig,
        baseline: PoolDevices,
        green: PoolDevices,
        duration_s: f64,
    ) -> FaultPlan {
        if !self.enabled || duration_s <= 0.0 {
            return FaultPlan::empty();
        }
        let factory = SeedFactory::new(self.seed);
        let mut events = Vec::new();
        self.sample_pool(
            &factory,
            "faults/baseline",
            FaultPool::Baseline,
            config.baseline_count,
            config.baseline_shape,
            baseline,
            duration_s,
            &mut events,
        );
        self.sample_pool(
            &factory,
            "faults/green",
            FaultPool::Green,
            config.green_count,
            config.green_shape,
            green,
            duration_s,
            &mut events,
        );
        self.sample_domains(
            &factory,
            "faults/baseline",
            FaultPool::Baseline,
            config.baseline_count,
            duration_s,
            &mut events,
        );
        self.sample_domains(
            &factory,
            "faults/green",
            FaultPool::Green,
            config.green_count,
            duration_s,
            &mut events,
        );
        // Every event above targets `0..count` of its pool at a finite
        // non-negative time, so validation is statically satisfied; the
        // fallback only guards against a future generator bug.
        FaultPlan::new(events, self.max_evac_passes, config.baseline_count, config.green_count)
            .unwrap_or_else(|_| FaultPlan::empty())
    }

    /// Exponential sampler for repair durations, or `None` when repair
    /// is off. Sampled values are wall-clock days with mean
    /// `repair_days`; [`Self::repair_to_trace_s`] compresses them onto
    /// the trace horizon.
    fn repair_sampler(&self) -> Option<Exponential> {
        if self.repair_days <= 0.0 {
            return None;
        }
        Exponential::new(1.0 / self.repair_days).ok()
    }

    /// Converts a sampled wall-clock repair duration (days) to trace
    /// seconds, under the same horizon compression the AFRs use: the
    /// trace's `duration_s` stands in for `horizon_years` of wall
    /// clock.
    fn repair_to_trace_s(&self, repair_days_sampled: f64, duration_s: f64) -> f64 {
        repair_days_sampled / (self.horizon_years * 365.0) * duration_s
    }

    #[allow(clippy::too_many_arguments)]
    fn sample_pool(
        &self,
        factory: &SeedFactory,
        label: &str,
        pool: FaultPool,
        count: u32,
        shape: ServerShape,
        devices: PoolDevices,
        duration_s: f64,
        out: &mut Vec<FaultEvent>,
    ) {
        let afr = ServerAfr::new(&self.afrs, devices.dimms, devices.ssds);
        // Expected failures per server over the (compressed) horizon.
        let expected = afr.total / 100.0 * self.afr_scale * self.horizon_years;
        if expected <= 0.0 || afr.total <= 0.0 {
            return;
        }
        let Ok(gap) = Exponential::new(expected / duration_s) else {
            return;
        };
        let p_partial =
            (self.fip.effectiveness * afr.repairable_by_fip / afr.total).clamp(0.0, 1.0);
        let cores_lost = (f64::from(shape.cores) * self.degrade_core_fraction).round() as u32;
        let mem_lost_gb = shape.mem_gb * self.degrade_mem_fraction;
        let repair = self.repair_sampler();
        for server in 0..count {
            let mut rng = factory.stream_indexed(label, u64::from(server));
            let mut t = gap.sample(&mut rng);
            while t < duration_s {
                if rng.gen::<f64>() < p_partial {
                    out.push(FaultEvent {
                        time_s: t,
                        pool,
                        server,
                        kind: FaultKind::PartialDegrade { cores_lost, mem_lost_gb },
                    });
                    t += gap.sample(&mut rng);
                } else {
                    out.push(FaultEvent { time_s: t, pool, server, kind: FaultKind::FullFailure });
                    match &repair {
                        // Fail-in-place: the server stays down; later
                        // samples for it would strike a corpse. With
                        // repair off this draws exactly the sequence
                        // the pre-repair model drew, keeping plans
                        // bit-identical.
                        None => break,
                        Some(repair_gap) => {
                            // Repair: the server returns to service
                            // empty after a sampled duration (possibly
                            // past the horizon — the replay ignores
                            // those identically in every engine), and
                            // its failure clock restarts afterwards.
                            let back =
                                t + self.repair_to_trace_s(repair_gap.sample(&mut rng), duration_s);
                            out.push(FaultEvent {
                                time_s: back,
                                pool,
                                server,
                                kind: FaultKind::Revive,
                            });
                            t = back + gap.sample(&mut rng);
                        }
                    }
                }
            }
        }
    }

    /// Samples correlated domain events for one pool: each fault domain
    /// has its own stream (indexed by domain id, so growing a pool
    /// leaves existing domains' schedules unchanged), and each event
    /// strikes every member with a full failure at the same instant —
    /// FIP cannot absorb a rack-level power loss. With repair enabled,
    /// one repair duration is sampled per event and every member
    /// revives together.
    fn sample_domains(
        &self,
        factory: &SeedFactory,
        label: &str,
        pool: FaultPool,
        count: u32,
        duration_s: f64,
        out: &mut Vec<FaultEvent>,
    ) {
        let size = self.topology.domain_size;
        if size == 0 || count == 0 {
            return;
        }
        let expected =
            self.topology.domain_events_per_100 / 100.0 * self.afr_scale * self.horizon_years;
        if expected <= 0.0 {
            return;
        }
        let Ok(gap) = Exponential::new(expected / duration_s) else {
            return;
        };
        let repair = self.repair_sampler();
        let label = format!("{label}/domain");
        for domain in 0..count.div_ceil(size) {
            let lo = domain * size;
            let hi = (lo + size).min(count);
            let mut rng = factory.stream_indexed(&label, u64::from(domain));
            let mut t = gap.sample(&mut rng);
            while t < duration_s {
                for server in lo..hi {
                    out.push(FaultEvent { time_s: t, pool, server, kind: FaultKind::FullFailure });
                }
                match &repair {
                    // Without repair one domain event kills the whole
                    // domain for good; further events would be no-ops.
                    None => break,
                    Some(repair_gap) => {
                        let back =
                            t + self.repair_to_trace_s(repair_gap.sample(&mut rng), duration_s);
                        for server in lo..hi {
                            out.push(FaultEvent {
                                time_s: back,
                                pool,
                                server,
                                kind: FaultKind::Revive,
                            });
                        }
                        t = back + gap.sample(&mut rng);
                    }
                }
            }
        }
    }

    /// First-order expected fraction of the cluster's core capacity
    /// lost to failures by the end of the horizon — the fault analogue
    /// of the growth buffer's `capacity_fraction`, reported alongside
    /// it by the pipeline. Zero for the disabled model.
    pub fn expected_capacity_loss(
        &self,
        config: &ClusterConfig,
        baseline: PoolDevices,
        green: PoolDevices,
    ) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let total_cores = config.total_cores();
        if total_cores == 0 {
            return 0.0;
        }
        let pool_loss = |devices: PoolDevices| -> f64 {
            let afr = ServerAfr::new(&self.afrs, devices.dimms, devices.ssds);
            if afr.total <= 0.0 {
                return 0.0;
            }
            let rate = afr.total / 100.0 * self.afr_scale * self.horizon_years;
            let p_partial =
                (self.fip.effectiveness * afr.repairable_by_fip / afr.total).clamp(0.0, 1.0);
            // Full failures remove the whole server; partials shave a
            // core fraction each. Both truncated at total loss.
            let p_full = 1.0 - (-rate * (1.0 - p_partial)).exp();
            (p_full + rate * p_partial * self.degrade_core_fraction).min(1.0)
        };
        let baseline_cores =
            f64::from(config.baseline_count) * f64::from(config.baseline_shape.cores);
        let green_cores = f64::from(config.green_count) * f64::from(config.green_shape.cores);
        (baseline_cores * pool_loss(baseline) + green_cores * pool_loss(green))
            / (baseline_cores + green_cores)
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn config() -> ClusterConfig {
        ClusterConfig::mixed(40, 30)
    }

    #[test]
    fn none_generates_empty_plans_and_zero_loss() {
        let model = FaultModel::none();
        assert!(model.is_none());
        let plan =
            model.plan(&config(), PoolDevices::baseline(), PoolDevices::greensku_full(), 86_400.0);
        assert!(plan.is_empty());
        assert_eq!(
            model.expected_capacity_loss(
                &config(),
                PoolDevices::baseline(),
                PoolDevices::greensku_full()
            ),
            0.0
        );
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let model = FaultModel::paper(7);
        let gen = || {
            model.plan(&config(), PoolDevices::baseline(), PoolDevices::greensku_full(), 86_400.0)
        };
        assert_eq!(gen(), gen());
        // A different seed gives a different plan (with the paper AFRs
        // scaled up enough that events certainly exist).
        let mut scaled = FaultModel::paper(7);
        scaled.afr_scale = 50.0;
        let mut scaled2 = scaled;
        scaled2.seed = 8;
        let a =
            scaled.plan(&config(), PoolDevices::baseline(), PoolDevices::greensku_full(), 86_400.0);
        let b = scaled2.plan(
            &config(),
            PoolDevices::baseline(),
            PoolDevices::greensku_full(),
            86_400.0,
        );
        assert!(!a.is_empty());
        assert_ne!(a, b);
    }

    #[test]
    fn growing_the_pool_preserves_existing_servers_schedules() {
        let mut model = FaultModel::paper(11);
        model.afr_scale = 50.0;
        let devices = (PoolDevices::baseline(), PoolDevices::greensku_full());
        let small = model.plan(&ClusterConfig::mixed(10, 0), devices.0, devices.1, 86_400.0);
        let large = model.plan(&ClusterConfig::mixed(11, 0), devices.0, devices.1, 86_400.0);
        let events_for = |plan: &FaultPlan, server: u32| -> Vec<FaultEvent> {
            plan.events().iter().copied().filter(|e| e.server == server).collect()
        };
        for server in 0..10 {
            assert_eq!(events_for(&small, server), events_for(&large, server));
        }
    }

    #[test]
    fn afr_scale_increases_event_count() {
        let mut lo = FaultModel::paper(3);
        lo.afr_scale = 5.0;
        let mut hi = FaultModel::paper(3);
        hi.afr_scale = 80.0;
        let devices = (PoolDevices::baseline(), PoolDevices::greensku_full());
        let n_lo = lo.plan(&config(), devices.0, devices.1, 86_400.0).len();
        let n_hi = hi.plan(&config(), devices.0, devices.1, 86_400.0).len();
        assert!(n_hi > n_lo, "scaling AFR 16x should add events ({n_lo} vs {n_hi})");
    }

    #[test]
    fn full_failure_is_terminal_per_server() {
        let mut model = FaultModel::paper(5);
        model.afr_scale = 200.0;
        let plan = model.plan(
            &ClusterConfig::mixed(20, 0),
            PoolDevices::baseline(),
            PoolDevices::greensku_full(),
            86_400.0,
        );
        // No server may have events after its full failure.
        for server in 0..20 {
            let mut failed = false;
            for e in plan.events().iter().filter(|e| e.server == server) {
                assert!(!failed, "server {server} has an event after its full failure");
                if e.kind == FaultKind::FullFailure {
                    failed = true;
                }
            }
        }
    }

    #[test]
    fn fip_effectiveness_shifts_failures_to_partials() {
        let mut no_fip = FaultModel::paper(9);
        no_fip.afr_scale = 60.0;
        no_fip.fip = FipPolicy::disabled();
        let mut full_fip = no_fip;
        full_fip.fip = FipPolicy { effectiveness: 1.0 };
        let devices = (PoolDevices::baseline(), PoolDevices::greensku_full());
        let count = |plan: &FaultPlan| {
            plan.events().iter().filter(|e| e.kind == FaultKind::FullFailure).count()
        };
        let fulls_no_fip = count(&no_fip.plan(&config(), devices.0, devices.1, 86_400.0));
        let fulls_full_fip = count(&full_fip.plan(&config(), devices.0, devices.1, 86_400.0));
        assert!(
            fulls_full_fip < fulls_no_fip,
            "FIP at 1.0 must absorb failures ({fulls_full_fip} vs {fulls_no_fip})"
        );
    }

    #[test]
    fn expected_loss_scales_with_afr_and_is_bounded() {
        let devices = (PoolDevices::baseline(), PoolDevices::greensku_full());
        let loss_at = |scale: f64| {
            let mut m = FaultModel::paper(1);
            m.afr_scale = scale;
            m.expected_capacity_loss(&config(), devices.0, devices.1)
        };
        let l1 = loss_at(1.0);
        let l10 = loss_at(10.0);
        assert!(l1 > 0.0 && l1 < 0.1);
        assert!(l10 > l1);
        assert!(loss_at(1e6) <= 1.0);
    }

    #[test]
    fn new_rejects_invalid_parameters() {
        let afrs = ComponentAfrs::paper();
        let fip = FipPolicy::paper();
        assert!(FaultModel::new(afrs, fip, f64::NAN, 1.0, 0.1, 0.1, 3, 0).is_err());
        assert!(FaultModel::new(afrs, fip, -1.0, 1.0, 0.1, 0.1, 3, 0).is_err());
        assert!(FaultModel::new(afrs, fip, 1.0, 1.0, 1.5, 0.1, 3, 0).is_err());
        assert!(FaultModel::new(afrs, fip, 1.0, 1.0, 0.1, -0.1, 3, 0).is_err());
        assert!(FaultModel::new(afrs, FipPolicy { effectiveness: 2.0 }, 1.0, 1.0, 0.1, 0.1, 3, 0)
            .is_err());
        assert!(FaultModel::new(afrs, fip, 1.0, 1.0, 0.1, 0.1, 3, 0).is_ok());
    }

    #[test]
    fn builders_reject_invalid_topology_and_repair() {
        let model = FaultModel::paper(1);
        assert!(model
            .with_topology(FaultTopology { domain_size: 4, domain_events_per_100: -1.0 })
            .is_err());
        assert!(model
            .with_topology(FaultTopology { domain_size: 4, domain_events_per_100: f64::NAN })
            .is_err());
        assert!(model.with_repair_days(-2.0).is_err());
        assert!(model.with_repair_days(f64::INFINITY).is_err());
        assert!(model.with_topology(FaultTopology::rack(8)).is_ok());
        assert!(model.with_repair_days(3.0).is_ok());
    }

    #[test]
    fn flat_topology_and_no_repair_generate_the_pre_repair_plan() {
        // The explicit "everything off" configuration must be
        // bit-identical to the plain paper model — the recovery of the
        // old engine as a special case.
        let mut base = FaultModel::paper(13);
        base.afr_scale = 60.0;
        let configured =
            base.with_topology(FaultTopology::flat()).unwrap().with_repair_days(0.0).unwrap();
        let devices = (PoolDevices::baseline(), PoolDevices::greensku_full());
        let a = base.plan(&config(), devices.0, devices.1, 86_400.0);
        let b = configured.plan(&config(), devices.0, devices.1, 86_400.0);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn repair_schedules_a_revive_after_every_full_failure() {
        let mut model = FaultModel::paper(5);
        model.afr_scale = 200.0;
        let model = model.with_repair_days(3.0).unwrap();
        let plan = model.plan(
            &ClusterConfig::mixed(20, 0),
            PoolDevices::baseline(),
            PoolDevices::greensku_full(),
            86_400.0,
        );
        let mut fulls = 0usize;
        for server in 0..20u32 {
            // Per server, events alternate … FullFailure → Revive …;
            // a second failure can only follow a revive.
            let mut down = false;
            for e in plan.events().iter().filter(|e| e.server == server) {
                match e.kind {
                    FaultKind::FullFailure => {
                        assert!(!down, "server {server} failed while already down");
                        down = true;
                        fulls += 1;
                    }
                    FaultKind::Revive => {
                        assert!(down, "server {server} revived while up");
                        down = false;
                    }
                    FaultKind::PartialDegrade { .. } => {}
                }
            }
        }
        assert!(fulls > 0, "AFR x200 must produce failures");
        let revives = plan.events().iter().filter(|e| matches!(e.kind, FaultKind::Revive)).count();
        // Every failure schedules its repair (some may land past the
        // horizon but are still in the plan).
        assert_eq!(revives, fulls);
    }

    #[test]
    fn domain_events_strike_and_revive_every_member_together() {
        // Zero per-server AFRs: only domain events remain.
        let afrs = ComponentAfrs { per_dimm: 0.0, per_ssd: 0.0, other: 0.0 };
        let model = FaultModel::new(afrs, FipPolicy::disabled(), 50.0, 1.0, 0.0, 0.0, 3, 21)
            .unwrap()
            .with_topology(FaultTopology { domain_size: 4, domain_events_per_100: 40.0 })
            .unwrap()
            .with_repair_days(5.0)
            .unwrap();
        let plan = model.plan(
            &ClusterConfig::mixed(10, 0),
            PoolDevices::baseline(),
            PoolDevices::greensku_full(),
            86_400.0,
        );
        assert!(!plan.is_empty(), "domain rate x50 over 3 domains must produce events");
        // Group by bit-equal strike time: every failure group covers a
        // whole domain (4 servers, or the 2-server tail domain), with
        // contiguous indices from a domain boundary.
        let mut by_time: std::collections::BTreeMap<u64, Vec<u32>> =
            std::collections::BTreeMap::new();
        for e in plan.events().iter().filter(|e| e.kind == FaultKind::FullFailure) {
            by_time.entry(e.time_s.to_bits()).or_default().push(e.server);
        }
        assert!(!by_time.is_empty());
        for (_, mut members) in by_time {
            members.sort_unstable();
            let lo = members[0];
            assert_eq!(lo % 4, 0, "domain strike must start at a domain boundary");
            let expected_len = if lo == 8 { 2 } else { 4 };
            assert_eq!(members.len(), expected_len, "domain at {lo} struck partially");
            for (i, m) in members.iter().enumerate() {
                assert_eq!(*m, lo + i as u32);
            }
        }
        assert_eq!(plan.max_correlated_strikes(), 4);
        // Determinism: same model, same plan.
        let again = model.plan(
            &ClusterConfig::mixed(10, 0),
            PoolDevices::baseline(),
            PoolDevices::greensku_full(),
            86_400.0,
        );
        assert_eq!(plan, again);
    }

    #[test]
    fn signature_distinguishes_topology_and_repair() {
        let base = FaultModel::paper(3);
        let rack = base.with_topology(FaultTopology::rack(8)).unwrap();
        let repaired = base.with_repair_days(3.0).unwrap();
        assert_ne!(base.signature(), rack.signature());
        assert_ne!(base.signature(), repaired.signature());
        assert_ne!(rack.signature(), repaired.signature());
        assert_eq!(base.signature().len(), 14);
    }
}
