//! Fail-In-Place: deactivating failed DIMMs/SSDs instead of repairing
//! the server (Hyrax), which converts a fraction of media failures into
//! non-repairs.

use crate::afr::ServerAfr;
use serde::{Deserialize, Serialize};

/// FIP policy: what fraction of DRAM/SSD failures are absorbed in place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FipPolicy {
    /// Effectiveness in [0, 1]; the paper uses a conservative 0.75.
    pub effectiveness: f64,
}

impl FipPolicy {
    /// The paper's conservative 75 % effectiveness.
    pub fn paper() -> Self {
        Self { effectiveness: 0.75 }
    }

    /// FIP disabled.
    pub fn disabled() -> Self {
        Self { effectiveness: 0.0 }
    }

    /// Repair rate (per 100 servers per year) after FIP absorbs its
    /// share of media failures.
    ///
    /// # Panics
    ///
    /// Panics if effectiveness is outside `[0, 1]`.
    pub fn repair_rate(&self, afr: &ServerAfr) -> f64 {
        assert!((0.0..=1.0).contains(&self.effectiveness), "FIP effectiveness must be in [0,1]");
        afr.total - self.effectiveness * afr.repairable_by_fip
    }
}

impl Default for FipPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_repair_rates_golden() {
        // §V: 4.8 → 3.0 for the baseline, 7.2 → 3.6 for GreenSKU-Full.
        let fip = FipPolicy::paper();
        assert!((fip.repair_rate(&ServerAfr::baseline()) - 3.0).abs() < 1e-12);
        assert!((fip.repair_rate(&ServerAfr::greensku_full()) - 3.6).abs() < 1e-12);
    }

    #[test]
    fn disabled_fip_repairs_everything() {
        let fip = FipPolicy::disabled();
        assert!((fip.repair_rate(&ServerAfr::baseline()) - 4.8).abs() < 1e-12);
    }

    #[test]
    fn full_effectiveness_leaves_other_failures() {
        let fip = FipPolicy { effectiveness: 1.0 };
        assert!((fip.repair_rate(&ServerAfr::greensku_full()) - 2.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "effectiveness")]
    fn rejects_out_of_range() {
        FipPolicy { effectiveness: 1.5 }.repair_rate(&ServerAfr::baseline());
    }

    #[test]
    fn fip_helps_greensku_more_in_absolute_terms() {
        let fip = FipPolicy::paper();
        let saved_base = ServerAfr::baseline().total - fip.repair_rate(&ServerAfr::baseline());
        let saved_full =
            ServerAfr::greensku_full().total - fip.repair_rate(&ServerAfr::greensku_full());
        assert!(saved_full > saved_base);
    }
}
