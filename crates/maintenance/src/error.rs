//! Typed errors for maintenance-model construction.

use std::fmt;

/// Error constructing a maintenance model from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceError {
    /// A numeric parameter violated its constraint.
    InvalidParam {
        /// Human-readable parameter name.
        param: &'static str,
        /// The offending value.
        value: f64,
        /// What the parameter must satisfy.
        requirement: &'static str,
    },
}

impl fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintenanceError::InvalidParam { param, value, requirement } => {
                write!(f, "parameter `{param}` must be {requirement}, got {value}")
            }
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// Checks that `value` is finite and non-negative.
pub(crate) fn check_non_negative(param: &'static str, value: f64) -> Result<f64, MaintenanceError> {
    if !value.is_finite() || value < 0.0 {
        return Err(MaintenanceError::InvalidParam {
            param,
            value,
            requirement: "finite and non-negative",
        });
    }
    Ok(value)
}

/// Checks that `value` is a fraction in `[0, 1]`.
pub(crate) fn check_fraction(param: &'static str, value: f64) -> Result<f64, MaintenanceError> {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        return Err(MaintenanceError::InvalidParam { param, value, requirement: "in [0, 1]" });
    }
    Ok(value)
}
