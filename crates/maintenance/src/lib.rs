//! GSF maintenance component.
//!
//! Models the out-of-service overhead a GreenSKU's extra DIMMs and SSDs
//! cause (§IV-B and the §V implementation):
//!
//! - [`afr`] — component annual failure rates aggregated into server
//!   AFRs (baseline: 4.8 per 100 servers; GreenSKU-Full: 7.2);
//! - [`fip`] — Fail-In-Place effectiveness reducing repair rates
//!   (4.8 → 3.0 and 7.2 → 3.6 at the paper's conservative 75 %);
//! - [`oos`] — Little's-law out-of-service fractions and the `C_OOS`
//!   comparison showing GreenSKU-Full's maintenance overhead is
//!   negligible (3.0 vs ≈2.98);
//! - [`failure_sim`] — a stochastic DIMM-population failure simulator
//!   reproducing the Fig. 2 shape (infant mortality, then a flat
//!   ~7-year plateau).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod afr;
pub mod error;
pub mod failure_sim;
pub mod faults;
pub mod fip;
pub mod oos;
pub mod ssd_wear;

pub use afr::{ComponentAfrs, ServerAfr};
pub use error::MaintenanceError;
pub use failure_sim::{FailureSim, FailureSimParams};
pub use faults::{FaultModel, FaultTopology, PoolDevices};
pub use fip::FipPolicy;
pub use oos::{oos_fraction, CoosComparison};
pub use ssd_wear::{SsdEndurance, SsdWear};
