//! Annual failure rates: component AFRs aggregated into a server AFR.
//!
//! The paper (§V, footnotes 3–4) approximates server AFR as the sum of
//! per-device AFRs: DIMMs ≈ 0.1 and SSDs ≈ 0.2 failures per 100 servers
//! per device per year, with DIMMs and SSDs constituting half of a
//! server's AFR — the other half is a constant from CPUs, boards, PSUs,
//! and fans. Reused DIMMs/SSDs carry the same AFRs as new ones (the
//! empirical observation behind Fig. 2).

use serde::{Deserialize, Serialize};

/// Per-device AFR contributions, in failures per 100 servers per year.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentAfrs {
    /// AFR per DIMM.
    pub per_dimm: f64,
    /// AFR per SSD.
    pub per_ssd: f64,
    /// Constant AFR from all other server components.
    pub other: f64,
}

impl ComponentAfrs {
    /// The paper's values: 0.1 per DIMM, 0.2 per SSD, and an "other"
    /// half calibrated so the 12-DIMM/6-SSD baseline lands at 4.8.
    pub fn paper() -> Self {
        Self { per_dimm: 0.1, per_ssd: 0.2, other: 2.4 }
    }

    /// Validating constructor: every rate must be finite and
    /// non-negative (an AFR of NaN or −0.1 silently corrupts every
    /// downstream repair-rate and fault-plan computation).
    pub fn try_new(
        per_dimm: f64,
        per_ssd: f64,
        other: f64,
    ) -> Result<Self, crate::error::MaintenanceError> {
        crate::error::check_non_negative("per_dimm", per_dimm)?;
        crate::error::check_non_negative("per_ssd", per_ssd)?;
        crate::error::check_non_negative("other", other)?;
        Ok(Self { per_dimm, per_ssd, other })
    }
}

impl Default for ComponentAfrs {
    fn default() -> Self {
        Self::paper()
    }
}

/// A server's AFR derived from its device counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerAfr {
    /// DIMM count (new + reused).
    pub dimms: u32,
    /// SSD count (new + reused).
    pub ssds: u32,
    /// Total AFR, failures per 100 servers per year.
    pub total: f64,
    /// The DRAM+SSD share of the AFR (the part FIP can absorb).
    pub repairable_by_fip: f64,
}

impl ServerAfr {
    /// Computes the AFR of a server with the given device counts.
    pub fn new(afrs: &ComponentAfrs, dimms: u32, ssds: u32) -> Self {
        let media = afrs.per_dimm * f64::from(dimms) + afrs.per_ssd * f64::from(ssds);
        Self { dimms, ssds, total: media + afrs.other, repairable_by_fip: media }
    }

    /// The paper's baseline SKU: 12 DIMMs, 6 SSDs → AFR 4.8.
    pub fn baseline() -> Self {
        Self::new(&ComponentAfrs::paper(), 12, 6)
    }

    /// The paper's GreenSKU-Full: 20 DIMMs, 14 SSDs → AFR 7.2.
    pub fn greensku_full() -> Self {
        Self::new(&ComponentAfrs::paper(), 20, 14)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn baseline_afr_golden() {
        let afr = ServerAfr::baseline();
        assert!((afr.total - 4.8).abs() < 1e-12);
        // DIMMs and SSDs are half of the AFR.
        assert!((afr.repairable_by_fip - 2.4).abs() < 1e-12);
    }

    #[test]
    fn greensku_full_afr_golden() {
        let afr = ServerAfr::greensku_full();
        assert!((afr.total - 7.2).abs() < 1e-12);
        assert!((afr.repairable_by_fip - 4.8).abs() < 1e-12);
    }

    #[test]
    fn afr_monotone_in_device_counts() {
        let afrs = ComponentAfrs::paper();
        let a = ServerAfr::new(&afrs, 12, 6);
        let b = ServerAfr::new(&afrs, 13, 6);
        let c = ServerAfr::new(&afrs, 12, 7);
        assert!(b.total > a.total);
        assert!(c.total > b.total); // SSDs fail more than DIMMs
    }

    #[test]
    fn zero_devices_leaves_other_half() {
        let afr = ServerAfr::new(&ComponentAfrs::paper(), 0, 0);
        assert!((afr.total - 2.4).abs() < 1e-12);
        assert_eq!(afr.repairable_by_fip, 0.0);
    }

    #[test]
    fn try_new_rejects_nan_and_negative() {
        assert!(ComponentAfrs::try_new(f64::NAN, 0.2, 2.4).is_err());
        assert!(ComponentAfrs::try_new(0.1, f64::INFINITY, 2.4).is_err());
        assert!(ComponentAfrs::try_new(0.1, 0.2, -2.4).is_err());
        let ok = ComponentAfrs::try_new(0.1, 0.2, 2.4).unwrap();
        assert_eq!(ok, ComponentAfrs::paper());
        // Zero is a valid rate (a component that never fails).
        assert!(ComponentAfrs::try_new(0.0, 0.0, 0.0).is_ok());
    }
}
