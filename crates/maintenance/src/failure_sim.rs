//! DIMM-population failure simulator (the substrate behind Fig. 2).
//!
//! Azure's telemetry shows DDR4 DIMM failure rates with a short
//! infant-mortality period followed by a flat plateau over seven years
//! of deployment. We simulate a population under a hazard
//!
//! `h(t) = plateau + excess · exp(−t / decay)`
//!
//! and estimate monthly annual-failure-rate points plus the moving
//! average the paper overlays.

use gsf_stats::moving::MovingAverage;
use gsf_stats::rng::SimRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the failure process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSimParams {
    /// DIMM population size.
    pub population: usize,
    /// Steady-state annual failure rate (fraction per year).
    pub plateau_afr: f64,
    /// Additional AFR at time zero (infant mortality).
    pub infant_excess_afr: f64,
    /// Decay constant of the infant-mortality excess, months.
    pub infant_decay_months: f64,
    /// Observation horizon, months.
    pub horizon_months: u32,
    /// Window of the moving average, months.
    pub smoothing_window: usize,
}

impl Default for FailureSimParams {
    fn default() -> Self {
        Self {
            population: 50_000,
            plateau_afr: 0.001, // ~0.1 per 100 DIMM-years, the paper's DIMM AFR
            infant_excess_afr: 0.002,
            infant_decay_months: 4.0,
            horizon_months: 84, // 7 years, the Fig. 2 x-axis
            smoothing_window: 6,
        }
    }
}

/// One monthly observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AfrPoint {
    /// Months since deployment (1-based month index).
    pub month: u32,
    /// Raw annualized failure rate estimated for the month.
    pub raw_afr: f64,
    /// Moving average of the raw series up to this month.
    pub smoothed_afr: f64,
}

/// The failure simulator.
#[derive(Debug, Clone)]
pub struct FailureSim {
    params: FailureSimParams,
}

impl FailureSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics on non-positive population/horizon or negative rates.
    pub fn new(params: FailureSimParams) -> Self {
        assert!(params.population > 0, "population must be positive");
        assert!(params.horizon_months > 0, "horizon must be positive");
        assert!(params.plateau_afr >= 0.0 && params.infant_excess_afr >= 0.0);
        assert!(params.infant_decay_months > 0.0);
        assert!(params.smoothing_window > 0);
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &FailureSimParams {
        &self.params
    }

    /// Instantaneous hazard at `month` (fraction per year).
    pub fn hazard_afr(&self, month: f64) -> f64 {
        self.params.plateau_afr
            + self.params.infant_excess_afr * (-month / self.params.infant_decay_months).exp()
    }

    /// Runs the simulation, returning one [`AfrPoint`] per month.
    ///
    /// Failed DIMMs are replaced (the population stays constant), which
    /// matches how fleet AFR telemetry is reported. Replacement DIMMs are
    /// past their own infant mortality (they are burned-in spares), so
    /// the population hazard follows the deployment-age curve.
    pub fn run(&self, rng: &mut SimRng) -> Vec<AfrPoint> {
        let mut ma = MovingAverage::new(self.params.smoothing_window);
        (1..=self.params.horizon_months)
            .map(|month| {
                let hazard_year = self.hazard_afr(f64::from(month) - 0.5);
                let p_fail_month = hazard_year / 12.0;
                let failures = sample_binomial(rng, self.params.population, p_fail_month);
                let raw_afr = failures as f64 / self.params.population as f64 * 12.0;
                AfrPoint { month, raw_afr, smoothed_afr: ma.push(raw_afr) }
            })
            .collect()
    }
}

/// Samples `Binomial(n, p)`: exact Bernoulli summation for small
/// populations, normal approximation (valid when `n·p·(1−p)` is large)
/// otherwise.
fn sample_binomial(rng: &mut SimRng, n: usize, p: f64) -> usize {
    let p = p.clamp(0.0, 1.0);
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    if n < 1000 {
        return (0..n).filter(|_| rng.gen::<f64>() < p).count();
    }
    if var < 25.0 {
        // Rare-event regime: Binomial(n, p) ≈ Poisson(n·p); Knuth's
        // multiplication method is O(mean) per draw.
        let limit = (-mean).exp();
        let mut k = 0usize;
        let mut prod: f64 = rng.gen();
        while prod > limit && k < n {
            k += 1;
            prod *= rng.gen::<f64>();
        }
        return k;
    }
    // Box–Muller normal draw.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + z * var.sqrt()).round().clamp(0.0, n as f64) as usize
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_stats::rng::SeedFactory;

    #[test]
    fn binomial_sampler_matches_moments() {
        let mut rng = SeedFactory::new(1).stream("binom");
        let (n, p) = (50_000usize, 0.01);
        let draws: Vec<f64> = (0..200).map(|_| sample_binomial(&mut rng, n, p) as f64).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 500.0).abs() < 15.0, "mean {mean}");
        // Small-n exact path.
        let exact = sample_binomial(&mut rng, 10, 0.0);
        assert_eq!(exact, 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
    }

    fn run_default() -> Vec<AfrPoint> {
        let sim = FailureSim::new(FailureSimParams::default());
        let mut rng = SeedFactory::new(21).stream("fig2");
        sim.run(&mut rng)
    }

    #[test]
    fn produces_one_point_per_month() {
        let points = run_default();
        assert_eq!(points.len(), 84);
        assert_eq!(points.first().unwrap().month, 1);
        assert_eq!(points.last().unwrap().month, 84);
    }

    #[test]
    fn infant_mortality_then_flat() {
        let points = run_default();
        // Early smoothed AFR clearly above the late plateau.
        let early = points[3].smoothed_afr;
        let late_avg: f64 = points[60..84].iter().map(|p| p.smoothed_afr).sum::<f64>() / 24.0;
        assert!(early > 1.5 * late_avg, "early {early} vs late {late_avg}");
    }

    #[test]
    fn plateau_matches_configured_afr() {
        let points = run_default();
        let late_avg: f64 = points[36..84].iter().map(|p| p.raw_afr).sum::<f64>() / 48.0;
        let expected = FailureSimParams::default().plateau_afr;
        assert!(
            (late_avg - expected).abs() < expected * 0.25,
            "late {late_avg} vs plateau {expected}"
        );
    }

    #[test]
    fn plateau_is_flat_not_increasing() {
        // Fig. 2's point: no aging signal over 7 years. Compare years
        // 3-4 against years 6-7 — the smoothed rates should be within
        // noise of each other.
        let points = run_default();
        let mid: f64 = points[24..48].iter().map(|p| p.smoothed_afr).sum::<f64>() / 24.0;
        let late: f64 = points[60..84].iter().map(|p| p.smoothed_afr).sum::<f64>() / 24.0;
        assert!((late - mid).abs() < 0.3 * mid, "mid {mid} late {late}");
    }

    #[test]
    fn hazard_decays_monotonically() {
        let sim = FailureSim::new(FailureSimParams::default());
        let mut prev = f64::INFINITY;
        for m in 0..84 {
            let h = sim.hazard_afr(f64::from(m));
            assert!(h <= prev);
            assert!(h >= sim.params().plateau_afr);
            prev = h;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = FailureSim::new(FailureSimParams::default());
        let a = sim.run(&mut SeedFactory::new(5).stream("x"));
        let b = sim.run(&mut SeedFactory::new(5).stream("x"));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_empty_population() {
        FailureSim::new(FailureSimParams { population: 0, ..Default::default() });
    }

    #[test]
    fn accelerated_aging_flat_beyond_12_years() {
        // §III: "internal accelerated aging studies show that AFRs
        // remain flat beyond 12 years". Extend the horizon to 144
        // months and compare the 7-12 year window with years 2-7.
        let sim = FailureSim::new(FailureSimParams {
            horizon_months: 144,
            ..FailureSimParams::default()
        });
        let mut rng = SeedFactory::new(22).stream("aging");
        let points = sim.run(&mut rng);
        assert_eq!(points.len(), 144);
        let mid: f64 = points[24..84].iter().map(|p| p.raw_afr).sum::<f64>() / 60.0;
        let late: f64 = points[84..144].iter().map(|p| p.raw_afr).sum::<f64>() / 60.0;
        assert!((late - mid).abs() < 0.25 * mid, "mid {mid} late {late}");
    }
}
