//! SSD wear model: flash erase-cycle budgets and reuse viability (§III).
//!
//! “Typically, modern SSDs fail due to exhausting flash erasure cycles.
//! After seven years, most SSDs offer more than half of the guaranteed
//! erasure cycles.” This module quantifies that: given a drive's rated
//! endurance (drive-writes-per-day over its warranty) and the write rate
//! it actually saw, how much life is left for a second deployment?

use serde::{Deserialize, Serialize};

/// An SSD model's rated endurance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdEndurance {
    /// Capacity in TB.
    pub capacity_tb: f64,
    /// Rated drive-writes-per-day over the warranty period.
    pub rated_dwpd: f64,
    /// Warranty period in years.
    pub warranty_years: f64,
}

impl SsdEndurance {
    /// A typical 2015-era 1 TB data-center m.2 drive: 1 DWPD over 5
    /// years.
    pub fn m2_2015() -> Self {
        Self { capacity_tb: 1.0, rated_dwpd: 1.0, warranty_years: 5.0 }
    }

    /// Total rated write budget in TB written (TBW).
    pub fn rated_tbw(&self) -> f64 {
        self.capacity_tb * self.rated_dwpd * self.warranty_years * 365.0
    }
}

/// Wear state of one drive (or a deployed population's mean).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdWear {
    endurance: SsdEndurance,
    written_tb: f64,
}

impl SsdWear {
    /// A fresh drive.
    pub fn new(endurance: SsdEndurance) -> Self {
        Self { endurance, written_tb: 0.0 }
    }

    /// Wear after `years` of service at `dwpd` actual drive-writes per
    /// day.
    ///
    /// Cloud compute-server SSDs typically see well under their rated
    /// DWPD — the paper's observation that most drives retain over half
    /// their budget after seven years implies an average utilization
    /// below ~0.36 DWPD for a 1-DWPD/5-year drive.
    pub fn after_service(endurance: SsdEndurance, years: f64, dwpd: f64) -> Self {
        let written = endurance.capacity_tb * dwpd * years * 365.0;
        Self { endurance, written_tb: written }
    }

    /// The drive's endurance rating.
    pub fn endurance(&self) -> SsdEndurance {
        self.endurance
    }

    /// TB written so far.
    pub fn written_tb(&self) -> f64 {
        self.written_tb
    }

    /// Fraction of the rated erase budget remaining, clamped to
    /// `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        (1.0 - self.written_tb / self.endurance.rated_tbw()).clamp(0.0, 1.0)
    }

    /// Years of *additional* service the remaining budget supports at
    /// the given write rate; `f64::INFINITY` if the rate is zero.
    pub fn remaining_years_at(&self, dwpd: f64) -> f64 {
        if dwpd <= 0.0 {
            return f64::INFINITY;
        }
        let remaining_tbw = self.endurance.rated_tbw() * self.remaining_fraction();
        remaining_tbw / (self.endurance.capacity_tb * dwpd * 365.0)
    }

    /// Whether the drive can serve a second deployment of
    /// `second_life_years` at `dwpd` without exhausting its budget.
    pub fn viable_for_reuse(&self, second_life_years: f64, dwpd: f64) -> bool {
        self.remaining_years_at(dwpd) >= second_life_years
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_half_budget_after_seven_years() {
        // At typical cloud write rates (~0.3 DWPD), a 1-DWPD/5-year
        // drive retains >half its budget after 7 years — the paper's
        // §III claim.
        let wear = SsdWear::after_service(SsdEndurance::m2_2015(), 7.0, 0.3);
        assert!(wear.remaining_fraction() > 0.5, "{}", wear.remaining_fraction());
    }

    #[test]
    fn reused_drive_survives_a_second_deployment() {
        // Reuse target: 6 more years in a GreenSKU at the same rate.
        let wear = SsdWear::after_service(SsdEndurance::m2_2015(), 7.0, 0.3);
        assert!(wear.viable_for_reuse(6.0, 0.3));
        // But not at full rated load.
        assert!(!wear.viable_for_reuse(6.0, 1.0));
    }

    #[test]
    fn heavy_writers_exhaust_budget() {
        let wear = SsdWear::after_service(SsdEndurance::m2_2015(), 7.0, 1.0);
        // 7 years at 1 DWPD exceeds a 5-year 1-DWPD budget.
        assert_eq!(wear.remaining_fraction(), 0.0);
        assert_eq!(wear.remaining_years_at(0.5), 0.0);
    }

    #[test]
    fn fresh_drive_has_full_budget() {
        let wear = SsdWear::new(SsdEndurance::m2_2015());
        assert_eq!(wear.remaining_fraction(), 1.0);
        assert_eq!(wear.written_tb(), 0.0);
        // Full budget at rated DWPD = warranty years.
        assert!((wear.remaining_years_at(1.0) - 5.0).abs() < 1e-9);
        assert_eq!(wear.remaining_years_at(0.0), f64::INFINITY);
    }

    #[test]
    fn tbw_arithmetic() {
        let e = SsdEndurance::m2_2015();
        assert!((e.rated_tbw() - 1825.0).abs() < 1e-9);
    }
}
