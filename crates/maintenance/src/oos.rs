//! Out-of-service overheads via Little's law (§V).
//!
//! The fraction of servers out of service equals repair rate × mean
//! repair time (Little's law with repairs-in-progress as the "system").
//! `C_OOS` compares the carbon cost of those out-of-service servers
//! between SKUs: repair rate × relative server count × relative
//! per-server emissions.

use serde::{Deserialize, Serialize};

/// Fraction of servers out of service: `repair_rate` (per 100 servers
/// per year) × `repair_days` mean time to repair.
///
/// # Example
///
/// ```
/// // 3 repairs per 100 servers per year, 5-day repairs:
/// // ~0.04 % of servers are out of service at any time.
/// let f = gsf_maintenance::oos_fraction(3.0, 5.0);
/// assert!((f - 3.0 / 100.0 * 5.0 / 365.0).abs() < 1e-12);
/// ```
pub fn oos_fraction(repair_rate_per_100: f64, repair_days: f64) -> f64 {
    (repair_rate_per_100 / 100.0) * (repair_days / 365.0)
}

/// The §V `C_OOS` comparison between a baseline SKU and a GreenSKU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoosComparison {
    /// Baseline `C_OOS` (repair rate × 1 × 1).
    pub baseline: f64,
    /// GreenSKU `C_OOS` (repair rate × relative server count × relative
    /// per-server emissions).
    pub greensku: f64,
}

impl CoosComparison {
    /// Computes `C_OOS` for both SKUs.
    ///
    /// * `baseline_repair_rate`, `green_repair_rate` — post-FIP repair
    ///   rates per 100 servers;
    /// * `green_servers_per_baseline` — GreenSKUs needed per baseline
    ///   server for the same workload (the paper measures 0.66);
    /// * `green_emissions_ratio` — GreenSKU per-server emissions over
    ///   baseline per-server emissions (the paper uses 1.262).
    pub fn compute(
        baseline_repair_rate: f64,
        green_repair_rate: f64,
        green_servers_per_baseline: f64,
        green_emissions_ratio: f64,
    ) -> Self {
        Self {
            baseline: baseline_repair_rate,
            greensku: green_repair_rate * green_servers_per_baseline * green_emissions_ratio,
        }
    }

    /// The paper's §V numbers: 3.0 and 3.6 repair rates, 0.66 servers,
    /// 1.262 emissions ratio.
    pub fn paper() -> Self {
        Self::compute(3.0, 3.6, 0.66, 1.262)
    }

    /// GreenSKU maintenance overhead relative to baseline
    /// (`greensku / baseline − 1`); the paper finds ≈ −1 % (negligible).
    pub fn relative_overhead(&self) -> f64 {
        self.greensku / self.baseline - 1.0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_coos_golden() {
        // §V: C_OOS = 3.0 for baseline, ≈2.98 for GreenSKU-Full.
        let c = CoosComparison::paper();
        assert!((c.baseline - 3.0).abs() < 1e-12);
        assert!((c.greensku - 2.998).abs() < 0.01, "{}", c.greensku);
        // Overhead is negligible (within ±2 %).
        assert!(c.relative_overhead().abs() < 0.02);
    }

    #[test]
    fn oos_fraction_scales_linearly() {
        let base = oos_fraction(3.0, 5.0);
        assert!((oos_fraction(6.0, 5.0) - 2.0 * base).abs() < 1e-15);
        assert!((oos_fraction(3.0, 10.0) - 2.0 * base).abs() < 1e-15);
        assert_eq!(oos_fraction(0.0, 5.0), 0.0);
    }

    #[test]
    fn more_servers_or_emissions_increase_coos() {
        let a = CoosComparison::compute(3.0, 3.6, 0.66, 1.262);
        let b = CoosComparison::compute(3.0, 3.6, 1.0, 1.262);
        let c = CoosComparison::compute(3.0, 3.6, 0.66, 2.0);
        assert!(b.greensku > a.greensku);
        assert!(c.greensku > a.greensku);
    }
}
