//! Minimal flag parser (the offline dependency set has no `clap`).

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    command: String,
    flags: HashMap<String, String>,
}

/// Errors parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand supplied.
    MissingCommand,
    /// A `--flag` without a value.
    MissingValue(String),
    /// A positional argument where a flag was expected.
    UnexpectedPositional(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The unparseable text.
        value: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument `{arg}` (flags are --key value)")
            }
            ArgError::BadValue { flag, value } => {
                write!(f, "cannot parse `{value}` for --{flag}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Commands that take a sub-command word: `gsf trace synth ...` parses
/// as the single command `"trace synth"`. Any other positional after a
/// command is still an error.
const COMMAND_GROUPS: [&str; 1] = ["trace"];

/// Flags whose value is optional: a bare `--stream` (followed by
/// another flag or nothing) reads as `--stream true`.
const BOOLEAN_FLAGS: [&str; 1] = ["stream"];

impl Args {
    /// Parses `command [subcommand] --flag value ...`.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] for a missing command, a flag without a
    /// value, or a stray positional argument.
    pub fn parse<I, S>(argv: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = argv.into_iter().map(Into::into).peekable();
        let mut command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with('-') && command != "--help" && command != "-h" {
            return Err(ArgError::UnexpectedPositional(command));
        }
        if COMMAND_GROUPS.contains(&command.as_str()) {
            if let Some(sub) = iter.next_if(|a| !a.starts_with('-')) {
                command.push(' ');
                command.push_str(&sub);
            }
        }
        let mut flags = HashMap::new();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = if BOOLEAN_FLAGS.contains(&key) {
                    iter.next_if(|a| !a.starts_with("--")).unwrap_or_else(|| "true".to_string())
                } else {
                    iter.next().ok_or_else(|| ArgError::MissingValue(key.into()))?
                };
                flags.insert(key.to_string(), value);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(Self { command, flags })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Raw string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.get(flag).unwrap_or(default)
    }

    /// Boolean flag: true for `--flag`, `--flag true`, `--flag 1`, or
    /// `--flag yes`; false when absent or given any other value.
    pub fn get_bool(&self, flag: &str) -> bool {
        matches!(self.get(flag), Some("true" | "1" | "yes"))
    }

    /// Parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparseable.
    pub fn get_num<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue { flag: flag.to_string(), value: v.to_string() }),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(["assess", "--sku", "greensku-full", "--ci", "0.2"]).unwrap();
        assert_eq!(a.command(), "assess");
        assert_eq!(a.get("sku"), Some("greensku-full"));
        assert_eq!(a.get_num("ci", 0.1).unwrap(), 0.2);
        assert_eq!(a.get_num("lifetime", 6.0).unwrap(), 6.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(Args::parse(Vec::<String>::new()), Err(ArgError::MissingCommand));
        assert_eq!(Args::parse(["cmd", "--flag"]), Err(ArgError::MissingValue("flag".into())));
        assert_eq!(
            Args::parse(["cmd", "stray"]),
            Err(ArgError::UnexpectedPositional("stray".into()))
        );
    }

    #[test]
    fn bad_numeric_value() {
        let a = Args::parse(["cmd", "--ci", "abc"]).unwrap();
        assert!(matches!(a.get_num::<f64>("ci", 0.1), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn defaults_pass_through() {
        let a = Args::parse(["cmd"]).unwrap();
        assert_eq!(a.get_or("design", "full"), "full");
    }

    #[test]
    fn trace_group_joins_subcommand() {
        let a = Args::parse(["trace", "synth", "--out", "x.gst"]).unwrap();
        assert_eq!(a.command(), "trace synth");
        assert_eq!(a.get("out"), Some("x.gst"));
        // A bare `trace` stays a single (unknown) command.
        assert_eq!(Args::parse(["trace"]).unwrap().command(), "trace");
        // Other commands still reject positionals.
        assert_eq!(
            Args::parse(["fleet", "synth"]),
            Err(ArgError::UnexpectedPositional("synth".into()))
        );
    }

    #[test]
    fn boolean_flags_take_optional_values() {
        let a = Args::parse(["fleet", "--stream", "--design", "full"]).unwrap();
        assert!(a.get_bool("stream"));
        assert_eq!(a.get("design"), Some("full"));
        let a = Args::parse(["fleet", "--stream"]).unwrap();
        assert!(a.get_bool("stream"));
        let a = Args::parse(["fleet", "--stream", "false"]).unwrap();
        assert!(!a.get_bool("stream"));
        let a = Args::parse(["fleet"]).unwrap();
        assert!(!a.get_bool("stream"));
        // Non-boolean flags still require a value.
        assert_eq!(Args::parse(["cmd", "--flag"]), Err(ArgError::MissingValue("flag".into())));
    }
}
