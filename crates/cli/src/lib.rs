//! `gsf` — the command-line interface to the GreenSKU framework.
//!
//! All commands are implemented as library functions returning their
//! output as a `String` (so they are unit-testable); `main` is a thin
//! argument-parsing shim.
//!
//! ```text
//! gsf list-skus
//! gsf assess --sku greensku-full [--ci 0.1] [--lifetime 6]
//! gsf compare --green greensku-cxl [--baseline baseline-gen3] [--ci 0.1]
//! gsf sweep --green greensku-full --from 0.01 --to 0.5 --points 25
//! gsf report --design full [--hours 24] [--arrivals 80] [--seed 42]
//! gsf search
//! gsf tco
//! gsf gen-trace --out trace.bin [--hours 24] [--arrivals 80] [--seed 42]
//! gsf replay --trace trace.bin --design full
//! gsf faults --design full [--afr-scale 1] [--fip 0.75] [--years 1] [--fault-seed 7]
//! gsf fleet --design full [--traces 4] [--workers N] [--hours 24] [--seed 42]
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run_command, CliError};
