//! Thin shim: parse argv, dispatch, print.

use gsf_cli::{run_command, Args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("gsf: {e}");
            eprintln!("{}", gsf_cli::commands::help());
            return ExitCode::FAILURE;
        }
    };
    match run_command(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gsf: {e}");
            ExitCode::FAILURE
        }
    }
}
