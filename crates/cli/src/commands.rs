//! The `gsf` subcommands, each returning its output as a string.

use crate::args::{ArgError, Args};
use gsf_carbon::cost::{CostModel, CostParams};
use gsf_carbon::datasets::open_source;
use gsf_carbon::units::{CarbonIntensity, Years};
use gsf_carbon::{CarbonModel, ModelParams, ServerSpec};
use gsf_core::report::deployment_report;
use gsf_core::search::{evaluate_space_with, pareto_front, CandidateSpace};
use gsf_core::{EvalContext, GreenSkuDesign, GsfError, GsfPipeline, PipelineConfig};
use gsf_stats::rng::SeedFactory;
use gsf_stats::table::{fmt_f, fmt_pct, Table};
use gsf_workloads::{
    decode_chunks, sniff_chunked, Trace, TraceChunkReader, TraceCodecError, TraceGenerator,
    TraceParams, TraceStreamError, DEFAULT_CHUNK_EVENTS,
};
use std::fmt;

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown SKU or design name.
    UnknownName {
        /// What was looked up.
        kind: &'static str,
        /// The name that failed.
        name: String,
        /// Valid options.
        options: Vec<&'static str>,
    },
    /// Carbon-model failure.
    Carbon(gsf_carbon::CarbonError),
    /// Framework failure.
    Gsf(GsfError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Trace decoding failure.
    Trace(TraceCodecError),
    /// Chunked trace stream failure (I/O, truncation, or corruption).
    Stream(TraceStreamError),
    /// Invalid fault-model parameter.
    Maintenance(gsf_maintenance::MaintenanceError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => write!(f, "unknown command `{c}` (try --help)"),
            CliError::UnknownName { kind, name, options } => {
                write!(f, "unknown {kind} `{name}`; options: {}", options.join(", "))
            }
            CliError::Carbon(e) => write!(f, "{e}"),
            CliError::Gsf(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Trace(e) => write!(f, "{e}"),
            CliError::Stream(e) => write!(f, "{e}"),
            CliError::Maintenance(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}
impl From<gsf_carbon::CarbonError> for CliError {
    fn from(e: gsf_carbon::CarbonError) -> Self {
        CliError::Carbon(e)
    }
}
impl From<GsfError> for CliError {
    fn from(e: GsfError) -> Self {
        CliError::Gsf(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<TraceCodecError> for CliError {
    fn from(e: TraceCodecError) -> Self {
        CliError::Trace(e)
    }
}
impl From<TraceStreamError> for CliError {
    fn from(e: TraceStreamError) -> Self {
        CliError::Stream(e)
    }
}
impl From<gsf_maintenance::MaintenanceError> for CliError {
    fn from(e: gsf_maintenance::MaintenanceError) -> Self {
        CliError::Maintenance(e)
    }
}

const SKU_NAMES: [&str; 7] = [
    "baseline-gen1",
    "baseline-gen2",
    "baseline-gen3",
    "baseline-resized",
    "greensku-efficient",
    "greensku-cxl",
    "greensku-full",
];

fn sku_by_name(name: &str) -> Result<ServerSpec, CliError> {
    match name {
        "baseline-gen1" => Ok(open_source::baseline_gen1()),
        "baseline-gen2" => Ok(open_source::baseline_gen2()),
        "baseline-gen3" => Ok(open_source::baseline_gen3()),
        "baseline-resized" => Ok(open_source::baseline_resized()),
        "greensku-efficient" => Ok(open_source::greensku_efficient()),
        "greensku-cxl" => Ok(open_source::greensku_cxl()),
        "greensku-full" => Ok(open_source::greensku_full()),
        other => Err(CliError::UnknownName {
            kind: "SKU",
            name: other.to_string(),
            options: SKU_NAMES.to_vec(),
        }),
    }
}

const DESIGN_NAMES: [&str; 3] = ["efficient", "cxl", "full"];

fn design_by_name(name: &str) -> Result<GreenSkuDesign, CliError> {
    match name {
        "efficient" => Ok(GreenSkuDesign::efficient()),
        "cxl" => Ok(GreenSkuDesign::cxl()),
        "full" => Ok(GreenSkuDesign::full()),
        other => Err(CliError::UnknownName {
            kind: "design",
            name: other.to_string(),
            options: DESIGN_NAMES.to_vec(),
        }),
    }
}

fn params_from(args: &Args) -> Result<ModelParams, CliError> {
    let ci = args.get_num("ci", 0.1)?;
    let lifetime = args.get_num("lifetime", 6.0)?;
    Ok(ModelParams::default_open_source()
        .with_carbon_intensity(CarbonIntensity::new(ci))
        .with_lifetime(Years::new(lifetime)))
}

fn trace_from(args: &Args) -> Result<Trace, CliError> {
    let hours = args.get_num("hours", 24.0)?;
    let arrivals = args.get_num("arrivals", 80.0)?;
    let seed = args.get_num("seed", 42u64)?;
    let diurnal = args.get_num("diurnal", 0.0)?;
    Ok(TraceGenerator::new(TraceParams {
        duration_hours: hours,
        arrivals_per_hour: arrivals,
        diurnal_amplitude: diurnal,
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(seed), 0))
}

/// The help text.
pub fn help() -> String {
    let mut out = String::from(
        "gsf — GreenSKU framework CLI\n\n\
         commands:\n\
         \u{20}  list-skus                          built-in SKU configurations\n\
         \u{20}  assess    --sku NAME [--ci X] [--lifetime Y] [--spec-load F]\n\
         \u{20}  compare   --green NAME [--baseline NAME] [--ci X]\n\
         \u{20}  sweep     --green NAME [--from X] [--to Y] [--points N]\n\
         \u{20}  report    --design efficient|cxl|full [--hours H] [--arrivals A] [--seed S]\n\
         \u{20}  search    [--workers N]            design-space exploration + Pareto front\n\
         \u{20}  tco                                TCO model over the SKU set\n\
         \u{20}  gen-trace --out FILE [--hours H] [--arrivals A] [--seed S] [--diurnal A]\n\
         \u{20}  trace synth   --out FILE [--hours H] [--arrivals A] [--seed S] [--diurnal A] [--chunk-events N]\n\
         \u{20}  trace inspect --trace FILE\n\
         \u{20}  replay    --trace FILE --design NAME\n\
         \u{20}  characterize [--trace FILE | --hours H --arrivals A --seed S]\n\
         \u{20}  regions                            per-region CI and best design\n\
         \u{20}  defer     --region NAME [--runtime H] [--cores N]\n\
         \u{20}  faults    --design NAME [--afr-scale X] [--fip F] [--years Y] [--fault-seed S]\n\
         \u{20}            [--topology N] [--domain-rate R] [--repair-days D] [--slo M] [--format text|json]\n\
         \u{20}  fleet     --design NAME [--traces N] [--workers N] [--shards K] [--hours H] [--seed S]\n\
         \u{20}            [--trace-file FILE [--stream]]   evaluate a trace file (chunked or legacy)\n\nSKUs: ",
    );
    out.push_str(&SKU_NAMES.join(", "));
    out.push('\n');
    out
}

/// Dispatches a parsed command; returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing what went wrong (printed to stderr
/// by `main`).
pub fn run_command(args: &Args) -> Result<String, CliError> {
    match args.command() {
        "--help" | "-h" | "help" => Ok(help()),
        "list-skus" => list_skus(),
        "assess" => assess(args),
        "compare" => compare(args),
        "sweep" => sweep(args),
        "report" => report(args),
        "search" => search(args),
        "tco" => tco(),
        "gen-trace" => gen_trace(args),
        "trace synth" => trace_synth(args),
        "trace inspect" => trace_inspect(args),
        "trace" => Err(CliError::UnknownCommand("trace (expected synth or inspect)".to_string())),
        "replay" => replay(args),
        "characterize" => characterize_cmd(args),
        "regions" => regions_cmd(),
        "defer" => defer_cmd(args),
        "faults" => faults_cmd(args),
        "fleet" => fleet_cmd(args),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn list_skus() -> Result<String, CliError> {
    let mut t =
        Table::new(vec!["Name", "Cores", "Memory (GB)", "CXL (GB)", "SSD (TB)", "Power (W)"]);
    for name in SKU_NAMES {
        let sku = sku_by_name(name)?;
        t.row(vec![
            name.to_string(),
            sku.cores().to_string(),
            format!("{:.0}", sku.memory_capacity().get()),
            format!("{:.0}", sku.cxl_memory_capacity().get()),
            format!("{:.0}", sku.ssd_capacity().get()),
            format!("{:.0}", sku.average_power().get()),
        ]);
    }
    Ok(t.render_text())
}

fn assess(args: &Args) -> Result<String, CliError> {
    use gsf_carbon::derating::DeratingCurve;
    let sku = sku_by_name(args.get_or("sku", "greensku-full"))?;
    let params = params_from(args)?;
    let model = CarbonModel::new(params);
    let a = model.assess(&sku)?;
    // Optional fleet-utilization adjustment: the datasets bake in the
    // paper's 0.44 derate (40 % SPEC load); --spec-load rescales the
    // operational side along the SPECpower-style curve.
    let spec_load = args.get_num("spec-load", 0.4)?;
    let curve = DeratingCurve::specpower_like();
    let scale = curve.derate_at(spec_load) / curve.derate_at(0.4);
    let op = a.op_per_core().get() * scale;
    Ok(format!(
        "{}\n  servers/rack: {}\n  cores/rack:   {}\n  server power: {:.1} W (at 40% SPEC load)\n  \
         operational:  {:.2} kg CO2e/core (at {:.0}% SPEC load)\n  embodied:     {:.2} kg CO2e/core\n  \
         total:        {:.2} kg CO2e/core (CI {}, lifetime {} y)\n",
        sku.name(),
        a.servers_per_rack(),
        a.cores_per_rack(),
        a.server_power().get(),
        op,
        spec_load * 100.0,
        a.emb_per_core().get(),
        op + a.emb_per_core().get(),
        params.carbon_intensity.get(),
        params.lifetime.get(),
    ))
}

fn compare(args: &Args) -> Result<String, CliError> {
    let green = sku_by_name(args.get_or("green", "greensku-full"))?;
    let baseline = sku_by_name(args.get_or("baseline", "baseline-gen3"))?;
    let model = CarbonModel::new(params_from(args)?);
    let s = model.savings(&baseline, &green)?;
    Ok(format!(
        "{} vs {}\n  operational savings: {}\n  embodied savings:    {}\n  total savings:       {}\n",
        green.name(),
        baseline.name(),
        fmt_pct(s.operational, 1),
        fmt_pct(s.embodied, 1),
        fmt_pct(s.total, 1),
    ))
}

fn sweep(args: &Args) -> Result<String, CliError> {
    let green = sku_by_name(args.get_or("green", "greensku-full"))?;
    let baseline = sku_by_name(args.get_or("baseline", "baseline-gen3"))?;
    let from = args.get_num("from", 0.01)?;
    let to = args.get_num("to", 0.5)?;
    let points: usize = args.get_num("points", 25)?;
    let mut out = String::from("carbon_intensity,operational,embodied,total\n");
    for i in 0..points.max(2) {
        let ci = from + (to - from) * i as f64 / (points.max(2) - 1) as f64;
        let model = CarbonModel::new(
            ModelParams::default_open_source().with_carbon_intensity(CarbonIntensity::new(ci)),
        );
        let s = model.savings(&baseline, &green)?;
        out.push_str(&format!(
            "{},{},{},{}\n",
            fmt_f(ci, 3),
            fmt_f(s.operational, 4),
            fmt_f(s.embodied, 4),
            fmt_f(s.total, 4)
        ));
    }
    Ok(out)
}

fn report(args: &Args) -> Result<String, CliError> {
    let design = design_by_name(args.get_or("design", "full"))?;
    let trace = trace_from(args)?;
    let pipeline = GsfPipeline::new(PipelineConfig::default());
    Ok(deployment_report(&pipeline, &design, &trace)?)
}

fn search(args: &Args) -> Result<String, CliError> {
    let workers = args.get_num("workers", gsf_cluster::parallel::default_workers())?;
    let results = evaluate_space_with(
        &CandidateSpace::paper_neighborhood(),
        ModelParams::default_open_source(),
        &EvalContext::new(),
        workers.max(1),
    )?;
    let front: std::collections::HashSet<String> =
        pareto_front(&results).iter().map(|r| r.name.clone()).collect();
    let mut t =
        Table::new(vec!["Rank", "Candidate", "kg/core", "Adoption", "Effective savings", ""]);
    for (i, r) in results.iter().enumerate().take(12) {
        t.row(vec![
            (i + 1).to_string(),
            r.name.clone(),
            fmt_f(r.per_core_kg, 1),
            fmt_pct(r.adoption_rate, 0),
            fmt_pct(r.effective_savings, 1),
            if front.contains(&r.name) { "pareto".into() } else { String::new() },
        ]);
    }
    Ok(t.render_text())
}

fn tco() -> Result<String, CliError> {
    let model = CostModel::new(ModelParams::default_open_source(), CostParams::public_estimates());
    let mut t = Table::new(vec!["SKU", "Capex $/core", "Energy $/core", "TCO $/core"]);
    for name in SKU_NAMES {
        let sku = sku_by_name(name)?;
        let a = model.assess(&sku)?;
        t.row(vec![
            name.to_string(),
            fmt_f(a.capex_per_core, 0),
            fmt_f(a.energy_per_core, 0),
            fmt_f(a.total_per_core(), 0),
        ]);
    }
    Ok(t.render_text())
}

fn gen_trace(args: &Args) -> Result<String, CliError> {
    let out_path = args.get("out").ok_or_else(|| ArgError::MissingValue("out".into()))?.to_string();
    let trace = trace_from(args)?;
    std::fs::write(&out_path, trace.encode()?)?;
    Ok(format!(
        "wrote {} VMs / {} events over {:.0} h to {out_path}\n",
        trace.vms().len(),
        trace.events().len(),
        trace.duration_s() / 3600.0
    ))
}

/// Loads a trace file of either format, sniffed from its magic: the
/// chunked streaming format (`trace synth`) or the legacy monolithic
/// encoding (`gen-trace`).
fn load_trace(path: &str) -> Result<Trace, CliError> {
    let bytes = std::fs::read(path)?;
    if sniff_chunked(&bytes) {
        Ok(decode_chunks(&bytes[..])?)
    } else {
        Ok(Trace::decode(bytes::Bytes::from(bytes))?)
    }
}

/// Synthesizes a trace straight to a chunked file: the generator's
/// event stream goes through [`TraceGenerator::synthesize_streamed`],
/// so peak memory is O(concurrency), never O(trace) — the path for
/// fleet-scale multi-week traces.
fn trace_synth(args: &Args) -> Result<String, CliError> {
    use std::io::Write as _;
    let out_path = args.get("out").ok_or_else(|| ArgError::MissingValue("out".into()))?.to_string();
    let hours = args.get_num("hours", 24.0)?;
    let arrivals = args.get_num("arrivals", 80.0)?;
    let seed = args.get_num("seed", 42u64)?;
    let diurnal = args.get_num("diurnal", 0.0)?;
    let chunk_events: usize = args.get_num("chunk-events", DEFAULT_CHUNK_EVENTS)?;
    let g = TraceGenerator::new(TraceParams {
        duration_hours: hours,
        arrivals_per_hour: arrivals,
        diurnal_amplitude: diurnal,
        ..TraceParams::default()
    });
    let mut out = std::io::BufWriter::new(std::fs::File::create(&out_path)?);
    let digest =
        g.synthesize_streamed(&SeedFactory::new(seed), 0, &mut out, chunk_events.max(1))?;
    out.flush()?;
    // Read the file back through the verifying decoder: every chunk
    // hash and the footer digest are checked before we report success.
    let (vms, events, _, verified) = scan_chunked(&out_path)?;
    debug_assert_eq!(verified, digest);
    Ok(format!(
        "synthesized {vms} VMs / {events} events over {hours:.0} h to {out_path} \
         (chunked, digest {:016x}{:016x}, verified)\n",
        digest.0, digest.1
    ))
}

/// Streams a chunked trace file end to end, returning (VMs, events,
/// chunks, digest) after verifying every chunk hash and the footer.
fn scan_chunked(path: &str) -> Result<(u64, u64, u64, (u64, u64)), CliError> {
    let file = std::fs::File::open(path)?;
    let mut reader = TraceChunkReader::new(std::io::BufReader::new(file))?;
    let mut chunks = 0u64;
    while let Some(_chunk) = reader.next_chunk()? {
        chunks += 1;
    }
    let (vms, events) = reader.totals().unwrap_or((0, 0));
    let digest = reader.content_hash().unwrap_or((0, 0));
    Ok((vms, events, chunks, digest))
}

/// Reports what a trace file contains without materializing it:
/// chunked files are streamed (and fully verified) in bounded memory;
/// legacy files are decoded.
fn trace_inspect(args: &Args) -> Result<String, CliError> {
    let path = args.get("trace").ok_or_else(|| ArgError::MissingValue("trace".into()))?.to_string();
    let mut prefix = [0u8; 8];
    {
        use std::io::Read as _;
        let mut f = std::fs::File::open(&path)?;
        let n = f.read(&mut prefix)?;
        if sniff_chunked(&prefix[..n]) {
            drop(f);
            let file = std::fs::File::open(&path)?;
            let duration_s = {
                let reader = TraceChunkReader::new(std::io::BufReader::new(file))?;
                reader.duration_s()
            };
            let (vms, events, chunks, digest) = scan_chunked(&path)?;
            return Ok(format!(
                "{path}: chunked trace\n  duration: {:.2} h\n  VMs:      {vms}\n  \
                 events:   {events}\n  chunks:   {chunks}\n  digest:   {:016x}{:016x} (verified)\n",
                duration_s / 3600.0,
                digest.0,
                digest.1
            ));
        }
    }
    let trace = load_trace(&path)?;
    let digest = trace.content_hash();
    Ok(format!(
        "{path}: legacy trace\n  duration: {:.2} h\n  VMs:      {}\n  events:   {}\n  \
         digest:   {:016x}{:016x}\n",
        trace.duration_s() / 3600.0,
        trace.vms().len(),
        trace.events().len(),
        digest.0,
        digest.1
    ))
}

fn replay(args: &Args) -> Result<String, CliError> {
    let path = args.get("trace").ok_or_else(|| ArgError::MissingValue("trace".into()))?.to_string();
    let trace = load_trace(&path)?;
    let design = design_by_name(args.get_or("design", "full"))?;
    let pipeline = GsfPipeline::new(PipelineConfig::default());
    let o = pipeline.evaluate(&design, &trace)?;
    Ok(format!(
        "{} on {} VMs:\n  plan: {} baseline + {} GreenSKU (buffered {} + {})\n  \
         adoption {:.1}%  cluster savings {:.1}%  DC savings {:.1}%\n",
        o.design,
        trace.vms().len(),
        o.plan.baseline,
        o.plan.green,
        o.plan_buffered.baseline,
        o.plan_buffered.green,
        o.adoption_rate * 100.0,
        o.cluster_savings * 100.0,
        o.dc_savings * 100.0,
    ))
}

fn characterize_cmd(args: &Args) -> Result<String, CliError> {
    let trace = match args.get("trace") {
        Some(path) => load_trace(path)?,
        None => trace_from(args)?,
    };
    Ok(gsf_workloads::characterize(&trace).render())
}

fn regions_cmd() -> Result<String, CliError> {
    use gsf_carbon::grid::regions;
    let baseline = open_source::baseline_gen3();
    let greens = [
        ("efficient", open_source::greensku_efficient()),
        ("cxl", open_source::greensku_cxl()),
        ("full", open_source::greensku_full()),
    ];
    let mut t = Table::new(vec![
        "Region",
        "Avg CI (kg/kWh)",
        "Renewables",
        "Cleanest hour",
        "Best design",
        "Savings",
    ]);
    for r in regions() {
        let model = CarbonModel::new(
            ModelParams::default_open_source().with_carbon_intensity(r.average_ci()),
        );
        let mut best = ("-", f64::NEG_INFINITY);
        for (name, sku) in &greens {
            let s = model.savings(&baseline, sku)?.total;
            if s > best.1 {
                best = (name, s);
            }
        }
        t.row(vec![
            r.name.to_string(),
            fmt_f(r.average_ci().get(), 3),
            fmt_pct(r.renewable_fraction, 0),
            format!("{:02.0}:00", r.cleanest_hour()),
            best.0.to_string(),
            fmt_pct(best.1, 1),
        ]);
    }
    Ok(t.render_text())
}

fn defer_cmd(args: &Args) -> Result<String, CliError> {
    use gsf_core::temporal::{schedule_job, BatchJob};
    let region_name = args.get_or("region", "us-central");
    let region = gsf_carbon::grid::region(region_name).ok_or_else(|| CliError::UnknownName {
        kind: "region",
        name: region_name.to_string(),
        options: vec![
            "us-south",
            "us-west",
            "us-central",
            "us-east",
            "europe-west",
            "europe-north",
            "asia-east",
            "asia-south",
            "australia-east",
            "brazil-south",
        ],
    })?;
    let runtime = args.get_num("runtime", 2.0)?;
    let cores = args.get_num("cores", 8u32)?;
    let job = BatchJob::flexible(runtime, cores);
    let s = schedule_job(&region, &job);
    Ok(format!(
        "{region_name}: defer a {runtime} h / {cores}-core batch job to {:02.0}:00\n           mean CI if run now:      {:.3} kgCO2e/kWh\n           mean CI at chosen start: {:.3} kgCO2e/kWh\n           operational savings:     {}\n",
        s.start_hour,
        s.immediate_ci,
        s.scheduled_ci,
        fmt_pct(s.savings(), 1),
    ))
}

/// Escapes a string for embedding in the hand-rolled JSON output
/// (same escaping rules as `gsf-lint`'s report).
fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One pipeline outcome as a JSON object fragment for `gsf faults
/// --format json` (no trailing newline, no surrounding braces' key).
fn faults_json_outcome(o: &gsf_core::PipelineOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"plan\":{{\"baseline\":{},\"green\":{},\"buffered_baseline\":{},\"buffered_green\":{}}},",
        o.plan.baseline, o.plan.green, o.plan_buffered.baseline, o.plan_buffered.green
    );
    let _ = write!(
        out,
        "\"cluster_savings\":{},\"expected_capacity_loss\":{},",
        o.cluster_savings, o.expected_capacity_loss
    );
    let _ = write!(
        out,
        "\"faults\":{{\"full_failures\":{},\"partial_degrades\":{},\"revivals\":{},\
         \"displaced\":{},\"evacuated\":{},\"evacuation_failures\":{}}},",
        o.faults.full_failures,
        o.faults.partial_degrades,
        o.faults.revivals,
        o.faults.displaced,
        o.faults.evacuated,
        o.faults.evacuation_failures
    );
    let a = &o.availability;
    let _ = write!(
        out,
        "\"availability\":{{\"vm_minutes_lost\":{},\"availability\":{},\"nines\":{},\
         \"max_simultaneous_displaced\":{},\"blast_radius_servers\":{},\"server_down_seconds\":{}}}",
        a.vm_minutes_lost(),
        a.availability(),
        a.nines(),
        a.max_simultaneous_displaced,
        a.blast_radius_servers,
        a.server_down_seconds
    );
    out.push('}');
    out
}

fn faults_cmd(args: &Args) -> Result<String, CliError> {
    use gsf_maintenance::{ComponentAfrs, FaultModel, FaultTopology, FipPolicy};
    let design = design_by_name(args.get_or("design", "full"))?;
    let trace = trace_from(args)?;
    let afr_scale = args.get_num("afr-scale", 1.0)?;
    let fip = args.get_num("fip", 0.75)?;
    let years = args.get_num("years", 1.0)?;
    let fault_seed = args.get_num("fault-seed", 7u64)?;
    let topology: u32 = args.get_num("topology", 0u32)?;
    let domain_rate = args.get_num("domain-rate", 1.0)?;
    let repair_days = args.get_num("repair-days", 0.0)?;
    let slo: f64 = args.get_num("slo", -1.0)?;
    let format = args.get_or("format", "text");
    let paper = FaultModel::paper(fault_seed);
    let mut model = FaultModel::new(
        ComponentAfrs::paper(),
        FipPolicy { effectiveness: fip },
        afr_scale,
        years,
        paper.degrade_core_fraction,
        paper.degrade_mem_fraction,
        paper.max_evac_passes,
        fault_seed,
    )?;
    if topology > 0 {
        model = model.with_topology(FaultTopology {
            domain_size: topology,
            domain_events_per_100: domain_rate,
        })?;
    }
    if repair_days > 0.0 {
        model = model.with_repair_days(repair_days)?;
    }
    let availability_slo = (slo >= 0.0).then_some(slo);
    let clean = GsfPipeline::new(PipelineConfig::default());
    let faulted = GsfPipeline::new(PipelineConfig {
        faults: model,
        availability_slo,
        ..PipelineConfig::default()
    });
    let c = clean.evaluate(&design, &trace)?;
    let f = faulted.evaluate(&design, &trace)?;
    if format == "json" {
        return Ok(format!(
            "{{\"design\":\"{}\",\"afr_scale\":{afr_scale},\"fip\":{fip},\"years\":{years},\
             \"fault_seed\":{fault_seed},\"domain_size\":{topology},\"repair_days\":{repair_days},\
             \"clean\":{},\"faulted\":{}}}\n",
            json_escape(&f.design),
            faults_json_outcome(&c),
            faults_json_outcome(&f)
        ));
    }
    let mut t = Table::new(vec!["Metric", "Fault-free", "Faulted"]);
    let plan = |o: &gsf_core::PipelineOutcome| {
        format!(
            "{} + {} (buffered {} + {})",
            o.plan.baseline, o.plan.green, o.plan_buffered.baseline, o.plan_buffered.green
        )
    };
    t.row(vec!["plan (baseline + green)".into(), plan(&c), plan(&f)]);
    t.row(vec![
        "cluster savings".into(),
        fmt_pct(c.cluster_savings, 1),
        fmt_pct(f.cluster_savings, 1),
    ]);
    t.row(vec![
        "expected capacity loss".into(),
        fmt_pct(c.expected_capacity_loss, 2),
        fmt_pct(f.expected_capacity_loss, 2),
    ]);
    t.row(vec![
        "full failures / partial degrades".into(),
        format!("{} / {}", c.faults.full_failures, c.faults.partial_degrades),
        format!("{} / {}", f.faults.full_failures, f.faults.partial_degrades),
    ]);
    t.row(vec![
        "revivals (return-to-service)".into(),
        c.faults.revivals.to_string(),
        f.faults.revivals.to_string(),
    ]);
    t.row(vec![
        "VMs displaced / evacuated".into(),
        format!("{} / {}", c.faults.displaced, c.faults.evacuated),
        format!("{} / {}", f.faults.displaced, f.faults.evacuated),
    ]);
    t.row(vec![
        "evacuation failures".into(),
        c.faults.evacuation_failures.to_string(),
        f.faults.evacuation_failures.to_string(),
    ]);
    t.row(vec![
        "VM-minutes lost".into(),
        fmt_f(c.availability.vm_minutes_lost(), 2),
        fmt_f(f.availability.vm_minutes_lost(), 2),
    ]);
    t.row(vec![
        "availability (nines)".into(),
        format!(
            "{} ({})",
            fmt_f(c.availability.availability(), 6),
            fmt_f(c.availability.nines(), 2)
        ),
        format!(
            "{} ({})",
            fmt_f(f.availability.availability(), 6),
            fmt_f(f.availability.nines(), 2)
        ),
    ]);
    t.row(vec![
        "max simultaneous displaced".into(),
        c.availability.max_simultaneous_displaced.to_string(),
        f.availability.max_simultaneous_displaced.to_string(),
    ]);
    t.row(vec![
        "blast radius (servers)".into(),
        c.availability.blast_radius_servers.to_string(),
        f.availability.blast_radius_servers.to_string(),
    ]);
    t.row(vec![
        "server downtime (h)".into(),
        fmt_f(c.availability.server_down_seconds / 3600.0, 2),
        fmt_f(f.availability.server_down_seconds / 3600.0, 2),
    ]);
    Ok(format!(
        "{} — AFR×{:.2}, FIP {:.0}%, {:.1} y horizon, seed {}, domain size {}, repair {:.1} d\n{}",
        f.design,
        afr_scale,
        fip * 100.0,
        years,
        fault_seed,
        topology,
        repair_days,
        t.render_text()
    ))
}

/// `gsf fleet --trace-file FILE [--stream]`: evaluate one on-disk
/// trace. With `--stream` the file must be chunked and is fed to
/// [`GsfPipeline::evaluate_streamed`] — the trace is never
/// materialized, so multi-week fleet traces evaluate in bounded
/// memory. Without it, either format is loaded in memory first; the
/// two paths are bit-identical (see the `streamed_equivalence` suite).
fn fleet_file_cmd(args: &Args, path: &str) -> Result<String, CliError> {
    let design = design_by_name(args.get_or("design", "full"))?;
    let shards: usize = args.get_num("shards", 1usize)?;
    let pipeline =
        GsfPipeline::new(PipelineConfig { shards: shards.max(1), ..PipelineConfig::default() });
    let (o, vms, mode) = if args.get_bool("stream") {
        let file = std::fs::File::open(path)?;
        let mut reader = TraceChunkReader::new(std::io::BufReader::new(file))?;
        let o = pipeline.evaluate_streamed(&design, &mut reader)?;
        let (vms, _) = reader.totals().unwrap_or((0, 0));
        (o, vms, "streamed")
    } else {
        let trace = load_trace(path)?;
        let vms = trace.vms().len() as u64;
        (pipeline.evaluate(&design, &trace)?, vms, "in-memory")
    };
    Ok(format!(
        "{} on {path} ({vms} VMs, {mode}):\n  plan: {} baseline + {} GreenSKU (buffered {} + {})\n  \
         adoption {:.1}%  cluster savings {:.1}%  DC savings {:.1}%\n",
        o.design,
        o.plan.baseline,
        o.plan.green,
        o.plan_buffered.baseline,
        o.plan_buffered.green,
        o.adoption_rate * 100.0,
        o.cluster_savings * 100.0,
        o.dc_savings * 100.0,
    ))
}

fn fleet_cmd(args: &Args) -> Result<String, CliError> {
    if let Some(path) = args.get("trace-file") {
        let path = path.to_string();
        return fleet_file_cmd(args, &path);
    }
    let design = design_by_name(args.get_or("design", "full"))?;
    let n: usize = args.get_num("traces", 4usize)?;
    let workers: usize = args.get_num("workers", gsf_cluster::parallel::default_workers())?;
    let shards: usize = args.get_num("shards", 1usize)?;
    let hours = args.get_num("hours", 24.0)?;
    let arrivals = args.get_num("arrivals", 80.0)?;
    let seed = args.get_num("seed", 42u64)?;
    let gen = TraceGenerator::new(TraceParams {
        duration_hours: hours,
        arrivals_per_hour: arrivals,
        ..TraceParams::default()
    });
    let factory = SeedFactory::new(seed);
    let traces: Vec<Trace> = (0..n.max(1) as u64).map(|i| gen.generate(&factory, i)).collect();
    let pipeline =
        GsfPipeline::new(PipelineConfig { shards: shards.max(1), ..PipelineConfig::default() });
    let o = pipeline.evaluate_fleet(&design, &traces, workers.max(1))?;
    Ok(format!(
        "{} across {} traces ({} workers, {} shard{}):\n  cluster savings: mean {}  min {}  max {}\n  DC savings:      mean {}\n",
        design.name(),
        traces.len(),
        workers.max(1),
        shards.max(1),
        if shards.max(1) == 1 { "" } else { "s" },
        fmt_pct(o.mean_cluster_savings, 1),
        fmt_pct(o.min_cluster_savings, 1),
        fmt_pct(o.max_cluster_savings, 1),
        fmt_pct(o.mean_dc_savings, 1),
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, CliError> {
        run_command(&Args::parse(argv.iter().copied()).unwrap())
    }

    #[test]
    fn list_skus_prints_all_seven() {
        let out = run(&["list-skus"]).unwrap();
        for name in SKU_NAMES {
            assert!(out.contains(name), "{name}");
        }
    }

    #[test]
    fn assess_reports_worked_numbers() {
        let out = run(&["assess", "--sku", "greensku-cxl"]).unwrap();
        assert!(out.contains("GreenSKU-CXL"));
        assert!(out.contains("kg CO2e/core"));
    }

    #[test]
    fn assess_spec_load_scales_operational() {
        let low = run(&["assess", "--sku", "greensku-full", "--spec-load", "0.2"]).unwrap();
        let high = run(&["assess", "--sku", "greensku-full", "--spec-load", "0.8"]).unwrap();
        let op = |out: &str| -> f64 {
            out.lines()
                .find(|l| l.contains("operational:"))
                .unwrap()
                .split_whitespace()
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(op(&high) > op(&low), "{high} vs {low}");
    }

    #[test]
    fn compare_matches_table_viii() {
        let out = run(&["compare", "--green", "greensku-full"]).unwrap();
        assert!(out.contains("total savings"));
        assert!(out.contains("26.4%"), "{out}");
    }

    #[test]
    fn sweep_emits_csv() {
        let out = run(&["sweep", "--green", "greensku-efficient", "--points", "5"]).unwrap();
        assert_eq!(out.lines().count(), 6);
        assert!(out.starts_with("carbon_intensity,"));
    }

    #[test]
    fn unknown_names_error_with_options() {
        let e = run(&["assess", "--sku", "nope"]).unwrap_err();
        assert!(e.to_string().contains("greensku-full"));
        let e = run(&["report", "--design", "nope", "--hours", "2"]).unwrap_err();
        assert!(e.to_string().contains("efficient"));
        let e = run(&["frobnicate"]).unwrap_err();
        assert!(matches!(e, CliError::UnknownCommand(_)));
    }

    #[test]
    fn gen_trace_and_replay_roundtrip() {
        let path = std::env::temp_dir().join(format!("gsf-cli-{}.bin", std::process::id()));
        let path_str = path.to_str().unwrap();
        let out =
            run(&["gen-trace", "--out", path_str, "--hours", "8", "--arrivals", "40"]).unwrap();
        assert!(out.contains("wrote"));
        let out = run(&["replay", "--trace", path_str, "--design", "full"]).unwrap();
        assert!(out.contains("cluster savings"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_synth_inspect_and_streamed_fleet_agree() {
        let path = std::env::temp_dir().join(format!("gsf-cli-chunked-{}.gst", std::process::id()));
        let p = path.to_str().unwrap();
        let out = run(&["trace", "synth", "--out", p, "--hours", "6", "--arrivals", "30"]).unwrap();
        assert!(out.contains("chunked"), "{out}");
        assert!(out.contains("verified"), "{out}");

        let inspect = run(&["trace", "inspect", "--trace", p]).unwrap();
        assert!(inspect.contains("chunked trace"), "{inspect}");
        assert!(inspect.contains("verified"), "{inspect}");

        // Streamed and in-memory fleet evaluation of the same file
        // print identical numbers.
        let base = ["fleet", "--trace-file", p, "--design", "full"];
        let in_memory = run(&base).unwrap();
        let mut streamed_args = base.to_vec();
        streamed_args.push("--stream");
        let streamed = run(&streamed_args).unwrap();
        assert!(in_memory.contains("in-memory"), "{in_memory}");
        assert!(streamed.contains("streamed"), "{streamed}");
        let tail = |s: &str| s.split(':').skip(1).collect::<String>().replace("streamed", "");
        assert_eq!(
            tail(&in_memory).replace("in-memory", ""),
            tail(&streamed),
            "{in_memory} vs {streamed}"
        );

        // The replay and characterize commands sniff the chunked
        // format too.
        let replayed = run(&["replay", "--trace", p, "--design", "full"]).unwrap();
        assert!(replayed.contains("cluster savings"), "{replayed}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_inspect_handles_legacy_files() {
        let path = std::env::temp_dir().join(format!("gsf-cli-legacy-{}.bin", std::process::id()));
        let p = path.to_str().unwrap();
        run(&["gen-trace", "--out", p, "--hours", "4", "--arrivals", "20"]).unwrap();
        let inspect = run(&["trace", "inspect", "--trace", p]).unwrap();
        assert!(inspect.contains("legacy trace"), "{inspect}");
        // A bare `trace` is an unknown command with a hint.
        let e = run(&["trace"]).unwrap_err();
        assert!(e.to_string().contains("synth"), "{e}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn streamed_fleet_rejects_legacy_files() {
        let path = std::env::temp_dir().join(format!("gsf-cli-legbin-{}.bin", std::process::id()));
        let p = path.to_str().unwrap();
        run(&["gen-trace", "--out", p, "--hours", "2", "--arrivals", "10"]).unwrap();
        let e = run(&["fleet", "--trace-file", p, "--stream"]).unwrap_err();
        assert!(matches!(e, CliError::Stream(_)), "{e}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn search_and_tco_render() {
        assert!(run(&["search"]).unwrap().contains("pareto"));
        assert!(run(&["tco"]).unwrap().contains("TCO $/core"));
    }

    #[test]
    fn characterize_renders_profile() {
        let out = run(&["characterize", "--hours", "6", "--arrivals", "30"]).unwrap();
        assert!(out.contains("core-hours total"), "{out}");
    }

    #[test]
    fn regions_table_covers_the_grid() {
        let out = run(&["regions"]).unwrap();
        assert!(out.contains("us-south"));
        assert!(out.contains("europe-north"));
        assert!(out.contains("full"), "{out}");
    }

    #[test]
    fn defer_picks_a_daylight_window() {
        let out = run(&["defer", "--region", "australia-east"]).unwrap();
        assert!(out.contains("operational savings"), "{out}");
        let e = run(&["defer", "--region", "atlantis"]).unwrap_err();
        assert!(e.to_string().contains("us-central"));
    }

    #[test]
    fn help_lists_commands() {
        let h = run(&["help"]).unwrap();
        for cmd in
            ["assess", "compare", "sweep", "report", "gen-trace", "replay", "faults", "fleet"]
        {
            assert!(h.contains(cmd), "{cmd}");
        }
    }

    #[test]
    fn faults_compares_clean_and_faulted_runs() {
        let out = run(&[
            "faults",
            "--design",
            "full",
            "--hours",
            "6",
            "--arrivals",
            "30",
            "--afr-scale",
            "20",
        ])
        .unwrap();
        assert!(out.contains("expected capacity loss"), "{out}");
        assert!(out.contains("evacuation failures"), "{out}");
        // The fault-free column reports a zero-event summary.
        assert!(out.contains("0 / 0"), "{out}");
    }

    #[test]
    fn faults_rejects_invalid_fip() {
        let e = run(&["faults", "--fip", "1.5", "--hours", "2"]).unwrap_err();
        assert!(matches!(e, CliError::Maintenance(_)), "{e}");
    }

    #[test]
    fn faults_topology_and_repair_render_availability() {
        let out = run(&[
            "faults",
            "--design",
            "full",
            "--hours",
            "6",
            "--arrivals",
            "30",
            "--afr-scale",
            "20",
            "--topology",
            "4",
            "--repair-days",
            "7",
        ])
        .unwrap();
        assert!(out.contains("domain size 4, repair 7.0 d"), "{out}");
        assert!(out.contains("VM-minutes lost"), "{out}");
        assert!(out.contains("blast radius (servers)"), "{out}");
        assert!(out.contains("revivals (return-to-service)"), "{out}");
    }

    #[test]
    fn faults_json_format_is_machine_readable() {
        let out = run(&[
            "faults",
            "--design",
            "full",
            "--hours",
            "6",
            "--arrivals",
            "30",
            "--afr-scale",
            "20",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(out.starts_with('{') && out.ends_with("}\n"), "{out}");
        for key in
            ["\"design\":", "\"clean\":", "\"faulted\":", "\"availability\":", "\"revivals\":"]
        {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        // Same run in text format must agree on the headline plan.
        let braces = out.chars().fold(0i64, |n, c| n + i64::from(c == '{') - i64::from(c == '}'));
        assert_eq!(braces, 0, "unbalanced JSON braces: {out}");
    }

    #[test]
    fn fleet_reports_mean_savings_and_honors_workers() {
        let serial = run(&[
            "fleet",
            "--design",
            "full",
            "--traces",
            "2",
            "--hours",
            "4",
            "--arrivals",
            "30",
            "--workers",
            "1",
        ])
        .unwrap();
        let parallel = run(&[
            "fleet",
            "--design",
            "full",
            "--traces",
            "2",
            "--hours",
            "4",
            "--arrivals",
            "30",
            "--workers",
            "4",
        ])
        .unwrap();
        assert!(serial.contains("cluster savings"), "{serial}");
        // Worker count must not change the numbers, only the schedule.
        let tail = |s: &str| s.split(':').skip(1).collect::<String>();
        assert_eq!(tail(&serial), tail(&parallel));
    }

    #[test]
    fn fleet_accepts_shards_flag() {
        let base = ["--design", "full", "--traces", "1", "--hours", "4", "--arrivals", "30"];
        let argv = |extra: &[&'static str]| -> Vec<&'static str> {
            let mut v = vec!["fleet"];
            v.extend_from_slice(&base);
            v.extend_from_slice(extra);
            v
        };
        // --shards 1 is the unsharded engine: identical numbers to the
        // flagless invocation.
        let flagless = run(&argv(&[])).unwrap();
        let one = run(&argv(&["--shards", "1"])).unwrap();
        assert!(one.contains("1 shard)"), "{one}");
        let tail = |s: &str| s.split(':').skip(1).collect::<String>();
        assert_eq!(tail(&flagless), tail(&one));
        // Multi-shard runs report the shard count and still size a
        // working cluster (savings line present).
        let sharded = run(&argv(&["--shards", "3"])).unwrap();
        assert!(sharded.contains("3 shards)"), "{sharded}");
        assert!(sharded.contains("cluster savings"), "{sharded}");
    }
}
