//! Property tests for the carbon model's structural invariants.

use gsf_carbon::component::{ComponentClass, ComponentSpec};
use gsf_carbon::cost::{CostModel, CostParams};
use gsf_carbon::datasets::open_source;
use gsf_carbon::units::{CarbonIntensity, KgCo2e, Watts, Years};
use gsf_carbon::{CarbonModel, ModelParams, ServerSpec};
use proptest::prelude::*;

fn server_with(power: f64, embodied: f64, cores: u32, u: u32) -> ServerSpec {
    ServerSpec::builder("prop", cores, u)
        .component(
            ComponentSpec::new(
                "blob",
                ComponentClass::Other,
                1.0,
                Watts::new(power),
                KgCo2e::new(embodied),
            )
            .unwrap(),
        )
        .build()
        .unwrap()
}

proptest! {
    #[test]
    fn more_embodied_never_reduces_emissions(
        power in 50.0..900.0f64,
        embodied in 100.0..3000.0f64,
        extra in 1.0..2000.0f64,
    ) {
        let model = CarbonModel::new(ModelParams::default_open_source());
        let a = model.assess(&server_with(power, embodied, 64, 2)).unwrap();
        let b = model.assess(&server_with(power, embodied + extra, 64, 2)).unwrap();
        prop_assert!(b.emb_per_core() > a.emb_per_core());
        prop_assert!((b.op_per_core().get() - a.op_per_core().get()).abs() < 1e-9);
    }

    #[test]
    fn more_power_never_reduces_emissions(
        power in 50.0..800.0f64,
        extra in 1.0..200.0f64,
        embodied in 100.0..3000.0f64,
    ) {
        let model = CarbonModel::new(ModelParams::default_open_source());
        let a = model.assess(&server_with(power, embodied, 64, 2)).unwrap();
        let b = model.assess(&server_with(power + extra, embodied, 64, 2)).unwrap();
        // More power always raises per-core operational emissions while
        // the same rack still fits 16 servers; when the rack becomes
        // power-bound, fewer servers amortize the rack overheads and
        // per-core embodied rises too — either way total never drops.
        prop_assert!(b.total_per_core() >= a.total_per_core());
    }

    #[test]
    fn more_cores_amortize_better(
        power in 50.0..900.0f64,
        embodied in 100.0..3000.0f64,
        cores in 8u32..120,
        extra in 1u32..64,
    ) {
        let model = CarbonModel::new(ModelParams::default_open_source());
        let a = model.assess(&server_with(power, embodied, cores, 2)).unwrap();
        let b = model.assess(&server_with(power, embodied, cores + extra, 2)).unwrap();
        prop_assert!(b.total_per_core() < a.total_per_core());
    }

    #[test]
    fn lifetime_scales_operational_linearly(
        power in 50.0..900.0f64,
        years in 1.0..15.0f64,
    ) {
        let server = server_with(power, 1000.0, 64, 2);
        let at = |l: f64| {
            CarbonModel::new(
                ModelParams::default_open_source().with_lifetime(Years::new(l)),
            )
            .assess(&server)
            .unwrap()
            .op_per_core()
            .get()
        };
        let base = at(years);
        let doubled = at(years * 2.0);
        prop_assert!((doubled / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn savings_antisymmetric_in_direction(
        p1 in 100.0..800.0f64,
        e1 in 200.0..3000.0f64,
        p2 in 100.0..800.0f64,
        e2 in 200.0..3000.0f64,
    ) {
        let model = CarbonModel::new(ModelParams::default_open_source());
        let a = server_with(p1, e1, 80, 2);
        let b = server_with(p2, e2, 80, 2);
        let ab = model.savings(&a, &b).unwrap().total;
        let ba = model.savings(&b, &a).unwrap().total;
        // If B saves x vs A, then A "saves" -x/(1-x) vs B.
        if ab.abs() < 0.99 {
            let expected = -ab / (1.0 - ab);
            prop_assert!((ba - expected).abs() < 1e-9, "{ab} vs {ba}");
        }
    }

    #[test]
    fn table_viii_orderings_hold_across_intensities(ci in 0.0..0.8f64) {
        // At any grid intensity: embodied savings of Full >= CXL >=
        // Efficient, and operational savings Efficient >= CXL >= Full.
        let model = CarbonModel::new(
            ModelParams::default_open_source()
                .with_carbon_intensity(CarbonIntensity::new(ci)),
        );
        let baseline = open_source::baseline_gen3();
        let eff = model.savings(&baseline, &open_source::greensku_efficient()).unwrap();
        let cxl = model.savings(&baseline, &open_source::greensku_cxl()).unwrap();
        let full = model.savings(&baseline, &open_source::greensku_full()).unwrap();
        prop_assert!(full.embodied >= cxl.embodied && cxl.embodied >= eff.embodied);
        if ci > 0.0 {
            prop_assert!(eff.operational >= cxl.operational);
            prop_assert!(cxl.operational >= full.operational);
        }
    }

    #[test]
    fn tco_positive_and_capex_independent_of_energy_price(
        energy_price in 0.01..0.5f64,
    ) {
        let costs = CostParams { energy_per_kwh: energy_price, ..CostParams::public_estimates() };
        let model = CostModel::new(ModelParams::default_open_source(), costs);
        let a = model.assess(&open_source::greensku_full()).unwrap();
        prop_assert!(a.capex_per_core > 0.0);
        prop_assert!(a.energy_per_core > 0.0);
        let reference = CostModel::new(
            ModelParams::default_open_source(),
            CostParams::public_estimates(),
        )
        .assess(&open_source::greensku_full())
        .unwrap();
        prop_assert!((a.capex_per_core - reference.capex_per_core).abs() < 1e-9);
    }
}
