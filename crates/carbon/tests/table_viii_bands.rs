//! Integration test: the reproduced Table VIII per-core savings land
//! within bands of the paper's published open-source results.
//!
//! Published Table VIII (savings vs. the Gen3 baseline, CI = 0.1):
//!
//! | SKU                | Operational | Embodied | Total |
//! |--------------------|-------------|----------|-------|
//! | Baseline-Resized   | 6 %         | 10 %     | 8 %   |
//! | GreenSKU-Efficient | 16 %        | 14 %     | 15 %  |
//! | GreenSKU-CXL       | 15 %        | 32 %     | 24 %  |
//! | GreenSKU-Full      | 14 %        | 38 %     | 26 %  |

use gsf_carbon::datasets::open_source;
use gsf_carbon::{CarbonModel, ModelParams, SavingsReport};

fn savings(green: &gsf_carbon::ServerSpec) -> SavingsReport {
    let model = CarbonModel::new(ModelParams::default_open_source());
    model.savings(&open_source::baseline_gen3(), green).expect("assessment succeeds")
}

fn assert_near(label: &str, actual: f64, published: f64, tol: f64) {
    assert!(
        (actual - published).abs() <= tol,
        "{label}: reproduced {:.1}% vs published {:.1}% (tol {:.1} pp)",
        actual * 100.0,
        published * 100.0,
        tol * 100.0
    );
}

#[test]
fn baseline_resized_row() {
    let s = savings(&open_source::baseline_resized());
    assert_near("resized operational", s.operational, 0.06, 0.02);
    assert_near("resized embodied", s.embodied, 0.10, 0.02);
    assert_near("resized total", s.total, 0.08, 0.02);
}

#[test]
fn greensku_efficient_row() {
    let s = savings(&open_source::greensku_efficient());
    assert_near("efficient operational", s.operational, 0.16, 0.02);
    assert_near("efficient embodied", s.embodied, 0.14, 0.02);
    assert_near("efficient total", s.total, 0.15, 0.02);
}

#[test]
fn greensku_cxl_row() {
    let s = savings(&open_source::greensku_cxl());
    assert_near("cxl operational", s.operational, 0.15, 0.02);
    assert_near("cxl embodied", s.embodied, 0.32, 0.03);
    assert_near("cxl total", s.total, 0.24, 0.02);
}

#[test]
fn greensku_full_row() {
    let s = savings(&open_source::greensku_full());
    assert_near("full operational", s.operational, 0.14, 0.02);
    assert_near("full embodied", s.embodied, 0.38, 0.03);
    assert_near("full total", s.total, 0.26, 0.02);
}

#[test]
fn orderings_match_paper() {
    let eff = savings(&open_source::greensku_efficient());
    let cxl = savings(&open_source::greensku_cxl());
    let full = savings(&open_source::greensku_full());
    // Operational savings shrink as reused (less efficient) parts are
    // added; embodied savings grow; total savings grow.
    assert!(eff.operational > cxl.operational && cxl.operational > full.operational);
    assert!(eff.embodied < cxl.embodied && cxl.embodied < full.embodied);
    assert!(eff.total < cxl.total && cxl.total < full.total);
}

#[test]
fn print_reproduced_table_viii() {
    // Not an assertion test: prints the reproduced table so `cargo test
    // -- --nocapture` shows the numbers recorded in EXPERIMENTS.md.
    let rows = [
        ("Baseline-Resized", savings(&open_source::baseline_resized())),
        ("GreenSKU-Efficient", savings(&open_source::greensku_efficient())),
        ("GreenSKU-CXL", savings(&open_source::greensku_cxl())),
        ("GreenSKU-Full", savings(&open_source::greensku_full())),
    ];
    for (name, s) in rows {
        println!(
            "{name:20} op {:5.1}%  emb {:5.1}%  total {:5.1}%",
            s.operational * 100.0,
            s.embodied * 100.0,
            s.total * 100.0
        );
    }
}
