//! Model parameters: rack constraints, data-center overheads, lifetime,
//! and carbon intensity (the paper's Table VI).

use crate::error::CarbonError;
use crate::units::{CarbonIntensity, KgCo2e, Watts, Years};
use serde::{Deserialize, Serialize};

/// Rack-level constraints and overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackParams {
    /// Rack space available for servers, in U (Table VI: 42U − 10U
    /// overhead = 32U).
    pub space_u: u32,
    /// Rack power capacity (Table VI: 15 kW).
    pub power_capacity: Watts,
    /// Power drawn by rack infrastructure itself (Table V "Rack misc.":
    /// 500 W).
    pub misc_power: Watts,
    /// Embodied emissions of the empty rack (Table V: 500 kg CO₂e).
    pub misc_embodied: KgCo2e,
}

impl RackParams {
    /// The paper's open-source rack parameters.
    pub fn open_source() -> Self {
        Self {
            space_u: 32,
            power_capacity: Watts::new(15_000.0),
            misc_power: Watts::new(500.0),
            misc_embodied: KgCo2e::new(500.0),
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::InvalidParams`] if the space or power budget
    /// is zero/invalid.
    pub fn validate(&self) -> Result<(), CarbonError> {
        if self.space_u == 0 {
            return Err(CarbonError::InvalidParams { reason: "rack space is zero".into() });
        }
        if !self.power_capacity.is_valid() || self.power_capacity.get() <= 0.0 {
            return Err(CarbonError::InvalidParams {
                reason: "rack power capacity must be positive".into(),
            });
        }
        if !self.misc_power.is_valid() || !self.misc_embodied.is_valid() {
            return Err(CarbonError::InvalidParams {
                reason: "rack misc power/embodied must be non-negative".into(),
            });
        }
        if self.misc_power.get() >= self.power_capacity.get() {
            return Err(CarbonError::InvalidParams {
                reason: "rack misc power exceeds rack power capacity".into(),
            });
        }
        Ok(())
    }
}

/// Data-center-level overheads amortized onto compute racks.
///
/// The paper's DC model adds networking/storage power (`X`), their
/// embodied emissions (`Y`), the building's embodied emissions (`Z`), and
/// multiplies IT power by PUE. Azure does not publish `X`, `Y`, `Z`; the
/// per-rack shares below are **calibrated** so that the open-source
/// reproduction (Table VIII) lands on the published savings — see
/// `DESIGN.md` §1 (substitution 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataCenterOverheads {
    /// Power usage effectiveness multiplier applied to IT power.
    pub pue: f64,
    /// Networking + storage power attributed per compute rack (`X`/N_r).
    pub network_storage_power_per_rack: Watts,
    /// Networking + storage embodied emissions per compute rack (`Y`/N_r).
    pub network_storage_embodied_per_rack: KgCo2e,
    /// Building and non-IT equipment embodied per compute rack (`Z`/N_r).
    pub building_embodied_per_rack: KgCo2e,
}

impl DataCenterOverheads {
    /// Calibrated defaults for the open-source reproduction.
    pub fn open_source() -> Self {
        Self {
            pue: 1.2,
            network_storage_power_per_rack: Watts::new(204.0),
            network_storage_embodied_per_rack: KgCo2e::new(4800.0),
            building_embodied_per_rack: KgCo2e::new(3519.0),
        }
    }

    /// No DC overheads (rack-level accounting only), PUE = 1.
    pub fn none() -> Self {
        Self {
            pue: 1.0,
            network_storage_power_per_rack: Watts::ZERO,
            network_storage_embodied_per_rack: KgCo2e::ZERO,
            building_embodied_per_rack: KgCo2e::ZERO,
        }
    }

    /// Total embodied overhead per rack (`(Y+Z)/N_r`).
    pub fn embodied_per_rack(&self) -> KgCo2e {
        self.network_storage_embodied_per_rack + self.building_embodied_per_rack
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::InvalidParams`] if PUE `< 1` or any overhead
    /// is negative/non-finite.
    pub fn validate(&self) -> Result<(), CarbonError> {
        if !self.pue.is_finite() || self.pue < 1.0 {
            return Err(CarbonError::InvalidParams {
                reason: format!("PUE must be >= 1, got {}", self.pue),
            });
        }
        if !self.network_storage_power_per_rack.is_valid()
            || !self.network_storage_embodied_per_rack.is_valid()
            || !self.building_embodied_per_rack.is_valid()
        {
            return Err(CarbonError::InvalidParams {
                reason: "data-center overheads must be non-negative".into(),
            });
        }
        Ok(())
    }
}

/// All parameters the carbon model needs (the paper's Table VI plus the
/// DC overheads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Grid carbon intensity of the consumed energy.
    pub carbon_intensity: CarbonIntensity,
    /// Server lifetime over which operational emissions accrue.
    pub lifetime: Years,
    /// Rack constraints.
    pub rack: RackParams,
    /// Data-center overheads.
    pub overheads: DataCenterOverheads,
}

impl ModelParams {
    /// The paper's open-source parameters: CI = 0.1 kg CO₂e/kWh, 6-year
    /// lifetime, Table VI rack, calibrated DC overheads.
    pub fn default_open_source() -> Self {
        Self {
            carbon_intensity: CarbonIntensity::new(0.1),
            lifetime: Years::new(6.0),
            rack: RackParams::open_source(),
            overheads: DataCenterOverheads::open_source(),
        }
    }

    /// Same as [`Self::default_open_source`] but with no DC overheads and
    /// PUE = 1; this is the configuration of the paper's §V rack-level
    /// worked example.
    pub fn worked_example() -> Self {
        Self { overheads: DataCenterOverheads::none(), ..Self::default_open_source() }
    }

    /// Returns a copy with a different carbon intensity (used by the
    /// Fig. 11/12 sweeps).
    pub fn with_carbon_intensity(mut self, ci: CarbonIntensity) -> Self {
        self.carbon_intensity = ci;
        self
    }

    /// Returns a copy with a different lifetime (used by the §VII-B
    /// lifetime-extension analysis).
    pub fn with_lifetime(mut self, lifetime: Years) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Validating constructor: assembles and checks the full parameter
    /// set in one step, so a `ModelParams` built this way is known-good
    /// before it reaches the model.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::InvalidParams`] naming the offending field
    /// when any input is NaN, negative, or out of range.
    pub fn try_new(
        carbon_intensity: CarbonIntensity,
        lifetime: Years,
        rack: RackParams,
        overheads: DataCenterOverheads,
    ) -> Result<Self, CarbonError> {
        let params = Self { carbon_intensity, lifetime, rack, overheads };
        params.validate()?;
        Ok(params)
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::InvalidParams`] if any sub-parameter is
    /// invalid, the lifetime is non-positive, or the carbon intensity is
    /// negative.
    pub fn validate(&self) -> Result<(), CarbonError> {
        if !self.carbon_intensity.is_valid() {
            return Err(CarbonError::InvalidParams {
                reason: "carbon intensity must be finite and non-negative".into(),
            });
        }
        if !self.lifetime.is_valid() || self.lifetime.get() <= 0.0 {
            return Err(CarbonError::InvalidParams { reason: "lifetime must be positive".into() });
        }
        self.rack.validate()?;
        self.overheads.validate()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn open_source_params_valid() {
        ModelParams::default_open_source().validate().unwrap();
        ModelParams::worked_example().validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = ModelParams::default_open_source();
        p.lifetime = Years::new(0.0);
        assert!(p.validate().is_err());

        let mut p = ModelParams::default_open_source();
        p.carbon_intensity = CarbonIntensity::new(-0.1);
        assert!(p.validate().is_err());

        let mut p = ModelParams::default_open_source();
        p.overheads.pue = 0.9;
        assert!(p.validate().is_err());

        let mut p = ModelParams::default_open_source();
        p.rack.space_u = 0;
        assert!(p.validate().is_err());

        let mut p = ModelParams::default_open_source();
        p.rack.misc_power = Watts::new(20_000.0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn try_new_accepts_paper_inputs_and_rejects_bad_ones() {
        let good = ModelParams::default_open_source();
        let built =
            ModelParams::try_new(good.carbon_intensity, good.lifetime, good.rack, good.overheads)
                .unwrap();
        assert_eq!(built, good);

        // NaN carbon intensity.
        let e = ModelParams::try_new(
            CarbonIntensity::new(f64::NAN),
            good.lifetime,
            good.rack,
            good.overheads,
        )
        .unwrap_err();
        assert!(e.to_string().contains("carbon intensity"), "{e}");

        // Negative lifetime.
        let e = ModelParams::try_new(
            good.carbon_intensity,
            Years::new(-1.0),
            good.rack,
            good.overheads,
        )
        .unwrap_err();
        assert!(e.to_string().contains("lifetime"), "{e}");

        // Sub-validator: rack misc power above capacity.
        let mut rack = good.rack;
        rack.misc_power = Watts::new(1e9);
        assert!(ModelParams::try_new(good.carbon_intensity, good.lifetime, rack, good.overheads)
            .is_err());
    }

    #[test]
    fn with_helpers_replace_fields() {
        let p = ModelParams::default_open_source()
            .with_carbon_intensity(CarbonIntensity::new(0.3))
            .with_lifetime(Years::new(8.0));
        assert_eq!(p.carbon_intensity.get(), 0.3);
        assert_eq!(p.lifetime.get(), 8.0);
    }

    #[test]
    fn worked_example_strips_overheads() {
        let p = ModelParams::worked_example();
        assert_eq!(p.overheads.pue, 1.0);
        assert_eq!(p.overheads.embodied_per_rack(), KgCo2e::ZERO);
    }
}
