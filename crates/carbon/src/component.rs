//! Server components and their carbon characteristics.

use crate::error::CarbonError;
use crate::units::{KgCo2e, Watts};
use serde::{Deserialize, Serialize};

/// Broad class of a server component, used for breakdowns (Fig. 1) and
/// for maintenance accounting (DIMM/SSD counts drive server AFR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentClass {
    /// Central processing unit.
    Cpu,
    /// Directly attached DRAM (e.g. DDR5 DIMMs).
    Dram,
    /// DRAM attached behind a CXL controller (e.g. reused DDR4).
    CxlDram,
    /// CXL memory controller card.
    CxlController,
    /// Solid-state drive.
    Ssd,
    /// Network interface card.
    Nic,
    /// Everything else: fans, chassis, boards, PSU.
    Other,
}

impl ComponentClass {
    /// Human-readable label used in tables and CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            ComponentClass::Cpu => "CPU",
            ComponentClass::Dram => "DRAM",
            ComponentClass::CxlDram => "CXL-DRAM",
            ComponentClass::CxlController => "CXL-controller",
            ComponentClass::Ssd => "SSD",
            ComponentClass::Nic => "NIC",
            ComponentClass::Other => "Other",
        }
    }

    /// All classes, in the order breakdown tables report them.
    pub fn all() -> [ComponentClass; 7] {
        [
            ComponentClass::Cpu,
            ComponentClass::Dram,
            ComponentClass::CxlDram,
            ComponentClass::CxlController,
            ComponentClass::Ssd,
            ComponentClass::Nic,
            ComponentClass::Other,
        ]
    }
}

impl std::fmt::Display for ComponentClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One component entry of a server bill of materials.
///
/// TDP and embodied emissions are **per unit of `quantity`** — for a CPU
/// the quantity is the socket count, for DRAM it is gigabytes, for SSDs
/// terabytes. The effective power contribution is
/// `quantity × tdp_per_unit × derate × loss_factor` (Eq. 1 of the paper);
/// the embodied contribution is `quantity × embodied_per_unit`, forced to
/// zero for components flagged `reused` (second-life accounting, following
/// the paper's treatment of reused DIMMs and SSDs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    name: String,
    class: ComponentClass,
    quantity: f64,
    tdp_per_unit: Watts,
    embodied_per_unit: KgCo2e,
    derate: f64,
    loss_factor: f64,
    reused: bool,
    /// Number of physical devices (DIMMs, drives) this entry represents;
    /// drives AFR maintenance accounting. Defaults to 1.
    device_count: u32,
    /// PCIe lanes the entry consumes (CXL cards, NVMe drives, NICs);
    /// the Bergamo platform budget is 128 (§III).
    pcie_lanes: u32,
}

impl ComponentSpec {
    /// Creates a component entry.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::InvalidComponent`] if `quantity`, `derate`
    /// or `loss_factor` are non-finite or negative, or TDP/embodied values
    /// are invalid.
    pub fn new(
        name: impl Into<String>,
        class: ComponentClass,
        quantity: f64,
        tdp_per_unit: Watts,
        embodied_per_unit: KgCo2e,
    ) -> Result<Self, CarbonError> {
        let name = name.into();
        if !quantity.is_finite() || quantity < 0.0 {
            return Err(CarbonError::InvalidComponent {
                component: name,
                reason: format!("quantity must be non-negative, got {quantity}"),
            });
        }
        if !tdp_per_unit.is_valid() || !embodied_per_unit.is_valid() {
            return Err(CarbonError::InvalidComponent {
                component: name,
                reason: "TDP and embodied emissions must be finite and non-negative".into(),
            });
        }
        Ok(Self {
            name,
            class,
            quantity,
            tdp_per_unit,
            embodied_per_unit,
            derate: 1.0,
            loss_factor: 1.0,
            reused: false,
            device_count: 1,
            pcie_lanes: 0,
        })
    }

    /// Sets the derating factor (fraction of TDP drawn on average; the
    /// paper uses 0.44 at 40 % SPEC load).
    ///
    /// # Errors
    ///
    /// Returns an error if `derate` is not in `[0, 1]`.
    pub fn with_derate(mut self, derate: f64) -> Result<Self, CarbonError> {
        if !derate.is_finite() || !(0.0..=1.0).contains(&derate) {
            return Err(CarbonError::InvalidComponent {
                component: self.name,
                reason: format!("derate must be in [0,1], got {derate}"),
            });
        }
        self.derate = derate;
        Ok(self)
    }

    /// Sets the power-electronics loss factor (e.g. 1.05 for the CPU's
    /// voltage-regulator loss).
    ///
    /// # Errors
    ///
    /// Returns an error if `loss_factor < 1` or non-finite.
    pub fn with_loss_factor(mut self, loss_factor: f64) -> Result<Self, CarbonError> {
        if !loss_factor.is_finite() || loss_factor < 1.0 {
            return Err(CarbonError::InvalidComponent {
                component: self.name,
                reason: format!("loss factor must be >= 1, got {loss_factor}"),
            });
        }
        self.loss_factor = loss_factor;
        Ok(self)
    }

    /// Marks the component as reused; embodied emissions become zero
    /// (second-life accounting).
    pub fn reused(mut self) -> Self {
        self.reused = true;
        self
    }

    /// Sets the physical device count this entry represents.
    pub fn with_device_count(mut self, count: u32) -> Self {
        self.device_count = count;
        self
    }

    /// Sets the PCIe lanes the entry consumes.
    pub fn with_pcie_lanes(mut self, lanes: u32) -> Self {
        self.pcie_lanes = lanes;
        self
    }

    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component's class.
    pub fn class(&self) -> ComponentClass {
        self.class
    }

    /// Quantity in the component's natural unit (sockets, GB, TB, ...).
    pub fn quantity(&self) -> f64 {
        self.quantity
    }

    /// Whether the component is reused (second life).
    pub fn is_reused(&self) -> bool {
        self.reused
    }

    /// Number of physical devices represented by this entry.
    pub fn device_count(&self) -> u32 {
        self.device_count
    }

    /// PCIe lanes consumed by this entry.
    pub fn pcie_lanes(&self) -> u32 {
        self.pcie_lanes
    }

    /// Nameplate TDP of the whole entry (before derating).
    pub fn nameplate_power(&self) -> Watts {
        self.tdp_per_unit * self.quantity
    }

    /// Average power contribution after derating and losses (the term this
    /// component contributes to Eq. 1).
    pub fn average_power(&self) -> Watts {
        self.tdp_per_unit * self.quantity * self.derate * self.loss_factor
    }

    /// Embodied emissions of the entry; zero when reused.
    pub fn embodied(&self) -> KgCo2e {
        if self.reused {
            KgCo2e::ZERO
        } else {
            self.embodied_per_unit * self.quantity
        }
    }

    /// Embodied emissions the entry would carry if it were new; used by
    /// "avoided emissions" analyses.
    pub fn embodied_if_new(&self) -> KgCo2e {
        self.embodied_per_unit * self.quantity
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cpu() -> ComponentSpec {
        ComponentSpec::new("CPU", ComponentClass::Cpu, 1.0, Watts::new(400.0), KgCo2e::new(28.3))
            .unwrap()
            .with_derate(0.44)
            .unwrap()
            .with_loss_factor(1.05)
            .unwrap()
    }

    #[test]
    fn cpu_power_matches_worked_example() {
        // 400 W * 0.44 * 1.05 = 184.8 W, the CPU term of the paper's
        // P_s = 403 W example.
        assert!((cpu().average_power().get() - 184.8).abs() < 1e-9);
    }

    #[test]
    fn reused_component_has_zero_embodied() {
        let dimm = ComponentSpec::new(
            "DDR4",
            ComponentClass::CxlDram,
            256.0,
            Watts::new(0.37),
            KgCo2e::new(1.65),
        )
        .unwrap()
        .reused();
        assert_eq!(dimm.embodied(), KgCo2e::ZERO);
        assert!((dimm.embodied_if_new().get() - 422.4).abs() < 1e-9);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(ComponentSpec::new(
            "x",
            ComponentClass::Other,
            -1.0,
            Watts::new(1.0),
            KgCo2e::new(1.0)
        )
        .is_err());
        assert!(cpu().with_derate(1.5).is_err());
        assert!(cpu().with_derate(-0.1).is_err());
        assert!(cpu().with_loss_factor(0.9).is_err());
        assert!(ComponentSpec::new(
            "x",
            ComponentClass::Other,
            1.0,
            Watts::new(f64::NAN),
            KgCo2e::new(1.0)
        )
        .is_err());
    }

    #[test]
    fn embodied_scales_with_quantity() {
        let ssd = ComponentSpec::new(
            "SSD",
            ComponentClass::Ssd,
            20.0,
            Watts::new(5.6),
            KgCo2e::new(17.3),
        )
        .unwrap();
        assert!((ssd.embodied().get() - 346.0).abs() < 1e-9);
        assert!((ssd.nameplate_power().get() - 112.0).abs() < 1e-9);
    }

    #[test]
    fn class_labels_unique() {
        let labels: std::collections::HashSet<_> =
            ComponentClass::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), ComponentClass::all().len());
    }
}
