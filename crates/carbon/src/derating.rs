//! Power-derating curves (§V).
//!
//! The paper derives its derating factor "as a fraction of TDP
//! utilization at a given percentage of max SPEC rate; at 40 % SPEC
//! rate, the corresponding derating factor is 0.44", citing SPECpower
//! methodology. This module generalizes that single point into the full
//! load→power curve, so the carbon model can be evaluated at any fleet
//! utilization — the §II underutilization discussion made quantitative.

use serde::{Deserialize, Serialize};

/// A piecewise-linear load→power-fraction curve.
///
/// Points are `(load_fraction, power_fraction_of_tdp)`, sorted by load.
/// Server power is famously non-proportional: idle servers draw a large
/// fraction of peak power, which is why underutilization is so costly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeratingCurve {
    points: Vec<(f64, f64)>,
}

impl DeratingCurve {
    /// Builds a curve from `(load, power-fraction)` points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, loads are not strictly
    /// increasing within `[0, 1]`, or power fractions are outside
    /// `[0, 1]` or decreasing.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "curve needs at least two points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "loads must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "power must be non-decreasing in load");
        }
        for &(l, p) in &points {
            assert!((0.0..=1.0).contains(&l) && (0.0..=1.0).contains(&p));
        }
        Self { points }
    }

    /// A SPECpower-style curve calibrated to the paper's anchor
    /// (derate = 0.44 at 40 % SPEC rate), with a typical ~30 % idle
    /// floor and near-TDP draw at full rate.
    pub fn specpower_like() -> Self {
        Self::new(vec![
            (0.0, 0.30),
            (0.2, 0.37),
            (0.4, 0.44),
            (0.6, 0.56),
            (0.8, 0.75),
            (1.0, 0.95),
        ])
    }

    /// Power fraction of TDP at `load` (clamped to the curve's domain),
    /// linearly interpolated.
    pub fn derate_at(&self, load: f64) -> f64 {
        let load = load.clamp(self.points[0].0, self.points[self.points.len() - 1].0);
        for w in self.points.windows(2) {
            let ((l0, p0), (l1, p1)) = (w[0], w[1]);
            if load <= l1 {
                let frac = if l1 > l0 { (load - l0) / (l1 - l0) } else { 0.0 };
                return p0 + frac * (p1 - p0);
            }
        }
        self.points[self.points.len() - 1].1
    }

    /// Energy-proportionality gap at `load`: how much more power the
    /// server draws than a perfectly proportional one would
    /// (`derate(load) − load`, floored at zero).
    pub fn proportionality_gap(&self, load: f64) -> f64 {
        (self.derate_at(load) - load).max(0.0)
    }
}

impl Default for DeratingCurve {
    fn default() -> Self {
        Self::specpower_like()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_holds() {
        // §V / Table VI: derate 0.44 at 40 % SPEC rate.
        let c = DeratingCurve::specpower_like();
        assert!((c.derate_at(0.4) - 0.44).abs() < 1e-12);
    }

    #[test]
    fn interpolation_between_points() {
        let c = DeratingCurve::specpower_like();
        // Midway between (0.4, 0.44) and (0.6, 0.56).
        assert!((c.derate_at(0.5) - 0.50).abs() < 1e-12);
    }

    #[test]
    fn clamped_outside_domain() {
        let c = DeratingCurve::specpower_like();
        assert_eq!(c.derate_at(-1.0), 0.30);
        assert_eq!(c.derate_at(2.0), 0.95);
    }

    #[test]
    fn monotone_in_load() {
        let c = DeratingCurve::specpower_like();
        let mut prev = 0.0;
        for i in 0..=20 {
            let d = c.derate_at(f64::from(i) / 20.0);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn idle_servers_waste_the_most() {
        // The §II point: low utilization is disproportionately costly.
        let c = DeratingCurve::specpower_like();
        assert!(c.proportionality_gap(0.1) > c.proportionality_gap(0.8));
        assert!(c.proportionality_gap(0.0) >= 0.30);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_points() {
        DeratingCurve::new(vec![(0.5, 0.5), (0.2, 0.6)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_power() {
        DeratingCurve::new(vec![(0.0, 0.5), (1.0, 0.4)]);
    }

    #[test]
    fn savings_insensitive_to_uniform_derate_shift() {
        // Applying a different fleet utilization scales every SKU's
        // component power by the same factor, so Table VIII *savings*
        // barely move — the reason the paper can report a single
        // derate point. Verify at 60 % SPEC rate.
        use crate::datasets::open_source;
        use crate::{CarbonModel, ModelParams};
        let c = DeratingCurve::specpower_like();
        let scale = c.derate_at(0.6) / c.derate_at(0.4);
        // Emulate the higher utilization by scaling carbon intensity of
        // the operational side: op emissions are linear in power, so a
        // uniform power scale is equivalent to scaling CI.
        let model_40 = CarbonModel::new(ModelParams::default_open_source());
        let model_60 = CarbonModel::new(
            ModelParams::default_open_source()
                .with_carbon_intensity(crate::units::CarbonIntensity::new(0.1 * scale)),
        );
        let b = open_source::baseline_gen3();
        let g = open_source::greensku_full();
        let s40 = model_40.savings(&b, &g).unwrap();
        let s60 = model_60.savings(&b, &g).unwrap();
        assert!((s40.operational - s60.operational).abs() < 1e-9);
        // Total shifts only mildly (heavier op weighting).
        assert!((s40.total - s60.total).abs() < 0.05);
    }
}
