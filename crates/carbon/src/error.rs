//! Error types for the carbon model.

use std::fmt;

/// Errors produced by carbon-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CarbonError {
    /// A component was constructed with invalid parameters.
    InvalidComponent {
        /// Name of the offending component.
        component: String,
        /// What was wrong.
        reason: String,
    },
    /// A server specification is invalid (e.g. zero cores).
    InvalidServer {
        /// Name of the offending server SKU.
        sku: String,
        /// What was wrong.
        reason: String,
    },
    /// Model parameters are invalid (e.g. negative lifetime).
    InvalidParams {
        /// What was wrong.
        reason: String,
    },
    /// A server cannot be placed in the configured rack (draws more power
    /// than the rack budget or does not fit the rack's space).
    RackOverflow {
        /// Name of the offending server SKU.
        sku: String,
        /// What was wrong.
        reason: String,
    },
    /// A numeric search (e.g. §VII-B equivalence solving) failed to
    /// bracket or converge on a solution.
    SearchFailed {
        /// Which analysis failed.
        analysis: &'static str,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CarbonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CarbonError::InvalidComponent { component, reason } => {
                write!(f, "invalid component `{component}`: {reason}")
            }
            CarbonError::InvalidServer { sku, reason } => {
                write!(f, "invalid server `{sku}`: {reason}")
            }
            CarbonError::InvalidParams { reason } => {
                write!(f, "invalid model parameters: {reason}")
            }
            CarbonError::RackOverflow { sku, reason } => {
                write!(f, "server `{sku}` does not fit the rack: {reason}")
            }
            CarbonError::SearchFailed { analysis, reason } => {
                write!(f, "{analysis} search failed: {reason}")
            }
        }
    }
}

impl std::error::Error for CarbonError {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CarbonError::InvalidParams { reason: "lifetime is zero".into() };
        assert_eq!(e.to_string(), "invalid model parameters: lifetime is zero");
        let e = CarbonError::RackOverflow { sku: "X".into(), reason: "too wide".into() };
        assert!(e.to_string().contains("does not fit"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CarbonError>();
    }
}
