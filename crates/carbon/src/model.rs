//! The carbon model: CO₂e-per-core assessment and SKU-vs-SKU savings.

use crate::error::CarbonError;
use crate::params::ModelParams;
use crate::rack::RackFill;
use crate::server::ServerSpec;
use crate::units::{KgCo2e, Watts};
use serde::{Deserialize, Serialize};

/// The carbon model component of GSF.
///
/// Wraps [`ModelParams`] and evaluates [`ServerSpec`]s into amortized
/// CO₂e-per-core values at rack and data-center level.
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonModel {
    params: ModelParams,
}

/// The result of assessing one SKU: operational and embodied emissions
/// amortized per core over the server lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assessment {
    sku: String,
    servers_per_rack: u32,
    cores_per_rack: u32,
    server_power: Watts,
    op_per_core: KgCo2e,
    emb_per_core: KgCo2e,
}

impl Assessment {
    /// The assessed SKU's name.
    pub fn sku(&self) -> &str {
        &self.sku
    }

    /// Servers per rack (`N_s`).
    pub fn servers_per_rack(&self) -> u32 {
        self.servers_per_rack
    }

    /// Cores per rack.
    pub fn cores_per_rack(&self) -> u32 {
        self.cores_per_rack
    }

    /// Average server power (`P_s`).
    pub fn server_power(&self) -> Watts {
        self.server_power
    }

    /// Operational emissions per core over the lifetime.
    pub fn op_per_core(&self) -> KgCo2e {
        self.op_per_core
    }

    /// Embodied emissions per core.
    pub fn emb_per_core(&self) -> KgCo2e {
        self.emb_per_core
    }

    /// Total (operational + embodied) emissions per core.
    pub fn total_per_core(&self) -> KgCo2e {
        self.op_per_core + self.emb_per_core
    }

    /// Per-server total emissions (per-core total × cores per server).
    pub fn total_per_server(&self) -> KgCo2e {
        self.total_per_core() * (f64::from(self.cores_per_rack) / f64::from(self.servers_per_rack))
    }
}

/// Relative savings of a GreenSKU against a baseline SKU, per core
/// (the rows of Tables IV and VIII).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsReport {
    /// Fractional operational savings (positive = GreenSKU better).
    pub operational: f64,
    /// Fractional embodied savings.
    pub embodied: f64,
    /// Fractional total savings.
    pub total: f64,
}

impl SavingsReport {
    /// Computes savings of `green` relative to `baseline`.
    pub fn relative(baseline: &Assessment, green: &Assessment) -> Self {
        fn frac(base: KgCo2e, new: KgCo2e) -> f64 {
            // gsf-lint: allow(N2) -- exact division-by-zero sentinel: only a bitwise zero base makes the ratio below undefined
            if base.get() == 0.0 {
                0.0
            } else {
                1.0 - new.get() / base.get()
            }
        }
        Self {
            operational: frac(baseline.op_per_core(), green.op_per_core()),
            embodied: frac(baseline.emb_per_core(), green.emb_per_core()),
            total: frac(baseline.total_per_core(), green.total_per_core()),
        }
    }
}

impl CarbonModel {
    /// Creates a carbon model with the given parameters.
    pub fn new(params: ModelParams) -> Self {
        Self { params }
    }

    /// The model's parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Assesses a SKU at **rack level**: no PUE, no data-center
    /// overheads. This is the configuration of the paper's §V worked
    /// example (31 kg CO₂e per core for GreenSKU-CXL).
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid or the server does
    /// not fit the rack.
    pub fn assess_rack(&self, server: &ServerSpec) -> Result<Assessment, CarbonError> {
        self.params.validate()?;
        let fill = RackFill::pack(server, &self.params.rack)?;
        let op_rack = fill
            .rack_power()
            .operational_emissions(self.params.lifetime, self.params.carbon_intensity);
        let cores = f64::from(fill.cores());
        Ok(Assessment {
            sku: server.name().to_string(),
            servers_per_rack: fill.servers(),
            cores_per_rack: fill.cores(),
            server_power: fill.server_power(),
            op_per_core: op_rack / cores,
            emb_per_core: fill.rack_embodied() / cores,
        })
    }

    /// Assesses a SKU at **data-center level**: rack emissions plus the
    /// per-rack shares of networking/storage power and embodied
    /// emissions and the building, with IT power multiplied by PUE.
    ///
    /// This is the per-core metric behind Tables IV/VIII and the cluster
    /// savings sweeps.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid or the server does
    /// not fit the rack.
    pub fn assess(&self, server: &ServerSpec) -> Result<Assessment, CarbonError> {
        self.params.validate()?;
        let fill = RackFill::pack(server, &self.params.rack)?;
        let o = &self.params.overheads;
        let it_power = fill.rack_power() + o.network_storage_power_per_rack;
        let dc_power = it_power * o.pue;
        let op_rack =
            dc_power.operational_emissions(self.params.lifetime, self.params.carbon_intensity);
        let emb_rack = fill.rack_embodied() + o.embodied_per_rack();
        let cores = f64::from(fill.cores());
        Ok(Assessment {
            sku: server.name().to_string(),
            servers_per_rack: fill.servers(),
            cores_per_rack: fill.cores(),
            server_power: fill.server_power(),
            op_per_core: op_rack / cores,
            emb_per_core: emb_rack / cores,
        })
    }

    /// Convenience: savings of `green` vs `baseline` at DC level.
    ///
    /// # Errors
    ///
    /// Propagates assessment errors for either SKU.
    pub fn savings(
        &self,
        baseline: &ServerSpec,
        green: &ServerSpec,
    ) -> Result<SavingsReport, CarbonError> {
        let b = self.assess(baseline)?;
        let g = self.assess(green)?;
        Ok(SavingsReport::relative(&b, &g))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::component::{ComponentClass, ComponentSpec};
    use crate::units::CarbonIntensity;

    fn simple_server(name: &str, power: f64, embodied: f64, cores: u32) -> ServerSpec {
        ServerSpec::builder(name, cores, 2)
            .component(
                ComponentSpec::new(
                    "blob",
                    ComponentClass::Other,
                    1.0,
                    Watts::new(power),
                    KgCo2e::new(embodied),
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn rack_assessment_known_numbers() {
        // 403 W, 1644 kg, 128 cores, 2U -> the worked example's numbers.
        let model = CarbonModel::new(ModelParams::worked_example());
        let a = model.assess_rack(&simple_server("cxl", 403.35, 1644.0, 128)).unwrap();
        assert_eq!(a.servers_per_rack(), 16);
        assert_eq!(a.cores_per_rack(), 2048);
        // E_emb,r = 16*1644+500 = 26804; per core 13.09.
        assert!((a.emb_per_core().get() - 26_804.0 / 2048.0).abs() < 1e-6);
        // P_r = 6953.6 W; E_op,r = 36548 kg; per core 17.85.
        assert!((a.op_per_core().get() - 17.85).abs() < 0.02);
        assert!((a.total_per_core().get() - 31.0).abs() < 0.15);
    }

    #[test]
    fn dc_assessment_adds_overheads() {
        let params = ModelParams::default_open_source();
        let model = CarbonModel::new(params);
        let rack_only = CarbonModel::new(ModelParams::worked_example());
        let s = simple_server("x", 400.0, 1500.0, 100);
        let dc = model.assess(&s).unwrap();
        let rack = rack_only.assess_rack(&s).unwrap();
        assert!(dc.op_per_core() > rack.op_per_core());
        assert!(dc.emb_per_core() > rack.emb_per_core());
    }

    #[test]
    fn savings_sign_conventions() {
        let model = CarbonModel::new(ModelParams::default_open_source());
        let base = simple_server("base", 400.0, 1500.0, 80);
        let green = simple_server("green", 400.0, 1500.0, 128);
        // Same server, more cores -> positive savings everywhere.
        let report = model.savings(&base, &green).unwrap();
        assert!(report.operational > 0.0);
        assert!(report.embodied > 0.0);
        assert!(report.total > 0.0);
        // Reverse direction -> negative savings.
        let worse = model.savings(&green, &base).unwrap();
        assert!(worse.total < 0.0);
    }

    #[test]
    fn total_is_between_op_and_emb_savings() {
        let model = CarbonModel::new(ModelParams::default_open_source());
        let base = simple_server("base", 500.0, 2000.0, 80);
        let green = simple_server("green", 450.0, 1000.0, 80);
        let r = model.savings(&base, &green).unwrap();
        let lo = r.operational.min(r.embodied);
        let hi = r.operational.max(r.embodied);
        assert!(r.total >= lo && r.total <= hi);
    }

    #[test]
    fn zero_carbon_intensity_zeroes_operational() {
        let params =
            ModelParams::default_open_source().with_carbon_intensity(CarbonIntensity::ZERO);
        let model = CarbonModel::new(params);
        let a = model.assess(&simple_server("x", 400.0, 1500.0, 100)).unwrap();
        assert_eq!(a.op_per_core(), KgCo2e::ZERO);
        assert!(a.emb_per_core().get() > 0.0);
    }

    #[test]
    fn per_server_total_consistent() {
        let model = CarbonModel::new(ModelParams::worked_example());
        let a = model.assess_rack(&simple_server("x", 403.35, 1644.0, 128)).unwrap();
        let per_server = a.total_per_server().get();
        let per_core = a.total_per_core().get();
        assert!((per_server - per_core * 128.0).abs() < 1e-6);
    }
}
