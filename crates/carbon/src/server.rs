//! Server SKU specifications: bill of materials plus shape metadata.

use crate::component::{ComponentClass, ComponentSpec};
use crate::error::CarbonError;
use crate::units::{Gigabytes, KgCo2e, Terabytes, Watts};
use serde::{Deserialize, Serialize};

/// A compute-server SKU as the carbon model sees it: a named bill of
/// materials with core count and physical form factor.
///
/// Build one with [`ServerSpec::builder`]. The paper's SKU configurations
/// (Baseline, Baseline-Resized, GreenSKU-Efficient/-CXL/-Full) ship in
/// [`crate::datasets`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    name: String,
    cores: u32,
    form_factor_u: u32,
    components: Vec<ComponentSpec>,
}

impl ServerSpec {
    /// Starts building a server with the given name, core count, and rack
    /// form factor in U.
    pub fn builder(name: impl Into<String>, cores: u32, form_factor_u: u32) -> ServerSpecBuilder {
        ServerSpecBuilder { name: name.into(), cores, form_factor_u, components: Vec::new() }
    }

    /// The SKU name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical cores per server.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Rack space occupied, in U.
    pub fn form_factor_u(&self) -> u32 {
        self.form_factor_u
    }

    /// The bill of materials.
    pub fn components(&self) -> &[ComponentSpec] {
        &self.components
    }

    /// Average server power: Eq. 1 of the paper,
    /// `P_s = Σ_i TDP_i · d_i · l_i`.
    pub fn average_power(&self) -> Watts {
        self.components.iter().map(ComponentSpec::average_power).sum()
    }

    /// Nameplate (undereated) power.
    pub fn nameplate_power(&self) -> Watts {
        self.components.iter().map(ComponentSpec::nameplate_power).sum()
    }

    /// Server embodied emissions (reused components count zero).
    pub fn embodied(&self) -> KgCo2e {
        self.components.iter().map(ComponentSpec::embodied).sum()
    }

    /// Embodied emissions avoided by reuse: what the reused components
    /// would have cost if bought new.
    pub fn embodied_avoided_by_reuse(&self) -> KgCo2e {
        self.components.iter().filter(|c| c.is_reused()).map(ComponentSpec::embodied_if_new).sum()
    }

    /// Average power drawn by components of one class.
    pub fn power_by_class(&self, class: ComponentClass) -> Watts {
        self.components
            .iter()
            .filter(|c| c.class() == class)
            .map(ComponentSpec::average_power)
            .sum()
    }

    /// Embodied emissions of components of one class.
    pub fn embodied_by_class(&self, class: ComponentClass) -> KgCo2e {
        self.components.iter().filter(|c| c.class() == class).map(ComponentSpec::embodied).sum()
    }

    /// Total DRAM capacity (direct + CXL-attached).
    pub fn memory_capacity(&self) -> Gigabytes {
        Gigabytes::new(
            self.components
                .iter()
                .filter(|c| matches!(c.class(), ComponentClass::Dram | ComponentClass::CxlDram))
                .map(ComponentSpec::quantity)
                .sum::<f64>()
                + 0.0, // normalize the empty sum's -0.0
        )
    }

    /// CXL-attached DRAM capacity only.
    pub fn cxl_memory_capacity(&self) -> Gigabytes {
        Gigabytes::new(
            self.components
                .iter()
                .filter(|c| c.class() == ComponentClass::CxlDram)
                .map(ComponentSpec::quantity)
                .sum::<f64>()
                + 0.0, // normalize the empty sum's -0.0
        )
    }

    /// Total SSD capacity.
    pub fn ssd_capacity(&self) -> Terabytes {
        Terabytes::new(
            self.components
                .iter()
                .filter(|c| c.class() == ComponentClass::Ssd)
                .map(ComponentSpec::quantity)
                .sum::<f64>()
                + 0.0, // normalize the empty sum's -0.0
        )
    }

    /// Number of physical devices of a class (e.g. DIMM or SSD count),
    /// used by the maintenance model's AFR accounting.
    pub fn device_count(&self, class: ComponentClass) -> u32 {
        self.components.iter().filter(|c| c.class() == class).map(ComponentSpec::device_count).sum()
    }

    /// Memory:core ratio in GB per core (the paper contrasts 9.6 for the
    /// baseline with 8 for the GreenSKUs).
    pub fn memory_per_core(&self) -> f64 {
        self.memory_capacity().get() / f64::from(self.cores)
    }

    /// Total PCIe lanes consumed by the bill of materials (§III: the
    /// GreenSKU-Full prototype uses all 128 Bergamo lanes).
    pub fn pcie_lanes(&self) -> u32 {
        self.components.iter().map(ComponentSpec::pcie_lanes).sum()
    }
}

/// Builder for [`ServerSpec`].
#[derive(Debug, Clone)]
pub struct ServerSpecBuilder {
    name: String,
    cores: u32,
    form_factor_u: u32,
    components: Vec<ComponentSpec>,
}

impl ServerSpecBuilder {
    /// Adds a component to the bill of materials.
    pub fn component(mut self, component: ComponentSpec) -> Self {
        self.components.push(component);
        self
    }

    /// Adds several components.
    pub fn components<I: IntoIterator<Item = ComponentSpec>>(mut self, iter: I) -> Self {
        self.components.extend(iter);
        self
    }

    /// Finalizes the server specification.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::InvalidServer`] if the server has zero
    /// cores, zero form factor, or an empty bill of materials.
    pub fn build(self) -> Result<ServerSpec, CarbonError> {
        if self.cores == 0 {
            return Err(CarbonError::InvalidServer {
                sku: self.name,
                reason: "server must have at least one core".into(),
            });
        }
        if self.form_factor_u == 0 {
            return Err(CarbonError::InvalidServer {
                sku: self.name,
                reason: "form factor must be at least 1U".into(),
            });
        }
        if self.components.is_empty() {
            return Err(CarbonError::InvalidServer {
                sku: self.name,
                reason: "bill of materials is empty".into(),
            });
        }
        Ok(ServerSpec {
            name: self.name,
            cores: self.cores,
            form_factor_u: self.form_factor_u,
            components: self.components,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_server() -> ServerSpec {
        ServerSpec::builder("test", 128, 2)
            .component(
                ComponentSpec::new(
                    "CPU",
                    ComponentClass::Cpu,
                    1.0,
                    Watts::new(400.0),
                    KgCo2e::new(28.3),
                )
                .unwrap()
                .with_derate(0.44)
                .unwrap()
                .with_loss_factor(1.05)
                .unwrap(),
            )
            .component(
                ComponentSpec::new(
                    "DDR5",
                    ComponentClass::Dram,
                    768.0,
                    Watts::new(0.37),
                    KgCo2e::new(1.65),
                )
                .unwrap()
                .with_derate(0.44)
                .unwrap()
                .with_device_count(12),
            )
            .component(
                ComponentSpec::new(
                    "DDR4-CXL",
                    ComponentClass::CxlDram,
                    256.0,
                    Watts::new(0.37),
                    KgCo2e::new(1.65),
                )
                .unwrap()
                .with_derate(0.44)
                .unwrap()
                .reused()
                .with_device_count(8),
            )
            .component(
                ComponentSpec::new(
                    "SSD",
                    ComponentClass::Ssd,
                    20.0,
                    Watts::new(5.6),
                    KgCo2e::new(17.3),
                )
                .unwrap()
                .with_derate(0.44)
                .unwrap()
                .with_device_count(5),
            )
            .component(
                ComponentSpec::new(
                    "CXL ctrl",
                    ComponentClass::CxlController,
                    1.0,
                    Watts::new(5.8),
                    KgCo2e::new(2.5),
                )
                .unwrap()
                .with_derate(0.44)
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn power_matches_worked_example() {
        // This is the paper's GreenSKU-CXL example: P_s ≈ 403 W.
        let s = sample_server();
        assert!((s.average_power().get() - 403.35).abs() < 0.5, "{}", s.average_power());
    }

    #[test]
    fn embodied_matches_worked_example() {
        // 28.3 + 768*1.65 + 0 (reused) + 20*17.3 + 2.5 = 1644 kg.
        let s = sample_server();
        assert!((s.embodied().get() - 1644.0).abs() < 0.5, "{}", s.embodied());
    }

    #[test]
    fn capacities_and_counts() {
        let s = sample_server();
        assert_eq!(s.memory_capacity().get(), 1024.0);
        assert_eq!(s.cxl_memory_capacity().get(), 256.0);
        assert_eq!(s.ssd_capacity().get(), 20.0);
        assert_eq!(s.device_count(ComponentClass::Dram), 12);
        assert_eq!(s.device_count(ComponentClass::CxlDram), 8);
        assert_eq!(s.device_count(ComponentClass::Ssd), 5);
        assert_eq!(s.memory_per_core(), 8.0);
    }

    #[test]
    fn avoided_embodied_counts_reused_only() {
        let s = sample_server();
        assert!((s.embodied_avoided_by_reuse().get() - 256.0 * 1.65).abs() < 1e-9);
    }

    #[test]
    fn builder_validation() {
        assert!(ServerSpec::builder("x", 0, 2)
            .component(
                ComponentSpec::new(
                    "c",
                    ComponentClass::Other,
                    1.0,
                    Watts::new(1.0),
                    KgCo2e::new(1.0)
                )
                .unwrap()
            )
            .build()
            .is_err());
        assert!(ServerSpec::builder("x", 8, 0)
            .component(
                ComponentSpec::new(
                    "c",
                    ComponentClass::Other,
                    1.0,
                    Watts::new(1.0),
                    KgCo2e::new(1.0)
                )
                .unwrap()
            )
            .build()
            .is_err());
        assert!(ServerSpec::builder("x", 8, 2).build().is_err());
    }

    #[test]
    fn class_aggregation() {
        let s = sample_server();
        let cpu_power = s.power_by_class(ComponentClass::Cpu);
        assert!((cpu_power.get() - 184.8).abs() < 1e-9);
        let dram_emb = s.embodied_by_class(ComponentClass::Dram);
        assert!((dram_emb.get() - 1267.2).abs() < 1e-9);
        assert_eq!(s.embodied_by_class(ComponentClass::CxlDram), KgCo2e::ZERO);
    }
}
