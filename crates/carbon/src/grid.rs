//! Regional grid model: carbon intensity with location-matched
//! renewables and a diurnal solar profile.
//!
//! §II: "we only count renewable energy purchases that match a data
//! center's location. We find that most data centers use 40–80 %
//! renewable energy at Azure." This module models each region as a grid
//! carbon intensity plus a matched-renewables share whose solar
//! component varies over the day — enough structure to evaluate
//! GreenSKUs per region (Figs. 11/12's vertical markers) and to ask
//! time-of-day questions the carbon-aware-scheduling literature the
//! paper cites cares about.

use crate::units::CarbonIntensity;
use serde::{Deserialize, Serialize};

/// Lifecycle carbon intensity of renewable generation (kg CO₂e/kWh).
pub const RENEWABLE_LIFECYCLE_CI: f64 = 0.012;

/// One data-center region's energy profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionGrid {
    /// Region name.
    pub name: &'static str,
    /// Grid (non-renewable residual) carbon intensity, kg CO₂e/kWh.
    pub grid_ci: f64,
    /// Location-matched renewable share of annual energy, `[0, 1]`.
    pub renewable_fraction: f64,
    /// Fraction of the renewable share that is solar (varies by hour);
    /// the rest (wind/hydro/nuclear PPA) is flat.
    pub solar_share: f64,
}

impl RegionGrid {
    /// Effective carbon intensity averaged over the year.
    pub fn average_ci(&self) -> CarbonIntensity {
        let renewable = self.renewable_fraction;
        CarbonIntensity::new((1.0 - renewable) * self.grid_ci + renewable * RENEWABLE_LIFECYCLE_CI)
    }

    /// Effective carbon intensity at `hour` of day (0–24): solar
    /// renewables produce between 06:00 and 18:00 with a half-sine
    /// profile; when solar is offline, its share falls back to grid
    /// energy.
    pub fn ci_at_hour(&self, hour: f64) -> CarbonIntensity {
        let hour = hour.rem_euclid(24.0);
        // Half-sine daylight profile normalized so its daily mean is 1.
        let daylight = if (6.0..18.0).contains(&hour) {
            (std::f64::consts::PI * (hour - 6.0) / 12.0).sin()
        } else {
            0.0
        };
        // Mean of the half-sine over 24 h is (2/π)·(12/24) = 1/π.
        let solar_scale = daylight * std::f64::consts::PI;
        let solar = self.renewable_fraction * self.solar_share;
        let flat = self.renewable_fraction * (1.0 - self.solar_share);
        let solar_now = (solar * solar_scale).min(1.0 - flat);
        let renewable_now = flat + solar_now;
        CarbonIntensity::new(
            (1.0 - renewable_now) * self.grid_ci + renewable_now * RENEWABLE_LIFECYCLE_CI,
        )
    }

    /// The cleanest hour of the day (argmin of [`Self::ci_at_hour`] on a
    /// 24-point grid).
    pub fn cleanest_hour(&self) -> f64 {
        (0..24)
            .map(|h| (f64::from(h), self.ci_at_hour(f64::from(h)).get()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(h, _)| h)
            .unwrap_or(12.0)
    }
}

/// An Azure-like region table spanning the paper's Fig. 11/12 range.
/// CI values bracket the annotated markers (us-south 0.04 …
/// europe-north 0.33); renewables spans the §II 40–80 % range.
pub fn regions() -> Vec<RegionGrid> {
    vec![
        RegionGrid { name: "us-south", grid_ci: 0.38, renewable_fraction: 0.92, solar_share: 0.5 },
        RegionGrid { name: "us-west", grid_ci: 0.30, renewable_fraction: 0.75, solar_share: 0.6 },
        RegionGrid {
            name: "us-central",
            grid_ci: 0.45,
            renewable_fraction: 0.80,
            solar_share: 0.4,
        },
        RegionGrid { name: "us-east", grid_ci: 0.42, renewable_fraction: 0.65, solar_share: 0.3 },
        RegionGrid {
            name: "europe-west",
            grid_ci: 0.35,
            renewable_fraction: 0.60,
            solar_share: 0.3,
        },
        RegionGrid {
            name: "europe-north",
            grid_ci: 0.47,
            renewable_fraction: 0.32,
            solar_share: 0.2,
        },
        RegionGrid { name: "asia-east", grid_ci: 0.55, renewable_fraction: 0.45, solar_share: 0.5 },
        RegionGrid {
            name: "asia-south",
            grid_ci: 0.65,
            renewable_fraction: 0.50,
            solar_share: 0.6,
        },
        RegionGrid {
            name: "australia-east",
            grid_ci: 0.60,
            renewable_fraction: 0.55,
            solar_share: 0.7,
        },
        RegionGrid {
            name: "brazil-south",
            grid_ci: 0.15,
            renewable_fraction: 0.85,
            solar_share: 0.3,
        },
    ]
}

/// Looks up a region by name.
pub fn region(name: &str) -> Option<RegionGrid> {
    regions().into_iter().find(|r| r.name == name)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn average_ci_in_fig11_range() {
        // The region table must bracket the paper's annotated markers
        // (0.04 … 0.33 kg/kWh).
        let cis: Vec<f64> = regions().iter().map(|r| r.average_ci().get()).collect();
        let min = cis.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = cis.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.05, "min {min}");
        assert!(max > 0.30, "max {max}");
    }

    #[test]
    fn renewables_span_the_40_to_80_band() {
        let fracs: Vec<f64> = regions().iter().map(|r| r.renewable_fraction).collect();
        assert!(fracs.iter().any(|&f| f <= 0.45));
        assert!(fracs.iter().any(|&f| f >= 0.80));
    }

    #[test]
    fn daytime_is_cleaner_where_solar_dominates() {
        let r = region("australia-east").unwrap();
        let noon = r.ci_at_hour(12.0).get();
        let midnight = r.ci_at_hour(0.0).get();
        assert!(noon < midnight, "noon {noon} vs midnight {midnight}");
        let cleanest = r.cleanest_hour();
        assert!((6.0..18.0).contains(&cleanest), "cleanest {cleanest}");
    }

    #[test]
    fn hourly_profile_brackets_the_annual_mean() {
        // Solar clipping (peaks capped at total demand) can only *lose*
        // renewable energy, so the delivered hourly mean sits between
        // the nominal annual mean and the no-solar-at-all bound.
        for r in regions() {
            let hourly: f64 =
                (0..240).map(|i| r.ci_at_hour(f64::from(i) / 10.0).get()).sum::<f64>() / 240.0;
            let annual = r.average_ci().get();
            let flat = r.renewable_fraction * (1.0 - r.solar_share);
            let no_solar = (1.0 - flat) * r.grid_ci + flat * RENEWABLE_LIFECYCLE_CI;
            assert!(hourly >= annual - 1e-9, "{}: hourly {hourly} < annual {annual}", r.name);
            assert!(hourly <= no_solar + 1e-9, "{}: hourly {hourly} > no-solar {no_solar}", r.name);
        }
    }

    #[test]
    fn unclipped_regions_preserve_the_mean_closely() {
        // europe-north: 32 % renewables, 20 % solar — peaks never clip,
        // so the delivered mean matches the annual mean tightly.
        let r = region("europe-north").unwrap();
        let hourly: f64 =
            (0..240).map(|i| r.ci_at_hour(f64::from(i) / 10.0).get()).sum::<f64>() / 240.0;
        let annual = r.average_ci().get();
        assert!((hourly - annual).abs() < 0.01, "hourly {hourly} vs annual {annual}");
    }

    #[test]
    fn renewables_never_exceed_total_energy() {
        for r in regions() {
            for h in 0..24 {
                let ci = r.ci_at_hour(f64::from(h)).get();
                assert!(ci >= RENEWABLE_LIFECYCLE_CI - 1e-12, "{} h{h}: {ci}", r.name);
                assert!(ci <= r.grid_ci + 1e-12);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(region("us-south").is_some());
        assert!(region("atlantis").is_none());
    }
}
