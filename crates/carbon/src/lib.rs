//! GSF carbon model: server, rack, and data-center emissions.
//!
//! Implements §IV-A and §V of *“Designing Cloud Servers for Lower Carbon”*
//! (ISCA 2024):
//!
//! - server average power via per-component TDP, derating, and loss
//!   factors (Eq. 1),
//! - rack power and embodied emissions with space/power constraints
//!   (Eqs. 2–3),
//! - data-center aggregation with PUE, networking/storage, and building
//!   overheads,
//! - CO₂e-per-core at every level, and
//! - savings comparisons between SKUs (Tables IV/VIII), fleet breakdowns
//!   (Fig. 1), and the §VII-B equivalence analyses.
//!
//! The open-source datasets of the paper's artifact appendix (Tables V and
//! VI) ship in [`datasets::open_source`]; the §V worked example is pinned
//! by golden tests (403 W server power, 1644 kg embodied, 31 kg CO₂e per
//! core at rack level).
//!
//! # Example
//!
//! ```
//! use gsf_carbon::{CarbonModel, ModelParams};
//! use gsf_carbon::datasets::open_source;
//!
//! let model = CarbonModel::new(ModelParams::default_open_source());
//! let sku = open_source::greensku_cxl_example();
//! let rack = model.assess_rack(&sku)?;
//! assert!((rack.total_per_core().get() - 31.0).abs() < 1.0);
//! # Ok::<(), gsf_carbon::CarbonError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod breakdown;
pub mod component;
pub mod cost;
pub mod datasets;
pub mod derating;
pub mod equivalence;
pub mod error;
pub mod grid;
pub mod lifetime;
pub mod model;
pub mod params;
pub mod rack;
pub mod residuals;
pub mod server;
pub mod units;

pub use component::{ComponentClass, ComponentSpec};
pub use error::CarbonError;
pub use model::{Assessment, CarbonModel, SavingsReport};
pub use params::{DataCenterOverheads, ModelParams, RackParams};
pub use server::ServerSpec;
pub use units::{CarbonIntensity, Gigabytes, KgCo2e, Terabytes, Watts, Years};
