//! Newtype units used throughout the carbon model.
//!
//! Emissions accounting mixes watts, kilograms of CO₂-equivalent, carbon
//! intensities, capacities, and durations; newtypes keep those from being
//! confused (a `Watts` can never be added to a `KgCo2e`) while remaining
//! zero-cost `f64` wrappers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The raw value.
            pub const fn get(&self) -> f64 {
                self.0
            }

            /// The zero value.
            pub const ZERO: Self = Self(0.0);

            /// Whether the value is finite and non-negative.
            pub fn is_valid(&self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                // `+ 0.0` normalizes the empty sum's -0.0 identity so
                // displays never print "-0".
                Self(iter.map(|v| v.0).sum::<f64>() + 0.0)
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                Self(v)
            }
        }
    };
}

unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);
unit!(
    /// Mass of CO₂-equivalent emissions in kilograms.
    KgCo2e,
    "kgCO2e"
);
unit!(
    /// Memory capacity in gigabytes.
    Gigabytes,
    "GB"
);
unit!(
    /// Storage capacity in terabytes.
    Terabytes,
    "TB"
);
unit!(
    /// Duration in years.
    Years,
    "y"
);

/// Grid carbon intensity in kg CO₂e per kWh.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct CarbonIntensity(f64);

impl CarbonIntensity {
    /// Wraps a raw kg CO₂e / kWh value.
    pub const fn new(kg_per_kwh: f64) -> Self {
        Self(kg_per_kwh)
    }

    /// The raw kg CO₂e / kWh value.
    pub const fn get(&self) -> f64 {
        self.0
    }

    /// A zero-carbon energy source.
    pub const ZERO: Self = Self(0.0);

    /// Whether the value is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} kgCO2e/kWh", self.0)
    }
}

impl Years {
    /// Hours in this many (365-day) years, as used by the paper
    /// (6 years = 52 560 hours).
    pub fn hours(&self) -> f64 {
        self.get() * 8760.0
    }
}

impl Watts {
    /// Operational emissions from drawing this power continuously for
    /// `lifetime` at the given carbon intensity.
    ///
    /// # Example
    ///
    /// ```
    /// # use gsf_carbon::units::{Watts, Years, CarbonIntensity};
    /// // The paper's rack example: 6954 W for 6 years at 0.1 kg/kWh
    /// // is roughly 36 550 kg CO2e.
    /// let e = Watts::new(6953.6).operational_emissions(
    ///     Years::new(6.0),
    ///     CarbonIntensity::new(0.1),
    /// );
    /// assert!((e.get() - 36_548.0).abs() < 10.0);
    /// ```
    pub fn operational_emissions(&self, lifetime: Years, ci: CarbonIntensity) -> KgCo2e {
        // W * h = Wh; /1000 = kWh; * kg/kWh = kg.
        KgCo2e::new(self.get() * lifetime.hours() / 1000.0 * ci.get())
    }
}

impl Gigabytes {
    /// Converts to terabytes (decimal, 1000 GB = 1 TB).
    pub fn to_terabytes(&self) -> Terabytes {
        Terabytes::new(self.get() / 1000.0)
    }
}

impl Terabytes {
    /// Converts to gigabytes (decimal, 1 TB = 1000 GB).
    pub fn to_gigabytes(&self) -> Gigabytes {
        Gigabytes::new(self.get() * 1000.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Watts::new(100.0) + Watts::new(50.0);
        assert_eq!(a.get(), 150.0);
        assert_eq!((a - Watts::new(25.0)).get(), 125.0);
        assert_eq!((a * 2.0).get(), 300.0);
        assert_eq!((a / 3.0).get(), 50.0);
        assert_eq!(a / Watts::new(75.0), 2.0);
    }

    #[test]
    fn sum_of_units() {
        let total: KgCo2e = vec![KgCo2e::new(1.0), KgCo2e::new(2.5)].into_iter().sum();
        assert_eq!(total.get(), 3.5);
    }

    #[test]
    fn lifetime_hours_matches_paper() {
        assert_eq!(Years::new(6.0).hours(), 52_560.0);
    }

    #[test]
    fn operational_emissions_unit_math() {
        // 1000 W for 1 year at 1 kg/kWh = 8760 kg.
        let e =
            Watts::new(1000.0).operational_emissions(Years::new(1.0), CarbonIntensity::new(1.0));
        assert!((e.get() - 8760.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_conversions() {
        assert_eq!(Gigabytes::new(2000.0).to_terabytes().get(), 2.0);
        assert_eq!(Terabytes::new(1.5).to_gigabytes().get(), 1500.0);
    }

    #[test]
    fn validity_checks() {
        assert!(Watts::new(1.0).is_valid());
        assert!(!Watts::new(-1.0).is_valid());
        assert!(!Watts::new(f64::NAN).is_valid());
        assert!(CarbonIntensity::ZERO.is_valid());
    }

    #[test]
    fn display_has_suffix() {
        assert_eq!(format!("{}", Watts::new(1.0)), "1.000 W");
        assert!(format!("{}", CarbonIntensity::new(0.1)).contains("kgCO2e/kWh"));
    }
}
