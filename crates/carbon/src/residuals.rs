//! Second-generation GreenSKU candidates (§III).
//!
//! “Other GreenSKU designs that reuse NICs or use low-power DRAM may be
//! feasible, but yield low returns today. These designs can help target
//! residual emissions for a potential second-generation GreenSKU.” This
//! module quantifies that remark: it extends GreenSKU-Full with NIC
//! reuse and an LPDDR memory option, and the tests verify the returns
//! are indeed small relative to the first-generation levers.

use crate::component::{ComponentClass, ComponentSpec};
use crate::datasets::open_source;
use crate::error::CarbonError;
use crate::server::ServerSpec;
use crate::units::{KgCo2e, Watts};

/// NIC TDP (100 GbE-class data-center NIC), watts.
pub const NIC_TDP_W: f64 = 20.0;
/// NIC embodied emissions, kg CO₂e (small board + ASIC).
pub const NIC_EMBODIED_KG: f64 = 12.0;
/// LPDDR power per GB (low-power DRAM draws roughly half of DDR5).
pub const LPDDR_TDP_W_PER_GB: f64 = 0.20;
/// LPDDR embodied emissions per GB — *higher* than DDR5 because of
/// package-on-package assembly and lower-volume supply (the reason the
/// paper defers it).
pub const LPDDR_EMBODIED_KG_PER_GB: f64 = 1.95;

fn nic(reused: bool) -> Result<ComponentSpec, CarbonError> {
    let spec = ComponentSpec::new(
        if reused { "NIC (reused)" } else { "NIC (new)" },
        ComponentClass::Nic,
        1.0,
        Watts::new(NIC_TDP_W),
        KgCo2e::new(NIC_EMBODIED_KG),
    )?
    .with_derate(open_source::DERATE)?
    .with_pcie_lanes(16);
    Ok(if reused { spec.reused() } else { spec })
}

fn with_extra(
    base: ServerSpec,
    name: &str,
    extra: Vec<ComponentSpec>,
) -> Result<ServerSpec, CarbonError> {
    let mut builder = ServerSpec::builder(name, base.cores(), base.form_factor_u());
    builder = builder.components(base.components().iter().cloned());
    builder = builder.components(extra);
    builder.build()
}

/// GreenSKU-Full with an explicit **new** NIC (the comparison base for
/// NIC reuse).
///
/// # Errors
///
/// Propagates component-construction failures (none for the shipped
/// constants).
pub fn greensku_full_with_new_nic() -> Result<ServerSpec, CarbonError> {
    with_extra(open_source::greensku_full(), "GreenSKU-Full + new NIC", vec![nic(false)?])
}

/// Second-generation candidate: GreenSKU-Full with a **reused** NIC.
///
/// # Errors
///
/// See [`greensku_full_with_new_nic`].
pub fn greensku_gen2_nic_reuse() -> Result<ServerSpec, CarbonError> {
    with_extra(open_source::greensku_full(), "GreenSKU-Gen2 (NIC reuse)", vec![nic(true)?])
}

/// Second-generation candidate: GreenSKU-Efficient with its DDR5
/// replaced by LPDDR.
///
/// # Errors
///
/// Propagates component-construction failures.
pub fn greensku_gen2_lpddr() -> Result<ServerSpec, CarbonError> {
    let base = open_source::greensku_efficient();
    let mut builder =
        ServerSpec::builder("GreenSKU-Gen2 (LPDDR)", base.cores(), base.form_factor_u());
    for c in base.components() {
        if c.class() == ComponentClass::Dram {
            builder = builder.component(
                ComponentSpec::new(
                    "LPDDR",
                    ComponentClass::Dram,
                    c.quantity(),
                    Watts::new(LPDDR_TDP_W_PER_GB),
                    KgCo2e::new(LPDDR_EMBODIED_KG_PER_GB),
                )?
                .with_derate(open_source::DERATE)?
                .with_device_count(c.device_count()),
            );
        } else {
            builder = builder.component(c.clone());
        }
    }
    builder.build()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::model::CarbonModel;
    use crate::params::ModelParams;

    fn per_core(sku: &ServerSpec) -> f64 {
        CarbonModel::new(ModelParams::default_open_source())
            .assess(sku)
            .unwrap()
            .total_per_core()
            .get()
    }

    #[test]
    fn nic_reuse_yields_low_returns_today() {
        // §III: NIC reuse is feasible but the returns are small —
        // under 1 % additional per-core savings on top of GreenSKU-Full.
        let with_new = per_core(&greensku_full_with_new_nic().unwrap());
        let with_reused = per_core(&greensku_gen2_nic_reuse().unwrap());
        let delta = 1.0 - with_reused / with_new;
        assert!(delta > 0.0, "reuse must help at least a little: {delta}");
        assert!(delta < 0.01, "NIC reuse should be a small lever: {delta}");
    }

    #[test]
    fn lpddr_trades_operational_for_embodied() {
        // Low-power DRAM halves memory power but costs more embodied —
        // the §III D1 tradeoff that makes it a deferred option.
        let model = CarbonModel::new(ModelParams::default_open_source());
        let base = open_source::greensku_efficient();
        let lpddr = greensku_gen2_lpddr().unwrap();
        let a = model.assess(&base).unwrap();
        let b = model.assess(&lpddr).unwrap();
        assert!(b.op_per_core() < a.op_per_core());
        assert!(b.emb_per_core() > a.emb_per_core());
        // Net: small either way at the reference intensity.
        let delta = 1.0 - b.total_per_core().get() / a.total_per_core().get();
        assert!(delta.abs() < 0.05, "LPDDR is a small net lever at CI 0.1: {delta}");
    }

    #[test]
    fn pcie_budget_respected() {
        // §III: the prototype's components fit Bergamo's 128 lanes.
        let sku = greensku_gen2_nic_reuse().unwrap();
        assert!(sku.pcie_lanes() <= 128, "{} lanes", sku.pcie_lanes());
        // Full: 1 CXL card (32) + 14 drives (56) + NIC (16) = 104.
        assert_eq!(sku.pcie_lanes(), 104);
    }

    #[test]
    fn nic_reuse_preserves_performance_assumptions() {
        // NIC reuse has no performance penalty in the paper's framing;
        // the SKU shape (cores/memory) is untouched.
        let base = open_source::greensku_full();
        let gen2 = greensku_gen2_nic_reuse().unwrap();
        assert_eq!(base.cores(), gen2.cores());
        assert_eq!(base.memory_capacity(), gen2.memory_capacity());
        assert_eq!(base.ssd_capacity(), gen2.ssd_capacity());
    }
}
