//! Fleet-level carbon breakdown of a general-purpose data center (Fig. 1).
//!
//! Azure does not publish absolute fleet emissions; the paper gives four
//! quantitative anchors which this model is calibrated to reproduce:
//!
//! 1. with the production renewables mix (40–80 %, we use 60 %),
//!    operational emissions are ≈58 % of total emissions;
//! 2. compute servers cause ≈57 % of data-center emissions;
//! 3. within compute servers the top contributors are DRAM, SSDs, and
//!    CPUs (≈87 % together; we land within a few points of the published
//!    35 %/28 %/24 % split);
//! 4. with a hypothetical 100 % renewables mix, operational emissions
//!    drop to ≈9 % and compute servers to ≈44 % of the total.
//!
//! Anchors 1 and 4 pin the renewable *lifecycle* carbon intensity at 3 %
//! of the grid's — consistent with wind/solar lifecycle intensities.
//!
//! Quantities are expressed in relative units (the paper's Fig. 1 shows
//! percentages only), with operational entries given **at grid carbon
//! intensity** and scaled by the effective renewables mix at query time.

use crate::component::ComponentClass;
use serde::{Deserialize, Serialize};

/// Lifecycle carbon intensity of renewable energy relative to the grid.
pub const RENEWABLE_CI_FRACTION: f64 = 0.03;

/// Azure's typical renewables fraction (the paper reports 40–80 %).
pub const DEFAULT_RENEWABLE_FRACTION: f64 = 0.6;

/// Top-level emission categories of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FleetCategory {
    /// General-purpose compute servers.
    ComputeServers,
    /// Storage servers (HDD arrays).
    StorageServers,
    /// Network servers and switches.
    NetworkServers,
    /// Cooling and power-distribution equipment.
    CoolingAndPower,
    /// The building shell.
    Building,
}

impl FleetCategory {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            FleetCategory::ComputeServers => "Compute servers",
            FleetCategory::StorageServers => "Storage servers",
            FleetCategory::NetworkServers => "Network servers",
            FleetCategory::CoolingAndPower => "Cooling & power distribution",
            FleetCategory::Building => "Building",
        }
    }

    /// All categories in report order.
    pub fn all() -> [FleetCategory; 5] {
        [
            FleetCategory::ComputeServers,
            FleetCategory::StorageServers,
            FleetCategory::NetworkServers,
            FleetCategory::CoolingAndPower,
            FleetCategory::Building,
        ]
    }
}

/// Calibrated fleet composition (relative units; see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetModel {
    /// Operational emissions at grid CI, per compute-server component.
    compute_op_at_grid: Vec<(ComponentClass, f64)>,
    /// Embodied emissions per compute-server component.
    compute_embodied: Vec<(ComponentClass, f64)>,
    /// Storage-server operational emissions at grid CI.
    storage_op_at_grid: f64,
    /// Storage-server embodied emissions.
    storage_embodied: f64,
    /// Network operational emissions at grid CI.
    network_op_at_grid: f64,
    /// Network embodied emissions.
    network_embodied: f64,
    /// Cooling/power-distribution power as a fraction of IT power
    /// (PUE − 1).
    cooling_overhead: f64,
    /// Cooling/power-distribution equipment embodied emissions.
    cooling_embodied: f64,
    /// Building embodied emissions.
    building_embodied: f64,
    /// Renewable lifecycle CI as a fraction of grid CI.
    renewable_ci_fraction: f64,
}

impl Default for FleetModel {
    fn default() -> Self {
        Self::azure_calibrated()
    }
}

impl FleetModel {
    /// The calibrated Azure-like fleet (see module docs for the anchors).
    pub fn azure_calibrated() -> Self {
        Self {
            compute_op_at_grid: vec![
                (ComponentClass::Cpu, 80.0),
                (ComponentClass::Dram, 60.0),
                (ComponentClass::Ssd, 45.0),
                (ComponentClass::Nic, 15.0),
                (ComponentClass::Other, 25.0),
            ],
            compute_embodied: vec![
                (ComponentClass::Cpu, 3.0),
                (ComponentClass::Dram, 17.0),
                (ComponentClass::Ssd, 13.0),
                (ComponentClass::Nic, 2.0),
                (ComponentClass::Other, 6.6),
            ],
            storage_op_at_grid: 30.0,
            storage_embodied: 35.0,
            network_op_at_grid: 20.4,
            network_embodied: 8.0,
            cooling_overhead: 0.2,
            cooling_embodied: 3.4,
            building_embodied: 12.0,
            renewable_ci_fraction: RENEWABLE_CI_FRACTION,
        }
    }

    /// Effective carbon-intensity multiplier at renewables fraction `f`
    /// (relative to pure grid energy).
    pub fn effective_ci_factor(&self, renewable_fraction: f64) -> f64 {
        let f = renewable_fraction.clamp(0.0, 1.0);
        (1.0 - f) + f * self.renewable_ci_fraction
    }

    /// Total IT operational emissions at grid CI (before the renewables
    /// mix and cooling overhead).
    fn it_op_at_grid(&self) -> f64 {
        let compute: f64 = self.compute_op_at_grid.iter().map(|(_, v)| v).sum();
        compute + self.storage_op_at_grid + self.network_op_at_grid
    }

    /// Computes the Fig. 1 breakdown at the given renewables fraction.
    pub fn breakdown(&self, renewable_fraction: f64) -> FleetBreakdown {
        let e = self.effective_ci_factor(renewable_fraction);
        let compute_op: f64 = self.compute_op_at_grid.iter().map(|(_, v)| v * e).sum();
        let compute_emb: f64 = self.compute_embodied.iter().map(|(_, v)| v).sum();
        let cooling_op = self.it_op_at_grid() * self.cooling_overhead * e;
        let categories = vec![
            CategoryEmissions {
                category: FleetCategory::ComputeServers,
                operational: compute_op,
                embodied: compute_emb,
            },
            CategoryEmissions {
                category: FleetCategory::StorageServers,
                operational: self.storage_op_at_grid * e,
                embodied: self.storage_embodied,
            },
            CategoryEmissions {
                category: FleetCategory::NetworkServers,
                operational: self.network_op_at_grid * e,
                embodied: self.network_embodied,
            },
            CategoryEmissions {
                category: FleetCategory::CoolingAndPower,
                operational: cooling_op,
                embodied: self.cooling_embodied,
            },
            CategoryEmissions {
                category: FleetCategory::Building,
                operational: 0.0,
                embodied: self.building_embodied,
            },
        ];
        let components = self
            .compute_op_at_grid
            .iter()
            .map(|&(class, op)| {
                let emb = self
                    .compute_embodied
                    .iter()
                    .find(|(c, _)| *c == class)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                CategoryEmissions2 { class, operational: op * e, embodied: emb }
            })
            .collect();
        FleetBreakdown { renewable_fraction, categories, compute_components: components }
    }
}

/// Emissions of one top-level category (relative units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoryEmissions {
    /// The category.
    pub category: FleetCategory,
    /// Operational emissions at the queried renewables mix.
    pub operational: f64,
    /// Embodied emissions.
    pub embodied: f64,
}

impl CategoryEmissions {
    /// Operational + embodied.
    pub fn total(&self) -> f64 {
        self.operational + self.embodied
    }
}

/// Emissions of one compute-server component class (relative units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoryEmissions2 {
    /// The component class.
    pub class: ComponentClass,
    /// Operational emissions at the queried renewables mix.
    pub operational: f64,
    /// Embodied emissions.
    pub embodied: f64,
}

impl CategoryEmissions2 {
    /// Operational + embodied.
    pub fn total(&self) -> f64 {
        self.operational + self.embodied
    }
}

/// A computed Fig. 1 breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetBreakdown {
    /// The renewables fraction used.
    pub renewable_fraction: f64,
    /// Emissions per top-level category.
    pub categories: Vec<CategoryEmissions>,
    /// Emissions per compute-server component class.
    pub compute_components: Vec<CategoryEmissions2>,
}

impl FleetBreakdown {
    /// Total data-center emissions.
    pub fn total(&self) -> f64 {
        self.categories.iter().map(CategoryEmissions::total).sum()
    }

    /// Total operational emissions.
    pub fn total_operational(&self) -> f64 {
        self.categories.iter().map(|c| c.operational).sum()
    }

    /// Total embodied emissions.
    pub fn total_embodied(&self) -> f64 {
        self.categories.iter().map(|c| c.embodied).sum()
    }

    /// Share of operational emissions in the total.
    pub fn operational_share(&self) -> f64 {
        self.total_operational() / self.total()
    }

    /// Share of one category in total data-center emissions.
    pub fn category_share(&self, category: FleetCategory) -> f64 {
        let cat: f64 = self
            .categories
            .iter()
            .filter(|c| c.category == category)
            .map(CategoryEmissions::total)
            .sum();
        cat / self.total()
    }

    /// Share of one component class within compute-server emissions.
    pub fn compute_component_share(&self, class: ComponentClass) -> f64 {
        let compute: f64 = self.compute_components.iter().map(CategoryEmissions2::total).sum();
        let comp: f64 = self
            .compute_components
            .iter()
            .filter(|c| c.class == class)
            .map(CategoryEmissions2::total)
            .sum();
        comp / compute
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn anchor_operational_share_58pct() {
        let b = FleetModel::azure_calibrated().breakdown(DEFAULT_RENEWABLE_FRACTION);
        assert!((b.operational_share() - 0.58).abs() < 0.01, "{}", b.operational_share());
    }

    #[test]
    fn anchor_compute_share_57pct() {
        let b = FleetModel::azure_calibrated().breakdown(DEFAULT_RENEWABLE_FRACTION);
        let share = b.category_share(FleetCategory::ComputeServers);
        assert!((share - 0.57).abs() < 0.01, "{share}");
    }

    #[test]
    fn anchor_100pct_renewables() {
        let b = FleetModel::azure_calibrated().breakdown(1.0);
        assert!((b.operational_share() - 0.09).abs() < 0.01, "{}", b.operational_share());
        let share = b.category_share(FleetCategory::ComputeServers);
        assert!((share - 0.44).abs() < 0.01, "{share}");
    }

    #[test]
    fn compute_component_shares_near_paper() {
        let b = FleetModel::azure_calibrated().breakdown(DEFAULT_RENEWABLE_FRACTION);
        let dram = b.compute_component_share(ComponentClass::Dram);
        let ssd = b.compute_component_share(ComponentClass::Ssd);
        let cpu = b.compute_component_share(ComponentClass::Cpu);
        // Paper: DRAM 35 %, SSD 28 %, CPU 24 % — we assert the shape:
        // each within 8 points and the three together dominating.
        assert!((dram - 0.35).abs() < 0.08, "dram {dram}");
        assert!((ssd - 0.28).abs() < 0.08, "ssd {ssd}");
        assert!((cpu - 0.24).abs() < 0.08, "cpu {cpu}");
        assert!(dram + ssd + cpu > 0.70);
    }

    #[test]
    fn cpu_has_largest_operational_impact() {
        let b = FleetModel::azure_calibrated().breakdown(DEFAULT_RENEWABLE_FRACTION);
        let cpu_op = b
            .compute_components
            .iter()
            .find(|c| c.class == ComponentClass::Cpu)
            .unwrap()
            .operational;
        for c in &b.compute_components {
            if c.class != ComponentClass::Cpu {
                assert!(cpu_op >= c.operational, "{:?} op exceeds CPU", c.class);
            }
        }
    }

    #[test]
    fn dram_and_ssd_dominate_compute_embodied() {
        let b = FleetModel::azure_calibrated().breakdown(DEFAULT_RENEWABLE_FRACTION);
        let total_emb: f64 = b.compute_components.iter().map(|c| c.embodied).sum();
        let dram_ssd: f64 = b
            .compute_components
            .iter()
            .filter(|c| matches!(c.class, ComponentClass::Dram | ComponentClass::Ssd))
            .map(|c| c.embodied)
            .sum();
        assert!(dram_ssd / total_emb > 0.6);
    }

    #[test]
    fn more_renewables_lowers_emissions_monotonically() {
        let m = FleetModel::azure_calibrated();
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let total = m.breakdown(i as f64 / 10.0).total();
            assert!(total < prev);
            prev = total;
        }
    }

    #[test]
    fn embodied_constant_across_mixes() {
        let m = FleetModel::azure_calibrated();
        let a = m.breakdown(0.0).total_embodied();
        let b = m.breakdown(1.0).total_embodied();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn category_shares_sum_to_one() {
        let b = FleetModel::azure_calibrated().breakdown(0.5);
        let sum: f64 = FleetCategory::all().iter().map(|&c| b.category_share(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
