//! Carbon datasets: the paper's open-source component data (Tables V and
//! VI), the SKU configurations of Tables IV/VIII, and the CPU
//! characteristics of Table I.
//!
//! # Calibration notes
//!
//! The paper's artifact publishes TDP/embodied values for the GreenSKU
//! components (Table V) but not for the Gen3 baseline CPU nor the
//! data-center overhead shares, and it models reused components with the
//! *new* component's power. To reproduce the published Table VIII savings
//! while keeping the §V worked example exact, this module separates:
//!
//! - **verbatim Table V values** (used by [`open_source::greensku_cxl_example`]
//!   and pinned by golden tests), and
//! - **calibrated values** for quantities the artifact keeps internal,
//!   each documented at its constant:
//!   - Gen3 (Genoa) CPU: 320 W TDP (Table I range 300–350 W) and 30 kg
//!     embodied (similar silicon area to Bergamo's 28.3 kg),
//!   - reused DDR4 behind CXL: 0.582 W/GB (old 32 GB RDIMMs are ~1.6× the
//!     W/GB of dense DDR5; also covers CXL serdes overhead),
//!   - reused m.2 SSDs: 6.65 W/TB (≈6.7 W per old 1 TB drive vs 5.6 W/TB
//!     for new E1.S drives),
//!   - data-center overhead shares per compute rack: 204 W
//!     networking/storage power, 8 319 kg embodied (networking/storage +
//!     building), PUE 1.2.
//!
//! With these values the reproduced Table VIII savings are within ~1.6
//! percentage points of every published cell (see
//! `tests/table_viii_bands.rs` and `EXPERIMENTS.md`).

use crate::component::{ComponentClass, ComponentSpec};
use crate::error::CarbonError;
use crate::server::ServerSpec;
use crate::units::{KgCo2e, Watts};
use serde::{Deserialize, Serialize};

/// CPU characteristics row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuCharacteristics {
    /// Marketing name (e.g. "Bergamo").
    pub name: &'static str,
    /// Server generation label ("Gen1".."Gen3"), or "Efficient".
    pub generation: &'static str,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Maximum core frequency in GHz.
    pub max_freq_ghz: f64,
    /// Last-level cache per socket in MiB.
    pub llc_mib: u32,
    /// Thermal design power in watts (midpoint when the paper gives a
    /// range).
    pub tdp_w: f64,
}

/// The four CPUs of Table I: Bergamo and the three baseline generations.
pub fn table_i() -> [CpuCharacteristics; 4] {
    [
        CpuCharacteristics {
            name: "Bergamo",
            generation: "Efficient",
            cores_per_socket: 128,
            max_freq_ghz: 3.0,
            llc_mib: 256,
            tdp_w: 350.0,
        },
        CpuCharacteristics {
            name: "Rome",
            generation: "Gen1",
            cores_per_socket: 64,
            max_freq_ghz: 3.0,
            llc_mib: 256,
            tdp_w: 240.0,
        },
        CpuCharacteristics {
            name: "Milan",
            generation: "Gen2",
            cores_per_socket: 64,
            max_freq_ghz: 3.7,
            llc_mib: 256,
            tdp_w: 280.0,
        },
        CpuCharacteristics {
            name: "Genoa",
            generation: "Gen3",
            cores_per_socket: 80,
            max_freq_ghz: 3.7,
            llc_mib: 384,
            tdp_w: 325.0,
        },
    ]
}

/// Estimated grid carbon intensities (kg CO₂e/kWh) for the three Azure
/// regions annotated in Figs. 11/12, ordered low → high.
pub fn region_carbon_intensities() -> [(&'static str, f64); 3] {
    [("Azure-us-south", 0.04), ("Azure-us-central", 0.10), ("Azure-europe-north", 0.33)]
}

/// Open-source component data (the paper's Table V) and the SKU
/// configurations built from it.
pub mod open_source {
    use super::*;

    /// Derating factor at 40 % SPEC throughput (Table VI).
    pub const DERATE: f64 = 0.44;
    /// CPU voltage-regulator loss factor (Table VI).
    pub const CPU_VR_LOSS: f64 = 1.05;

    /// AMD Bergamo CPU TDP (Table V).
    pub const BERGAMO_TDP_W: f64 = 400.0;
    /// AMD Bergamo CPU embodied emissions (Table V).
    pub const BERGAMO_EMBODIED_KG: f64 = 28.3;
    /// DDR5 DRAM TDP per GB (Table V).
    pub const DDR5_TDP_W_PER_GB: f64 = 0.37;
    /// DDR5 DRAM embodied emissions per GB (Table V).
    pub const DDR5_EMBODIED_KG_PER_GB: f64 = 1.65;
    /// DDR4 DRAM TDP per GB (Table V; the artifact models reused DDR4
    /// with the same W/GB as DDR5).
    pub const DDR4_TDP_W_PER_GB: f64 = 0.37;
    /// New SSD TDP per TB (Table V).
    pub const SSD_TDP_W_PER_TB: f64 = 5.6;
    /// New SSD embodied emissions per TB (Table V).
    pub const SSD_EMBODIED_KG_PER_TB: f64 = 17.3;
    /// CXL controller TDP (Table V).
    pub const CXL_CONTROLLER_TDP_W: f64 = 5.8;
    /// CXL controller embodied emissions (Table V).
    pub const CXL_CONTROLLER_EMBODIED_KG: f64 = 2.5;

    /// Calibrated Gen3 (Genoa) CPU TDP — see module docs.
    pub const GENOA_TDP_W: f64 = 320.0;
    /// Calibrated Gen3 (Genoa) CPU embodied emissions — see module docs.
    pub const GENOA_EMBODIED_KG: f64 = 30.0;
    /// Calibrated reused-DDR4-behind-CXL power — see module docs.
    pub const REUSED_DDR4_TDP_W_PER_GB: f64 = 0.582;
    /// Calibrated reused m.2 SSD power — see module docs.
    pub const REUSED_SSD_TDP_W_PER_TB: f64 = 6.65;

    fn cpu(name: &str, tdp: f64, embodied: f64) -> Result<ComponentSpec, CarbonError> {
        ComponentSpec::new(name, ComponentClass::Cpu, 1.0, Watts::new(tdp), KgCo2e::new(embodied))?
            .with_derate(DERATE)?
            .with_loss_factor(CPU_VR_LOSS)
    }

    fn ddr5(gb: f64, dimms: u32) -> Result<ComponentSpec, CarbonError> {
        Ok(ComponentSpec::new(
            "DDR5 DRAM",
            ComponentClass::Dram,
            gb,
            Watts::new(DDR5_TDP_W_PER_GB),
            KgCo2e::new(DDR5_EMBODIED_KG_PER_GB),
        )?
        .with_derate(DERATE)?
        .with_device_count(dimms))
    }

    fn ddr4_cxl(gb: f64, dimms: u32, tdp_per_gb: f64) -> Result<ComponentSpec, CarbonError> {
        Ok(ComponentSpec::new(
            "Reused DDR4 DRAM (CXL)",
            ComponentClass::CxlDram,
            gb,
            Watts::new(tdp_per_gb),
            KgCo2e::new(DDR5_EMBODIED_KG_PER_GB),
        )?
        .with_derate(DERATE)?
        .with_device_count(dimms)
        .reused())
    }

    fn ssd_new(tb: f64, drives: u32) -> Result<ComponentSpec, CarbonError> {
        Ok(ComponentSpec::new(
            "SSD (new)",
            ComponentClass::Ssd,
            tb,
            Watts::new(SSD_TDP_W_PER_TB),
            KgCo2e::new(SSD_EMBODIED_KG_PER_TB),
        )?
        .with_derate(DERATE)?
        .with_device_count(drives)
        .with_pcie_lanes(drives * 4))
    }

    fn ssd_reused(tb: f64, drives: u32) -> Result<ComponentSpec, CarbonError> {
        Ok(ComponentSpec::new(
            "SSD (reused m.2)",
            ComponentClass::Ssd,
            tb,
            Watts::new(REUSED_SSD_TDP_W_PER_TB),
            KgCo2e::new(SSD_EMBODIED_KG_PER_TB),
        )?
        .with_derate(DERATE)?
        .with_device_count(drives)
        .with_pcie_lanes(drives * 4)
        .reused())
    }

    fn cxl_controller(count: f64) -> Result<ComponentSpec, CarbonError> {
        Ok(ComponentSpec::new(
            "CXL controller",
            ComponentClass::CxlController,
            count,
            Watts::new(CXL_CONTROLLER_TDP_W),
            KgCo2e::new(CXL_CONTROLLER_EMBODIED_KG),
        )?
        .with_derate(DERATE)?
        // §III: 32 CXL/PCIe5 lanes carry ~100 GB/s of CXL bandwidth.
        .with_pcie_lanes(count as u32 * 32))
    }

    /// Assembles a dataset server from its component results.
    ///
    /// # Panics
    ///
    /// Panics if any hard-coded Table IV/V value violates a spec
    /// invariant — unreachable for the shipped tables, which the
    /// dataset tests construct end to end.
    fn build(
        name: &str,
        cores: u32,
        components: Vec<Result<ComponentSpec, CarbonError>>,
    ) -> ServerSpec {
        let components: Vec<ComponentSpec> = components
            .into_iter()
            .collect::<Result<_, _>>()
            .expect("dataset component values are valid by construction");
        ServerSpec::builder(name, cores, 2)
            .components(components)
            .build()
            .expect("dataset server shapes are valid by construction")
    }

    /// The §V worked-example configuration of GreenSKU-CXL, using Table V
    /// values **verbatim** (DDR4 at the DDR5 W/GB, one CXL controller).
    ///
    /// Pinned by golden tests: P_s ≈ 403 W, E_emb,s = 1644 kg,
    /// 31 kg CO₂e per core at rack level.
    pub fn greensku_cxl_example() -> ServerSpec {
        build(
            "GreenSKU-CXL (worked example)",
            128,
            vec![
                cpu("AMD Bergamo", BERGAMO_TDP_W, BERGAMO_EMBODIED_KG),
                ddr5(768.0, 12),
                ddr4_cxl(256.0, 8, DDR4_TDP_W_PER_GB),
                ssd_new(20.0, 5),
                cxl_controller(1.0),
            ],
        )
    }

    /// Estimated Gen1 (Rome-era, deployed ~2018) baseline SKU: 64 cores,
    /// 512 GB DDR4, 4 TB SSD. Not in the paper's open dataset; values
    /// estimated from Table I TDPs and era-typical shapes. Used by the
    /// adoption component when a VM's pre-defined generation is Gen1.
    pub fn baseline_gen1() -> ServerSpec {
        build(
            "Baseline (Gen1)",
            64,
            vec![cpu("AMD Rome", 240.0, 25.0), ddr5(512.0, 16), ssd_new(4.0, 4)],
        )
    }

    /// Estimated Gen2 (Milan-era) baseline SKU: 64 cores, 512 GB DDR4,
    /// 8 TB SSD. See [`baseline_gen1`] for sourcing.
    pub fn baseline_gen2() -> ServerSpec {
        build(
            "Baseline (Gen2)",
            64,
            vec![cpu("AMD Milan", 280.0, 27.0), ddr5(512.0, 16), ssd_new(8.0, 4)],
        )
    }

    /// Gen3 baseline SKU (Table VIII row 1): 80 cores, 12 × 64 GB DDR5,
    /// 6 × 2 TB SSD.
    pub fn baseline_gen3() -> ServerSpec {
        build(
            "Baseline (Gen3)",
            80,
            vec![
                cpu("AMD Genoa", GENOA_TDP_W, GENOA_EMBODIED_KG),
                ddr5(768.0, 12),
                ssd_new(12.0, 6),
            ],
        )
    }

    /// Baseline-Resized (Table VIII row 2): memory:core reduced from 9.6
    /// to the carbon-optimal 8 (10 × 64 GB DDR5).
    pub fn baseline_resized() -> ServerSpec {
        build(
            "Baseline-Resized",
            80,
            vec![
                cpu("AMD Genoa", GENOA_TDP_W, GENOA_EMBODIED_KG),
                ddr5(640.0, 10),
                ssd_new(12.0, 6),
            ],
        )
    }

    /// GreenSKU-Efficient (Table VIII row 3): Bergamo, 12 × 96 GB DDR5,
    /// 5 × 4 TB SSD.
    pub fn greensku_efficient() -> ServerSpec {
        build(
            "GreenSKU-Efficient",
            128,
            vec![
                cpu("AMD Bergamo", BERGAMO_TDP_W, BERGAMO_EMBODIED_KG),
                ddr5(1152.0, 12),
                ssd_new(20.0, 5),
            ],
        )
    }

    /// GreenSKU-CXL (Table VIII row 4): GreenSKU-Efficient with 30 % of
    /// memory replaced by reused 32 GB DDR4 DIMMs behind CXL.
    pub fn greensku_cxl() -> ServerSpec {
        build(
            "GreenSKU-CXL",
            128,
            vec![
                cpu("AMD Bergamo", BERGAMO_TDP_W, BERGAMO_EMBODIED_KG),
                ddr5(768.0, 12),
                ddr4_cxl(256.0, 8, REUSED_DDR4_TDP_W_PER_GB),
                ssd_new(20.0, 5),
                cxl_controller(1.0),
            ],
        )
    }

    /// GreenSKU-Full (Table VIII row 5): GreenSKU-CXL with 60 % of
    /// storage replaced by reused 1 TB m.2 SSDs (2 × 4 TB new +
    /// 12 × 1 TB reused).
    pub fn greensku_full() -> ServerSpec {
        build(
            "GreenSKU-Full",
            128,
            vec![
                cpu("AMD Bergamo", BERGAMO_TDP_W, BERGAMO_EMBODIED_KG),
                ddr5(768.0, 12),
                ddr4_cxl(256.0, 8, REUSED_DDR4_TDP_W_PER_GB),
                ssd_new(8.0, 2),
                ssd_reused(12.0, 12),
                cxl_controller(1.0),
            ],
        )
    }

    /// The prototype-faithful variant of GreenSKU-Full with **two** CXL
    /// controllers (Fig. 5 shows 4 DIMMs per card); the worked example and
    /// Table VIII configurations use one — see the module docs on the
    /// open-data discrepancy.
    pub fn greensku_full_two_cxl_cards() -> ServerSpec {
        build(
            "GreenSKU-Full (2 CXL cards)",
            128,
            vec![
                cpu("AMD Bergamo", BERGAMO_TDP_W, BERGAMO_EMBODIED_KG),
                ddr5(768.0, 12),
                ddr4_cxl(256.0, 8, REUSED_DDR4_TDP_W_PER_GB),
                ssd_new(8.0, 2),
                ssd_reused(12.0, 12),
                cxl_controller(2.0),
            ],
        )
    }

    /// All five Table VIII SKUs in row order: baseline, resized,
    /// efficient, CXL, full.
    pub fn table_viii_skus() -> Vec<ServerSpec> {
        vec![
            baseline_gen3(),
            baseline_resized(),
            greensku_efficient(),
            greensku_cxl(),
            greensku_full(),
        ]
    }

    /// The three GreenSKUs compared in the Fig. 11/12 cluster sweeps.
    pub fn greenskus() -> Vec<ServerSpec> {
        vec![greensku_efficient(), greensku_cxl(), greensku_full()]
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::open_source::*;
    use super::*;
    use crate::model::CarbonModel;
    use crate::params::ModelParams;

    #[test]
    fn worked_example_power_golden() {
        let s = greensku_cxl_example();
        // Paper: P_s = 403 W (403.35 before rounding).
        assert!((s.average_power().get() - 403.35).abs() < 0.1, "{}", s.average_power());
    }

    #[test]
    fn worked_example_embodied_golden() {
        let s = greensku_cxl_example();
        // Paper: E_emb,s = 1644 kg CO2e.
        assert!((s.embodied().get() - 1644.0).abs() < 0.1, "{}", s.embodied());
    }

    #[test]
    fn worked_example_rack_golden() {
        let model = CarbonModel::new(ModelParams::worked_example());
        let a = model.assess_rack(&greensku_cxl_example()).unwrap();
        assert_eq!(a.servers_per_rack(), 16);
        assert_eq!(a.cores_per_rack(), 2048);
        // Paper: E_emb,r = 26 804 kg, E_op,r = 36 547 kg, 31 kg/core.
        let emb_rack = a.emb_per_core().get() * 2048.0;
        assert!((emb_rack - 26_804.0).abs() < 1.0, "emb_rack {emb_rack}");
        let op_rack = a.op_per_core().get() * 2048.0;
        assert!((op_rack - 36_547.0).abs() < 40.0, "op_rack {op_rack}");
        assert!((a.total_per_core().get() - 31.0).abs() < 0.2);
    }

    #[test]
    fn sku_shapes_match_table_viii() {
        let b = baseline_gen3();
        assert_eq!(b.cores(), 80);
        assert_eq!(b.memory_capacity().get(), 768.0);
        assert!((b.memory_per_core() - 9.6).abs() < 1e-9);
        assert_eq!(b.ssd_capacity().get(), 12.0);

        let r = baseline_resized();
        assert!((r.memory_per_core() - 8.0).abs() < 1e-9);

        let e = greensku_efficient();
        assert_eq!(e.cores(), 128);
        assert!((e.memory_per_core() - 9.0).abs() < 1e-9);

        let c = greensku_cxl();
        assert_eq!(c.memory_capacity().get(), 1024.0);
        assert_eq!(c.cxl_memory_capacity().get(), 256.0);
        assert!((c.memory_per_core() - 8.0).abs() < 1e-9);

        let f = greensku_full();
        assert_eq!(f.ssd_capacity().get(), 20.0);
        assert_eq!(f.device_count(ComponentClass::Dram), 12);
        assert_eq!(f.device_count(ComponentClass::CxlDram), 8);
        assert_eq!(f.device_count(ComponentClass::Ssd), 14);
    }

    #[test]
    fn full_has_20_dimms_14_ssds_for_maintenance() {
        // §V maintenance example: "GreenSKU-Full has 20 DIMMs and 14 SSDs".
        let f = greensku_full();
        let dimms = f.device_count(ComponentClass::Dram) + f.device_count(ComponentClass::CxlDram);
        assert_eq!(dimms, 20);
        assert_eq!(f.device_count(ComponentClass::Ssd), 14);
        // Baseline: 12 DIMMs, 6 SSDs.
        let b = baseline_gen3();
        assert_eq!(b.device_count(ComponentClass::Dram), 12);
        assert_eq!(b.device_count(ComponentClass::Ssd), 6);
    }

    #[test]
    fn table_i_has_expected_rows() {
        let rows = table_i();
        assert_eq!(rows[0].name, "Bergamo");
        assert_eq!(rows[0].cores_per_socket, 128);
        assert_eq!(rows[3].generation, "Gen3");
        assert_eq!(rows[3].llc_mib, 384);
    }

    #[test]
    fn regions_sorted_by_intensity() {
        let regions = region_carbon_intensities();
        assert!(regions[0].1 < regions[1].1 && regions[1].1 < regions[2].1);
    }

    #[test]
    fn two_cxl_card_variant_costs_more() {
        let one = greensku_full();
        let two = greensku_full_two_cxl_cards();
        assert!(two.average_power() > one.average_power());
        assert!(two.embodied() > one.embodied());
    }

    #[test]
    fn reused_components_carry_zero_embodied() {
        let f = greensku_full();
        assert!(f.embodied_by_class(ComponentClass::CxlDram).get() == 0.0);
        // New SSDs (8 TB) still carry embodied carbon.
        assert!((f.embodied_by_class(ComponentClass::Ssd).get() - 8.0 * 17.3).abs() < 1e-9);
    }
}
