//! Total-cost-of-ownership model (§VII-A).
//!
//! The paper notes GSF can evaluate cost by "replacing the carbon model
//! with a TCO model" — the component relationships stay, only the
//! per-component valuation changes. This module demonstrates that swap:
//! it reuses [`ServerSpec`]/[`RackFill`] unchanged and prices components
//! in dollars instead of kilograms.
//!
//! The paper's TCO data is sensitive; it shares one insight: "a
//! cost-efficient server SKU is only 5 % less costly compared to our
//! carbon-efficient GreenSKU". The rough public component prices below
//! reproduce that insight (see the tests).

use crate::component::{ComponentClass, ComponentSpec};
use crate::error::CarbonError;
use crate::params::ModelParams;
use crate::rack::RackFill;
use crate::server::ServerSpec;
use serde::{Deserialize, Serialize};

/// Per-unit component prices (USD per the component's natural unit —
/// socket, GB, TB, card).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Price per CPU socket.
    pub cpu_per_socket: f64,
    /// Price per GB of new DRAM.
    pub dram_per_gb: f64,
    /// Price per GB of reused DRAM (refurbishment + requalification).
    pub reused_dram_per_gb: f64,
    /// Price per TB of new SSD.
    pub ssd_per_tb: f64,
    /// Price per TB of reused SSD.
    pub reused_ssd_per_tb: f64,
    /// Price per CXL controller card.
    pub cxl_controller: f64,
    /// Price per NIC / other component unit.
    pub other_per_unit: f64,
    /// Amortized rack infrastructure cost per rack.
    pub rack_misc: f64,
    /// Electricity price, USD per kWh.
    pub energy_per_kwh: f64,
}

impl CostParams {
    /// Rough public street prices (2023-era), documented for the §VII-A
    /// demonstration only — not the paper's internal data.
    pub fn public_estimates() -> Self {
        Self {
            cpu_per_socket: 10_000.0,
            dram_per_gb: 4.0,
            reused_dram_per_gb: 0.8,
            ssd_per_tb: 80.0,
            reused_ssd_per_tb: 15.0,
            cxl_controller: 400.0,
            other_per_unit: 300.0,
            rack_misc: 5_000.0,
            energy_per_kwh: 0.08,
        }
    }

    fn capex_per_unit(&self, component: &ComponentSpec) -> f64 {
        match (component.class(), component.is_reused()) {
            (ComponentClass::Cpu, _) => self.cpu_per_socket,
            (ComponentClass::Dram | ComponentClass::CxlDram, false) => self.dram_per_gb,
            (ComponentClass::Dram | ComponentClass::CxlDram, true) => self.reused_dram_per_gb,
            (ComponentClass::Ssd, false) => self.ssd_per_tb,
            (ComponentClass::Ssd, true) => self.reused_ssd_per_tb,
            (ComponentClass::CxlController, _) => self.cxl_controller,
            (ComponentClass::Nic | ComponentClass::Other, _) => self.other_per_unit,
        }
    }
}

/// A TCO assessment mirroring the carbon model's per-core output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostAssessment {
    /// Capital expenditure per core (server + rack share), USD.
    pub capex_per_core: f64,
    /// Energy expenditure per core over the lifetime, USD.
    pub energy_per_core: f64,
}

impl CostAssessment {
    /// Total cost of ownership per core.
    pub fn total_per_core(&self) -> f64 {
        self.capex_per_core + self.energy_per_core
    }
}

/// The TCO model: [`ModelParams`]' physical structure (rack fill,
/// lifetime, PUE) with dollar valuations.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    params: ModelParams,
    costs: CostParams,
}

impl CostModel {
    /// Creates a TCO model.
    pub fn new(params: ModelParams, costs: CostParams) -> Self {
        Self { params, costs }
    }

    /// Server capital cost (sum over the bill of materials).
    pub fn server_capex(&self, server: &ServerSpec) -> f64 {
        server.components().iter().map(|c| self.costs.capex_per_unit(c) * c.quantity()).sum()
    }

    /// Assesses a SKU per core at rack level, mirroring
    /// [`crate::CarbonModel::assess`].
    ///
    /// # Errors
    ///
    /// Returns an error if the server does not fit the rack.
    pub fn assess(&self, server: &ServerSpec) -> Result<CostAssessment, CarbonError> {
        self.params.validate()?;
        let fill = RackFill::pack(server, &self.params.rack)?;
        let cores = f64::from(fill.cores());
        let capex_rack =
            self.server_capex(server) * f64::from(fill.servers()) + self.costs.rack_misc;
        let it_power = fill.rack_power() + self.params.overheads.network_storage_power_per_rack;
        let energy_kwh =
            it_power.get() * self.params.overheads.pue * self.params.lifetime.hours() / 1000.0;
        Ok(CostAssessment {
            capex_per_core: capex_rack / cores,
            energy_per_core: energy_kwh * self.costs.energy_per_kwh / cores,
        })
    }

    /// Fractional TCO savings of `green` vs `baseline` per core.
    ///
    /// # Errors
    ///
    /// Propagates assessment errors.
    pub fn savings(&self, baseline: &ServerSpec, green: &ServerSpec) -> Result<f64, CarbonError> {
        let b = self.assess(baseline)?.total_per_core();
        let g = self.assess(green)?.total_per_core();
        Ok(1.0 - g / b)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::datasets::open_source;

    fn model() -> CostModel {
        CostModel::new(ModelParams::default_open_source(), CostParams::public_estimates())
    }

    #[test]
    fn greensku_is_also_cheaper_per_core() {
        // Reuse + more cores per socket lowers TCO per core too.
        let s =
            model().savings(&open_source::baseline_gen3(), &open_source::greensku_full()).unwrap();
        assert!(s > 0.0, "TCO savings {s}");
    }

    #[test]
    fn cost_efficient_sku_close_to_carbon_efficient_sku() {
        // §VII-A: the cost-optimal SKU is only ~5 % cheaper than the
        // carbon-optimal GreenSKU. Find the TCO-optimal SKU among the
        // Table VIII candidates and compare with GreenSKU-Full.
        let m = model();
        let skus = open_source::table_viii_skus();
        let cheapest = skus
            .iter()
            .map(|s| m.assess(s).unwrap().total_per_core())
            .fold(f64::INFINITY, f64::min);
        let full = m.assess(&open_source::greensku_full()).unwrap().total_per_core();
        let gap = 1.0 - cheapest / full;
        assert!((0.0..0.10).contains(&gap), "TCO gap {gap} (paper: ~5%)");
    }

    #[test]
    fn capex_dominated_by_cpu_and_dram() {
        let m = model();
        let sku = open_source::baseline_gen3();
        let total = m.server_capex(&sku);
        // CPU 10k + DRAM 3072 + SSD 960 = 14 032.
        assert!((total - 14_032.0).abs() < 1.0, "{total}");
    }

    #[test]
    fn energy_cost_scales_with_lifetime() {
        let short = CostModel::new(
            ModelParams::default_open_source().with_lifetime(crate::units::Years::new(3.0)),
            CostParams::public_estimates(),
        );
        let long = model();
        let sku = open_source::greensku_efficient();
        let e_short = short.assess(&sku).unwrap().energy_per_core;
        let e_long = long.assess(&sku).unwrap().energy_per_core;
        assert!((e_long / e_short - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reused_parts_cut_capex() {
        let m = model();
        let full = m.server_capex(&open_source::greensku_full());
        let cxl = m.server_capex(&open_source::greensku_cxl());
        // Reused SSDs are cheaper than the new ones they replace.
        assert!(full < cxl);
    }
}
