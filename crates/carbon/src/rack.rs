//! Rack-level aggregation: how many servers fit, rack power, rack
//! embodied emissions (Eqs. 2–3 of the paper).

use crate::error::CarbonError;
use crate::params::RackParams;
use crate::server::ServerSpec;
use crate::units::{KgCo2e, Watts};

/// A rack populated homogeneously with one server SKU.
#[derive(Debug, Clone, PartialEq)]
pub struct RackFill {
    servers: u32,
    constraint: RackConstraint,
    server_power: Watts,
    rack_power: Watts,
    rack_embodied: KgCo2e,
    cores: u32,
}

/// Which resource limited the number of servers per rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RackConstraint {
    /// Rack ran out of U space first.
    Space,
    /// Rack ran out of power budget first.
    Power,
}

impl RackFill {
    /// Packs `server` into a rack under `params`:
    /// `N_s = min(⌊(P_cap − P_misc)/P_s⌋, ⌊space/U⌋)`.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::RackOverflow`] if not even one server fits
    /// (by space or power).
    pub fn pack(server: &ServerSpec, params: &RackParams) -> Result<Self, CarbonError> {
        params.validate().map_err(|e| CarbonError::RackOverflow {
            sku: server.name().to_string(),
            reason: e.to_string(),
        })?;
        let server_power = server.average_power();
        let by_space = params.space_u / server.form_factor_u();
        let power_budget = params.power_capacity - params.misc_power;
        let by_power = if server_power.get() > 0.0 {
            (power_budget.get() / server_power.get()).floor() as u32
        } else {
            u32::MAX
        };
        let servers = by_space.min(by_power);
        if servers == 0 {
            return Err(CarbonError::RackOverflow {
                sku: server.name().to_string(),
                reason: format!(
                    "zero servers fit: space allows {by_space}, power allows {by_power}"
                ),
            });
        }
        let constraint =
            if by_space <= by_power { RackConstraint::Space } else { RackConstraint::Power };
        let rack_power = server_power * f64::from(servers) + params.misc_power;
        let rack_embodied = server.embodied() * f64::from(servers) + params.misc_embodied;
        Ok(Self {
            servers,
            constraint,
            server_power,
            rack_power,
            rack_embodied,
            cores: servers * server.cores(),
        })
    }

    /// Servers per rack (`N_s`).
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Which constraint bound the fill.
    pub fn constraint(&self) -> RackConstraint {
        self.constraint
    }

    /// Average power of one server (`P_s`).
    pub fn server_power(&self) -> Watts {
        self.server_power
    }

    /// Rack power (`P_r = N_s·P_s + P_misc`).
    pub fn rack_power(&self) -> Watts {
        self.rack_power
    }

    /// Rack embodied emissions (`E_emb,r = N_s·E_emb,s + misc`).
    pub fn rack_embodied(&self) -> KgCo2e {
        self.rack_embodied
    }

    /// Cores per rack (`N_c,r = N_s · N_c,s`).
    pub fn cores(&self) -> u32 {
        self.cores
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::component::{ComponentClass, ComponentSpec};
    use crate::units::{KgCo2e, Watts};

    fn server(power_w: f64, form_u: u32, cores: u32) -> ServerSpec {
        ServerSpec::builder("s", cores, form_u)
            .component(
                ComponentSpec::new(
                    "all",
                    ComponentClass::Other,
                    1.0,
                    Watts::new(power_w),
                    KgCo2e::new(1000.0),
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    fn params() -> RackParams {
        RackParams::open_source()
    }

    #[test]
    fn space_constrained_fill() {
        // 403 W, 2U server: power allows 35, space allows 16.
        let fill = RackFill::pack(&server(403.0, 2, 128), &params()).unwrap();
        assert_eq!(fill.servers(), 16);
        assert_eq!(fill.constraint(), RackConstraint::Space);
        assert_eq!(fill.cores(), 2048);
    }

    #[test]
    fn power_constrained_fill() {
        // 2000 W server: (15000-500)/2000 = 7.25 -> 7 servers.
        let fill = RackFill::pack(&server(2000.0, 1, 64), &params()).unwrap();
        assert_eq!(fill.servers(), 7);
        assert_eq!(fill.constraint(), RackConstraint::Power);
    }

    #[test]
    fn rack_power_and_embodied() {
        let fill = RackFill::pack(&server(403.0, 2, 128), &params()).unwrap();
        assert!((fill.rack_power().get() - (16.0 * 403.0 + 500.0)).abs() < 1e-9);
        assert!((fill.rack_embodied().get() - (16.0 * 1000.0 + 500.0)).abs() < 1e-9);
    }

    #[test]
    fn oversized_server_rejected() {
        // More power than the whole rack budget.
        assert!(RackFill::pack(&server(20_000.0, 2, 1), &params()).is_err());
        // Bigger than the rack space.
        assert!(RackFill::pack(&server(100.0, 40, 1), &params()).is_err());
    }

    #[test]
    fn one_u_servers_double_density() {
        let two_u = RackFill::pack(&server(100.0, 2, 1), &params()).unwrap();
        let one_u = RackFill::pack(&server(100.0, 1, 1), &params()).unwrap();
        assert_eq!(one_u.servers(), 2 * two_u.servers());
    }
}
