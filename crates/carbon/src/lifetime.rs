//! Component-lifetime normalization (§IV-A).
//!
//! “As components can have different lifetimes, each component's
//! embodied emissions must be normalized.” A component rated for fewer
//! years than the server is replaced mid-life (its embodied emissions
//! are charged more than once); a component rated for more years could
//! serve a second life elsewhere, but the paper's accounting charges a
//! component fully to its first deployment and zeroes the second
//! (reused = zero), so surplus lifetime is *not* discounted here.

use crate::component::ComponentSpec;
use crate::server::ServerSpec;
use crate::units::{KgCo2e, Years};
use serde::{Deserialize, Serialize};

/// Lifetime ratings per component class used by the normalization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentLifetimes {
    /// CPU rated lifetime, years.
    pub cpu: f64,
    /// DRAM rated lifetime, years (Fig. 2 / the accelerated-aging study:
    /// flat failure rates beyond 12 years).
    pub dram: f64,
    /// SSD rated lifetime at typical cloud write rates, years.
    pub ssd: f64,
    /// Everything else (boards, PSU, chassis).
    pub other: f64,
}

impl ComponentLifetimes {
    /// Ratings consistent with the paper's observations: DRAM ≥ 12 y
    /// (no aging signal), SSDs ~ 14 y of erase budget at cloud write
    /// rates (>half left after 7), CPUs and boards comfortably beyond a
    /// 6-year deployment.
    pub fn paper_observed() -> Self {
        Self { cpu: 10.0, dram: 12.0, ssd: 14.0, other: 10.0 }
    }
}

impl Default for ComponentLifetimes {
    fn default() -> Self {
        Self::paper_observed()
    }
}

impl ComponentLifetimes {
    fn rating_for(&self, component: &ComponentSpec) -> f64 {
        use crate::component::ComponentClass::*;
        match component.class() {
            Cpu => self.cpu,
            Dram | CxlDram => self.dram,
            Ssd => self.ssd,
            Nic | CxlController | Other => self.other,
        }
    }

    /// Normalized embodied emissions of one component over a
    /// `server_lifetime` deployment: components rated *shorter* than the
    /// deployment are charged proportionally more (they get replaced);
    /// components rated longer are charged in full (first-life
    /// accounting).
    pub fn normalized_embodied(&self, component: &ComponentSpec, server_lifetime: Years) -> KgCo2e {
        let rating = self.rating_for(component);
        let factor = (server_lifetime.get() / rating).max(1.0);
        component.embodied() * factor
    }

    /// Normalized embodied emissions of a whole server.
    pub fn normalized_server_embodied(
        &self,
        server: &ServerSpec,
        server_lifetime: Years,
    ) -> KgCo2e {
        server.components().iter().map(|c| self.normalized_embodied(c, server_lifetime)).sum()
    }

    /// The extra embodied emissions a lifetime *extension* to
    /// `extended` years would add through mid-life component
    /// replacements, relative to the rated-lifetime charge at the
    /// original deployment length.
    pub fn extension_penalty(
        &self,
        server: &ServerSpec,
        original: Years,
        extended: Years,
    ) -> KgCo2e {
        self.normalized_server_embodied(server, extended)
            - self.normalized_server_embodied(server, original)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::datasets::open_source;

    #[test]
    fn six_year_deployment_charges_components_once() {
        // All ratings exceed 6 years: normalization is the identity for
        // the paper's standard deployment, so the golden numbers hold.
        let lifetimes = ComponentLifetimes::paper_observed();
        let sku = open_source::greensku_cxl_example();
        let normalized = lifetimes.normalized_server_embodied(&sku, Years::new(6.0));
        assert!((normalized.get() - sku.embodied().get()).abs() < 1e-9);
    }

    #[test]
    fn long_deployments_charge_replacements() {
        // At 15 years, DRAM (12 y) and CPUs/boards (10 y) are replaced
        // pro rata; embodied grows.
        let lifetimes = ComponentLifetimes::paper_observed();
        let sku = open_source::baseline_gen3();
        let at6 = lifetimes.normalized_server_embodied(&sku, Years::new(6.0));
        let at15 = lifetimes.normalized_server_embodied(&sku, Years::new(15.0));
        assert!(at15 > at6);
        // CPU factor 1.5, DRAM 1.25, SSD 1.07... — total below 1.5×.
        assert!(at15.get() < at6.get() * 1.5);
    }

    #[test]
    fn extension_penalty_zero_within_ratings() {
        let lifetimes = ComponentLifetimes::paper_observed();
        let sku = open_source::baseline_gen3();
        let penalty = lifetimes.extension_penalty(&sku, Years::new(6.0), Years::new(9.0));
        assert_eq!(penalty, KgCo2e::ZERO);
    }

    #[test]
    fn extension_penalty_positive_beyond_ratings() {
        let lifetimes = ComponentLifetimes::paper_observed();
        let sku = open_source::baseline_gen3();
        let penalty = lifetimes.extension_penalty(&sku, Years::new(6.0), Years::new(13.0));
        assert!(penalty.get() > 0.0);
        // At 13 years the CPU (10 y) and DRAM (12 y) need pro-rata
        // replacement: ~5-15 % extra embodied for the baseline SKU —
        // the §VII-B lifetime lever optimistically ignores this, which
        // is part of why 13-year lifetimes are "a radical redesign".
        let frac = penalty.get() / sku.embodied().get();
        assert!((0.05..0.15).contains(&frac), "penalty fraction {frac}");
    }

    #[test]
    fn reused_components_stay_free() {
        // Reused DDR4 carries zero embodied; normalization multiplies
        // zero.
        let lifetimes = ComponentLifetimes::paper_observed();
        let sku = open_source::greensku_full();
        let normalized = lifetimes.normalized_server_embodied(&sku, Years::new(20.0));
        let cxl_dram_share: KgCo2e = sku
            .components()
            .iter()
            .filter(|c| c.is_reused())
            .map(|c| lifetimes.normalized_embodied(c, Years::new(20.0)))
            .sum();
        assert_eq!(cxl_dram_share, KgCo2e::ZERO);
        assert!(normalized > sku.embodied());
    }
}
