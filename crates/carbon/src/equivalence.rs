//! §VII-B equivalence analyses: what it would take for *other* carbon
//! strategies to match a GreenSKU's data-center-wide savings.
//!
//! Three solvers over the [`crate::breakdown::FleetModel`]:
//!
//! - [`renewables_increase_for_savings`]: additional renewable-energy
//!   percentage points (paper: ≈2.6 pp for GreenSKU-Full's savings),
//! - [`efficiency_gain_for_savings`]: uniform compute-server
//!   energy-efficiency improvement (paper: ≈28 %),
//! - [`lifetime_extension_for_savings`]: compute-server lifetime
//!   extension (paper: 6 → 13 years).
//!
//! Each returns the value at which the fleet's total emissions drop by
//! the target fraction, found by bisection on a monotone objective.

use crate::breakdown::{FleetCategory, FleetModel};
use crate::error::CarbonError;

/// Generic bisection on a monotonically *decreasing* objective: finds `x`
/// in `[lo, hi]` with `f(x) = target` to within `tol`.
///
/// # Errors
///
/// Returns [`CarbonError::SearchFailed`] if the target is not bracketed.
pub fn bisect_decreasing(
    analysis: &'static str,
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    target: f64,
    tol: f64,
) -> Result<f64, CarbonError> {
    let f_lo = f(lo);
    let f_hi = f(hi);
    if target > f_lo || target < f_hi {
        return Err(CarbonError::SearchFailed {
            analysis,
            reason: format!("target {target} not bracketed by f({lo})={f_lo}, f({hi})={f_hi}"),
        });
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if f(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < tol {
            break;
        }
    }
    Ok((lo + hi) / 2.0)
}

/// Additional renewable-energy fraction (in absolute points, e.g. `0.026`
/// = 2.6 pp) required for the fleet to save `target_savings` of its total
/// emissions, starting from `base_renewables`.
///
/// # Errors
///
/// Returns an error if even 100 % renewables cannot reach the target.
pub fn renewables_increase_for_savings(
    fleet: &FleetModel,
    base_renewables: f64,
    target_savings: f64,
) -> Result<f64, CarbonError> {
    let base_total = fleet.breakdown(base_renewables).total();
    let target = base_total * (1.0 - target_savings);
    let f = |frac: f64| fleet.breakdown(frac).total();
    let frac = bisect_decreasing("renewables increase", f, base_renewables, 1.0, target, 1e-6)?;
    Ok(frac - base_renewables)
}

/// Uniform compute-server energy-efficiency improvement (fractional power
/// reduction `g`, so compute power becomes `(1−g)×`) required to save
/// `target_savings` of the fleet's total emissions.
///
/// Cooling/power-distribution draw scales with IT power, so the saved
/// compute power also saves its PUE overhead. The paper's §VII-B analysis
/// optimistically assumes the improvement is free of embodied cost; so
/// does this solver.
///
/// # Errors
///
/// Returns an error if even 100 % efficiency cannot reach the target.
pub fn efficiency_gain_for_savings(
    fleet: &FleetModel,
    renewables: f64,
    target_savings: f64,
) -> Result<f64, CarbonError> {
    let base = fleet.breakdown(renewables);
    let base_total = base.total();
    let compute_op: f64 = base
        .categories
        .iter()
        .filter(|c| c.category == FleetCategory::ComputeServers)
        .map(|c| c.operational)
        .sum();
    // Cooling op scales proportionally with IT op; compute's share of IT
    // op determines how much cooling the improvement saves.
    let it_op: f64 = base
        .categories
        .iter()
        .filter(|c| {
            matches!(
                c.category,
                FleetCategory::ComputeServers
                    | FleetCategory::StorageServers
                    | FleetCategory::NetworkServers
            )
        })
        .map(|c| c.operational)
        .sum();
    let cooling_op: f64 = base
        .categories
        .iter()
        .filter(|c| c.category == FleetCategory::CoolingAndPower)
        .map(|c| c.operational)
        .sum();
    let cooling_per_it = if it_op > 0.0 { cooling_op / it_op } else { 0.0 };
    let target = base_total * (1.0 - target_savings);
    let total_at = |g: f64| base_total - g * compute_op * (1.0 + cooling_per_it);
    bisect_decreasing("efficiency gain", total_at, 0.0, 1.0, target, 1e-9)
}

/// Compute-server lifetime (years) required to save `target_savings` of
/// the fleet's total *emission rate* (emissions per year of service),
/// starting from `base_lifetime_years`.
///
/// Embodied emissions of compute servers amortize over the longer
/// lifetime; all other emissions are unchanged (the paper's simplifying
/// assumption that extension does not increase operational emissions).
///
/// # Errors
///
/// Returns an error if no finite lifetime reaches the target (the search
/// caps at 100 years).
pub fn lifetime_extension_for_savings(
    fleet: &FleetModel,
    renewables: f64,
    base_lifetime_years: f64,
    target_savings: f64,
) -> Result<f64, CarbonError> {
    let base = fleet.breakdown(renewables);
    let compute_emb: f64 = base
        .categories
        .iter()
        .filter(|c| c.category == FleetCategory::ComputeServers)
        .map(|c| c.embodied)
        .sum();
    // Emission *rates* per year: embodied amortizes over lifetime.
    let base_rate =
        (base.total() - compute_emb) / base_lifetime_years + compute_emb / base_lifetime_years;
    let target = base_rate * (1.0 - target_savings);
    let rate_at = |l: f64| (base.total() - compute_emb) / base_lifetime_years + compute_emb / l;
    bisect_decreasing("lifetime extension", rate_at, base_lifetime_years, 100.0, target, 1e-6)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::breakdown::DEFAULT_RENEWABLE_FRACTION;

    fn fleet() -> FleetModel {
        FleetModel::azure_calibrated()
    }

    #[test]
    fn bisect_finds_root() {
        let x = bisect_decreasing("t", |x| 10.0 - x, 0.0, 10.0, 4.0, 1e-9).unwrap();
        assert!((x - 6.0).abs() < 1e-6);
    }

    #[test]
    fn bisect_rejects_unbracketed() {
        assert!(bisect_decreasing("t", |x| 10.0 - x, 0.0, 1.0, -5.0, 1e-9).is_err());
    }

    #[test]
    fn renewables_delta_single_digit_points() {
        // Paper: ≈2.6 pp to match GreenSKU-Full's DC-wide savings (7-8 %).
        let delta =
            renewables_increase_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 0.07).unwrap();
        assert!(delta > 0.01 && delta < 0.10, "delta {delta}");
        // Verify it actually achieves the savings.
        let base = fleet().breakdown(DEFAULT_RENEWABLE_FRACTION).total();
        let after = fleet().breakdown(DEFAULT_RENEWABLE_FRACTION + delta).total();
        assert!((1.0 - after / base - 0.07).abs() < 1e-4);
    }

    #[test]
    fn renewables_cannot_reach_extreme_savings() {
        assert!(renewables_increase_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 0.9).is_err());
    }

    #[test]
    fn efficiency_gain_double_digit_percent() {
        // Paper: ≈28 % more efficient components. Our fleet calibration
        // puts it in the 10-35 % band.
        let g = efficiency_gain_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 0.07).unwrap();
        assert!(g > 0.10 && g < 0.35, "gain {g}");
    }

    #[test]
    fn lifetime_extension_beyond_ten_years() {
        // Paper: 6 → 13 years. Our calibration: 6 → 10-14 years.
        let l = lifetime_extension_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 6.0, 0.07)
            .unwrap();
        assert!(l > 9.0 && l < 16.0, "lifetime {l}");
    }

    #[test]
    fn larger_targets_need_larger_levers() {
        let d1 =
            renewables_increase_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 0.04).unwrap();
        let d2 =
            renewables_increase_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 0.08).unwrap();
        assert!(d2 > d1);
        let g1 = efficiency_gain_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 0.04).unwrap();
        let g2 = efficiency_gain_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 0.08).unwrap();
        assert!(g2 > g1);
        let l1 = lifetime_extension_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 6.0, 0.04)
            .unwrap();
        let l2 = lifetime_extension_for_savings(&fleet(), DEFAULT_RENEWABLE_FRACTION, 6.0, 0.08)
            .unwrap();
        assert!(l2 > l1);
    }
}
