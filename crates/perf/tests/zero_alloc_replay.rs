//! Pins the arena replay core's allocation budget (DESIGN.md §13).
//!
//! After one warming replay, the steady-state event loop must not touch
//! the heap per event: VM storage lives in the retained slot arena,
//! occupancy lists and scratch buffers keep their capacity across
//! `reset()`, and the per-pass evacuation buffers are reused. The only
//! allocations left per replay are O(distinct apps) usage-ledger nodes
//! — independent of the event count. So the pin is: a warmed replay of
//! a 10×-larger trace allocates *exactly* as much as the small one
//! (zero marginal allocations per event), and that shared constant is
//! small in absolute terms.
//!
//! This test must be the only `#[test]` in its binary: the counting
//! allocator is process-global, and a concurrently running test would
//! perturb the counts.

use gsf_perf::alloc_count::CountingAllocator;
use gsf_vmalloc::{AllocationSim, ClusterConfig, PlacementPolicy, PlacementRequest, PreparedTrace};
use gsf_workloads::{ServerGeneration, Trace, VmEvent, VmEventKind, VmSpec};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const APPS: u16 = 8;

/// A deterministic arrival/departure churn trace touching all `APPS`
/// app indices; no RNG so the test needs no dev-dependency on one.
fn churn_trace(n_vms: usize, duration_s: f64) -> Trace {
    let mut vms = Vec::with_capacity(n_vms);
    let mut events = Vec::with_capacity(2 * n_vms);
    for id in 0..n_vms as u64 {
        let cores = [1u32, 2, 4][id as usize % 3];
        vms.push(VmSpec {
            id,
            cores,
            mem_gb: f64::from(cores) * 4.0,
            app_index: (id % u64::from(APPS)) as u16,
            generation: ServerGeneration::Gen3,
            full_node: false,
            max_mem_util: 0.5,
            avg_cpu_util: 0.2,
        });
        let arrive = (id as f64 * 7.0) % (0.6 * duration_s);
        events.push(VmEvent { time_s: arrive, kind: VmEventKind::Arrival, vm_id: id });
        events.push(VmEvent {
            time_s: arrive + 0.3 * duration_s,
            kind: VmEventKind::Departure,
            vm_id: id,
        });
    }
    Trace::new(duration_s, vms, events)
}

#[test]
fn steady_state_replay_allocates_zero_per_event() {
    let transform = |vm: &VmSpec| PlacementRequest::baseline_only(vm);
    let small = churn_trace(150, 10_000.0);
    let large = churn_trace(1_500, 10_000.0);
    let prepared_small = PreparedTrace::new(&small, &transform);
    let prepared_large = PreparedTrace::new(&large, &transform);
    // Ample capacity: zero rejections, so both traces place every VM
    // and touch the identical app set (identical ledger-node counts).
    let config = ClusterConfig::baseline_only(60);
    let mut sim = AllocationSim::new(config, PlacementPolicy::BestFit);

    // Warm: grow the arena, occupancy lists, and scratch buffers to the
    // large trace's high-water marks.
    sim.replay_prepared(&prepared_large);
    sim.reset(config);
    sim.replay_prepared(&prepared_small);
    sim.reset(config);

    let mut measure = |prepared: &PreparedTrace, n_vms: usize| -> u64 {
        let before = ALLOC.allocations();
        let out = sim.replay_prepared(prepared);
        let allocated = ALLOC.allocations() - before;
        assert_eq!(out.rejected, 0, "fixture must not reject");
        assert_eq!(out.placed_baseline, n_vms);
        sim.reset(config);
        allocated
    };

    let small_allocs = measure(&prepared_small, 150);
    let large_allocs = measure(&prepared_large, 1_500);

    assert_eq!(
        small_allocs, large_allocs,
        "heap allocations grew with the event count: a hot-loop \
         allocation crept back into the arena replay core \
         (small trace: {small_allocs}, 10x trace: {large_allocs})"
    );
    // The shared constant is the O(apps) ledger nodes (currently one
    // BTreeMap root holding all eight apps) — nowhere near the
    // thousands a per-event allocation would show.
    assert!(
        small_allocs <= 2 * u64::from(APPS),
        "per-replay allocation constant regressed: {small_allocs}"
    );
}
