//! Distribution-level cross-validation: the DES's full response-time
//! distribution against the analytic M/M/c survival function, via the
//! Kolmogorov–Smirnov test.

use gsf_perf::analytic::MmcQueue;
use gsf_perf::des::{response_samples, DesConfig, ServiceDist};
use gsf_stats::ks::ks_one_sample;
use gsf_stats::rng::SeedFactory;

fn config(cores: u32, qps: f64) -> DesConfig {
    DesConfig {
        cores,
        qps,
        mean_service_ms: 2.0,
        dist: ServiceDist::Exponential,
        requests: 30_000,
        warmup_fraction: 0.2,
    }
}

fn ks_statistic(cores: u32, qps: f64, label: &str) -> (f64, f64) {
    let queue = MmcQueue::new(cores, qps, 2.0).unwrap();
    let mut rng = SeedFactory::new(77).stream(label);
    let samples = response_samples(&config(cores, qps), &mut rng);
    let r = ks_one_sample(&samples, |t| 1.0 - queue.response_survival(t)).unwrap();
    (r.statistic, r.critical_value(0.01))
}

#[test]
fn des_matches_analytic_distribution_moderate_load() {
    // ρ = 0.5 on 8 cores. Simulated samples are weakly autocorrelated
    // (queueing), which inflates the effective KS statistic slightly;
    // accept within 3× the iid critical value — a tight bound that a
    // wrong model misses by an order of magnitude (see the negative
    // test).
    let (d, crit) = ks_statistic(8, 2000.0, "ks-mid");
    assert!(d < 3.0 * crit, "D = {d}, crit = {crit}");
}

#[test]
fn des_matches_analytic_distribution_high_load() {
    // ρ = 0.9 on 4 cores — heavy queueing, the regime SLOs live in.
    // Queueing autocorrelation grows with utilization, so the bound is
    // looser here; a mismatched model still overshoots it (see below).
    let (d, crit) = ks_statistic(4, 1800.0, "ks-high");
    assert!(d < 10.0 * crit, "D = {d}, crit = {crit}");
}

#[test]
fn ks_rejects_a_mismatched_model() {
    // Samples from a 2 ms-service queue tested against a 3 ms-service
    // model: the distribution is clearly different and D blows past the
    // bound by far more than any autocorrelation inflation.
    let queue_wrong = MmcQueue::new(8, 2000.0, 3.0).unwrap();
    let mut rng = SeedFactory::new(77).stream("ks-wrong");
    let samples = response_samples(&config(8, 2000.0), &mut rng);
    let r = ks_one_sample(&samples, |t| 1.0 - queue_wrong.response_survival(t)).unwrap();
    assert!(
        r.statistic > 20.0 * r.critical_value(0.01),
        "D = {} should clearly reject",
        r.statistic
    );
}

#[test]
fn lognormal_service_deviates_from_mmc_as_expected() {
    // With lognormal service the M/M/c model is only an approximation;
    // the KS distance should sit between the exponential fit and the
    // grossly wrong model.
    let queue = MmcQueue::new(8, 2000.0, 2.0).unwrap();
    let mut rng = SeedFactory::new(77).stream("ks-logn");
    let cfg = DesConfig { dist: ServiceDist::LogNormal { sigma: 0.8 }, ..config(8, 2000.0) };
    let samples = response_samples(&cfg, &mut rng);
    let r = ks_one_sample(&samples, |t| 1.0 - queue.response_survival(t)).unwrap();
    let (d_exp, _) = ks_statistic(8, 2000.0, "ks-mid");
    assert!(r.statistic > d_exp, "lognormal should fit worse than exponential");
}
