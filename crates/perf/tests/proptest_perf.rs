//! Property tests for the performance model.

use gsf_perf::analytic::MmcQueue;
use gsf_perf::des::{simulate, DesConfig, ServiceDist};
use gsf_perf::scaling::ScalingFactor;
use gsf_perf::slowdown::slowdown_from_sensitivity;
use gsf_perf::{MemoryPlacement, SkuPerfProfile};
use gsf_stats::rng::SeedFactory;
use gsf_workloads::HardwareSensitivity;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scaling_classification_monotone(rel in 0.5..3.0f64, bump in 0.0..1.0f64) {
        // A larger relative slowdown never yields an easier scaling
        // factor (treat ">1.5" as 2.0).
        let a = ScalingFactor::from_relative_slowdown(rel).value().unwrap_or(2.0);
        let b = ScalingFactor::from_relative_slowdown(rel + bump).value().unwrap_or(2.0);
        prop_assert!(b >= a);
    }

    #[test]
    fn slowdown_monotone_in_each_weight(
        base_freq in 0.0..1.0f64,
        bump in 0.001..0.5f64,
    ) {
        let sku = SkuPerfProfile::greensku_efficient();
        let s0 = HardwareSensitivity {
            freq_weight: base_freq,
            ..HardwareSensitivity::insensitive()
        };
        let s1 = HardwareSensitivity { freq_weight: base_freq + bump, ..s0 };
        let v0 = slowdown_from_sensitivity(&s0, &sku, MemoryPlacement::LocalOnly);
        let v1 = slowdown_from_sensitivity(&s1, &sku, MemoryPlacement::LocalOnly);
        prop_assert!(v1 >= v0);
    }

    #[test]
    fn pond_never_slower_than_naive(
        cxl_w in 0.0..1.5f64,
        frac in 0.0..1.0f64,
    ) {
        let sku = SkuPerfProfile::greensku_cxl();
        let s = HardwareSensitivity {
            cxl_latency_weight: cxl_w,
            cxl_naive_fraction: frac,
            ..HardwareSensitivity::insensitive()
        };
        let pond = slowdown_from_sensitivity(&s, &sku, MemoryPlacement::Pond);
        let tiered = slowdown_from_sensitivity(&s, &sku, MemoryPlacement::HardwareTiered);
        let naive = slowdown_from_sensitivity(&s, &sku, MemoryPlacement::Naive);
        let full = slowdown_from_sensitivity(&s, &sku, MemoryPlacement::FullCxl);
        prop_assert!(pond <= tiered + 1e-12);
        prop_assert!(tiered <= naive + 1e-12);
        prop_assert!(naive <= full + 1e-12);
    }

    #[test]
    fn des_mean_at_least_service_time(
        cores in 1u32..16,
        service_ms in 0.5..10.0f64,
        rho in 0.1..0.9f64,
        seed in 0u64..100,
    ) {
        let qps = rho * f64::from(cores) * 1000.0 / service_ms;
        let config = DesConfig {
            cores,
            qps,
            mean_service_ms: service_ms,
            dist: ServiceDist::Exponential,
            requests: 4_000,
            warmup_fraction: 0.1,
        };
        let mut rng = SeedFactory::new(seed).stream("prop-des");
        let r = simulate(&config, &mut rng);
        // Response includes service: the mean can't be far below E[S].
        prop_assert!(r.mean_ms > service_ms * 0.8, "{} vs {service_ms}", r.mean_ms);
        prop_assert!(r.p95_ms >= r.mean_ms * 0.8);
    }

    #[test]
    fn erlang_c_is_a_probability(
        cores in 1u32..64,
        rho in 0.01..0.99f64,
        service_ms in 0.1..50.0f64,
    ) {
        let qps = rho * f64::from(cores) * 1000.0 / service_ms;
        let q = MmcQueue::new(cores, qps, service_ms).unwrap();
        let pw = q.prob_wait();
        prop_assert!((0.0..=1.0).contains(&pw), "{pw}");
        // Utilization reported consistently.
        prop_assert!((q.utilization() - rho).abs() < 1e-9);
    }

    #[test]
    fn more_servers_reduce_wait_at_fixed_load(
        cores in 1u32..30,
        rho in 0.2..0.9f64,
    ) {
        let service_ms = 2.0;
        let qps = rho * f64::from(cores) * 1000.0 / service_ms;
        let small = MmcQueue::new(cores, qps, service_ms).unwrap();
        let big = MmcQueue::new(cores + 4, qps, service_ms).unwrap();
        prop_assert!(big.mean_wait_ms() <= small.mean_wait_ms() + 1e-12);
    }
}
