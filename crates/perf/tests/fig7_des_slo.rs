//! Fig. 7 ↔ Table III consistency, measured with the discrete-event
//! simulator (not the analytic shortcut): the scaled GreenSKU
//! configurations the scaling factors prescribe really do (or don't)
//! meet the Gen3-derived SLO under simulation.

use gsf_perf::slo::derive_slo;
use gsf_perf::sweep::LoadSweep;
use gsf_perf::{MemoryPlacement, SkuPerfProfile};
use gsf_stats::rng::SeedFactory;
use gsf_workloads::catalog;

fn seeds() -> SeedFactory {
    SeedFactory::new(404)
}

/// p95 at the SLO load for `app` on GreenSKU-Efficient with `cores`.
fn green_p95_at_slo_load(app_name: &str, cores: u32) -> (f64, f64) {
    let app = catalog::by_name(app_name).expect("catalog app");
    let slo = derive_slo(&app, &SkuPerfProfile::gen3()).expect("latency app");
    let sweep = LoadSweep::new(
        app,
        SkuPerfProfile::greensku_efficient(),
        MemoryPlacement::LocalOnly,
        cores,
    )
    .with_requests(30_000)
    .with_trials(3);
    let curve = sweep.run(&seeds(), &[slo.load_qps]);
    let p95 = curve.points[0].p95_ms.unwrap_or(f64::INFINITY);
    (p95, slo.p95_ms)
}

#[test]
fn xapian_meets_slo_with_twelve_cores() {
    // Table III: Xapian needs scaling 1.5 (12 cores) vs Gen3.
    let (p95, slo) = green_p95_at_slo_load("Xapian", 12);
    assert!(p95 <= slo, "12-core p95 {p95} vs SLO {slo}");
    // And fails with the unscaled 8 cores (utilization ≈ 1.19 > 1).
    let (p95_8, slo) = green_p95_at_slo_load("Xapian", 8);
    assert!(p95_8 > slo, "8-core p95 {p95_8} vs SLO {slo}");
}

#[test]
fn moses_meets_slo_with_ten_cores() {
    // Table III: Moses needs scaling 1.25 (10 cores).
    let (p95, slo) = green_p95_at_slo_load("Moses", 10);
    assert!(p95 <= slo, "10-core p95 {p95} vs SLO {slo}");
}

#[test]
fn masstree_fails_even_with_twelve_cores() {
    // Table III: Masstree is ">1.5" vs Gen3 — even 12 cores saturate
    // below the SLO load (12 / 1.56 < 8 effective cores).
    let (p95, slo) = green_p95_at_slo_load("Masstree", 12);
    assert!(p95 > slo, "Masstree should violate the SLO at 12 cores: p95 {p95} vs SLO {slo}");
}

#[test]
fn img_dnn_meets_slo_unscaled() {
    // Table III: Img-DNN scales 1 (8 cores suffice — no slowdown).
    let (p95, slo) = green_p95_at_slo_load("Img-DNN", 8);
    assert!(p95 <= slo * 1.02, "8-core p95 {p95} vs SLO {slo}");
}

#[test]
fn moses_cxl_naive_fails_where_pond_succeeds() {
    // The Fig. 8 story under simulation: at 10 cores and the Gen3 SLO
    // load, Pond placement meets the SLO while naive CXL placement
    // saturates.
    let app = catalog::by_name("Moses").unwrap();
    let slo = derive_slo(&app, &SkuPerfProfile::gen3()).unwrap();
    let p95_of = |placement| {
        let sweep = LoadSweep::new(app.clone(), SkuPerfProfile::greensku_cxl(), placement, 10)
            .with_requests(30_000);
        sweep.run(&seeds(), &[slo.load_qps]).points[0].p95_ms.unwrap_or(f64::INFINITY)
    };
    let pond = p95_of(MemoryPlacement::Pond);
    let naive = p95_of(MemoryPlacement::Naive);
    assert!(pond <= slo.p95_ms, "Pond p95 {pond} vs SLO {}", slo.p95_ms);
    assert!(naive > slo.p95_ms, "naive p95 {naive} vs SLO {}", slo.p95_ms);
}
