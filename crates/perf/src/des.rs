//! Discrete-event simulation of a latency-critical service on one VM.
//!
//! Open-loop Poisson arrivals feed a FIFO queue served by `cores`
//! identical workers; per-request service times are lognormal (or
//! exponential, for cross-validation against the analytic M/M/c model).
//!
//! For a FIFO multi-server queue with identical servers, dispatching each
//! arrival (in arrival order) to the earliest-free worker is equivalent
//! to simulating the queue explicitly, so the core loop is a simple
//! min-heap over worker free times — fast enough to run the full Fig. 7
//! sweep in tests.

use gsf_stats::dist::{Exponential, LogNormal};
use gsf_stats::percentile::Percentiles;
use gsf_stats::rng::SimRng;
use rand::distributions::Distribution;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Service-time distribution family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceDist {
    /// Lognormal with the given sigma (the default; right-skewed tails).
    LogNormal {
        /// Sigma of the underlying normal.
        sigma: f64,
    },
    /// Exponential (memoryless) — matches the analytic M/M/c model.
    Exponential,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesConfig {
    /// Number of worker cores in the VM.
    pub cores: u32,
    /// Offered load in queries per second.
    pub qps: f64,
    /// Mean per-request service time in milliseconds.
    pub mean_service_ms: f64,
    /// Service-time distribution.
    pub dist: ServiceDist,
    /// Number of requests to simulate (including warm-up).
    pub requests: usize,
    /// Fraction of leading requests discarded as warm-up.
    pub warmup_fraction: f64,
}

impl DesConfig {
    /// Offered utilization `λ·E[S]/c`.
    pub fn utilization(&self) -> f64 {
        self.qps * (self.mean_service_ms / 1000.0) / f64::from(self.cores)
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesResult {
    /// Mean response time (queueing + service), milliseconds.
    pub mean_ms: f64,
    /// 95th-percentile response time, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile response time, milliseconds.
    pub p99_ms: f64,
    /// Number of measured (post-warm-up) requests.
    pub measured: usize,
    /// Offered utilization of the run.
    pub utilization: f64,
    /// Completed-work throughput over the measured window, QPS.
    pub throughput_qps: f64,
}

/// Simulates the configured queue and returns the raw post-warm-up
/// response-time samples in milliseconds (for distribution-level
/// validation, e.g. KS tests against the analytic model).
///
/// # Panics
///
/// Same contract as [`simulate`].
pub fn response_samples(config: &DesConfig, rng: &mut SimRng) -> Vec<f64> {
    run(config, rng).0.into_sorted()
}

/// Simulates the configured queue.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero cores, non-positive
/// QPS or service time, zero requests) — these indicate programmer
/// error, not data error, in the sweep harnesses.
pub fn simulate(config: &DesConfig, rng: &mut SimRng) -> DesResult {
    let (mut latencies, measured, span) = run(config, rng);
    DesResult {
        mean_ms: latencies.mean().unwrap_or(0.0),
        p95_ms: latencies.p95().unwrap_or(0.0),
        p99_ms: latencies.p99().unwrap_or(0.0),
        measured,
        utilization: config.utilization(),
        throughput_qps: measured as f64 / span,
    }
}

/// Core event loop shared by [`simulate`] and [`response_samples`].
///
/// # Panics
///
/// Panics on a non-positive core count, arrival rate, service time,
/// or request budget; both public callers build validated configs.
fn run(config: &DesConfig, rng: &mut SimRng) -> (Percentiles, usize, f64) {
    assert!(config.cores > 0, "cores must be positive");
    assert!(config.qps > 0.0, "qps must be positive");
    assert!(config.mean_service_ms > 0.0, "service time must be positive");
    assert!(config.requests > 0, "requests must be positive");

    let inter = Exponential::new(config.qps).expect("validated above");
    let mean_s = config.mean_service_ms / 1000.0;
    enum Sampler {
        Log(LogNormal),
        Exp(Exponential),
    }
    let service = match config.dist {
        ServiceDist::LogNormal { sigma } => {
            Sampler::Log(LogNormal::with_mean(mean_s, sigma).expect("validated above"))
        }
        ServiceDist::Exponential => {
            Sampler::Exp(Exponential::with_mean(mean_s).expect("validated above"))
        }
    };

    // Min-heap of worker free times. Times in seconds as ordered f64 bits
    // (all non-negative finite, so bit ordering matches numeric order).
    let mut free: BinaryHeap<Reverse<u64>> =
        (0..config.cores).map(|_| Reverse(0f64.to_bits())).collect();

    let warmup = ((config.requests as f64) * config.warmup_fraction) as usize;
    let mut latencies = Percentiles::with_capacity(config.requests - warmup);
    let mut t_arrival = 0.0f64;
    let mut first_measured_completion = f64::INFINITY;
    let mut last_completion = 0.0f64;
    let mut measured = 0usize;

    for i in 0..config.requests {
        t_arrival += inter.sample(rng);
        let s = match &service {
            Sampler::Log(d) => d.sample(rng),
            Sampler::Exp(d) => d.sample(rng),
        };
        let Reverse(bits) = free.pop().expect("at least one core");
        let core_free = f64::from_bits(bits);
        let start = core_free.max(t_arrival);
        let done = start + s;
        free.push(Reverse(done.to_bits()));
        if i >= warmup {
            latencies.record((done - t_arrival) * 1000.0);
            measured += 1;
            first_measured_completion = first_measured_completion.min(done);
            last_completion = last_completion.max(done);
        }
    }

    let span = (last_completion - first_measured_completion).max(f64::MIN_POSITIVE);
    (latencies, measured, span)
}

/// Runs `trials` independent simulations and returns their p95 samples
/// (for the 99 % confidence intervals the paper reports).
pub fn p95_trials(config: &DesConfig, rngs: &mut [SimRng]) -> Vec<f64> {
    rngs.iter_mut().map(|rng| simulate(config, rng).p95_ms).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::analytic::MmcQueue;
    use gsf_stats::rng::SeedFactory;

    fn rng(label: &str) -> SimRng {
        SeedFactory::new(42).stream(label)
    }

    fn config(cores: u32, qps: f64, dist: ServiceDist) -> DesConfig {
        DesConfig { cores, qps, mean_service_ms: 2.0, dist, requests: 60_000, warmup_fraction: 0.1 }
    }

    #[test]
    fn low_load_latency_near_service_time() {
        // At 10 % utilization queueing is negligible: mean ≈ E[S].
        let c = config(8, 400.0, ServiceDist::LogNormal { sigma: 0.8 });
        let r = simulate(&c, &mut rng("low"));
        assert!((r.mean_ms - 2.0).abs() < 0.15, "mean {}", r.mean_ms);
        assert!(r.p95_ms > r.mean_ms);
        assert!(r.p99_ms >= r.p95_ms);
    }

    #[test]
    fn latency_monotone_in_load() {
        let mut prev = 0.0;
        for qps in [400.0, 2000.0, 3200.0, 3800.0] {
            let c = config(8, qps, ServiceDist::LogNormal { sigma: 0.8 });
            let r = simulate(&c, &mut rng("mono"));
            assert!(r.p95_ms > prev * 0.95, "p95 should grow with load: {} at {qps}", r.p95_ms);
            prev = r.p95_ms;
        }
    }

    #[test]
    fn matches_analytic_mmc_mean() {
        // Exponential service: compare against Erlang-C mean response.
        let c = config(8, 3000.0, ServiceDist::Exponential);
        let r = simulate(&c, &mut rng("mmc"));
        let q = MmcQueue::new(8, 3000.0, 2.0).unwrap();
        let analytic = q.mean_response_ms();
        assert!(
            (r.mean_ms - analytic).abs() / analytic < 0.08,
            "sim {} vs analytic {analytic}",
            r.mean_ms
        );
    }

    #[test]
    fn matches_analytic_mmc_p95() {
        let c = config(4, 1500.0, ServiceDist::Exponential);
        let r = simulate(&c, &mut rng("mmc95"));
        let q = MmcQueue::new(4, 1500.0, 2.0).unwrap();
        let analytic = q.p95_response_ms();
        assert!(
            (r.p95_ms - analytic).abs() / analytic < 0.10,
            "sim {} vs analytic {analytic}",
            r.p95_ms
        );
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let c = config(8, 3000.0, ServiceDist::LogNormal { sigma: 0.8 });
        let r = simulate(&c, &mut rng("tput"));
        assert!((r.throughput_qps - 3000.0).abs() / 3000.0 < 0.05, "{}", r.throughput_qps);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = config(8, 2000.0, ServiceDist::LogNormal { sigma: 0.8 });
        let a = simulate(&c, &mut rng("det"));
        let b = simulate(&c, &mut rng("det"));
        assert_eq!(a, b);
    }

    #[test]
    fn more_cores_reduce_tail_latency_at_fixed_load() {
        let slow =
            simulate(&config(8, 3500.0, ServiceDist::LogNormal { sigma: 0.8 }), &mut rng("c8"));
        let fast =
            simulate(&config(12, 3500.0, ServiceDist::LogNormal { sigma: 0.8 }), &mut rng("c12"));
        assert!(fast.p95_ms < slow.p95_ms);
    }

    #[test]
    fn trials_produce_independent_samples() {
        let c = config(8, 3000.0, ServiceDist::LogNormal { sigma: 0.8 });
        let seeds = SeedFactory::new(9);
        let mut rngs: Vec<SimRng> = (0..3).map(|i| seeds.stream_indexed("trial", i)).collect();
        let samples = p95_trials(&c, &mut rngs);
        assert_eq!(samples.len(), 3);
        assert!(samples[0] != samples[1] || samples[1] != samples[2]);
    }

    #[test]
    #[should_panic(expected = "qps must be positive")]
    fn rejects_zero_qps() {
        let mut c = config(8, 100.0, ServiceDist::Exponential);
        c.qps = 0.0;
        simulate(&c, &mut rng("bad"));
    }
}
