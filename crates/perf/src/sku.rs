//! Performance-relevant SKU profiles (the hardware side of the slowdown
//! model).

use serde::{Deserialize, Serialize};

/// Local DDR5 load-to-use latency the paper reports (§III).
pub const LOCAL_MEM_LATENCY_NS: f64 = 140.0;
/// CXL-attached DDR4 latency at medium load (§III).
pub const CXL_MEM_LATENCY_NS: f64 = 280.0;

/// How VM memory is placed across DDR5 and CXL-attached DDR4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPlacement {
    /// All memory on local DDR5 (no CXL traffic).
    LocalOnly,
    /// Memory naively interleaved across DDR5 and CXL; the application's
    /// `cxl_naive_fraction` of traffic is served at CXL latency. This is
    /// the Fig. 8 configuration.
    Naive,
    /// Pond-style placement: only untouched memory lands on CXL, so hot
    /// traffic stays local and no slowdown is incurred (the paper's
    /// production policy; 98 % of applications see <5 % slowdown).
    Pond,
    /// The entire VM memory is CXL-backed (the adoption question for the
    /// ~20 % of CXL-tolerant core-hours).
    FullCxl,
    /// Hardware-managed tiering on future CPUs (§III, citing the CXL
    /// tiering line of work): memory is naively spread but the hardware
    /// promotes hot pages, mitigating most of the latency penalty.
    HardwareTiered,
}

impl MemoryPlacement {
    /// Fraction of the naive CXL penalty that hardware tiering fails to
    /// hide (hot-page promotion covers the rest).
    pub const HW_TIERING_RESIDUAL: f64 = 0.3;
}

/// CXL memory tier attached to a SKU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CxlTier {
    /// Access latency of the CXL tier in nanoseconds.
    pub latency_ns: f64,
    /// Additional memory bandwidth the tier contributes, GB/s per socket.
    pub extra_bandwidth_gbps: f64,
}

/// The architectural parameters of a SKU that the slowdown model uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkuPerfProfile {
    /// Profile name (matches the carbon-model SKU names).
    pub name: &'static str,
    /// Maximum core frequency in GHz.
    pub freq_ghz: f64,
    /// Socket-level LLC capacity in MiB.
    pub llc_socket_mib: f64,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Socket memory bandwidth in GB/s (local channels only).
    pub mem_bandwidth_gbps: f64,
    /// Local memory latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Generation-on-generation IPC factor relative to Gen3 (Zen4 = 1.0).
    pub ipc_factor: f64,
    /// CXL memory tier, if the SKU has one.
    pub cxl: Option<CxlTier>,
}

impl SkuPerfProfile {
    /// LLC capacity per core in MiB.
    pub fn llc_per_core_mib(&self) -> f64 {
        self.llc_socket_mib / f64::from(self.cores_per_socket)
    }

    /// Memory bandwidth per core in GB/s, counting the CXL tier's
    /// contribution when present.
    pub fn bandwidth_per_core_gbps(&self) -> f64 {
        let extra = self.cxl.map_or(0.0, |c| c.extra_bandwidth_gbps);
        (self.mem_bandwidth_gbps + extra) / f64::from(self.cores_per_socket)
    }

    /// Gen1 baseline: AMD Rome (Zen2).
    pub fn gen1() -> Self {
        Self {
            name: "Gen1 (Rome)",
            freq_ghz: 3.0,
            llc_socket_mib: 256.0,
            cores_per_socket: 64,
            mem_bandwidth_gbps: 205.0,
            mem_latency_ns: LOCAL_MEM_LATENCY_NS,
            ipc_factor: 0.88,
            cxl: None,
        }
    }

    /// Gen2 baseline: AMD Milan (Zen3).
    pub fn gen2() -> Self {
        Self {
            name: "Gen2 (Milan)",
            freq_ghz: 3.7,
            llc_socket_mib: 256.0,
            cores_per_socket: 64,
            mem_bandwidth_gbps: 205.0,
            mem_latency_ns: LOCAL_MEM_LATENCY_NS,
            ipc_factor: 0.96,
            cxl: None,
        }
    }

    /// Gen3 baseline: AMD Genoa (Zen4) — the reference SKU (slowdown 1.0
    /// by construction).
    pub fn gen3() -> Self {
        Self {
            name: "Gen3 (Genoa)",
            freq_ghz: 3.7,
            llc_socket_mib: 384.0,
            cores_per_socket: 80,
            mem_bandwidth_gbps: 460.0,
            mem_latency_ns: LOCAL_MEM_LATENCY_NS,
            ipc_factor: 1.0,
            cxl: None,
        }
    }

    /// GreenSKU-Efficient: AMD Bergamo (Zen4c), no CXL.
    pub fn greensku_efficient() -> Self {
        Self {
            name: "GreenSKU-Efficient",
            freq_ghz: 3.0,
            llc_socket_mib: 256.0,
            cores_per_socket: 128,
            mem_bandwidth_gbps: 460.0,
            mem_latency_ns: LOCAL_MEM_LATENCY_NS,
            ipc_factor: 1.0,
            cxl: None,
        }
    }

    /// GreenSKU-CXL / GreenSKU-Full: Bergamo with reused DDR4 behind CXL
    /// (32 PCIe5 lanes ≈ 100 GB/s extra bandwidth at 280 ns).
    pub fn greensku_cxl() -> Self {
        Self {
            name: "GreenSKU-CXL",
            cxl: Some(CxlTier { latency_ns: CXL_MEM_LATENCY_NS, extra_bandwidth_gbps: 100.0 }),
            ..Self::greensku_efficient()
        }
    }

    /// The baseline profile for a server generation.
    pub fn for_generation(generation: gsf_workloads::ServerGeneration) -> Self {
        match generation {
            gsf_workloads::ServerGeneration::Gen1 => Self::gen1(),
            gsf_workloads::ServerGeneration::Gen2 => Self::gen2(),
            gsf_workloads::ServerGeneration::Gen3 => Self::gen3(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn per_core_derivations_match_paper() {
        // §III: Genoa offers 5.8 GB/s per core, Bergamo with CXL 4.4.
        assert!((SkuPerfProfile::gen3().bandwidth_per_core_gbps() - 5.75).abs() < 0.1);
        assert!((SkuPerfProfile::greensku_cxl().bandwidth_per_core_gbps() - 4.375).abs() < 0.1);
        // Bergamo has 2 MiB LLC per core vs Genoa's 4.8.
        assert!((SkuPerfProfile::greensku_efficient().llc_per_core_mib() - 2.0).abs() < 1e-9);
        assert!((SkuPerfProfile::gen3().llc_per_core_mib() - 4.8).abs() < 1e-9);
    }

    #[test]
    fn cxl_profile_differs_only_in_memory() {
        let eff = SkuPerfProfile::greensku_efficient();
        let cxl = SkuPerfProfile::greensku_cxl();
        assert_eq!(eff.freq_ghz, cxl.freq_ghz);
        assert_eq!(eff.cores_per_socket, cxl.cores_per_socket);
        assert!(eff.cxl.is_none());
        assert_eq!(cxl.cxl.unwrap().latency_ns, 280.0);
    }

    #[test]
    fn generation_lookup() {
        use gsf_workloads::ServerGeneration::*;
        assert_eq!(SkuPerfProfile::for_generation(Gen1).name, "Gen1 (Rome)");
        assert_eq!(SkuPerfProfile::for_generation(Gen3).ipc_factor, 1.0);
    }

    #[test]
    fn gen_ipc_increases_over_time() {
        assert!(SkuPerfProfile::gen1().ipc_factor < SkuPerfProfile::gen2().ipc_factor);
        assert!(SkuPerfProfile::gen2().ipc_factor < SkuPerfProfile::gen3().ipc_factor);
    }
}
