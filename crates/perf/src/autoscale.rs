//! Run-time autoscaling on GreenSKUs (§VIII, "Scheduling real-time
//! applications").
//!
//! The paper leaves post-deployment runtime systems as future work but
//! names the opportunity: auto-scalers can improve GreenSKUs'
//! performance during load changes. This module implements that
//! evaluation: a reactive core-count controller driven by the analytic
//! M/M/c model, stepped over a diurnal load profile, compared against
//! static peak provisioning on core-hours and SLO attainment.

use crate::analytic::MmcQueue;
use crate::sku::{MemoryPlacement, SkuPerfProfile};
use crate::slowdown::slowdown;
use gsf_workloads::{ApplicationModel, ServiceProfile};
use serde::{Deserialize, Serialize};

/// Autoscaler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Minimum VM cores.
    pub min_cores: u32,
    /// Maximum VM cores.
    pub max_cores: u32,
    /// Target p95 latency (the SLO), milliseconds.
    pub slo_p95_ms: f64,
    /// Headroom: scale so predicted p95 stays below `slo × headroom`.
    pub headroom: f64,
    /// Control interval, minutes.
    pub interval_minutes: f64,
}

impl AutoscaleConfig {
    /// A sensible default: 2–16 cores, 10 % headroom, 5-minute control
    /// loop.
    pub fn new(slo_p95_ms: f64) -> Self {
        Self { min_cores: 2, max_cores: 16, slo_p95_ms, headroom: 0.9, interval_minutes: 5.0 }
    }
}

/// One control-interval record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleStep {
    /// Minutes since start.
    pub minute: f64,
    /// Offered load during the interval, QPS.
    pub qps: f64,
    /// Cores allocated for the interval.
    pub cores: u32,
    /// Predicted p95 at that allocation, ms (`None` if overloaded).
    pub p95_ms: Option<f64>,
}

/// Result of an autoscaling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleOutcome {
    /// Per-interval trajectory.
    pub steps: Vec<AutoscaleStep>,
    /// Total core-hours consumed.
    pub core_hours: f64,
    /// Fraction of intervals meeting the SLO.
    pub slo_attainment: f64,
}

impl AutoscaleOutcome {
    /// Core-hours a static allocation of `cores` would have consumed
    /// over the same horizon (interval-accurate).
    pub fn static_core_hours(&self, cores: u32) -> f64 {
        self.steps.len() as f64 * f64::from(cores) * self.interval_hours()
    }

    fn interval_hours(&self) -> f64 {
        if self.steps.len() >= 2 {
            (self.steps[1].minute - self.steps[0].minute) / 60.0
        } else {
            0.0
        }
    }
}

/// The reactive autoscaler: before each interval, picks the smallest
/// core count whose predicted p95 at the upcoming load stays under the
/// SLO with headroom.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    app: ApplicationModel,
    sku: SkuPerfProfile,
    placement: MemoryPlacement,
    config: AutoscaleConfig,
}

impl Autoscaler {
    /// Creates an autoscaler for `app` on `sku`.
    ///
    /// # Panics
    ///
    /// Panics for throughput-only applications or inverted core bounds.
    pub fn new(
        app: ApplicationModel,
        sku: SkuPerfProfile,
        placement: MemoryPlacement,
        config: AutoscaleConfig,
    ) -> Self {
        assert!(!app.is_throughput_only(), "autoscaling targets latency-critical apps");
        assert!(config.min_cores >= 1 && config.min_cores <= config.max_cores);
        Self { app, sku, placement, config }
    }

    /// Mean service time of the app on this SKU, ms.
    ///
    /// # Panics
    ///
    /// Unreachable in practice: [`Self::new`] rejects throughput-only
    /// applications, the only case the service-profile lookup cannot
    /// handle.
    pub fn service_ms(&self) -> f64 {
        let ServiceProfile::LatencyCritical { base_service_ms, .. } = self.app.service() else {
            unreachable!("checked in constructor");
        };
        base_service_ms * slowdown(&self.app, &self.sku, self.placement)
    }

    /// Smallest core count meeting the SLO (with headroom) at `qps`, or
    /// `max_cores` if none does.
    pub fn cores_for(&self, qps: f64) -> u32 {
        let service = self.service_ms();
        for cores in self.config.min_cores..=self.config.max_cores {
            if let Ok(q) = MmcQueue::new(cores, qps, service) {
                if q.p95_response_ms() <= self.config.slo_p95_ms * self.config.headroom {
                    return cores;
                }
            }
        }
        self.config.max_cores
    }

    /// Runs the controller over a load profile given as per-interval QPS
    /// values.
    pub fn run(&self, load_qps: &[f64]) -> AutoscaleOutcome {
        let service = self.service_ms();
        let mut steps = Vec::with_capacity(load_qps.len());
        let mut met = 0usize;
        let mut core_hours = 0.0;
        for (i, &qps) in load_qps.iter().enumerate() {
            let cores = self.cores_for(qps);
            let p95 = MmcQueue::new(cores, qps, service).ok().map(|q| q.p95_response_ms());
            if p95.is_some_and(|v| v <= self.config.slo_p95_ms) {
                met += 1;
            }
            core_hours += f64::from(cores) * self.config.interval_minutes / 60.0;
            steps.push(AutoscaleStep {
                minute: i as f64 * self.config.interval_minutes,
                qps,
                cores,
                p95_ms: p95,
            });
        }
        AutoscaleOutcome {
            slo_attainment: if steps.is_empty() { 1.0 } else { met as f64 / steps.len() as f64 },
            steps,
            core_hours,
        }
    }
}

/// A diurnal QPS profile: `base·(1 + amplitude·sin(2πt/24h))`, sampled
/// every `interval_minutes` over `hours`.
pub fn diurnal_load(base_qps: f64, amplitude: f64, hours: f64, interval_minutes: f64) -> Vec<f64> {
    let steps = (hours * 60.0 / interval_minutes).ceil() as usize;
    (0..steps)
        .map(|i| {
            let t_h = i as f64 * interval_minutes / 60.0;
            base_qps * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t_h / 24.0).sin())
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_workloads::catalog;

    fn scaler() -> Autoscaler {
        let app = catalog::by_name("Xapian").unwrap();
        // SLO: p95 of 12 ms (a loose Gen3-like target for the 2 ms app).
        Autoscaler::new(
            app,
            SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            AutoscaleConfig::new(12.0),
        )
    }

    #[test]
    fn cores_monotone_in_load() {
        let s = scaler();
        let mut prev = 0;
        for qps in [200.0, 800.0, 2000.0, 3500.0, 5000.0] {
            let cores = s.cores_for(qps);
            assert!(cores >= prev, "cores {cores} at {qps}");
            prev = cores;
        }
    }

    #[test]
    fn autoscaler_saves_core_hours_vs_static_peak() {
        let s = scaler();
        let load = diurnal_load(2500.0, 0.6, 48.0, 5.0);
        let outcome = s.run(&load);
        // Static provisioning must cover the peak load.
        let peak = load.iter().cloned().fold(0.0, f64::max);
        let static_cores = s.cores_for(peak);
        let static_hours = outcome.static_core_hours(static_cores);
        assert!(
            outcome.core_hours < 0.85 * static_hours,
            "autoscaled {} vs static {static_hours}",
            outcome.core_hours
        );
        // And still meet the SLO essentially always.
        assert!(outcome.slo_attainment > 0.98, "{}", outcome.slo_attainment);
    }

    #[test]
    fn saturating_load_pins_max_cores() {
        let s = scaler();
        // Far beyond 16 cores' capacity (~7300 QPS on Bergamo).
        let outcome = s.run(&[50_000.0]);
        assert_eq!(outcome.steps[0].cores, 16);
        assert!(outcome.steps[0].p95_ms.is_none());
        assert_eq!(outcome.slo_attainment, 0.0);
    }

    #[test]
    fn diurnal_profile_shape() {
        let load = diurnal_load(1000.0, 0.5, 24.0, 60.0);
        assert_eq!(load.len(), 24);
        let peak = load.iter().cloned().fold(0.0, f64::max);
        let trough = load.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((peak - 1500.0).abs() < 20.0);
        assert!((trough - 500.0).abs() < 20.0);
    }

    #[test]
    fn greensku_autoscaled_competitive_with_static_gen3() {
        // The §VIII opportunity: a GreenSKU with autoscaling can serve a
        // diurnal workload with fewer core-hours than a statically
        // peak-provisioned Gen3 VM, despite slower cores.
        let app = catalog::by_name("Xapian").unwrap();
        let load = diurnal_load(2200.0, 0.6, 24.0, 5.0);
        let peak = load.iter().cloned().fold(0.0, f64::max);

        let green = Autoscaler::new(
            app.clone(),
            SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            AutoscaleConfig::new(12.0),
        );
        let gen3_static = Autoscaler::new(
            app,
            SkuPerfProfile::gen3(),
            MemoryPlacement::LocalOnly,
            AutoscaleConfig::new(12.0),
        );
        let green_outcome = green.run(&load);
        let gen3_peak_cores = gen3_static.cores_for(peak);
        let gen3_static_hours = green_outcome.static_core_hours(gen3_peak_cores);
        assert!(
            green_outcome.core_hours < gen3_static_hours,
            "green autoscaled {} vs gen3 static {gen3_static_hours}",
            green_outcome.core_hours
        );
        assert!(green_outcome.slo_attainment > 0.98);
    }

    #[test]
    #[should_panic(expected = "latency-critical")]
    fn rejects_build_apps() {
        Autoscaler::new(
            catalog::by_name("Build-PHP").unwrap(),
            SkuPerfProfile::gen3(),
            MemoryPlacement::LocalOnly,
            AutoscaleConfig::new(10.0),
        );
    }
}
