//! GSF performance component: per-SKU application performance.
//!
//! The paper measures tail latency of 20 applications on physical
//! servers (Gen1–Gen3 baselines and the GreenSKU prototypes). We replace
//! the hardware with a two-layer model (DESIGN.md substitution 1):
//!
//! 1. [`slowdown`](mod@slowdown) — an architectural slowdown model mapping a SKU's
//!    parameters (frequency, socket/per-core LLC, memory bandwidth,
//!    DDR5-vs-CXL latency) and an application's
//!    [`gsf_workloads::HardwareSensitivity`] to a per-core service-time
//!    multiplier relative to Gen3;
//! 2. [`des`] — an open-loop discrete-event queueing simulator producing
//!    p95/p99 tail-latency-vs-load curves (Figs. 7–8), cross-validated
//!    against an analytic M/M/c model ([`analytic`]).
//!
//! On top sit the paper's derived quantities: saturation throughput and
//! SLOs ([`slo`]), per-application scaling factors (Table III,
//! [`scaling`]), DevOps build slowdowns (Table II, [`throughput`]), and
//! the low-load latency comparison ([`lowload`]).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod alloc_count;
pub mod analytic;
pub mod autoscale;
pub mod des;
pub mod lowload;
pub mod scaling;
pub mod sku;
pub mod slo;
pub mod slowdown;
pub mod sweep;
pub mod throughput;

pub use scaling::{scaling_factor, scaling_table, ScalingFactor};
pub use sku::{MemoryPlacement, SkuPerfProfile};
pub use slowdown::slowdown;
pub use sweep::{LatencyCurve, LoadSweep};
