//! Counting global allocator for allocation-budget tests and benches.
//!
//! The arena-backed replay core (DESIGN.md §13) promises a steady-state
//! event loop that touches the heap zero times per event once its
//! buffers are warm. That promise is cheap to break silently — one
//! stray `collect()` in a hot path and every event allocates again —
//! so it is pinned by counting: install [`CountingAllocator`] as the
//! `#[global_allocator]` in a dedicated integration test, warm the
//! simulator, and assert the allocation count does not grow with the
//! event count.
//!
//! ```ignore
//! use gsf_perf::alloc_count::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let before = ALLOC.allocations();
//! // ... hot loop ...
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! The counter is a relaxed atomic: the harness measures totals between
//! two points on one thread, so no ordering stronger than the counter's
//! own consistency is needed, and the measurement overhead stays one
//! fetch-add per heap call. Reallocations count as one event (they may
//! move memory but represent a single heap round-trip); deallocations
//! are not counted — a hot loop that frees without allocating cannot
//! grow its footprint, and the budget being pinned is allocation
//! pressure, not traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts every allocation.
///
/// Install one as the `#[global_allocator]` of a test or bench binary
/// and read [`Self::allocations`] around the region under measurement.
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
}

impl CountingAllocator {
    /// Creates an allocator with a zeroed counter (`const`, so it can
    /// initialize a `static`).
    #[must_use]
    pub const fn new() -> Self {
        Self { allocations: AtomicU64::new(0) }
    }

    /// Total allocations (including zeroed and reallocations) since
    /// construction.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every contract-bearing operation to `System`
// unchanged; the only addition is a relaxed counter bump, which cannot
// affect the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed globally here (that requires a
    // dedicated binary), so exercise it directly.
    #[test]
    fn counts_alloc_and_realloc_but_not_dealloc() {
        let a = CountingAllocator::new();
        let layout = Layout::from_size_align(64, 8).expect("valid layout");
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(a.allocations(), 1);
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            assert_eq!(a.allocations(), 2);
            let grown = Layout::from_size_align(128, 8).expect("valid layout");
            a.dealloc(p2, grown);
            assert_eq!(a.allocations(), 2, "dealloc must not count");
            let pz = a.alloc_zeroed(layout);
            assert!(!pz.is_null());
            assert_eq!(a.allocations(), 3);
            a.dealloc(pz, layout);
        }
    }
}
