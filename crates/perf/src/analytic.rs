//! Analytic M/M/c queueing model (Erlang-C), used two ways:
//!
//! - as a fast, deterministic stand-in for the discrete-event simulator
//!   inside large sweeps (scaling-factor search, low-load analysis), and
//! - as ground truth that cross-validates the simulator in tests.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing an [`MmcQueue`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    /// Parameters were non-positive or non-finite.
    InvalidParams(String),
    /// The queue is overloaded (`λ ≥ c·μ`); steady state does not exist.
    Overloaded {
        /// Offered utilization λ/(cμ).
        utilization: f64,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::InvalidParams(msg) => write!(f, "invalid queue parameters: {msg}"),
            QueueError::Overloaded { utilization } => {
                write!(f, "queue overloaded at utilization {utilization:.3}")
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// A stable M/M/c queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmcQueue {
    servers: u32,
    lambda_per_s: f64,
    mu_per_s: f64,
}

impl MmcQueue {
    /// Creates an M/M/c queue with `servers` workers, `qps` arrivals per
    /// second, and `mean_service_ms` mean service time.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::InvalidParams`] for non-positive inputs and
    /// [`QueueError::Overloaded`] when utilization ≥ 1.
    pub fn new(servers: u32, qps: f64, mean_service_ms: f64) -> Result<Self, QueueError> {
        if servers == 0 {
            return Err(QueueError::InvalidParams("servers must be positive".into()));
        }
        if !(qps.is_finite() && qps > 0.0) {
            return Err(QueueError::InvalidParams(format!("qps must be positive, got {qps}")));
        }
        if !(mean_service_ms.is_finite() && mean_service_ms > 0.0) {
            return Err(QueueError::InvalidParams(format!(
                "service time must be positive, got {mean_service_ms}"
            )));
        }
        let mu = 1000.0 / mean_service_ms;
        let rho = qps / (mu * f64::from(servers));
        if rho >= 1.0 {
            return Err(QueueError::Overloaded { utilization: rho });
        }
        Ok(Self { servers, lambda_per_s: qps, mu_per_s: mu })
    }

    /// Per-server utilization `λ/(cμ)`.
    pub fn utilization(&self) -> f64 {
        self.lambda_per_s / (self.mu_per_s * f64::from(self.servers))
    }

    /// Erlang-C probability that an arriving request must wait.
    pub fn prob_wait(&self) -> f64 {
        let c = f64::from(self.servers);
        let a = self.lambda_per_s / self.mu_per_s; // offered load in Erlangs
        let rho = a / c;
        // Compute the Erlang-C formula with a numerically stable running
        // term: sum_{k=0}^{c-1} a^k/k! and a^c/c!.
        let mut term = 1.0; // a^0/0!
        let mut sum = 1.0;
        for k in 1..self.servers {
            term *= a / f64::from(k);
            sum += term;
        }
        let term_c = term * a / c; // a^c/c!
        let numerator = term_c / (1.0 - rho);
        numerator / (sum + numerator)
    }

    /// Mean queueing delay (excluding service), milliseconds.
    pub fn mean_wait_ms(&self) -> f64 {
        let c = f64::from(self.servers);
        let theta = c * self.mu_per_s - self.lambda_per_s; // drain rate
        self.prob_wait() / theta * 1000.0
    }

    /// Mean response time (wait + service), milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        self.mean_wait_ms() + 1000.0 / self.mu_per_s
    }

    /// Survival function of response time, `P(R > t)`, with `t` in
    /// milliseconds.
    ///
    /// Response time is the sum of an exponential service time (rate μ)
    /// and a queueing delay that is 0 with probability `1 − P_wait` and
    /// exponential with rate `θ = cμ − λ` otherwise.
    pub fn response_survival(&self, t_ms: f64) -> f64 {
        if t_ms <= 0.0 {
            return 1.0;
        }
        let t = t_ms / 1000.0;
        let mu = self.mu_per_s;
        let theta = f64::from(self.servers) * mu - self.lambda_per_s;
        let pw = self.prob_wait();
        let no_wait = (1.0 - pw) * (-mu * t).exp();
        let waited = if (mu - theta).abs() < 1e-9 * mu {
            // θ == μ: the convolution degenerates to a Gamma(2, μ) tail.
            pw * ((-mu * t).exp() * (1.0 + mu * t))
        } else {
            // P(S + W > t) with S~Exp(μ), W~Exp(θ):
            // = [θ·e^{−μt} − μ·e^{−θt}] / (θ − μ).
            pw * (theta * (-mu * t).exp() - mu * (-theta * t).exp()) / (theta - mu)
        };
        (no_wait + waited).clamp(0.0, 1.0)
    }

    /// The `q`-quantile of response time in milliseconds, found by
    /// bisection on the survival function.
    pub fn response_quantile_ms(&self, q: f64) -> f64 {
        let target = 1.0 - q.clamp(0.0, 1.0);
        let mut lo = 0.0;
        let mut hi = 1000.0 / self.mu_per_s;
        while self.response_survival(hi) > target {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = (lo + hi) / 2.0;
            if self.response_survival(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }

    /// Convenience: 95th-percentile response time, milliseconds.
    pub fn p95_response_ms(&self) -> f64 {
        self.response_quantile_ms(0.95)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn single_server_reduces_to_mm1() {
        // M/M/1: P(wait) = rho; W = rho/(mu - lambda).
        let q = MmcQueue::new(1, 500.0, 1.0).unwrap(); // rho = 0.5
        assert!((q.prob_wait() - 0.5).abs() < 1e-9);
        // Mean response = 1/(mu - lambda) = 1/500 s = 2 ms.
        assert!((q.mean_response_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic: c=2, a=1 (rho=0.5): C = 1/3.
        let q = MmcQueue::new(2, 1000.0, 1.0).unwrap();
        assert!((q.prob_wait() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_overload_and_bad_params() {
        assert!(matches!(MmcQueue::new(2, 2000.0, 1.0), Err(QueueError::Overloaded { .. })));
        assert!(MmcQueue::new(0, 100.0, 1.0).is_err());
        assert!(MmcQueue::new(2, -1.0, 1.0).is_err());
        assert!(MmcQueue::new(2, 100.0, 0.0).is_err());
    }

    #[test]
    fn survival_is_monotone_decreasing() {
        let q = MmcQueue::new(8, 3000.0, 2.0).unwrap();
        let mut prev = 1.0;
        for i in 0..50 {
            let s = q.response_survival(i as f64 * 0.5);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn quantiles_bracket_mean() {
        let q = MmcQueue::new(8, 3000.0, 2.0).unwrap();
        let p50 = q.response_quantile_ms(0.5);
        let p95 = q.p95_response_ms();
        let p99 = q.response_quantile_ms(0.99);
        assert!(p50 < p95 && p95 < p99);
        // For right-skewed response, mean > median.
        assert!(q.mean_response_ms() > p50);
    }

    #[test]
    fn quantile_consistent_with_survival() {
        let q = MmcQueue::new(4, 1500.0, 2.0).unwrap();
        let p95 = q.p95_response_ms();
        assert!((q.response_survival(p95) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn latency_explodes_near_saturation() {
        let low = MmcQueue::new(8, 2000.0, 2.0).unwrap().p95_response_ms();
        let high = MmcQueue::new(8, 3960.0, 2.0).unwrap().p95_response_ms();
        assert!(high > 5.0 * low, "low {low} high {high}");
    }
}
