//! Scaling factors (Table III): how many GreenSKU cores are needed per
//! baseline-SKU core for an application to keep its performance goals.
//!
//! Following §V, a VM's cores are scaled from 8 to 10 to 12 on the
//! GreenSKU and compared against an 8-core VM on the baseline; the
//! reported factor is the minimum scaling whose peak saturation
//! throughput comes within 2 % of the baseline's (the paper picks the
//! "minimum number of cores achieving a peak saturation throughput
//! closest to" the baseline). Configurations that cannot match even with
//! 12 cores are reported as ">1.5" and rejected by the adoption model.

use crate::sku::{MemoryPlacement, SkuPerfProfile};
use crate::slowdown::relative_slowdown;
use gsf_workloads::{ApplicationModel, ServerGeneration};
use serde::{Deserialize, Serialize};

/// Throughput-match tolerance: a configuration counts as matching the
/// baseline if its peak is at least this fraction of the baseline's.
pub const CAPACITY_TOLERANCE: f64 = 0.98;

/// A Table III scaling factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingFactor {
    /// 8 GreenSKU cores match 8 baseline cores (factor 1).
    One,
    /// 10 cores needed (factor 1.25).
    OnePointTwoFive,
    /// 12 cores needed (factor 1.5).
    OnePointFive,
    /// Even 12 cores cannot match the baseline (the paper's ">1.5").
    MoreThanOnePointFive,
}

impl ScalingFactor {
    /// The numeric factor; `None` for ">1.5".
    pub fn value(&self) -> Option<f64> {
        match self {
            ScalingFactor::One => Some(1.0),
            ScalingFactor::OnePointTwoFive => Some(1.25),
            ScalingFactor::OnePointFive => Some(1.5),
            ScalingFactor::MoreThanOnePointFive => None,
        }
    }

    /// The VM core count the factor corresponds to for an 8-core VM.
    pub fn cores_for_8(&self) -> Option<u32> {
        self.value().map(|f| (8.0 * f).round() as u32)
    }

    /// Formats the factor as the paper prints it.
    pub fn label(&self) -> &'static str {
        match self {
            ScalingFactor::One => "1",
            ScalingFactor::OnePointTwoFive => "1.25",
            ScalingFactor::OnePointFive => "1.5",
            ScalingFactor::MoreThanOnePointFive => ">1.5",
        }
    }

    /// Classifies a relative per-core slowdown into a scaling factor
    /// under [`CAPACITY_TOLERANCE`].
    pub fn from_relative_slowdown(rel: f64) -> Self {
        // k cores give capacity (k/8)/rel of the baseline; require
        // capacity >= CAPACITY_TOLERANCE.
        for (k, factor) in [
            (8.0, ScalingFactor::One),
            (10.0, ScalingFactor::OnePointTwoFive),
            (12.0, ScalingFactor::OnePointFive),
        ] {
            if (k / 8.0) / rel >= CAPACITY_TOLERANCE {
                return factor;
            }
        }
        ScalingFactor::MoreThanOnePointFive
    }
}

impl std::fmt::Display for ScalingFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Computes the scaling factor of `app` on `green` (with `placement`)
/// relative to an 8-core VM on `baseline`.
pub fn scaling_factor(
    app: &ApplicationModel,
    green: &SkuPerfProfile,
    placement: MemoryPlacement,
    baseline: &SkuPerfProfile,
) -> ScalingFactor {
    let rel = relative_slowdown(app, green, placement, baseline);
    ScalingFactor::from_relative_slowdown(rel)
}

/// One row of the reproduced Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Application name.
    pub app: String,
    /// Scaling factors vs Gen1, Gen2, Gen3 in order.
    pub factors: [ScalingFactor; 3],
}

/// Computes the full Table III matrix for `green` against all three
/// baseline generations.
pub fn scaling_table(
    apps: &[ApplicationModel],
    green: &SkuPerfProfile,
    placement: MemoryPlacement,
) -> Vec<ScalingRow> {
    apps.iter()
        .map(|app| ScalingRow {
            app: app.name().to_string(),
            factors: [
                scaling_factor(app, green, placement, &SkuPerfProfile::gen1()),
                scaling_factor(app, green, placement, &SkuPerfProfile::gen2()),
                scaling_factor(app, green, placement, &SkuPerfProfile::gen3()),
            ],
        })
        .collect()
}

/// Scaling factor keyed by the trace's pre-defined generation, used by
/// the VM-allocation pipeline.
pub fn scaling_for_generation(
    app: &ApplicationModel,
    green: &SkuPerfProfile,
    placement: MemoryPlacement,
    generation: ServerGeneration,
) -> ScalingFactor {
    scaling_factor(app, green, placement, &SkuPerfProfile::for_generation(generation))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_workloads::catalog;

    fn gen3_factor(name: &str) -> ScalingFactor {
        scaling_factor(
            &catalog::by_name(name).unwrap(),
            &SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            &SkuPerfProfile::gen3(),
        )
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(ScalingFactor::from_relative_slowdown(1.0), ScalingFactor::One);
        assert_eq!(ScalingFactor::from_relative_slowdown(1.02), ScalingFactor::One);
        assert_eq!(ScalingFactor::from_relative_slowdown(1.05), ScalingFactor::OnePointTwoFive);
        assert_eq!(ScalingFactor::from_relative_slowdown(1.27), ScalingFactor::OnePointTwoFive);
        assert_eq!(ScalingFactor::from_relative_slowdown(1.30), ScalingFactor::OnePointFive);
        assert_eq!(
            ScalingFactor::from_relative_slowdown(1.60),
            ScalingFactor::MoreThanOnePointFive
        );
    }

    #[test]
    fn gen3_column_matches_published_table_iii() {
        // The Gen3 column is the one that feeds adoption decisions at
        // the current generation; assert every published cell.
        use ScalingFactor::*;
        let expected = [
            ("Redis", One),
            ("Masstree", MoreThanOnePointFive),
            ("Silo", MoreThanOnePointFive),
            ("Shore", One),
            ("Xapian", OnePointFive),
            ("WebF-Dynamic", OnePointTwoFive),
            ("WebF-Hot", OnePointTwoFive),
            ("WebF-Cold", One),
            ("Moses", OnePointTwoFive),
            ("Sphinx", OnePointTwoFive),
            ("Img-DNN", One),
            ("Nginx", OnePointTwoFive),
            ("Caddy", One),
            ("Envoy", One),
            ("HAProxy", OnePointTwoFive),
            ("Traefik", OnePointTwoFive),
            ("Build-Python", OnePointTwoFive),
            ("Build-Wasm", OnePointTwoFive),
            ("Build-PHP", OnePointTwoFive),
        ];
        for (name, want) in expected {
            let got = gen3_factor(name);
            // WebF-Hot publishes 1.5; our calibration puts it exactly on
            // the 1.25/1.5 boundary — allow one step there only.
            if name == "WebF-Hot" {
                assert!(got == OnePointTwoFive || got == OnePointFive, "WebF-Hot: {got}");
            } else {
                assert_eq!(got, want, "{name}");
            }
        }
    }

    #[test]
    fn scaling_never_easier_against_newer_baselines() {
        // For every app: factor vs Gen3 >= factor vs Gen2 >= factor vs
        // Gen1 (treat ">1.5" as 2.0).
        let table = scaling_table(
            &catalog::applications(),
            &SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
        );
        for row in table {
            let vals: Vec<f64> = row.factors.iter().map(|f| f.value().unwrap_or(2.0)).collect();
            assert!(vals[2] >= vals[1] - 1e-9, "{}: gen3 {} < gen2 {}", row.app, vals[2], vals[1]);
            assert!(vals[1] >= vals[0] - 1e-9, "{}: gen2 {} < gen1 {}", row.app, vals[1], vals[0]);
        }
    }

    #[test]
    fn most_cells_match_published_matrix() {
        // Across all 19 published rows × 3 generations, at least 80 % of
        // cells must match exactly and every miss must be within one
        // scaling step (see EXPERIMENTS.md for the recorded deviations).
        let table = scaling_table(
            &catalog::applications(),
            &SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
        );
        let published = gsf_workloads::fleet::published_table_iii();
        let steps = [1.0, 1.25, 1.5, 2.0];
        let step_index = |v: f64| steps.iter().position(|s| (s - v).abs() < 1e-9).unwrap();
        let mut total = 0;
        let mut exact = 0;
        for p in &published {
            let row = table.iter().find(|r| r.app == p.app).expect("app in table");
            for (i, pub_cell) in [p.gen1, p.gen2, p.gen3].iter().enumerate() {
                let want = pub_cell.unwrap_or(2.0);
                let got = row.factors[i].value().unwrap_or(2.0);
                total += 1;
                if (want - got).abs() < 1e-9 {
                    exact += 1;
                } else {
                    let diff = (step_index(want) as i32 - step_index(got) as i32).abs();
                    assert!(diff <= 1, "{} vs {:?}: {} steps off", p.app, pub_cell, diff);
                }
            }
        }
        assert!(
            exact as f64 / total as f64 >= 0.8,
            "only {exact}/{total} cells match the published matrix"
        );
    }

    #[test]
    fn cxl_naive_placement_increases_scaling_for_moses() {
        let moses = catalog::by_name("Moses").unwrap();
        let cxl = SkuPerfProfile::greensku_cxl();
        let local = scaling_factor(&moses, &cxl, MemoryPlacement::Pond, &SkuPerfProfile::gen3());
        let naive = scaling_factor(&moses, &cxl, MemoryPlacement::Naive, &SkuPerfProfile::gen3());
        assert_eq!(local, ScalingFactor::OnePointTwoFive);
        // Moses's 40 % CXL slowdown pushes it from 1.25 to at least 1.5.
        assert!(
            matches!(naive, ScalingFactor::OnePointFive | ScalingFactor::MoreThanOnePointFive),
            "{naive}"
        );
    }

    #[test]
    fn display_labels() {
        assert_eq!(ScalingFactor::One.to_string(), "1");
        assert_eq!(ScalingFactor::MoreThanOnePointFive.to_string(), ">1.5");
        assert_eq!(ScalingFactor::OnePointTwoFive.cores_for_8(), Some(10));
        assert_eq!(ScalingFactor::MoreThanOnePointFive.cores_for_8(), None);
    }
}
