//! SLO derivation: the paper sets each application's SLO to the p95 tail
//! latency a baseline SKU achieves at 90 % of its peak saturation
//! throughput (following PARTIES/TimeTrader-style methodology).

use crate::analytic::MmcQueue;
use crate::sku::{MemoryPlacement, SkuPerfProfile};
use crate::slowdown::slowdown;
use gsf_workloads::{ApplicationModel, ServiceProfile};
use serde::{Deserialize, Serialize};

/// The fraction of peak throughput at which the SLO is read off.
pub const SLO_LOAD_FRACTION: f64 = 0.9;

/// An application's SLO as derived from a baseline SKU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// The load (QPS) at which the SLO was derived: 90 % of the baseline
    /// 8-core VM's peak.
    pub load_qps: f64,
    /// The p95 latency the baseline achieves at that load, milliseconds.
    pub p95_ms: f64,
    /// The baseline's peak saturation throughput (8-core VM), QPS.
    pub baseline_peak_qps: f64,
}

/// Derives the SLO for `app` from an 8-core VM on `baseline`, using the
/// analytic M/M/c model (deterministic; the DES sweeps reproduce the
/// same SLO within simulation noise).
///
/// Returns `None` for throughput-only applications, which have no
/// latency SLO.
///
/// # Panics
///
/// Panics if the M/M/c queue rejects 90 % of its own saturation
/// throughput as unstable, which cannot happen for a positive
/// service time.
pub fn derive_slo(app: &ApplicationModel, baseline: &SkuPerfProfile) -> Option<Slo> {
    let ServiceProfile::LatencyCritical { base_service_ms, .. } = app.service() else {
        return None;
    };
    let service_ms = base_service_ms * slowdown(app, baseline, MemoryPlacement::LocalOnly);
    let peak = 8.0 / (service_ms / 1000.0);
    let load = SLO_LOAD_FRACTION * peak;
    let queue =
        MmcQueue::new(8, load, service_ms).expect("90% of peak is a stable load by construction");
    Some(Slo { load_qps: load, p95_ms: queue.p95_response_ms(), baseline_peak_qps: peak })
}

/// Whether a (SKU, cores) configuration meets `slo`: it must sustain the
/// SLO load and achieve a p95 at or below the SLO latency (within
/// `tolerance`, default 1.0 = exact).
pub fn meets_slo(
    app: &ApplicationModel,
    sku: &SkuPerfProfile,
    placement: MemoryPlacement,
    cores: u32,
    slo: &Slo,
    tolerance: f64,
) -> bool {
    let ServiceProfile::LatencyCritical { base_service_ms, .. } = app.service() else {
        return true;
    };
    let service_ms = base_service_ms * slowdown(app, sku, placement);
    match MmcQueue::new(cores, slo.load_qps, service_ms) {
        Ok(queue) => queue.p95_response_ms() <= slo.p95_ms * tolerance,
        Err(_) => false, // overloaded at the SLO load
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_workloads::catalog;

    fn app(name: &str) -> ApplicationModel {
        catalog::by_name(name).unwrap()
    }

    #[test]
    fn slo_reflects_baseline_peak() {
        let slo = derive_slo(&app("Xapian"), &SkuPerfProfile::gen3()).unwrap();
        // Xapian on Gen3: 2 ms, 8 cores → peak 4000 QPS, SLO load 3600.
        assert!((slo.baseline_peak_qps - 4000.0).abs() < 1.0);
        assert!((slo.load_qps - 3600.0).abs() < 1.0);
        // At 90 % load the p95 is well above the unloaded service time.
        assert!(slo.p95_ms > 2.0 * 2.0);
    }

    #[test]
    fn throughput_only_apps_have_no_slo() {
        assert!(derive_slo(&app("Build-PHP"), &SkuPerfProfile::gen3()).is_none());
    }

    #[test]
    fn baseline_meets_its_own_slo() {
        let a = app("Moses");
        let gen3 = SkuPerfProfile::gen3();
        let slo = derive_slo(&a, &gen3).unwrap();
        assert!(meets_slo(&a, &gen3, MemoryPlacement::LocalOnly, 8, &slo, 1.001));
    }

    #[test]
    fn slower_sku_fails_then_meets_with_scaling() {
        let a = app("Moses");
        let gen3 = SkuPerfProfile::gen3();
        let green = SkuPerfProfile::greensku_efficient();
        let slo = derive_slo(&a, &gen3).unwrap();
        // Moses is ~8 % slower per core on Bergamo: 8 cores fail the
        // Gen3-derived SLO, 10 meet it.
        assert!(!meets_slo(&a, &green, MemoryPlacement::LocalOnly, 8, &slo, 1.0));
        assert!(meets_slo(&a, &green, MemoryPlacement::LocalOnly, 10, &slo, 1.0));
    }

    #[test]
    fn weaker_baselines_set_looser_slos() {
        let a = app("Sphinx");
        let slo1 = derive_slo(&a, &SkuPerfProfile::gen1()).unwrap();
        let slo3 = derive_slo(&a, &SkuPerfProfile::gen3()).unwrap();
        assert!(slo1.baseline_peak_qps < slo3.baseline_peak_qps);
        assert!(slo1.p95_ms > slo3.p95_ms);
    }
}
