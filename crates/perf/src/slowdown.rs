//! The architectural slowdown model: application sensitivity × SKU
//! profile → per-core service-time multiplier relative to Gen3.
//!
//! `slowdown(app, sku, placement)` multiplies five terms (each ≥ 1 for
//! SKUs no better than Gen3 on that axis, and exactly 1 for Gen3):
//!
//! 1. IPC: `1 / ipc_factor` — generation-on-generation core improvements;
//! 2. frequency: `1 + w_f · max(0, f_gen3/f − 1)`;
//! 3. socket LLC: `1 + w_s · max(0, (W_s − llc)/W_s)` — penalizes SKUs
//!    whose socket LLC is smaller than the app's working set (this is
//!    what makes Genoa's 384 MiB special for Masstree/Xapian);
//! 4. per-core LLC: same shape on the per-core share (what makes
//!    Bergamo's 2 MiB/core hurt Silo on every comparison);
//! 5. memory bandwidth: `max(1, demand / available-per-core)`;
//! 6. CXL latency: `1 + w_cxl · fraction · Δlat/lat` per the placement
//!    policy.

use crate::sku::{MemoryPlacement, SkuPerfProfile};
use gsf_workloads::{ApplicationModel, HardwareSensitivity};

/// Reference frequency (Gen3's 3.7 GHz) against which the frequency term
/// is computed.
pub const REFERENCE_FREQ_GHZ: f64 = 3.7;

/// Per-core service-time multiplier of `app` on `sku` relative to an
/// 8-core VM on Gen3, under the given memory placement.
///
/// A value of 1.1 means each request takes 10 % longer per core than on
/// Gen3; values below 1 cannot occur (Gen3 is the reference optimum in
/// every modelled dimension).
///
/// # Example
///
/// ```
/// use gsf_perf::{slowdown, MemoryPlacement, SkuPerfProfile};
/// use gsf_workloads::catalog;
///
/// let sysbench_like = catalog::by_name("Sphinx").unwrap();
/// let s = slowdown(&sysbench_like, &SkuPerfProfile::gen3(), MemoryPlacement::LocalOnly);
/// assert!((s - 1.0).abs() < 1e-12);
/// ```
pub fn slowdown(app: &ApplicationModel, sku: &SkuPerfProfile, placement: MemoryPlacement) -> f64 {
    slowdown_from_sensitivity(app.sensitivity(), sku, placement)
}

/// Same as [`slowdown`] but taking the sensitivity vector directly.
pub fn slowdown_from_sensitivity(
    s: &HardwareSensitivity,
    sku: &SkuPerfProfile,
    placement: MemoryPlacement,
) -> f64 {
    let ipc_term = 1.0 / sku.ipc_factor;
    let freq_term = 1.0 + s.freq_weight * (REFERENCE_FREQ_GHZ / sku.freq_ghz - 1.0).max(0.0);
    let socket_cache_term = if s.socket_cache_mib > 0.0 {
        let deficit = ((s.socket_cache_mib - sku.llc_socket_mib) / s.socket_cache_mib).max(0.0);
        1.0 + s.socket_cache_weight * deficit
    } else {
        1.0
    };
    let core_cache_term = if s.core_cache_mib > 0.0 {
        let deficit = ((s.core_cache_mib - sku.llc_per_core_mib()) / s.core_cache_mib).max(0.0);
        1.0 + s.core_cache_weight * deficit
    } else {
        1.0
    };
    let bw_term = if s.mem_bandwidth_gbps_per_core > 0.0 {
        (s.mem_bandwidth_gbps_per_core / sku.bandwidth_per_core_gbps()).max(1.0)
    } else {
        1.0
    };
    let cxl_term = match (placement, sku.cxl) {
        (MemoryPlacement::LocalOnly, _) | (_, None) => 1.0,
        // Pond places only untouched memory on CXL: no hot traffic moves.
        (MemoryPlacement::Pond, Some(_)) => 1.0,
        (MemoryPlacement::Naive, Some(tier)) => {
            s.cxl_slowdown(s.cxl_naive_fraction, sku.mem_latency_ns, tier.latency_ns)
        }
        (MemoryPlacement::FullCxl, Some(tier)) => {
            s.cxl_slowdown(1.0, sku.mem_latency_ns, tier.latency_ns)
        }
        // Hardware tiering promotes hot pages: only the residual
        // fraction of naive traffic still pays CXL latency.
        (MemoryPlacement::HardwareTiered, Some(tier)) => s.cxl_slowdown(
            s.cxl_naive_fraction * MemoryPlacement::HW_TIERING_RESIDUAL,
            sku.mem_latency_ns,
            tier.latency_ns,
        ),
    };
    ipc_term * freq_term * socket_cache_term * core_cache_term * bw_term * cxl_term
}

/// Relative slowdown of `green` against a `baseline` SKU for `app`: how
/// much slower one green core is than one baseline core. This is the
/// quantity Tables II and III normalize to.
pub fn relative_slowdown(
    app: &ApplicationModel,
    green: &SkuPerfProfile,
    green_placement: MemoryPlacement,
    baseline: &SkuPerfProfile,
) -> f64 {
    slowdown(app, green, green_placement) / slowdown(app, baseline, MemoryPlacement::LocalOnly)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_workloads::catalog;

    fn app(name: &str) -> gsf_workloads::ApplicationModel {
        catalog::by_name(name).expect("catalog app")
    }

    #[test]
    fn gen3_is_reference_for_all_apps() {
        for a in catalog::applications() {
            let s = slowdown(&a, &SkuPerfProfile::gen3(), MemoryPlacement::LocalOnly);
            assert!((s - 1.0).abs() < 1e-12, "{}: {s}", a.name());
        }
    }

    #[test]
    fn slowdowns_never_below_one_on_local_memory() {
        let skus = [
            SkuPerfProfile::gen1(),
            SkuPerfProfile::gen2(),
            SkuPerfProfile::greensku_efficient(),
            SkuPerfProfile::greensku_cxl(),
        ];
        for a in catalog::applications() {
            for sku in &skus {
                let s = slowdown(&a, sku, MemoryPlacement::LocalOnly);
                assert!(s >= 1.0 - 1e-12, "{} on {}: {s}", a.name(), sku.name);
            }
        }
    }

    #[test]
    fn masstree_struggles_only_against_gen3() {
        let m = app("Masstree");
        let eff = SkuPerfProfile::greensku_efficient();
        let s_gen3 =
            relative_slowdown(&m, &eff, MemoryPlacement::LocalOnly, &SkuPerfProfile::gen3());
        let s_gen1 =
            relative_slowdown(&m, &eff, MemoryPlacement::LocalOnly, &SkuPerfProfile::gen1());
        let s_gen2 =
            relative_slowdown(&m, &eff, MemoryPlacement::LocalOnly, &SkuPerfProfile::gen2());
        assert!(s_gen3 > 1.5, "vs Gen3 {s_gen3}");
        assert!(s_gen1 <= 1.02, "vs Gen1 {s_gen1}");
        assert!(s_gen2 <= 1.02, "vs Gen2 {s_gen2}");
    }

    #[test]
    fn silo_struggles_against_every_generation() {
        let silo = app("Silo");
        let eff = SkuPerfProfile::greensku_efficient();
        for base in [SkuPerfProfile::gen1(), SkuPerfProfile::gen2(), SkuPerfProfile::gen3()] {
            let s = relative_slowdown(&silo, &eff, MemoryPlacement::LocalOnly, &base);
            assert!(s > 1.5, "Silo vs {}: {s}", base.name);
        }
    }

    #[test]
    fn sysbench_anchor_ten_percent_vs_gen3() {
        // §III: Bergamo incurs ~10 % per-core slowdown vs Genoa and ~6 %
        // vs Milan on Sysbench. Sphinx is our most Sysbench-like
        // (frequency-bound) app: expect ~13 % / ~8 %.
        let sphinx = app("Sphinx");
        let eff = SkuPerfProfile::greensku_efficient();
        let vs_gen3 =
            relative_slowdown(&sphinx, &eff, MemoryPlacement::LocalOnly, &SkuPerfProfile::gen3());
        let vs_gen2 =
            relative_slowdown(&sphinx, &eff, MemoryPlacement::LocalOnly, &SkuPerfProfile::gen2());
        assert!((vs_gen3 - 1.10).abs() < 0.05, "{vs_gen3}");
        assert!((vs_gen2 - 1.06).abs() < 0.05, "{vs_gen2}");
    }

    #[test]
    fn pond_placement_eliminates_cxl_penalty() {
        let moses = app("Moses");
        let cxl = SkuPerfProfile::greensku_cxl();
        let pond = slowdown(&moses, &cxl, MemoryPlacement::Pond);
        let naive = slowdown(&moses, &cxl, MemoryPlacement::Naive);
        let local = slowdown(&moses, &cxl, MemoryPlacement::LocalOnly);
        assert_eq!(pond, local);
        assert!(naive > 1.3 * local, "naive {naive} vs local {local}");
    }

    #[test]
    fn hardware_tiering_mitigates_most_of_the_naive_penalty() {
        // §III: future hardware tiering improves CXL performance. Moses
        // under tiering sits strictly between Pond (no penalty) and
        // naive placement, recovering ≥60 % of the gap.
        let moses = app("Moses");
        let cxl = SkuPerfProfile::greensku_cxl();
        let pond = slowdown(&moses, &cxl, MemoryPlacement::Pond);
        let naive = slowdown(&moses, &cxl, MemoryPlacement::Naive);
        let tiered = slowdown(&moses, &cxl, MemoryPlacement::HardwareTiered);
        assert!(pond < tiered && tiered < naive, "{pond} < {tiered} < {naive}");
        let recovered = (naive - tiered) / (naive - pond);
        assert!(recovered >= 0.6, "recovered {recovered}");
    }

    #[test]
    fn haproxy_mild_cxl_penalty() {
        let h = app("HAProxy");
        let cxl = SkuPerfProfile::greensku_cxl();
        let penalty = slowdown(&h, &cxl, MemoryPlacement::Naive)
            / slowdown(&h, &cxl, MemoryPlacement::LocalOnly);
        // Fig. 8: ~11 % peak-throughput loss.
        assert!((penalty - 1.11).abs() < 0.02, "{penalty}");
    }

    #[test]
    fn placement_has_no_effect_without_cxl_tier() {
        let moses = app("Moses");
        let eff = SkuPerfProfile::greensku_efficient();
        let a = slowdown(&moses, &eff, MemoryPlacement::LocalOnly);
        let b = slowdown(&moses, &eff, MemoryPlacement::FullCxl);
        assert_eq!(a, b);
    }

    #[test]
    fn build_slowdowns_match_table_ii_efficient_column() {
        // Table II: 1.15 / 1.15 / 1.17 on GreenSKU-Efficient.
        let eff = SkuPerfProfile::greensku_efficient();
        for (name, expected) in [("Build-Python", 1.15), ("Build-Wasm", 1.15), ("Build-PHP", 1.17)]
        {
            let s = slowdown(&app(name), &eff, MemoryPlacement::LocalOnly);
            assert!((s - expected).abs() < 0.02, "{name}: {s} vs {expected}");
        }
    }

    #[test]
    fn build_slowdowns_match_table_ii_gen2_column() {
        // Table II: Gen2 slowdowns 1.13 / 1.19 / 1.11 vs Gen3.
        let gen2 = SkuPerfProfile::gen2();
        for (name, expected) in [("Build-Python", 1.13), ("Build-Wasm", 1.19), ("Build-PHP", 1.11)]
        {
            let s = slowdown(&app(name), &gen2, MemoryPlacement::LocalOnly);
            assert!((s - expected).abs() < 0.02, "{name}: {s} vs {expected}");
        }
    }

    #[test]
    fn builds_outperform_gen1_on_greensku() {
        // Table II: GreenSKU-Efficient beats Gen1 for all builds.
        let eff = SkuPerfProfile::greensku_efficient();
        let gen1 = SkuPerfProfile::gen1();
        for name in ["Build-Python", "Build-Wasm", "Build-PHP"] {
            let a = app(name);
            let ratio = relative_slowdown(&a, &eff, MemoryPlacement::LocalOnly, &gen1);
            assert!(ratio < 1.0, "{name}: {ratio}");
        }
    }
}
