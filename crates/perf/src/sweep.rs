//! Latency-vs-load sweeps: the machinery behind Figs. 7 and 8.

use crate::des::{self, DesConfig, ServiceDist};
use crate::sku::{MemoryPlacement, SkuPerfProfile};
use crate::slowdown::slowdown;
use gsf_stats::ci::ConfidenceInterval;
use gsf_stats::rng::SeedFactory;
use gsf_workloads::{ApplicationModel, ServiceProfile};
use serde::{Deserialize, Serialize};

/// One measured point of a latency curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Offered load, queries per second.
    pub qps: f64,
    /// Mean p95 tail latency across trials, milliseconds; `None` when
    /// the configuration is saturated (utilization ≥ 1).
    pub p95_ms: Option<f64>,
    /// Half-width of the 99 % confidence interval across trials.
    pub ci99_half_width_ms: f64,
}

/// A latency-vs-load curve for one (application, SKU, cores) tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCurve {
    /// Label, e.g. "GreenSKU-Efficient (10 cores)".
    pub label: String,
    /// VM core count.
    pub cores: u32,
    /// Saturation throughput `cores / mean_service`, QPS.
    pub peak_qps: f64,
    /// The measured points, in increasing load order.
    pub points: Vec<CurvePoint>,
}

impl LatencyCurve {
    /// The largest offered load at which the curve still meets
    /// `slo_ms` (p95 at or below the SLO); `None` if no point does.
    pub fn max_load_meeting_slo(&self, slo_ms: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.p95_ms.is_some_and(|v| v <= slo_ms))
            .map(|p| p.qps)
            .fold(None, |acc, q| Some(acc.map_or(q, |a: f64| a.max(q))))
    }
}

/// Sweep configuration for one application on one SKU.
#[derive(Debug, Clone)]
pub struct LoadSweep {
    app: ApplicationModel,
    sku: SkuPerfProfile,
    placement: MemoryPlacement,
    cores: u32,
    trials: u64,
    requests: usize,
}

impl LoadSweep {
    /// Creates a sweep for `app` on `sku` with `cores` VM cores.
    ///
    /// # Panics
    ///
    /// Panics if the application is throughput-only (builds have no
    /// latency curve) or `cores == 0`.
    pub fn new(
        app: ApplicationModel,
        sku: SkuPerfProfile,
        placement: MemoryPlacement,
        cores: u32,
    ) -> Self {
        assert!(cores > 0, "cores must be positive");
        assert!(!app.is_throughput_only(), "throughput-only apps have no latency curve");
        Self { app, sku, placement, cores, trials: 3, requests: 40_000 }
    }

    /// Overrides the number of trials (default 3, as the paper runs).
    pub fn with_trials(mut self, trials: u64) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Overrides requests per trial (default 40 000).
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests.max(1000);
        self
    }

    /// Mean per-request service time of this app on this SKU, ms.
    pub fn service_ms(&self) -> f64 {
        let (base, _) = self.service_params();
        base * slowdown(&self.app, &self.sku, self.placement)
    }

    /// Service-time parameters of the latency-critical profile.
    ///
    /// # Panics
    ///
    /// Unreachable in practice: the constructor rejects throughput-only
    /// applications.
    fn service_params(&self) -> (f64, f64) {
        match self.app.service() {
            ServiceProfile::LatencyCritical { base_service_ms, service_sigma } => {
                (base_service_ms, service_sigma)
            }
            ServiceProfile::ThroughputOnly { .. } => unreachable!("checked in constructor"),
        }
    }

    /// Saturation throughput of the configuration, QPS.
    pub fn peak_qps(&self) -> f64 {
        f64::from(self.cores) / (self.service_ms() / 1000.0)
    }

    /// Runs the sweep at the given offered loads (QPS).
    pub fn run(&self, seeds: &SeedFactory, loads: &[f64]) -> LatencyCurve {
        let (_, sigma) = self.service_params();
        let service_ms = self.service_ms();
        let peak = self.peak_qps();
        let points = loads
            .iter()
            .map(|&qps| {
                let config = DesConfig {
                    cores: self.cores,
                    qps,
                    mean_service_ms: service_ms,
                    dist: ServiceDist::LogNormal { sigma },
                    requests: self.requests,
                    warmup_fraction: 0.1,
                };
                if config.utilization() >= 0.99 {
                    return CurvePoint { qps, p95_ms: None, ci99_half_width_ms: 0.0 };
                }
                let samples: Vec<f64> = (0..self.trials)
                    .map(|t| {
                        let mut rng = seeds.stream_indexed(
                            &format!("{}-{}-{}-{qps}", self.app.name(), self.sku.name, self.cores),
                            t,
                        );
                        des::simulate(&config, &mut rng).p95_ms
                    })
                    .collect();
                let ci = ConfidenceInterval::from_samples(&samples, 0.99);
                CurvePoint {
                    qps,
                    p95_ms: Some(samples.iter().sum::<f64>() / samples.len() as f64),
                    ci99_half_width_ms: ci.map_or(0.0, |c| c.half_width()),
                }
            })
            .collect();
        LatencyCurve {
            label: format!("{} ({} cores)", self.sku.name, self.cores),
            cores: self.cores,
            peak_qps: peak,
            points,
        }
    }

    /// Standard load grid: fractions of `reference_peak_qps` from 30 % to
    /// 97.5 %, the range Figs. 7–8 plot.
    pub fn standard_loads(reference_peak_qps: f64) -> Vec<f64> {
        [0.3, 0.45, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.975]
            .iter()
            .map(|f| f * reference_peak_qps)
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_workloads::catalog;

    fn xapian_sweep(cores: u32) -> LoadSweep {
        LoadSweep::new(
            catalog::by_name("Xapian").unwrap(),
            SkuPerfProfile::gen3(),
            MemoryPlacement::LocalOnly,
            cores,
        )
        .with_requests(10_000)
    }

    #[test]
    fn peak_qps_matches_capacity() {
        let s = xapian_sweep(8);
        // Xapian: 2 ms base on Gen3 → 8 cores / 2 ms = 4000 QPS.
        assert!((s.peak_qps() - 4000.0).abs() < 1.0);
    }

    #[test]
    fn curve_monotone_and_saturates() {
        let s = xapian_sweep(8);
        let seeds = SeedFactory::new(5);
        let mut loads = LoadSweep::standard_loads(4000.0);
        loads.push(4200.0); // beyond saturation
        let curve = s.run(&seeds, &loads);
        assert_eq!(curve.points.len(), loads.len());
        // Last point saturated.
        assert!(curve.points.last().unwrap().p95_ms.is_none());
        // Latency at 90 % load exceeds latency at 30 %.
        let p30 = curve.points[0].p95_ms.unwrap();
        let p90 = curve.points[6].p95_ms.unwrap();
        assert!(p90 > p30);
    }

    #[test]
    fn slower_sku_has_lower_peak() {
        let gen3 = xapian_sweep(8);
        let green = LoadSweep::new(
            catalog::by_name("Xapian").unwrap(),
            SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            8,
        );
        assert!(green.peak_qps() < gen3.peak_qps());
        // Scaling to 12 cores more than recovers the gap.
        let green12 = LoadSweep::new(
            catalog::by_name("Xapian").unwrap(),
            SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            12,
        );
        assert!(green12.peak_qps() > gen3.peak_qps() * 0.98);
    }

    #[test]
    fn max_load_meeting_slo() {
        let curve = LatencyCurve {
            label: "x".into(),
            cores: 8,
            peak_qps: 100.0,
            points: vec![
                CurvePoint { qps: 30.0, p95_ms: Some(5.0), ci99_half_width_ms: 0.1 },
                CurvePoint { qps: 60.0, p95_ms: Some(9.0), ci99_half_width_ms: 0.1 },
                CurvePoint { qps: 90.0, p95_ms: Some(25.0), ci99_half_width_ms: 0.1 },
                CurvePoint { qps: 99.0, p95_ms: None, ci99_half_width_ms: 0.0 },
            ],
        };
        assert_eq!(curve.max_load_meeting_slo(10.0), Some(60.0));
        assert_eq!(curve.max_load_meeting_slo(1.0), None);
    }

    #[test]
    #[should_panic(expected = "throughput-only")]
    fn rejects_build_apps() {
        LoadSweep::new(
            catalog::by_name("Build-PHP").unwrap(),
            SkuPerfProfile::gen3(),
            MemoryPlacement::LocalOnly,
            8,
        );
    }
}
