//! Low-load latency analysis (§VI): p95 latency at 30 % of peak load,
//! where queueing is light and per-request service time dominates.
//!
//! The paper reports that a scaled GreenSKU-Efficient VM's median
//! low-load latency across applications is 8.3 % lower than Gen1, 2 %
//! lower than Gen2, and 16 % higher than Gen3.

use crate::analytic::MmcQueue;
use crate::scaling::{scaling_factor, ScalingFactor};
use crate::sku::{MemoryPlacement, SkuPerfProfile};
use crate::slowdown::slowdown;
use gsf_workloads::{ApplicationModel, ServiceProfile};
use serde::{Deserialize, Serialize};

/// The fraction of peak throughput defined as "low" load (following
/// PARTIES/TimeTrader, §VI).
pub const LOW_LOAD_FRACTION: f64 = 0.3;

/// Low-load latency of one application on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowLoadPoint {
    /// p95 latency at 30 % of the *baseline's* peak, milliseconds.
    pub p95_ms: f64,
    /// VM cores used.
    pub cores: u32,
}

/// p95 latency of `app` on `sku` with `cores` at 30 % of
/// `baseline_peak_qps` (analytic model).
///
/// Returns `None` for throughput-only apps or if the configuration
/// cannot even sustain the low load.
pub fn low_load_p95(
    app: &ApplicationModel,
    sku: &SkuPerfProfile,
    placement: MemoryPlacement,
    cores: u32,
    baseline_peak_qps: f64,
) -> Option<LowLoadPoint> {
    let ServiceProfile::LatencyCritical { base_service_ms, .. } = app.service() else {
        return None;
    };
    let service_ms = base_service_ms * slowdown(app, sku, placement);
    let load = LOW_LOAD_FRACTION * baseline_peak_qps;
    let queue = MmcQueue::new(cores, load, service_ms).ok()?;
    Some(LowLoadPoint { p95_ms: queue.p95_response_ms(), cores })
}

/// The ratio of a scaled GreenSKU VM's low-load p95 to the baseline's
/// own 8-core low-load p95; `None` when the app is throughput-only or
/// unadoptable (scaling >1.5).
///
/// # Panics
///
/// Panics if a finite scaling factor yields no admissible core
/// count — impossible for factors at or below the 1.5 adoptability
/// gate checked first.
pub fn low_load_ratio(
    app: &ApplicationModel,
    green: &SkuPerfProfile,
    placement: MemoryPlacement,
    baseline: &SkuPerfProfile,
) -> Option<f64> {
    let ServiceProfile::LatencyCritical { base_service_ms, .. } = app.service() else {
        return None;
    };
    let base_service = base_service_ms * slowdown(app, baseline, MemoryPlacement::LocalOnly);
    let base_peak = 8.0 / (base_service / 1000.0);
    let factor = scaling_factor(app, green, placement, baseline);
    let cores = match factor {
        ScalingFactor::MoreThanOnePointFive => return None,
        f => f.cores_for_8().expect("finite factor has a core count"),
    };
    let green_point = low_load_p95(app, green, placement, cores, base_peak)?;
    let base_point = low_load_p95(app, baseline, MemoryPlacement::LocalOnly, 8, base_peak)?;
    Some(green_point.p95_ms / base_point.p95_ms)
}

/// Median low-load latency ratio across all adoptable latency-critical
/// applications (the §VI statistic).
pub fn median_low_load_ratio(
    apps: &[ApplicationModel],
    green: &SkuPerfProfile,
    placement: MemoryPlacement,
    baseline: &SkuPerfProfile,
) -> Option<f64> {
    let mut ratios: Vec<f64> =
        apps.iter().filter_map(|a| low_load_ratio(a, green, placement, baseline)).collect();
    if ratios.is_empty() {
        return None;
    }
    ratios.sort_by(f64::total_cmp);
    gsf_stats::percentile::percentile_sorted(&ratios, 0.5)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_workloads::catalog;

    #[test]
    fn median_vs_gen3_moderately_higher() {
        // Paper: +16 % vs Gen3. Accept 5–25 %.
        let m = median_low_load_ratio(
            &catalog::applications(),
            &SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            &SkuPerfProfile::gen3(),
        )
        .unwrap();
        assert!(m > 1.05 && m < 1.25, "median ratio vs Gen3: {m}");
    }

    #[test]
    fn median_vs_gen1_lower() {
        // Paper: −8.3 % vs Gen1.
        let m = median_low_load_ratio(
            &catalog::applications(),
            &SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            &SkuPerfProfile::gen1(),
        )
        .unwrap();
        assert!(m < 1.0, "median ratio vs Gen1: {m}");
    }

    #[test]
    fn median_vs_gen2_about_even() {
        // Paper: −2 % vs Gen2. Accept ±6 %.
        let m = median_low_load_ratio(
            &catalog::applications(),
            &SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            &SkuPerfProfile::gen2(),
        )
        .unwrap();
        assert!((m - 0.98).abs() < 0.06, "median ratio vs Gen2: {m}");
    }

    #[test]
    fn unadoptable_apps_excluded() {
        let silo = catalog::by_name("Silo").unwrap();
        assert!(low_load_ratio(
            &silo,
            &SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
            &SkuPerfProfile::gen3(),
        )
        .is_none());
    }

    #[test]
    fn builds_have_no_low_load_latency() {
        let php = catalog::by_name("Build-PHP").unwrap();
        assert!(
            low_load_p95(&php, &SkuPerfProfile::gen3(), MemoryPlacement::LocalOnly, 8, 1000.0,)
                .is_none()
        );
    }
}
