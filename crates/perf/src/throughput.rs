//! Throughput-only (DevOps build) slowdowns — the reproduction of
//! Table II.

use crate::sku::{MemoryPlacement, SkuPerfProfile};
use crate::slowdown::slowdown;
use gsf_workloads::{catalog, ApplicationModel};
use serde::{Deserialize, Serialize};

/// One row of Table II: a build's runtime normalized to Gen3 on every
/// compared platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildSlowdownRow {
    /// Application name.
    pub app: String,
    /// Normalized runtime on Gen1 (Gen3 = 1.0).
    pub gen1: f64,
    /// Normalized runtime on Gen2.
    pub gen2: f64,
    /// Normalized runtime on Gen3 (1.0 by definition).
    pub gen3: f64,
    /// Normalized runtime on GreenSKU-Efficient.
    pub efficient: f64,
    /// Normalized runtime on GreenSKU-CXL (naive placement, as measured
    /// in the paper).
    pub cxl: f64,
}

/// Computes a Table II row for one build application.
pub fn build_slowdown_row(app: &ApplicationModel) -> BuildSlowdownRow {
    let local = MemoryPlacement::LocalOnly;
    BuildSlowdownRow {
        app: app.name().to_string(),
        gen1: slowdown(app, &SkuPerfProfile::gen1(), local),
        gen2: slowdown(app, &SkuPerfProfile::gen2(), local),
        gen3: slowdown(app, &SkuPerfProfile::gen3(), local),
        efficient: slowdown(app, &SkuPerfProfile::greensku_efficient(), local),
        cxl: slowdown(app, &SkuPerfProfile::greensku_cxl(), MemoryPlacement::Naive),
    }
}

/// The full reproduced Table II (all throughput-only catalog apps).
pub fn table_ii() -> Vec<BuildSlowdownRow> {
    catalog::applications()
        .iter()
        .filter(|a| a.is_throughput_only())
        .map(build_slowdown_row)
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn row(app: &str) -> BuildSlowdownRow {
        table_ii().into_iter().find(|r| r.app == app).expect("build app present")
    }

    #[test]
    fn covers_three_builds() {
        let rows = table_ii();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!((r.gen3 - 1.0).abs() < 1e-12, "{} gen3 must be 1.0", r.app);
        }
    }

    #[test]
    fn matches_published_table_ii_within_tolerance() {
        // Published: (Gen1, Gen2, Efficient, CXL) per build.
        let expected = [
            ("Build-PHP", 1.27, 1.11, 1.17, 1.38),
            ("Build-Python", 1.28, 1.13, 1.15, 1.21),
            ("Build-Wasm", 1.34, 1.19, 1.15, 1.28),
        ];
        for (app, g1, g2, eff, cxl) in expected {
            let r = row(app);
            assert!((r.gen2 - g2).abs() < 0.03, "{app} gen2 {} vs {g2}", r.gen2);
            assert!((r.efficient - eff).abs() < 0.03, "{app} eff {} vs {eff}", r.efficient);
            assert!((r.cxl - cxl).abs() < 0.05, "{app} cxl {} vs {cxl}", r.cxl);
            // Gen1 is the loosest calibration (IPC factor is shared
            // across all apps): allow 0.08.
            assert!((r.gen1 - g1).abs() < 0.08, "{app} gen1 {} vs {g1}", r.gen1);
        }
    }

    #[test]
    fn greensku_beats_gen1_for_all_builds() {
        for r in table_ii() {
            assert!(r.efficient < r.gen1, "{}", r.app);
        }
    }

    #[test]
    fn cxl_slower_than_efficient_for_all_builds() {
        for r in table_ii() {
            assert!(r.cxl > r.efficient, "{}", r.app);
        }
    }
}
