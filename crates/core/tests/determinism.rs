//! Determinism guarantees of the evaluation hot path: the assessment
//! cache and the parallel sweeps are pure optimizations — outcomes must
//! be bitwise-identical with the cache on or off and for any worker
//! count.

use gsf_carbon::units::CarbonIntensity;
use gsf_carbon::ModelParams;
use gsf_core::design::GreenSkuDesign;
use gsf_core::pipeline::{GsfPipeline, PipelineConfig};
use gsf_core::search::{evaluate_space_with, CandidateSpace};
use gsf_core::EvalContext;
use gsf_stats::rng::SeedFactory;
use gsf_workloads::{Trace, TraceGenerator, TraceParams};
use proptest::prelude::*;
use std::sync::Arc;

fn trace(seed: u64) -> Trace {
    TraceGenerator::new(TraceParams {
        duration_hours: 8.0,
        arrivals_per_hour: 40.0,
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(seed), 0)
}

fn designs() -> [GreenSkuDesign; 3] {
    [GreenSkuDesign::efficient(), GreenSkuDesign::cxl(), GreenSkuDesign::full()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A caching pipeline and an uncached (recompute-everything)
    /// pipeline produce bitwise-identical outcomes for random traces,
    /// designs, and carbon intensities.
    #[test]
    fn cached_and_uncached_pipelines_agree(
        seed in 0u64..1000,
        design_index in 0usize..3,
        ci in 0.02..0.5f64,
    ) {
        let t = trace(seed);
        let design = &designs()[design_index];
        let ci = CarbonIntensity::new(ci);

        let cached = GsfPipeline::new(PipelineConfig::default());
        let uncached = GsfPipeline::with_context(
            PipelineConfig::default(),
            Arc::new(EvalContext::uncached()),
        );
        let a = cached.evaluate_at(design, &t, ci).unwrap();
        let b = uncached.evaluate_at(design, &t, ci).unwrap();
        prop_assert_eq!(&a, &b);

        // A second evaluation is served from the cache (4 SKUs per
        // parameter set: the design plus the Gen1-Gen3 baselines) and
        // still matches.
        let c = cached.evaluate_at(design, &t, ci).unwrap();
        prop_assert_eq!(&a, &c);
        let stats = cached.context().stats();
        prop_assert_eq!(stats.entries, 4);
        prop_assert!(stats.hits >= 4, "hits {}", stats.hits);
        prop_assert_eq!(uncached.context().stats().entries, 0);
    }
}

#[test]
fn sweep_identical_for_any_worker_count() {
    let t = trace(7);
    let intensities = [0.02, 0.05, 0.1, 0.18, 0.3, 0.5];
    let pipeline = GsfPipeline::new(PipelineConfig::default());
    let serial =
        pipeline.savings_sweep_with_workers(&GreenSkuDesign::full(), &t, &intensities, 1).unwrap();
    let parallel =
        pipeline.savings_sweep_with_workers(&GreenSkuDesign::full(), &t, &intensities, 8).unwrap();
    assert_eq!(serial, parallel);
    let ordered: Vec<f64> = serial.iter().map(|(ci, _)| *ci).collect();
    assert_eq!(ordered, intensities.to_vec());
}

#[test]
fn search_identical_cached_uncached_and_any_workers() {
    let space = CandidateSpace::paper_neighborhood();
    let params = ModelParams::default_open_source();
    let reference = evaluate_space_with(&space, params, &EvalContext::uncached(), 1).unwrap();
    let cached_parallel = evaluate_space_with(&space, params, &EvalContext::new(), 8).unwrap();
    assert_eq!(reference, cached_parallel);

    // Each of the 54 candidates is assessed exactly once; the shared
    // Gen3 baseline is cached after its first use.
    let ctx = EvalContext::new();
    let _ = evaluate_space_with(&space, params, &ctx, 4).unwrap();
    let stats = ctx.stats();
    assert_eq!(stats.entries, space.candidates().len() + 1);
}
