//! Determinism guarantees of fault injection.
//!
//! Two properties gate this subsystem:
//! 1. `FaultModel::none()` is a strict identity — a pipeline configured
//!    with it produces bitwise-identical outcomes to the default
//!    pipeline, cached or uncached.
//! 2. An enabled fault model is seed-deterministic — repeated
//!    evaluations, cached vs uncached contexts, and any worker count
//!    all produce bitwise-identical outcomes.

use gsf_carbon::units::CarbonIntensity;
use gsf_core::design::GreenSkuDesign;
use gsf_core::pipeline::{GsfPipeline, PipelineConfig};
use gsf_core::EvalContext;
use gsf_maintenance::FaultModel;
use gsf_stats::rng::SeedFactory;
use gsf_workloads::{Trace, TraceGenerator, TraceParams};
use proptest::prelude::*;
use std::sync::Arc;

fn trace(seed: u64) -> Trace {
    TraceGenerator::new(TraceParams {
        duration_hours: 8.0,
        arrivals_per_hour: 40.0,
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(seed), 0)
}

fn designs() -> [GreenSkuDesign; 3] {
    [GreenSkuDesign::efficient(), GreenSkuDesign::cxl(), GreenSkuDesign::full()]
}

fn faulted_config(fault_seed: u64, afr_scale: f64) -> PipelineConfig {
    let mut model = FaultModel::paper(fault_seed);
    model.afr_scale = afr_scale;
    PipelineConfig { faults: model, ..PipelineConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `FaultModel::none()` reproduces the fault-free pipeline
    /// bit-for-bit: same plans, same replay statistics, same savings,
    /// on both the cached and uncached context paths.
    #[test]
    fn none_model_is_bit_identical_to_baseline(
        seed in 0u64..1000,
        design_index in 0usize..3,
        ci in 0.02..0.5f64,
    ) {
        let t = trace(seed);
        let design = &designs()[design_index];
        let ci = CarbonIntensity::new(ci);

        let baseline = GsfPipeline::new(PipelineConfig::default());
        let none = GsfPipeline::new(PipelineConfig {
            faults: FaultModel::none(),
            ..PipelineConfig::default()
        });
        let none_uncached = GsfPipeline::with_context(
            PipelineConfig { faults: FaultModel::none(), ..PipelineConfig::default() },
            Arc::new(EvalContext::uncached()),
        );

        let a = baseline.evaluate_at(design, &t, ci).unwrap();
        let b = none.evaluate_at(design, &t, ci).unwrap();
        let c = none_uncached.evaluate_at(design, &t, ci).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(a.faults, gsf_vmalloc::FaultSummary::default());
        prop_assert_eq!(a.expected_capacity_loss, 0.0);
    }

    /// A fault-injected evaluation is a pure function of
    /// (trace, design, CI, fault model): repeated runs, fresh
    /// pipelines, and uncached contexts agree bit-for-bit.
    #[test]
    fn faulted_evaluation_is_seed_deterministic(
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        design_index in 0usize..3,
    ) {
        let t = trace(seed);
        let design = &designs()[design_index];
        let ci = CarbonIntensity::new(0.1);
        let config = faulted_config(fault_seed, 10.0);

        let cached = GsfPipeline::new(config.clone());
        let a = cached.evaluate_at(design, &t, ci).unwrap();
        // Second run hits the sizing cache and must not drift.
        let b = cached.evaluate_at(design, &t, ci).unwrap();
        // Fresh pipeline, uncached context: everything recomputed.
        let uncached = GsfPipeline::with_context(
            config.clone(),
            Arc::new(EvalContext::uncached()),
        );
        let c = uncached.evaluate_at(design, &t, ci).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);

        // A different fault seed must key a different cache entry (no
        // cross-contamination), even if outcomes happen to coincide.
        let other = GsfPipeline::new(faulted_config(fault_seed.wrapping_add(1), 10.0));
        let _ = other.evaluate_at(design, &t, ci).unwrap();
    }
}

/// Fleet evaluation with fault injection is identical for any worker
/// count — the fault plans are derived per (pool, server index), never
/// from scheduling order.
#[test]
fn faulted_fleet_identical_for_any_worker_count() {
    let traces: Vec<Trace> = (0..4).map(trace).collect();
    let design = GreenSkuDesign::full();
    let config = faulted_config(7, 10.0);

    let serial = GsfPipeline::new(config.clone()).evaluate_fleet(&design, &traces, 1).unwrap();
    let parallel = GsfPipeline::new(config).evaluate_fleet(&design, &traces, 8).unwrap();
    assert_eq!(serial.per_trace, parallel.per_trace);
    assert_eq!(serial.mean_cluster_savings.to_bits(), parallel.mean_cluster_savings.to_bits());
}

/// Explicitly setting the flat topology and a zero repair time is the
/// identity on the whole pipeline: same outcome bit for bit as the
/// base model, sharing its sizing-cache key on one context.
#[test]
fn flat_topology_and_no_repair_match_the_base_model_end_to_end() {
    let t = trace(11);
    let design = GreenSkuDesign::full();
    let ci = CarbonIntensity::new(0.1);
    let base = faulted_config(7, 15.0);
    let mut flat = base.clone();
    flat.faults = flat
        .faults
        .with_topology(gsf_maintenance::FaultTopology::flat())
        .and_then(|m| m.with_repair_days(0.0))
        .unwrap();
    // One shared context: identical signatures mean the second
    // evaluation must be served from the first's sizing entry.
    let ctx = Arc::new(EvalContext::new());
    let a = GsfPipeline::with_context(base, Arc::clone(&ctx)).evaluate_at(&design, &t, ci).unwrap();
    let b = GsfPipeline::with_context(flat, Arc::clone(&ctx)).evaluate_at(&design, &t, ci).unwrap();
    assert_eq!(a, b);
}

/// A domain-correlated, repair-enabled model exercises the whole
/// availability ledger through the pipeline: revivals land, downtime
/// accrues, and the blast radius reflects the domain width.
#[test]
fn domain_and_repair_populate_the_availability_ledger() {
    let t = trace(13);
    let design = GreenSkuDesign::full();
    let ci = CarbonIntensity::new(0.1);
    let mut config = faulted_config(7, 20.0);
    config.faults = config
        .faults
        .with_topology(gsf_maintenance::FaultTopology {
            domain_size: 4,
            // High enough that several domains fire within the trace
            // horizon (rack()'s default rate is too rare for a short
            // fixture trace).
            domain_events_per_100: 20.0,
        })
        .and_then(|m| m.with_repair_days(10.0))
        .unwrap();
    let o = GsfPipeline::new(config).evaluate_at(&design, &t, ci).unwrap();
    assert!(o.faults.revivals > 0, "{:?}", o.faults);
    assert!(o.availability.server_down_seconds > 0.0, "{:?}", o.availability);
    assert!(o.availability.blast_radius_servers >= 2, "{:?}", o.availability);
    assert!(o.availability.vm_seconds_served > 0.0, "{:?}", o.availability);
    assert_eq!(o.availability, o.faults.availability);
}

/// The availability SLO joins the sizing-cache key: evaluating with and
/// without a budget on one shared context must not cross-contaminate,
/// and a generous budget can only shrink (or keep) the plan relative
/// to the strict full-evacuation rule.
#[test]
fn availability_slo_keys_its_own_cache_entry() {
    let t = trace(17);
    let design = GreenSkuDesign::full();
    let ci = CarbonIntensity::new(0.1);
    let strict = faulted_config(7, 20.0);
    let mut budgeted = strict.clone();
    budgeted.availability_slo = Some(1e12);
    let ctx = Arc::new(EvalContext::new());
    let a =
        GsfPipeline::with_context(strict.clone(), Arc::clone(&ctx)).evaluate_at(&design, &t, ci);
    let b = GsfPipeline::with_context(budgeted, Arc::clone(&ctx)).evaluate_at(&design, &t, ci);
    let (a, b) = (a.unwrap(), b.unwrap());
    // An effectively unbounded budget admits every cluster the strict
    // rule admits, so its plan can only be smaller or equal.
    assert!(
        b.plan.total() <= a.plan.total(),
        "budgeted plan {:?} larger than strict plan {:?}",
        b.plan,
        a.plan
    );
    // Re-evaluating the strict config on the same context must return
    // the strict entry, not the budgeted one.
    let a2 = GsfPipeline::with_context(strict, ctx).evaluate_at(&design, &t, ci).unwrap();
    assert_eq!(a, a2);
}

/// An enabled model actually injects faults at a high AFR scale — the
/// identity property above is not vacuous.
#[test]
fn enabled_model_injects_observable_faults() {
    let t = trace(3);
    let design = GreenSkuDesign::full();
    let ci = CarbonIntensity::new(0.1);
    let faulted = GsfPipeline::new(faulted_config(7, 20.0)).evaluate_at(&design, &t, ci).unwrap();
    assert!(
        faulted.faults.full_failures + faulted.faults.partial_degrades > 0,
        "{:?}",
        faulted.faults
    );
    assert!(faulted.expected_capacity_loss > 0.0);
    // The sized plan absorbs the injected failures: no VM is lost.
    assert_eq!(faulted.faults.evacuation_failures, 0);
    assert!(faulted.replay.no_rejections(), "{:?}", faulted.replay);
}
