//! Equivalence suite for the streamed evaluation path: running the
//! pipeline from a chunked trace stream must be *bit-identical* to
//! running it from the materialized [`Trace`] — same outcome, same
//! replay statistics, same fault and availability summaries — and the
//! two paths must share cache entries (the verified stream digest is
//! pinned equal to [`Trace::content_hash`]).
//!
//! The streamed path never materializes the trace, so nothing forces
//! these to agree by construction; the suite is the contract.

use gsf_carbon::units::CarbonIntensity;
use gsf_core::design::GreenSkuDesign;
use gsf_core::pipeline::{GsfPipeline, PipelineConfig};
use gsf_core::EvalContext;
use gsf_maintenance::FaultModel;
use gsf_stats::rng::SeedFactory;
use gsf_workloads::{
    write_chunks, Trace, TraceChunkReader, TraceGenerator, TraceParams, DEFAULT_CHUNK_EVENTS,
};
use proptest::prelude::*;
use std::sync::Arc;

fn trace(seed: u64, hours: f64, arrivals: f64) -> Trace {
    TraceGenerator::new(TraceParams {
        duration_hours: hours,
        arrivals_per_hour: arrivals,
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(seed), 0)
}

fn designs() -> [GreenSkuDesign; 3] {
    [GreenSkuDesign::efficient(), GreenSkuDesign::cxl(), GreenSkuDesign::full()]
}

/// Chunk-encodes `trace` and evaluates the stream.
fn evaluate_streamed(
    pipeline: &GsfPipeline,
    design: &GreenSkuDesign,
    trace: &Trace,
    ci: CarbonIntensity,
    chunk_events: usize,
) -> gsf_core::pipeline::PipelineOutcome {
    let mut buf = Vec::new();
    write_chunks(trace, &mut buf, chunk_events).unwrap();
    let mut reader = TraceChunkReader::new(&buf[..]).unwrap();
    pipeline.evaluate_streamed_at(design, &mut reader, ci).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Streamed and in-memory evaluation agree bitwise for random
    /// traces, designs, carbon intensities, and chunk sizes — and the
    /// two paths hit the same sizing/prepared cache entries.
    #[test]
    fn streamed_evaluation_matches_in_memory(
        seed in 0u64..1000,
        design_index in 0usize..3,
        ci in 0.02..0.5f64,
        chunk_events in 1usize..5000,
    ) {
        let t = trace(seed, 6.0, 30.0);
        let design = &designs()[design_index];
        let ci = CarbonIntensity::new(ci);

        let pipeline = GsfPipeline::new(PipelineConfig::default());
        let in_memory = pipeline.evaluate_at(design, &t, ci).unwrap();
        let streamed = evaluate_streamed(&pipeline, design, &t, ci, chunk_events);
        prop_assert_eq!(&in_memory, &streamed);

        // The streamed run keyed the same entries the in-memory run
        // populated: no second sizing, no second prepared build.
        let stats = pipeline.context().stats();
        prop_assert_eq!(stats.sizing_misses, 1);
        prop_assert!(stats.sizing_hits >= 1, "sizing hits {}", stats.sizing_hits);
        prop_assert_eq!(stats.prepared_misses, 2);

        // And in the opposite order (stream first) on a fresh context.
        let pipeline2 = GsfPipeline::new(PipelineConfig::default());
        let streamed_first = evaluate_streamed(&pipeline2, design, &t, ci, chunk_events);
        let then_in_memory = pipeline2.evaluate_at(design, &t, ci).unwrap();
        prop_assert_eq!(&streamed_first, &then_in_memory);
        prop_assert_eq!(&streamed_first, &in_memory);
        prop_assert_eq!(pipeline2.context().stats().sizing_misses, 1);
    }

    /// The equivalence holds under fault injection and sharded replay,
    /// where the trace duration (taken from the stream header rather
    /// than the materialized trace) seeds the fault plan.
    #[test]
    fn streamed_matches_in_memory_with_faults_and_shards(
        seed in 0u64..200,
        shards in 1usize..4,
    ) {
        let t = trace(seed, 6.0, 40.0);
        let design = GreenSkuDesign::full();
        let config = PipelineConfig {
            faults: FaultModel::paper(7),
            shards,
            ..PipelineConfig::default()
        };
        let pipeline = GsfPipeline::new(config);
        let ci = pipeline.config().carbon_params.carbon_intensity;
        let in_memory = pipeline.evaluate(&design, &t).unwrap();
        let streamed = evaluate_streamed(&pipeline, &design, &t, ci, 512);
        prop_assert_eq!(&in_memory, &streamed);
        prop_assert_eq!(in_memory.faults, streamed.faults);
        prop_assert_eq!(in_memory.availability, streamed.availability);
    }
}

/// An uncached pipeline (no keys at all) agrees with a cached one on
/// the streamed path, closing the chain uncached-in-memory ==
/// cached-in-memory == cached-streamed == uncached-streamed.
#[test]
fn uncached_streamed_agrees_with_cached() {
    let t = trace(11, 6.0, 35.0);
    let design = GreenSkuDesign::cxl();
    let ci = CarbonIntensity::new(0.12);
    let cached = GsfPipeline::new(PipelineConfig::default());
    let uncached =
        GsfPipeline::with_context(PipelineConfig::default(), Arc::new(EvalContext::uncached()));
    let a = cached.evaluate_at(&design, &t, ci).unwrap();
    let b = evaluate_streamed(&uncached, &design, &t, ci, 257);
    let c = evaluate_streamed(&cached, &design, &t, ci, 257);
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert_eq!(uncached.context().stats().sizing_entries, 0);
}

/// A trace synthesized directly to a chunked stream (never held in
/// memory) evaluates identically to the same generator run through
/// [`TraceGenerator::generate`].
#[test]
fn synthesized_stream_evaluates_like_generated_trace() {
    let params = TraceParams {
        duration_hours: 6.0,
        arrivals_per_hour: 40.0,
        diurnal_amplitude: 0.3,
        ..TraceParams::default()
    };
    let g = TraceGenerator::new(params);
    let seeds = SeedFactory::new(33);
    let design = GreenSkuDesign::full();

    let mut buf = Vec::new();
    g.synthesize_streamed(&seeds, 0, &mut buf, 1024).unwrap();
    let pipeline = GsfPipeline::new(PipelineConfig::default());
    let mut reader = TraceChunkReader::new(&buf[..]).unwrap();
    let streamed = pipeline.evaluate_streamed(&design, &mut reader).unwrap();

    let in_memory = pipeline.evaluate(&design, &g.generate(&seeds, 0)).unwrap();
    assert_eq!(streamed, in_memory);
}

/// The 24k-VM fleet fixture (the placement-index ablation scale):
/// streamed evaluation is bit-identical to in-memory. Ignored by
/// default (fleet-scale debug runs are slow); ci.sh runs it in release
/// via `--include-ignored`.
#[test]
#[ignore = "fleet-scale; ci.sh runs it in release"]
fn fleet_scale_streamed_replay_is_bit_identical() {
    // Same parameters as gsf_bench::bench_trace_fleet() (gsf-bench
    // depends on gsf-core, so the fixture is restated here).
    let t = TraceGenerator::new(TraceParams {
        duration_hours: 24.0,
        arrivals_per_hour: 1000.0,
        size_classes: vec![(8, 0.4), (16, 0.3), (32, 0.2), (64, 0.1)],
        mem_per_core_classes: vec![(4.0, 0.6), (8.0, 0.4)],
        ..TraceParams::default()
    })
    .generate(&SeedFactory::new(2024), 2);
    assert!(t.vms().len() > 20_000, "fixture drifted: {} VMs", t.vms().len());

    let design = GreenSkuDesign::full();
    let pipeline = GsfPipeline::new(PipelineConfig::default());
    let ci = pipeline.config().carbon_params.carbon_intensity;
    let in_memory = pipeline.evaluate(&design, &t).unwrap();
    let streamed = evaluate_streamed(&pipeline, &design, &t, ci, DEFAULT_CHUNK_EVENTS);
    assert_eq!(in_memory, streamed);
    assert_eq!(in_memory.replay, streamed.replay);
    // One sizing pass served both runs.
    assert_eq!(pipeline.context().stats().sizing_misses, 1);
}
