//! Adoption component (§IV-C, §V implementation): does running an
//! application on the GreenSKU save carbon while meeting its
//! performance goals?
//!
//! An application adopts the GreenSKU if the carbon to serve it there —
//! scaling factor × GreenSKU CO₂e-per-core — is below the carbon on the
//! baseline SKU (1 × baseline CO₂e-per-core); applications whose scaling
//! factor is ">1.5" never adopt.

use crate::components::{CarbonComponent, PerformanceComponent};
use gsf_carbon::{Assessment, CarbonError, ServerSpec};
use gsf_perf::ScalingFactor;
use gsf_workloads::{ApplicationModel, ServerGeneration};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of an adoption decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdoptionDecision {
    /// Run on the GreenSKU, scaling VM cores and memory by `factor`.
    Adopt {
        /// The scaling factor applied to the VM's resources.
        factor: f64,
    },
    /// Stay on the baseline: scaling cannot match performance at all.
    RejectPerformance,
    /// Stay on the baseline: scaling would cost more carbon than it
    /// saves.
    RejectCarbon {
        /// The scaling factor that was evaluated.
        factor: f64,
    },
}

impl AdoptionDecision {
    /// Whether the app adopts the GreenSKU.
    pub fn adopts(&self) -> bool {
        matches!(self, AdoptionDecision::Adopt { .. })
    }

    /// The adopting scaling factor, if any.
    pub fn factor(&self) -> Option<f64> {
        match self {
            AdoptionDecision::Adopt { factor } => Some(*factor),
            _ => None,
        }
    }
}

/// The adoption model: carbon assessments for the GreenSKU and every
/// baseline generation, combined with the performance component's
/// scaling factors.
pub struct AdoptionModel {
    green_per_core: f64,
    baseline_per_core: BTreeMap<ServerGeneration, f64>,
}

impl AdoptionModel {
    /// Builds the model by assessing the GreenSKU and baseline SKUs with
    /// `carbon`.
    ///
    /// # Errors
    ///
    /// Propagates assessment failures.
    pub fn new(
        carbon: &dyn CarbonComponent,
        green: &ServerSpec,
        baselines: &[(ServerGeneration, ServerSpec)],
    ) -> Result<Self, CarbonError> {
        let green_per_core = carbon.assess(green)?.total_per_core().get();
        let mut baseline_per_core = BTreeMap::new();
        for (generation, sku) in baselines {
            baseline_per_core.insert(*generation, carbon.assess(sku)?.total_per_core().get());
        }
        Ok(Self { green_per_core, baseline_per_core })
    }

    /// Builds the model from precomputed assessments.
    pub fn from_assessments(
        green: &Assessment,
        baselines: &[(ServerGeneration, Assessment)],
    ) -> Self {
        Self {
            green_per_core: green.total_per_core().get(),
            baseline_per_core: baselines
                .iter()
                .map(|(g, a)| (*g, a.total_per_core().get()))
                .collect(),
        }
    }

    /// GreenSKU CO₂e per core used by the model.
    pub fn green_per_core(&self) -> f64 {
        self.green_per_core
    }

    /// Decides adoption for `app` against the baseline of `generation`,
    /// with the scaling factor supplied by `perf`.
    ///
    /// # Panics
    ///
    /// Panics if `generation` was not supplied at construction.
    pub fn decide(
        &self,
        perf: &dyn PerformanceComponent,
        app: &ApplicationModel,
        generation: ServerGeneration,
    ) -> AdoptionDecision {
        let base_per_core = *self
            .baseline_per_core
            .get(&generation)
            // gsf-lint: allow(P1) -- documented "# Panics" contract: a generation missing at construction is a caller bug, not a model state
            .unwrap_or_else(|| panic!("no baseline assessment for {generation}"));
        match perf.scaling_factor(app, generation) {
            ScalingFactor::MoreThanOnePointFive => AdoptionDecision::RejectPerformance,
            factor => {
                let f = factor.value().expect("finite scaling factor");
                if f * self.green_per_core < base_per_core {
                    AdoptionDecision::Adopt { factor: f }
                } else {
                    AdoptionDecision::RejectCarbon { factor: f }
                }
            }
        }
    }

    /// The core-hour-weighted fraction of the fleet mix that adopts
    /// against `generation` (a summary statistic the experiments report).
    pub fn adoption_rate(
        &self,
        perf: &dyn PerformanceComponent,
        mix: &gsf_workloads::FleetMix,
        generation: ServerGeneration,
    ) -> f64 {
        mix.weighted_fraction(|app| self.decide(perf, app, generation).adopts())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::components::{DefaultCarbon, DefaultPerformance};
    use gsf_carbon::datasets::open_source;
    use gsf_carbon::ModelParams;
    use gsf_perf::{MemoryPlacement, SkuPerfProfile};
    use gsf_workloads::{catalog, FleetMix};

    fn model() -> AdoptionModel {
        let carbon = DefaultCarbon::new(ModelParams::default_open_source());
        AdoptionModel::new(
            &carbon,
            &open_source::greensku_full(),
            &[
                (ServerGeneration::Gen1, open_source::baseline_gen1()),
                (ServerGeneration::Gen2, open_source::baseline_gen2()),
                (ServerGeneration::Gen3, open_source::baseline_gen3()),
            ],
        )
        .unwrap()
    }

    fn perf() -> DefaultPerformance {
        DefaultPerformance::new(SkuPerfProfile::greensku_cxl(), MemoryPlacement::Pond)
    }

    #[test]
    fn scale_out_apps_adopt_vs_gen3() {
        let m = model();
        let p = perf();
        for name in ["Redis", "Shore", "Img-DNN", "Caddy", "Envoy"] {
            let d = m.decide(&p, &catalog::by_name(name).unwrap(), ServerGeneration::Gen3);
            assert_eq!(d, AdoptionDecision::Adopt { factor: 1.0 }, "{name}");
        }
    }

    #[test]
    fn unscalable_apps_rejected_on_performance() {
        let m = model();
        let p = perf();
        for name in ["Masstree", "Silo"] {
            let d = m.decide(&p, &catalog::by_name(name).unwrap(), ServerGeneration::Gen3);
            assert_eq!(d, AdoptionDecision::RejectPerformance, "{name}");
        }
    }

    #[test]
    fn scaled_apps_adopt_when_carbon_still_favors_green() {
        // Moses needs 1.25× cores; GreenSKU-Full's per-core carbon is
        // ~26 % below Gen3's, so 1.25 × green < 1 × base holds.
        let m = model();
        let d = m.decide(&perf(), &catalog::by_name("Moses").unwrap(), ServerGeneration::Gen3);
        assert_eq!(d.factor(), Some(1.25));
    }

    #[test]
    fn majority_of_core_hours_adopt_vs_gen3() {
        // The paper's packing study assumes broad adoption; Table III
        // rejects only Masstree and Silo vs Gen3 (2 of 4 big-data apps).
        let m = model();
        let rate = m.adoption_rate(&perf(), &FleetMix::standard(), ServerGeneration::Gen3);
        assert!(rate > 0.7 && rate < 1.0, "adoption rate {rate}");
    }

    #[test]
    fn carbon_rejection_branch_reachable() {
        // With a GreenSKU as carbon-expensive as the baseline, scaled
        // apps must reject on carbon.
        let carbon = DefaultCarbon::new(ModelParams::default_open_source());
        let m = AdoptionModel::new(
            &carbon,
            &open_source::baseline_gen3(), // "green" = baseline itself
            &[(ServerGeneration::Gen3, open_source::baseline_gen3())],
        )
        .unwrap();
        let d = m.decide(&perf(), &catalog::by_name("Moses").unwrap(), ServerGeneration::Gen3);
        assert_eq!(d, AdoptionDecision::RejectCarbon { factor: 1.25 });
        assert!(!d.adopts());
        assert_eq!(d.factor(), None);
    }

    #[test]
    #[should_panic(expected = "no baseline assessment")]
    fn missing_generation_panics() {
        let carbon = DefaultCarbon::new(ModelParams::default_open_source());
        let m = AdoptionModel::new(
            &carbon,
            &open_source::greensku_full(),
            &[(ServerGeneration::Gen3, open_source::baseline_gen3())],
        )
        .unwrap();
        m.decide(&perf(), &catalog::by_name("Redis").unwrap(), ServerGeneration::Gen1);
    }
}
