//! One-page deployment reports: everything GSF knows about a design,
//! rendered as markdown for human review.
//!
//! The paper "recommends humans in the SKU design process" (§IV); this
//! module produces the artifact those humans would review — SKU shape,
//! per-core carbon, adoption, cluster plan, savings, maintenance
//! overheads, and the top carbon-consuming applications.

use crate::attribution::AttributionReport;
use crate::components::{CarbonComponent, DefaultCarbon};
use crate::design::GreenSkuDesign;
use crate::error::GsfError;
use crate::pipeline::{GsfPipeline, PipelineOutcome};
use gsf_carbon::datasets::open_source;
use gsf_workloads::{catalog, Trace};
use std::fmt::Write as _;

/// Renders the full markdown report for `design` evaluated on `trace`.
///
/// # Errors
///
/// Propagates pipeline and carbon-model failures.
pub fn deployment_report(
    pipeline: &GsfPipeline,
    design: &GreenSkuDesign,
    trace: &Trace,
) -> Result<String, GsfError> {
    let outcome = pipeline.evaluate(design, trace)?;
    let carbon = DefaultCarbon::new(pipeline.config().carbon_params);
    let baseline = carbon.assess(&open_source::baseline_gen3())?;
    let green = carbon.assess(&design.carbon)?;
    let attribution = AttributionReport::new(
        &outcome.replay.usage,
        &catalog::applications(),
        &baseline,
        &green,
        pipeline.config().carbon_params.lifetime.hours(),
    );
    Ok(render(design, trace, &outcome, &attribution))
}

fn render(
    design: &GreenSkuDesign,
    trace: &Trace,
    o: &PipelineOutcome,
    attribution: &AttributionReport,
) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "# GSF deployment report — {}\n", design.name());

    let _ = writeln!(w, "## SKU");
    let _ = writeln!(
        w,
        "- {} cores, {:.0} GB memory ({:.0} GB CXL-attached), {:.0} TB SSD",
        design.carbon.cores(),
        design.carbon.memory_capacity().get(),
        design.carbon.cxl_memory_capacity().get(),
        design.carbon.ssd_capacity().get()
    );
    let _ = writeln!(
        w,
        "- average server power {:.0} W; embodied {:.0} kg CO2e \
         ({:.0} kg avoided through reuse)",
        design.carbon.average_power().get(),
        design.carbon.embodied().get(),
        design.carbon.embodied_avoided_by_reuse().get()
    );
    let _ = writeln!(
        w,
        "- per-core CO2e {:.1} kg vs baseline {:.1} kg ({:.1} % lower)\n",
        o.green_per_core,
        o.baseline_per_core,
        (1.0 - o.green_per_core / o.baseline_per_core) * 100.0
    );

    let _ = writeln!(w, "## Workload");
    let (peak_cores, peak_mem) = trace.peak_demand();
    let _ = writeln!(
        w,
        "- {} VMs over {:.0} h; peak demand {} cores / {:.0} GB",
        trace.vms().len(),
        trace.duration_s() / 3600.0,
        peak_cores,
        peak_mem
    );
    let _ = writeln!(
        w,
        "- adoption: {:.1} % of fleet core-hours run on the GreenSKU (vs Gen3)\n",
        o.adoption_rate * 100.0
    );

    let _ = writeln!(w, "## Cluster plan");
    let _ = writeln!(
        w,
        "- all-baseline: {} servers ({} with growth buffer)",
        o.baseline_only_servers, o.baseline_only_buffered
    );
    let _ = writeln!(
        w,
        "- mixed: {} baseline + {} GreenSKU ({} + {} buffered)",
        o.plan.baseline, o.plan.green, o.plan_buffered.baseline, o.plan_buffered.green
    );
    let _ = writeln!(
        w,
        "- placement: {} VMs on GreenSKUs, {} on baseline ({} overflowed); {} rejections",
        o.replay.placed_green, o.replay.placed_baseline, o.replay.green_overflow, o.replay.rejected
    );
    let _ = writeln!(
        w,
        "- maintenance: out-of-service fractions {:.3} % (baseline) / {:.3} % (GreenSKU)\n",
        o.oos_baseline * 100.0,
        o.oos_green * 100.0
    );

    let _ = writeln!(w, "## Savings");
    let _ = writeln!(
        w,
        "- cluster-level: **{:.1} %** vs the all-baseline cluster",
        o.cluster_savings * 100.0
    );
    let _ = writeln!(
        w,
        "- data-center-level: **{:.1} %** (compute's share of DC emissions applied)\n",
        o.dc_savings * 100.0
    );

    let _ = writeln!(w, "## Top applications by attributed carbon");
    for row in attribution.apps.iter().take(5) {
        let _ = writeln!(
            w,
            "- {}: {:.1} kg ({:.0} baseline + {:.0} GreenSKU core-hours)",
            row.app, row.kg_co2e, row.baseline_core_hours, row.green_core_hours
        );
    }
    let _ = writeln!(
        w,
        "\nAttributed savings vs an all-baseline counterfactual: {:.1} %.",
        attribution.attributed_savings() * 100.0
    );
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use gsf_stats::rng::SeedFactory;
    use gsf_workloads::{TraceGenerator, TraceParams};

    fn trace() -> Trace {
        TraceGenerator::new(TraceParams {
            duration_hours: 12.0,
            arrivals_per_hour: 40.0,
            ..TraceParams::default()
        })
        .generate(&SeedFactory::new(3), 0)
    }

    #[test]
    fn report_contains_every_section() {
        let pipeline = GsfPipeline::new(PipelineConfig::default());
        let report = deployment_report(&pipeline, &GreenSkuDesign::full(), &trace()).unwrap();
        for heading in
            ["# GSF deployment report", "## SKU", "## Workload", "## Cluster plan", "## Savings"]
        {
            assert!(report.contains(heading), "missing {heading}");
        }
        assert!(report.contains("GreenSKU-Full"));
        assert!(report.contains("Attributed savings"));
    }

    #[test]
    fn report_numbers_match_outcome() {
        let pipeline = GsfPipeline::new(PipelineConfig::default());
        let t = trace();
        let o = pipeline.evaluate(&GreenSkuDesign::cxl(), &t).unwrap();
        let report = deployment_report(&pipeline, &GreenSkuDesign::cxl(), &t).unwrap();
        assert!(report.contains(&format!(
            "- mixed: {} baseline + {} GreenSKU",
            o.plan.baseline, o.plan.green
        )));
    }
}
