//! Temporal carbon-aware scheduling on top of GreenSKUs.
//!
//! The paper's related work points out that spatial/temporal workload
//! shifting "can apply on top of GreenSKUs" (§IX). This module makes the
//! claim checkable: defer deferrable batch jobs (the DevOps builds) to
//! the region's cleanest hours and measure the *additional* operational
//! savings stacked on a GreenSKU's hardware savings.

use gsf_carbon::grid::RegionGrid;
use serde::{Deserialize, Serialize};

/// A deferrable batch job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchJob {
    /// Runtime in hours at the committed core count.
    pub runtime_hours: f64,
    /// Cores the job occupies.
    pub cores: u32,
    /// Earliest hour-of-day the job may start.
    pub release_hour: f64,
    /// Latest hour-of-day the job must finish by (may wrap past
    /// midnight; a 24 h window means fully flexible).
    pub deadline_hours_after_release: f64,
}

impl BatchJob {
    /// A fully flexible job released at midnight.
    pub fn flexible(runtime_hours: f64, cores: u32) -> Self {
        Self { runtime_hours, cores, release_hour: 0.0, deadline_hours_after_release: 24.0 }
    }
}

/// The result of scheduling one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledJob {
    /// Chosen start hour-of-day.
    pub start_hour: f64,
    /// Operational emissions if run immediately at release, arbitrary
    /// energy units × CI (kg CO₂e per kWh of job energy).
    pub immediate_ci: f64,
    /// Operational emissions at the chosen start.
    pub scheduled_ci: f64,
}

impl ScheduledJob {
    /// Fractional operational-emission reduction from deferral.
    pub fn savings(&self) -> f64 {
        if self.immediate_ci <= 0.0 {
            0.0
        } else {
            1.0 - self.scheduled_ci / self.immediate_ci
        }
    }
}

/// Mean carbon intensity over `[start, start + duration)` hours-of-day.
fn window_ci(region: &RegionGrid, start: f64, duration: f64) -> f64 {
    let steps = (duration * 4.0).ceil().max(1.0) as usize;
    (0..steps)
        .map(|i| region.ci_at_hour(start + duration * i as f64 / steps as f64).get())
        .sum::<f64>()
        / steps as f64
}

/// Schedules `job` at the start hour (on a 15-minute grid within its
/// feasible window) minimizing the mean carbon intensity over the job's
/// runtime.
pub fn schedule_job(region: &RegionGrid, job: &BatchJob) -> ScheduledJob {
    let latest_start = (job.deadline_hours_after_release - job.runtime_hours).max(0.0);
    let immediate_ci = window_ci(region, job.release_hour, job.runtime_hours);
    let mut best = (job.release_hour, immediate_ci);
    let steps = (latest_start * 4.0).ceil() as usize;
    for i in 0..=steps {
        let offset = latest_start * i as f64 / steps.max(1) as f64;
        let start = job.release_hour + offset;
        let ci = window_ci(region, start, job.runtime_hours);
        if ci < best.1 {
            best = (start, ci);
        }
    }
    ScheduledJob { start_hour: best.0, immediate_ci, scheduled_ci: best.1 }
}

/// Schedules a batch of jobs independently and returns the aggregate
/// core-hour-weighted operational savings.
pub fn schedule_batch(region: &RegionGrid, jobs: &[BatchJob]) -> (Vec<ScheduledJob>, f64) {
    let scheduled: Vec<ScheduledJob> = jobs.iter().map(|j| schedule_job(region, j)).collect();
    let weight = |j: &BatchJob| f64::from(j.cores) * j.runtime_hours;
    let immediate: f64 = jobs.iter().zip(&scheduled).map(|(j, s)| weight(j) * s.immediate_ci).sum();
    let deferred: f64 = jobs.iter().zip(&scheduled).map(|(j, s)| weight(j) * s.scheduled_ci).sum();
    let savings = if immediate > 0.0 { 1.0 - deferred / immediate } else { 0.0 };
    (scheduled, savings)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_carbon::grid::region;

    fn solar_region() -> RegionGrid {
        region("australia-east").expect("region exists")
    }

    #[test]
    fn flexible_jobs_move_into_daylight() {
        let r = solar_region();
        let job = BatchJob::flexible(2.0, 8);
        let s = schedule_job(&r, &job);
        assert!(s.start_hour > 6.0 && s.start_hour < 16.0, "start {}", s.start_hour);
        assert!(s.savings() > 0.1, "savings {}", s.savings());
    }

    #[test]
    fn inflexible_jobs_cannot_save() {
        let r = solar_region();
        let job = BatchJob {
            runtime_hours: 2.0,
            cores: 8,
            release_hour: 0.0,
            deadline_hours_after_release: 2.0, // must start immediately
        };
        let s = schedule_job(&r, &job);
        assert_eq!(s.start_hour, 0.0);
        assert!(s.savings().abs() < 1e-9);
    }

    #[test]
    fn batch_savings_weighted_by_core_hours() {
        let r = solar_region();
        let jobs = vec![
            BatchJob::flexible(1.0, 16), // flexible, heavy
            BatchJob {
                runtime_hours: 1.0,
                cores: 1,
                release_hour: 0.0,
                deadline_hours_after_release: 1.0,
            }, // stuck at midnight, light
        ];
        let (scheduled, savings) = schedule_batch(&r, &jobs);
        assert_eq!(scheduled.len(), 2);
        // Dominated by the flexible heavy job.
        assert!(savings > 0.1, "{savings}");
        assert!(savings < scheduled[0].savings() + 1e-9);
    }

    #[test]
    fn flat_grids_offer_nothing() {
        // A grid with no solar component has no diurnal structure, so
        // deferral cannot help at all.
        let flat =
            RegionGrid { name: "flat", grid_ci: 0.4, renewable_fraction: 0.5, solar_share: 0.0 };
        let s = schedule_job(&flat, &BatchJob::flexible(2.0, 8));
        assert!(s.savings().abs() < 1e-9, "savings {}", s.savings());
    }

    #[test]
    fn solar_heavy_grids_offer_more_than_wind_heavy_ones() {
        let solar = schedule_job(&solar_region(), &BatchJob::flexible(2.0, 8)).savings();
        let wind =
            schedule_job(&region("europe-north").unwrap(), &BatchJob::flexible(2.0, 8)).savings();
        assert!(solar > wind, "solar {solar} vs wind {wind}");
    }

    #[test]
    fn temporal_stacks_on_greensku_savings() {
        // §IX's composition claim, end to end: a build on GreenSKU-Full
        // saves hardware carbon; deferring it to the cleanest window
        // saves additional *operational* carbon multiplicatively.
        use gsf_carbon::datasets::open_source;
        use gsf_carbon::{CarbonModel, ModelParams};
        let r = solar_region();
        let model = CarbonModel::new(
            ModelParams::default_open_source().with_carbon_intensity(r.average_ci()),
        );
        let hardware =
            model.savings(&open_source::baseline_gen3(), &open_source::greensku_full()).unwrap();
        let temporal = schedule_job(&r, &BatchJob::flexible(2.0, 8)).savings();
        // Combined operational factor: (1-op_savings)·(1-temporal) —
        // strictly better than either alone.
        let combined_op = 1.0 - (1.0 - hardware.operational) * (1.0 - temporal);
        assert!(combined_op > hardware.operational);
        assert!(combined_op > temporal);
    }
}
