//! GSF — the GreenSKU Framework (the paper's primary contribution).
//!
//! GSF estimates a data center's emissions from deploying a GreenSKU at
//! scale. It composes seven components (Fig. 6 of the paper) through
//! typed interfaces, so a cloud provider can swap any implementation
//! while keeping the data flow:
//!
//! ```text
//!  carbon data ─→ [Carbon model] ─→ CO₂e per core ──────────────┐
//!  apps ──→ [Performance] ─→ scaling factors ─→ [Adoption] ─────┤
//!  AFRs ──→ [Maintenance] ─→ out-of-service overhead ───────────┤
//!  VM trace ─→ [VM allocation] ⇄ [Cluster sizing] ─→ #servers ──┼─→ DC emissions
//!                                  [Growth buffer] ─→ buffer ───┘
//! ```
//!
//! The component traits live in [`components`]; production-faithful
//! default implementations (backed by `gsf-carbon`, `gsf-perf`,
//! `gsf-vmalloc`, `gsf-maintenance`, `gsf-cluster`) are provided
//! alongside each trait. [`pipeline::GsfPipeline`] wires them together
//! and produces the headline outputs: per-core savings (Table IV/VIII),
//! cluster-level savings across carbon intensities (Figs. 11/12), and
//! packing statistics (Figs. 9/10).
//!
//! # Example
//!
//! ```
//! use gsf_core::design::GreenSkuDesign;
//! use gsf_core::pipeline::{GsfPipeline, PipelineConfig};
//! use gsf_workloads::{TraceGenerator, TraceParams};
//! use gsf_stats::rng::SeedFactory;
//!
//! let trace = TraceGenerator::new(TraceParams {
//!     duration_hours: 12.0,
//!     arrivals_per_hour: 40.0,
//!     ..TraceParams::default()
//! })
//! .generate(&SeedFactory::new(1), 0);
//!
//! let pipeline = GsfPipeline::new(PipelineConfig::default());
//! let outcome = pipeline.evaluate(&GreenSkuDesign::full(), &trace)?;
//! assert!(outcome.cluster_savings > 0.0);
//! # Ok::<(), gsf_core::error::GsfError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod adoption;
pub mod attribution;
pub mod components;
pub mod context;
pub mod design;
pub mod error;
pub mod pipeline;
pub mod report;
pub mod search;
pub mod temporal;

pub use adoption::{AdoptionDecision, AdoptionModel};
pub use attribution::AttributionReport;
pub use context::{CacheStats, EvalContext, SizingOutcome};
pub use design::GreenSkuDesign;
pub use error::GsfError;
pub use pipeline::{FleetOutcome, GsfPipeline, PipelineConfig, PipelineOutcome, VmRouter};
