//! Shared evaluation context: a thread-safe carbon-assessment cache.
//!
//! Every GSF evaluation needs the same handful of assessments — the
//! Gen1–Gen3 baselines and the design under test — and the hot paths
//! (`GsfPipeline::evaluate_at`, `search::evaluate_space`, the Fig. 11/12
//! sweeps) used to recompute them several times per call: once inside
//! [`crate::pipeline::VmRouter`], once for the pipeline's own emission
//! accounting, and once per candidate for the shared baseline. The
//! [`EvalContext`] memoizes assessments keyed by the exact
//! `(ModelParams, ServerSpec)` pair, so each SKU is assessed once per
//! parameter set no matter how many pipeline stages or worker threads
//! ask for it.
//!
//! The context also memoizes the *sizing stage* — the two right-sizing
//! binary searches plus the final buffered replay, which dominate
//! `evaluate_at` wall-clock. Sizing depends on the grid carbon
//! intensity only through the router's adoption decisions, so a Fig.
//! 11/12 sweep whose intensities route identically runs the expensive
//! searches once per distinct decision table instead of once per point
//! (see [`EvalContext::sizing`]).
//!
//! Keys are *structural*: every `f64` field is keyed by its bit pattern
//! (`f64::to_bits`), so a cache hit is only possible when the inputs are
//! bitwise identical — cached and uncached evaluations therefore produce
//! bitwise-identical outcomes.

use crate::components::{CarbonComponent, DefaultCarbon};
use gsf_carbon::{Assessment, CarbonError, ModelParams, ServerSpec};
use gsf_cluster::sizing::ClusterPlan;
use gsf_vmalloc::{FaultSummary, PlacementPolicy, PreparedTrace, ServerShape, SimOutcome};
use gsf_workloads::{ServerGeneration, Trace};
use parking_lot::Mutex;
// gsf-lint: allow-file(D1) -- the memo caches below are pure point lookups
// keyed by bit-exact hashes; they are never iterated, so their order cannot
// reach any model output (CacheStats only reads lengths and counters).
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Structural cache key: the bit-exact content of a
/// `(ModelParams, ServerSpec)` pair, flattened into words.
///
/// Equality of keys is equality of every field bit pattern — there are
/// no hash-collision false hits because the full encoding is the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AssessmentKey(Vec<u64>);

impl AssessmentKey {
    fn of(params: &ModelParams, sku: &ServerSpec) -> Self {
        let mut w = KeyWriter::default();
        // ModelParams (all Copy fields).
        w.f64(params.carbon_intensity.get());
        w.f64(params.lifetime.get());
        w.u64(u64::from(params.rack.space_u));
        w.f64(params.rack.power_capacity.get());
        w.f64(params.rack.misc_power.get());
        w.f64(params.rack.misc_embodied.get());
        w.f64(params.overheads.pue);
        w.f64(params.overheads.network_storage_power_per_rack.get());
        w.f64(params.overheads.network_storage_embodied_per_rack.get());
        w.f64(params.overheads.building_embodied_per_rack.get());
        // ServerSpec.
        w.str(sku.name());
        w.u64(u64::from(sku.cores()));
        w.u64(u64::from(sku.form_factor_u()));
        w.u64(sku.components().len() as u64);
        for c in sku.components() {
            w.str(c.name());
            w.u64(c.class() as u64);
            w.f64(c.quantity());
            w.u64(u64::from(c.is_reused()));
            w.u64(u64::from(c.device_count()));
            w.u64(u64::from(c.pcie_lanes()));
            // The derived per-component numbers pin down TDP, derate,
            // loss factor, and embodied-per-unit exactly (they are the
            // only way those fields enter an assessment).
            w.f64(c.nameplate_power().get());
            w.f64(c.average_power().get());
            w.f64(c.embodied().get());
            w.f64(c.embodied_if_new().get());
        }
        Self(w.words)
    }
}

/// Packs mixed fields into `u64` words with unambiguous framing.
#[derive(Default)]
struct KeyWriter {
    words: Vec<u64>,
}

impl KeyWriter {
    fn u64(&mut self, v: u64) {
        self.words.push(v);
    }

    fn f64(&mut self, v: f64) {
        self.words.push(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        // Length prefix keeps concatenated buffers unambiguous.
        self.words.push(b.len() as u64);
        for chunk in b.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.words.push(u64::from_le_bytes(buf));
        }
    }
}

/// Structural key for the memoized sizing searches: the trace's 128-bit
/// [`Trace::content_hash`] plus everything the sizing + replay stage
/// depends on — the router's per-(application, generation) decision
/// table, both server shapes, the placement policy, the growth-buffer
/// fraction, the fault-model signature (so fault-injected and
/// fault-free evaluations never share an entry, keeping cached and
/// uncached paths bit-identical in both modes), and the shard
/// signature `(shards, SHARD_ROUTING_VERSION)` — sharded and unsharded
/// sizings have different semantics and must never share an entry.
///
/// The key used to embed the *entire trace byte stream*
/// (`w.bytes(&trace.encode())`), making every cache probe O(trace) to
/// build, hash, and compare — on fleet-sized traces the key machinery
/// cost more than some of the probes it memoized. The content hash
/// keeps the key O(1)-sized; hashing still walks the trace once, but
/// without allocating the encode buffer, and equality checks are now
/// constant-time. The hash covers every encoded field bit-for-bit, so
/// the only behavior change from byte-stream keys would be a 128-bit
/// collision between distinct traces.
///
/// The carbon intensity is deliberately *not* part of the key: sizing
/// depends on the grid only through the adoption decisions, so two
/// intensities that route identically share one sizing computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SizingKey(Vec<u64>);

impl SizingKey {
    #[allow(clippy::too_many_arguments)]
    fn of(
        trace_hash: (u64, u64),
        decision_signature: &[u64],
        baseline_shape: ServerShape,
        green_shape: ServerShape,
        policy: PlacementPolicy,
        buffer_fraction: f64,
        fault_signature: &[u64],
        shards: usize,
    ) -> Self {
        let mut w = KeyWriter::default();
        w.u64(trace_hash.0);
        w.u64(trace_hash.1);
        w.u64(shards.max(1) as u64);
        w.u64(gsf_vmalloc::SHARD_ROUTING_VERSION);
        w.u64(decision_signature.len() as u64);
        for &word in decision_signature {
            w.u64(word);
        }
        w.u64(u64::from(baseline_shape.cores));
        w.f64(baseline_shape.mem_gb);
        w.u64(u64::from(green_shape.cores));
        w.f64(green_shape.mem_gb);
        w.u64(match policy {
            PlacementPolicy::BestFit => 0,
            PlacementPolicy::FirstFit => 1,
            PlacementPolicy::WorstFit => 2,
        });
        w.f64(buffer_fraction);
        w.u64(fault_signature.len() as u64);
        for &word in fault_signature {
            w.u64(word);
        }
        Self(w.words)
    }
}

/// Structural key for the prepared-trace cache: the trace's 128-bit
/// [`Trace::content_hash`] plus the routing decision table the plan was
/// resolved against. A [`PreparedTrace`] depends on nothing else — not
/// the cluster shapes, policy, buffer, fault model, or shard count
/// (shard routing consumes a prepared trace, it does not change one) —
/// so one plan serves every sizing probe, buffer level, shard count,
/// and fault configuration of a routing-identical sweep. Like
/// [`SizingKey`], the content hash replaces the former O(trace)
/// embedded byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PreparedKey(Vec<u64>);

impl PreparedKey {
    fn of(trace_hash: (u64, u64), decision_signature: &[u64]) -> Self {
        let mut w = KeyWriter::default();
        w.u64(trace_hash.0);
        w.u64(trace_hash.1);
        w.u64(decision_signature.len() as u64);
        for &word in decision_signature {
            w.u64(word);
        }
        Self(w.words)
    }
}

/// The trace-dependent heavy half of one pipeline evaluation: the two
/// right-sizing binary searches plus the final replay on the buffered
/// mixed cluster. These dominate `evaluate_at` wall-clock and are
/// independent of the carbon intensity given a fixed routing decision
/// table, so [`EvalContext`] memoizes them under a [`SizingKey`].
#[derive(Debug, Clone, PartialEq)]
pub struct SizingOutcome {
    /// Right-sized all-baseline cluster (no buffer).
    pub baseline_only: u32,
    /// Right-sized mixed cluster (no buffer).
    pub plan: ClusterPlan,
    /// Replay statistics on the buffered mixed cluster.
    pub replay: SimOutcome,
    /// Fault-injection statistics of that replay (all-zero when fault
    /// injection is disabled).
    pub faults: FaultSummary,
}

/// Cache effectiveness counters (see [`EvalContext::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to run the carbon model.
    pub misses: usize,
    /// Distinct `(ModelParams, ServerSpec)` pairs currently cached.
    pub entries: usize,
    /// Sizing lookups answered from the cache.
    pub sizing_hits: usize,
    /// Sizing lookups that had to run the binary searches.
    pub sizing_misses: usize,
    /// Distinct sizing keys currently cached.
    pub sizing_entries: usize,
    /// Prepared-trace lookups answered from the cache.
    pub prepared_hits: usize,
    /// Prepared-trace lookups that had to build the plan.
    pub prepared_misses: usize,
    /// Distinct prepared plans currently cached.
    pub prepared_entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe assessment cache shared across pipeline stages, design
/// candidates, and worker threads.
///
/// Construct one [`EvalContext::new`] per program (or share via `Arc`)
/// and pass it to [`crate::pipeline::GsfPipeline::with_context`] /
/// [`crate::search::evaluate_space_with`]. [`EvalContext::uncached`]
/// builds a pass-through context that always recomputes — the reference
/// path for A/B tests and benches.
#[derive(Debug, Default)]
pub struct EvalContext {
    /// `None` disables caching (pass-through mode).
    cache: Option<Mutex<HashMap<AssessmentKey, Arc<Assessment>>>>,
    /// Memoized sizing searches + replays; `None` in pass-through mode.
    sizing: Option<Mutex<HashMap<SizingKey, Arc<SizingOutcome>>>>,
    /// Memoized prepared replay plans; `None` in pass-through mode.
    prepared: Option<Mutex<HashMap<PreparedKey, Arc<PreparedTrace>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    sizing_hits: AtomicUsize,
    sizing_misses: AtomicUsize,
    prepared_hits: AtomicUsize,
    prepared_misses: AtomicUsize,
}

impl EvalContext {
    /// A caching context.
    pub fn new() -> Self {
        Self {
            cache: Some(Mutex::new(HashMap::new())),
            sizing: Some(Mutex::new(HashMap::new())),
            prepared: Some(Mutex::new(HashMap::new())),
            ..Self::default()
        }
    }

    /// A pass-through context that recomputes every assessment and
    /// sizing search (the uncached reference path).
    pub fn uncached() -> Self {
        Self::default()
    }

    /// Whether this context caches.
    pub fn is_caching(&self) -> bool {
        self.cache.is_some()
    }

    /// Assesses `sku` under `params`, returning the cached assessment
    /// when the bit-identical pair was assessed before.
    ///
    /// # Errors
    ///
    /// Propagates carbon-model failures (never cached).
    pub fn assess(
        &self,
        params: &ModelParams,
        sku: &ServerSpec,
    ) -> Result<Arc<Assessment>, CarbonError> {
        let Some(cache) = &self.cache else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(DefaultCarbon::new(*params).assess(sku)?));
        };
        let key = AssessmentKey::of(params, sku);
        if let Some(hit) = cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Assess outside the lock: misses are the expensive path and
        // other workers should not serialize behind them. A racing
        // duplicate computes the same value bit-for-bit, so last-write
        // -wins insertion is harmless.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let assessment = Arc::new(DefaultCarbon::new(*params).assess(sku)?);
        cache.lock().insert(key, Arc::clone(&assessment));
        Ok(assessment)
    }

    /// The Gen1–Gen3 baseline assessments under `params`, each served
    /// from the cache after the first call.
    ///
    /// # Errors
    ///
    /// Propagates carbon-model failures.
    pub fn baselines(
        &self,
        params: &ModelParams,
    ) -> Result<Vec<(ServerGeneration, Arc<Assessment>)>, CarbonError> {
        use gsf_carbon::datasets::open_source;
        Ok(vec![
            (ServerGeneration::Gen1, self.assess(params, &open_source::baseline_gen1())?),
            (ServerGeneration::Gen2, self.assess(params, &open_source::baseline_gen2())?),
            (ServerGeneration::Gen3, self.assess(params, &open_source::baseline_gen3())?),
        ])
    }

    /// The Gen3 baseline assessment under `params` (cached).
    ///
    /// # Errors
    ///
    /// Propagates carbon-model failures.
    pub fn gen3(&self, params: &ModelParams) -> Result<Arc<Assessment>, CarbonError> {
        self.assess(params, &gsf_carbon::datasets::open_source::baseline_gen3())
    }

    /// Runs (or replays) the sizing + replay stage for one pipeline
    /// evaluation, memoized by the exact `(trace, decision table,
    /// shapes, policy, buffer, faults, shards)` inputs. `shards <= 1`
    /// keys identically to `1` — both select the unsharded semantics.
    ///
    /// `compute` must be a pure function of those inputs — it is run on
    /// a miss and its result is shared with every later bit-identical
    /// lookup, so cached and uncached contexts stay bitwise-identical.
    ///
    /// # Errors
    ///
    /// Propagates `compute` failures (never cached).
    #[allow(clippy::too_many_arguments)]
    pub fn sizing<E>(
        &self,
        trace: &Trace,
        decision_signature: &[u64],
        baseline_shape: ServerShape,
        green_shape: ServerShape,
        policy: PlacementPolicy,
        buffer_fraction: f64,
        fault_signature: &[u64],
        shards: usize,
        compute: impl FnOnce() -> Result<SizingOutcome, E>,
    ) -> Result<Arc<SizingOutcome>, E> {
        self.sizing_hashed(
            trace.content_hash(),
            decision_signature,
            baseline_shape,
            green_shape,
            policy,
            buffer_fraction,
            fault_signature,
            shards,
            compute,
        )
    }

    /// [`Self::sizing`] keyed by a precomputed
    /// [`Trace::content_hash`] — the entry point for streamed
    /// evaluations, which obtain the verified hash from the chunked
    /// decoder without ever materializing a `Trace`. A streamed and an
    /// in-memory evaluation of the same trace content share cache
    /// entries (the incremental digest is pinned equal to the
    /// in-memory one).
    ///
    /// # Errors
    ///
    /// Propagates `compute` failures (never cached).
    #[allow(clippy::too_many_arguments)]
    pub fn sizing_hashed<E>(
        &self,
        trace_hash: (u64, u64),
        decision_signature: &[u64],
        baseline_shape: ServerShape,
        green_shape: ServerShape,
        policy: PlacementPolicy,
        buffer_fraction: f64,
        fault_signature: &[u64],
        shards: usize,
        compute: impl FnOnce() -> Result<SizingOutcome, E>,
    ) -> Result<Arc<SizingOutcome>, E> {
        let Some(sizing) = &self.sizing else {
            self.sizing_misses.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(compute()?));
        };
        let key = SizingKey::of(
            trace_hash,
            decision_signature,
            baseline_shape,
            green_shape,
            policy,
            buffer_fraction,
            fault_signature,
            shards,
        );
        if let Some(hit) = sizing.lock().get(&key) {
            self.sizing_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Compute outside the lock (see `assess`): racing duplicates
        // produce the same value bit-for-bit.
        self.sizing_misses.fetch_add(1, Ordering::Relaxed);
        let outcome = Arc::new(compute()?);
        sizing.lock().insert(key, Arc::clone(&outcome));
        Ok(outcome)
    }

    /// Builds (or replays) the prepared trace plan for one
    /// (trace, routing decision) pair, memoized by the exact trace
    /// encoding and decision table. All sweep points whose intensities
    /// route identically share one plan — the same key granularity as
    /// [`Self::sizing`], minus everything a [`PreparedTrace`] does not
    /// depend on.
    ///
    /// `build` must be a pure function of those inputs (the adoption
    /// transform is a pure function of the `VmSpec` given a decision
    /// table), so cached and uncached contexts stay bitwise-identical.
    pub fn prepared(
        &self,
        trace: &Trace,
        decision_signature: &[u64],
        build: impl FnOnce() -> PreparedTrace,
    ) -> Arc<PreparedTrace> {
        self.prepared_by_hash(trace.content_hash(), decision_signature, build)
    }

    /// [`Self::prepared`] keyed by a precomputed
    /// [`Trace::content_hash`] — used by the streamed pipeline, which
    /// knows the verified digest from the chunk footer before any plan
    /// is built. Shares entries with the in-memory path.
    pub fn prepared_by_hash(
        &self,
        trace_hash: (u64, u64),
        decision_signature: &[u64],
        build: impl FnOnce() -> PreparedTrace,
    ) -> Arc<PreparedTrace> {
        let Some(prepared) = &self.prepared else {
            self.prepared_misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(build());
        };
        let key = PreparedKey::of(trace_hash, decision_signature);
        if let Some(hit) = prepared.lock().get(&key) {
            self.prepared_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Build outside the lock (see `assess`): racing duplicates
        // produce the same plan bit-for-bit.
        self.prepared_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        prepared.lock().insert(key, Arc::clone(&plan));
        plan
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.as_ref().map_or(0, |c| c.lock().len()),
            sizing_hits: self.sizing_hits.load(Ordering::Relaxed),
            sizing_misses: self.sizing_misses.load(Ordering::Relaxed),
            sizing_entries: self.sizing.as_ref().map_or(0, |c| c.lock().len()),
            prepared_hits: self.prepared_hits.load(Ordering::Relaxed),
            prepared_misses: self.prepared_misses.load(Ordering::Relaxed),
            prepared_entries: self.prepared.as_ref().map_or(0, |c| c.lock().len()),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_carbon::datasets::open_source;
    use gsf_carbon::units::CarbonIntensity;

    fn params() -> ModelParams {
        ModelParams::default_open_source()
    }

    #[test]
    fn second_assessment_is_a_hit_and_identical() {
        let ctx = EvalContext::new();
        let p = params();
        let sku = open_source::baseline_gen3();
        let a = ctx.assess(&p, &sku).unwrap();
        let b = ctx.assess(&p, &sku).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached Arc");
        let s = ctx.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_params_miss() {
        let ctx = EvalContext::new();
        let sku = open_source::baseline_gen3();
        let a = ctx.assess(&params(), &sku).unwrap();
        let p2 = params().with_carbon_intensity(CarbonIntensity::new(0.2));
        let b = ctx.assess(&p2, &sku).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(
            a.total_per_core().get().to_bits(),
            b.total_per_core().get().to_bits(),
            "different CI must change the assessment"
        );
        assert_eq!(ctx.stats().entries, 2);
    }

    #[test]
    fn different_skus_miss() {
        let ctx = EvalContext::new();
        let p = params();
        ctx.assess(&p, &open_source::baseline_gen2()).unwrap();
        ctx.assess(&p, &open_source::baseline_gen3()).unwrap();
        assert_eq!(ctx.stats().misses, 2);
    }

    #[test]
    fn cached_equals_uncached_bitwise() {
        let cached = EvalContext::new();
        let uncached = EvalContext::uncached();
        let p = params();
        for sku in open_source::table_viii_skus() {
            let a = cached.assess(&p, &sku).unwrap();
            let b = uncached.assess(&p, &sku).unwrap();
            assert_eq!(
                a.total_per_core().get().to_bits(),
                b.total_per_core().get().to_bits(),
                "{}",
                sku.name()
            );
            assert_eq!(*a, *b);
        }
        assert_eq!(uncached.stats().hits, 0);
        assert_eq!(uncached.stats().entries, 0);
        assert!(!uncached.is_caching() && cached.is_caching());
    }

    #[test]
    fn baselines_cached_across_calls() {
        let ctx = EvalContext::new();
        let p = params();
        let first = ctx.baselines(&p).unwrap();
        let again = ctx.baselines(&p).unwrap();
        assert_eq!(first.len(), 3);
        for ((g1, a1), (g2, a2)) in first.iter().zip(&again) {
            assert_eq!(g1, g2);
            assert!(Arc::ptr_eq(a1, a2));
        }
        let s = ctx.stats();
        assert_eq!((s.hits, s.misses), (3, 3));
    }

    #[test]
    fn key_distinguishes_name_framing() {
        // "ab" + "c" must not collide with "a" + "bc".
        let mut w1 = KeyWriter::default();
        w1.str("ab");
        w1.str("c");
        let mut w2 = KeyWriter::default();
        w2.str("a");
        w2.str("bc");
        assert_ne!(w1.words, w2.words);
    }

    #[test]
    fn sizing_cache_hits_and_passthrough() {
        use gsf_stats::rng::SeedFactory;
        use gsf_workloads::{TraceGenerator, TraceParams};
        let trace = TraceGenerator::new(TraceParams {
            duration_hours: 2.0,
            arrivals_per_hour: 10.0,
            ..TraceParams::default()
        })
        .generate(&SeedFactory::new(5), 0);
        let replay = {
            let mut sim = gsf_vmalloc::AllocationSim::new(
                gsf_vmalloc::ClusterConfig::baseline_only(4),
                PlacementPolicy::BestFit,
            );
            sim.replay(&trace, &|vm| gsf_vmalloc::PlacementRequest::baseline_only(vm))
        };
        let outcome = || {
            Ok::<_, CarbonError>(SizingOutcome {
                baseline_only: 7,
                plan: ClusterPlan { baseline: 3, green: 5 },
                replay: replay.clone(),
                faults: FaultSummary::default(),
            })
        };
        let sig = [1u64, 2, 3];
        let none = gsf_maintenance::FaultModel::none().signature();
        let shape = ServerShape { cores: 80, mem_gb: 768.0 };
        let ctx = EvalContext::new();
        let a = ctx
            .sizing(&trace, &sig, shape, shape, PlacementPolicy::BestFit, 0.1, &none, 1, outcome)
            .unwrap();
        let b = ctx
            .sizing(&trace, &sig, shape, shape, PlacementPolicy::BestFit, 0.1, &none, 1, outcome)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a hit");
        // Any changed input misses: decision table, policy, buffer,
        // fault model.
        ctx.sizing(&trace, &[9u64], shape, shape, PlacementPolicy::BestFit, 0.1, &none, 1, outcome)
            .unwrap();
        ctx.sizing(&trace, &sig, shape, shape, PlacementPolicy::FirstFit, 0.1, &none, 1, outcome)
            .unwrap();
        ctx.sizing(&trace, &sig, shape, shape, PlacementPolicy::BestFit, 0.2, &none, 1, outcome)
            .unwrap();
        let faulted = gsf_maintenance::FaultModel::paper(3).signature();
        ctx.sizing(&trace, &sig, shape, shape, PlacementPolicy::BestFit, 0.1, &faulted, 1, outcome)
            .unwrap();
        let s = ctx.stats();
        assert_eq!((s.sizing_hits, s.sizing_misses, s.sizing_entries), (1, 5, 5));

        let passthrough = EvalContext::uncached();
        let c = passthrough
            .sizing(&trace, &sig, shape, shape, PlacementPolicy::BestFit, 0.1, &none, 1, outcome)
            .unwrap();
        let d = passthrough
            .sizing(&trace, &sig, shape, shape, PlacementPolicy::BestFit, 0.1, &none, 1, outcome)
            .unwrap();
        assert!(!Arc::ptr_eq(&c, &d), "uncached context recomputes");
        assert_eq!(passthrough.stats().sizing_entries, 0);
    }

    #[test]
    fn prepared_cache_hits_and_passthrough() {
        use gsf_stats::rng::SeedFactory;
        use gsf_workloads::{TraceGenerator, TraceParams};
        let trace = TraceGenerator::new(TraceParams {
            duration_hours: 2.0,
            arrivals_per_hour: 10.0,
            ..TraceParams::default()
        })
        .generate(&SeedFactory::new(5), 0);
        let build =
            || PreparedTrace::new(&trace, &|vm| gsf_vmalloc::PlacementRequest::baseline_only(vm));
        let sig = [1u64, 2, 3];
        let ctx = EvalContext::new();
        let a = ctx.prepared(&trace, &sig, build);
        let b = ctx.prepared(&trace, &sig, build);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a hit");
        // A different decision table misses (even on the same trace).
        let c = ctx.prepared(&trace, &[9u64], build);
        assert!(!Arc::ptr_eq(&a, &c));
        let s = ctx.stats();
        assert_eq!((s.prepared_hits, s.prepared_misses, s.prepared_entries), (1, 2, 2));

        let passthrough = EvalContext::uncached();
        let d = passthrough.prepared(&trace, &sig, build);
        let e = passthrough.prepared(&trace, &sig, build);
        assert!(!Arc::ptr_eq(&d, &e), "uncached context rebuilds");
        assert_eq!(*d, *e, "...but the plans are identical");
        assert_eq!(passthrough.stats().prepared_entries, 0);
    }

    #[test]
    fn sizing_key_includes_shard_signature() {
        use gsf_stats::rng::SeedFactory;
        use gsf_workloads::{TraceGenerator, TraceParams};
        let trace = TraceGenerator::new(TraceParams {
            duration_hours: 1.0,
            arrivals_per_hour: 5.0,
            ..TraceParams::default()
        })
        .generate(&SeedFactory::new(3), 0);
        let replay = {
            let mut sim = gsf_vmalloc::AllocationSim::new(
                gsf_vmalloc::ClusterConfig::baseline_only(4),
                PlacementPolicy::BestFit,
            );
            sim.replay(&trace, &|vm| gsf_vmalloc::PlacementRequest::baseline_only(vm))
        };
        let outcome = |n: u32| {
            let replay = replay.clone();
            move || {
                Ok::<_, CarbonError>(SizingOutcome {
                    baseline_only: n,
                    plan: ClusterPlan { baseline: n, green: 0 },
                    replay: replay.clone(),
                    faults: FaultSummary::default(),
                })
            }
        };
        let sig = [1u64];
        let none = gsf_maintenance::FaultModel::none().signature();
        let shape = ServerShape { cores: 80, mem_gb: 768.0 };
        let ctx = EvalContext::new();
        let run = |shards: usize, n: u32| {
            ctx.sizing(
                &trace,
                &sig,
                shape,
                shape,
                PlacementPolicy::BestFit,
                0.1,
                &none,
                shards,
                outcome(n),
            )
            .unwrap()
        };
        let a = run(1, 7);
        // shards = 0 and shards = 1 both mean "unsharded" and share an
        // entry; any larger count is a distinct semantics and must miss.
        assert!(Arc::ptr_eq(&a, &run(0, 99)), "0 and 1 key identically");
        let b = run(4, 11);
        assert!(!Arc::ptr_eq(&a, &b), "shard counts must not share entries");
        assert_eq!(b.baseline_only, 11);
        let s = ctx.stats();
        assert_eq!((s.sizing_hits, s.sizing_misses, s.sizing_entries), (1, 2, 2));
    }

    #[test]
    fn content_hash_keys_preserve_hit_miss_behavior() {
        // The content-hash keys must hit exactly when the byte-stream
        // keys hit: a structurally identical trace (rebuilt through the
        // codec, different allocation) hits; any field change misses.
        use gsf_stats::rng::SeedFactory;
        use gsf_workloads::{TraceGenerator, TraceParams};
        let trace = TraceGenerator::new(TraceParams {
            duration_hours: 1.0,
            arrivals_per_hour: 8.0,
            ..TraceParams::default()
        })
        .generate(&SeedFactory::new(9), 0);
        let rebuilt = Trace::decode(trace.encode().unwrap()).unwrap();
        let other = TraceGenerator::new(TraceParams {
            duration_hours: 1.0,
            arrivals_per_hour: 8.0,
            ..TraceParams::default()
        })
        .generate(&SeedFactory::new(9), 1);
        assert_eq!(trace, rebuilt);
        assert_ne!(trace, other);

        let sig = [1u64];
        let ctx = EvalContext::new();
        let build = |t: &Trace| {
            let t = t.clone();
            move || PreparedTrace::new(&t, &|vm| gsf_vmalloc::PlacementRequest::baseline_only(vm))
        };
        let a = ctx.prepared(&trace, &sig, build(&trace));
        let b = ctx.prepared(&rebuilt, &sig, build(&rebuilt));
        assert!(Arc::ptr_eq(&a, &b), "identical content must hit across allocations");
        let c = ctx.prepared(&other, &sig, build(&other));
        assert!(!Arc::ptr_eq(&a, &c), "different trace must miss");
        let s = ctx.stats();
        assert_eq!((s.prepared_hits, s.prepared_misses, s.prepared_entries), (1, 2, 2));

        // Same discrimination for the sizing cache.
        let replay = {
            let mut sim = gsf_vmalloc::AllocationSim::new(
                gsf_vmalloc::ClusterConfig::baseline_only(4),
                PlacementPolicy::BestFit,
            );
            sim.replay(&trace, &|vm| gsf_vmalloc::PlacementRequest::baseline_only(vm))
        };
        let outcome = || {
            Ok::<_, CarbonError>(SizingOutcome {
                baseline_only: 1,
                plan: ClusterPlan { baseline: 1, green: 0 },
                replay: replay.clone(),
                faults: FaultSummary::default(),
            })
        };
        let none = gsf_maintenance::FaultModel::none().signature();
        let shape = ServerShape { cores: 80, mem_gb: 768.0 };
        let run = |t: &Trace| {
            ctx.sizing(t, &sig, shape, shape, PlacementPolicy::BestFit, 0.1, &none, 1, outcome)
                .unwrap()
        };
        let x = run(&trace);
        assert!(Arc::ptr_eq(&x, &run(&rebuilt)));
        assert!(!Arc::ptr_eq(&x, &run(&other)));
    }

    #[test]
    fn concurrent_assessments_share_entries() {
        let ctx = std::sync::Arc::new(EvalContext::new());
        let p = params();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ctx = std::sync::Arc::clone(&ctx);
                s.spawn(move || {
                    for _ in 0..8 {
                        ctx.assess(&p, &open_source::baseline_gen3()).unwrap();
                    }
                });
            }
        });
        let stats = ctx.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits + stats.misses, 32);
        assert!(stats.hits >= 28, "at most one miss per racing thread: {stats:?}");
    }
}
