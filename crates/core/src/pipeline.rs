//! The end-to-end GSF pipeline: inputs (trace, carbon data, designs,
//! baselines, applications) → data-center emissions and savings.

use crate::adoption::AdoptionModel;
use crate::components::{DefaultMaintenance, DefaultPerformance, MaintenanceComponent};
use crate::context::EvalContext;
use crate::design::GreenSkuDesign;
use crate::error::GsfError;
use gsf_carbon::breakdown::{FleetCategory, FleetModel, DEFAULT_RENEWABLE_FRACTION};
use gsf_carbon::datasets::open_source;
use gsf_carbon::units::CarbonIntensity;
use gsf_carbon::{Assessment, ModelParams};
use gsf_cluster::{
    buffer::GrowthBufferPolicy,
    savings::savings_fraction,
    sharded::{
        replay_sharded, right_size_baseline_only_prepared_sharded,
        right_size_mixed_prepared_sharded,
    },
    sizing::{
        right_size_baseline_only_prepared, right_size_mixed_prepared, AvailabilitySlo, ClusterPlan,
        FaultInjection,
    },
};
use gsf_maintenance::{FaultModel, PoolDevices};
use gsf_vmalloc::{
    AllocationSim, AvailabilitySummary, ClusterConfig, FaultPlan, FaultSummary, PlacementPolicy,
    PlacementRequest, PreparedTrace, PreparedTraceBuilder, ServerShape, ShardedSim, SimOutcome,
};
use gsf_workloads::{
    catalog, ApplicationModel, FleetMix, ServerGeneration, Trace, TraceChunkReader, VmSpec,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Pipeline configuration: the GSF inputs that are not the trace or the
/// design itself.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Carbon-model parameters (Table VI).
    pub carbon_params: ModelParams,
    /// VM placement policy (production: best-fit).
    pub policy: PlacementPolicy,
    /// Growth-buffer policy (baseline-only, per §V).
    pub buffer: GrowthBufferPolicy,
    /// The fleet model used to translate cluster savings into
    /// data-center savings.
    pub fleet: FleetModel,
    /// Renewables fraction of the data center.
    pub renewable_fraction: f64,
    /// Maintenance component (AFRs + Fail-In-Place); its out-of-service
    /// fraction inflates cluster sizes (the Fig. 6 maintenance → cluster
    /// sizing edge).
    pub maintenance: DefaultMaintenance,
    /// Fault-injection model. [`FaultModel::none`] (the default) is a
    /// strict identity: sizing, replay, and every outcome field are
    /// bit-for-bit what they were before fault injection existed. An
    /// enabled model injects server failures into every sizing probe
    /// and the final replay, so plans provision against failure-induced
    /// capacity loss.
    pub faults: FaultModel,
    /// Availability SLO for fault-injected sizing, in VM-minutes of
    /// downtime per replay. `None` (the default) keeps the strict
    /// rule — every displaced VM must re-place within the evacuation
    /// pass budget. `Some(budget)` instead admits any cluster whose
    /// measured [`AvailabilitySummary::vm_minutes_lost`] stays within
    /// the budget, which lets repair-enabled fault models trade servers
    /// against bounded downtime. Ignored when fault injection is off.
    pub availability_slo: Option<f64>,
    /// Shard count for the replay engine. `<= 1` (the default) uses the
    /// unsharded engine bit-for-bit. `> 1` partitions every cluster into
    /// that many shards, routes each VM to a home shard by a stable hash
    /// (see `gsf_vmalloc::shard`), and replays shards on
    /// `gsf_cluster::parallel::default_workers()` threads — a *different*
    /// (deterministic) semantics from the unsharded engine, never a mere
    /// execution detail, which is why the sizing cache keys on it.
    pub shards: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            carbon_params: ModelParams::default_open_source(),
            policy: PlacementPolicy::BestFit,
            buffer: GrowthBufferPolicy::default_headroom(),
            fleet: FleetModel::azure_calibrated(),
            renewable_fraction: DEFAULT_RENEWABLE_FRACTION,
            maintenance: DefaultMaintenance::paper(),
            faults: FaultModel::none(),
            availability_slo: None,
            shards: 1,
        }
    }
}

/// What the pipeline produces for one (design, trace) evaluation.
///
/// Equality is exact (bitwise on the floating-point fields): the
/// pipeline is deterministic, so cached and uncached contexts — and any
/// worker count — must produce identical outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// The evaluated design's name.
    pub design: String,
    /// Right-sized all-baseline cluster (no buffer).
    pub baseline_only_servers: u32,
    /// All-baseline cluster including the growth buffer.
    pub baseline_only_buffered: u32,
    /// Right-sized mixed cluster (no buffer).
    pub plan: ClusterPlan,
    /// Mixed cluster including the (baseline-only) growth buffer.
    pub plan_buffered: ClusterPlan,
    /// Fraction of fleet core-hours adopting the GreenSKU vs Gen3.
    pub adoption_rate: f64,
    /// GreenSKU CO₂e per core (kg, at the configured carbon intensity).
    pub green_per_core: f64,
    /// Gen3 baseline CO₂e per core (kg).
    pub baseline_per_core: f64,
    /// Out-of-service fraction of baseline servers (maintenance
    /// component output).
    pub oos_baseline: f64,
    /// Out-of-service fraction of GreenSKU servers.
    pub oos_green: f64,
    /// Cluster-level carbon savings vs the all-baseline cluster.
    pub cluster_savings: f64,
    /// Data-center-level savings (cluster savings scaled by compute's
    /// share of DC emissions).
    pub dc_savings: f64,
    /// Allocation statistics from replaying the trace on the final
    /// buffered cluster.
    pub replay: SimOutcome,
    /// First-order expected fraction of cluster core capacity lost to
    /// failures over the fault model's horizon (0 when fault injection
    /// is disabled) — the failure analogue of the growth buffer's
    /// capacity fraction.
    pub expected_capacity_loss: f64,
    /// Fault-injection statistics from the final buffered replay
    /// (all-zero when fault injection is disabled).
    pub faults: FaultSummary,
    /// Availability accounting from the final buffered replay: VM-time
    /// lost to displacement, VM-time served, the displacement peak, and
    /// the blast radius of the widest correlated strike (all-zero when
    /// fault injection is disabled or the plan lands no faults).
    pub availability: AvailabilitySummary,
}

/// Routes VMs to pools: the adoption component packaged as the per-VM
/// placement transform the allocation simulator consumes.
///
/// Full-node VMs always go to baseline servers; VMs whose application
/// adopts the GreenSKU issue green-preferring requests scaled by the
/// application's scaling factor; everything else stays baseline-only.
pub struct VmRouter {
    adoption: AdoptionModel,
    perf: DefaultPerformance,
    apps: Vec<ApplicationModel>,
}

impl VmRouter {
    /// Builds a router for `design` under `params`, assessing the design
    /// and the Gen1–Gen3 baselines through a throwaway [`EvalContext`].
    ///
    /// Prefer [`Self::with_context`] when a shared context exists — the
    /// pipeline uses it so each SKU is assessed exactly once per
    /// parameter set instead of once per stage.
    ///
    /// # Errors
    ///
    /// Propagates carbon-assessment failures.
    pub fn new(params: ModelParams, design: &GreenSkuDesign) -> Result<Self, GsfError> {
        Self::with_context(&EvalContext::uncached(), params, design)
    }

    /// Builds a router for `design` under `params`, serving assessments
    /// from `ctx`.
    ///
    /// # Errors
    ///
    /// Propagates carbon-assessment failures.
    pub fn with_context(
        ctx: &EvalContext,
        params: ModelParams,
        design: &GreenSkuDesign,
    ) -> Result<Self, GsfError> {
        let green = ctx.assess(&params, &design.carbon)?;
        let baselines = ctx.baselines(&params)?;
        Ok(Self::from_assessments(&green, &baselines, design))
    }

    /// Builds a router from already-computed assessments (no carbon
    /// model runs).
    pub fn from_assessments(
        green: &Assessment,
        baselines: &[(ServerGeneration, Arc<Assessment>)],
        design: &GreenSkuDesign,
    ) -> Self {
        let owned: Vec<(ServerGeneration, Assessment)> =
            baselines.iter().map(|(g, a)| (*g, (**a).clone())).collect();
        Self {
            adoption: AdoptionModel::from_assessments(green, &owned),
            perf: DefaultPerformance::new(design.perf.clone(), design.placement),
            apps: catalog::applications(),
        }
    }

    /// The placement request for one VM.
    pub fn request(&self, vm: &VmSpec) -> PlacementRequest {
        if vm.full_node {
            return PlacementRequest::baseline_only(vm);
        }
        let app = &self.apps[usize::from(vm.app_index) % self.apps.len()];
        match self.adoption.decide(&self.perf, app, vm.generation).factor() {
            Some(factor) => PlacementRequest::prefer_green(vm, factor),
            None => PlacementRequest::baseline_only(vm),
        }
    }

    /// The underlying adoption model.
    pub fn adoption(&self) -> &AdoptionModel {
        &self.adoption
    }

    /// Structural fingerprint of every placement decision this router
    /// can make: the scaling factor (or a baseline-only marker) for
    /// each (application, generation) pair, bit-exact.
    ///
    /// Two routers with equal signatures produce identical
    /// [`PlacementRequest`]s for every VM — [`Self::request`] depends
    /// only on `full_node`, `app_index`, and `generation` — so the
    /// signature keys the sizing memoization in [`EvalContext`].
    pub fn decision_signature(&self) -> Vec<u64> {
        // Real scaling factors are finite, so they never collide with
        // the NaN bit pattern used to mark baseline-only decisions.
        const BASELINE_ONLY: u64 = u64::MAX;
        let generations = [ServerGeneration::Gen1, ServerGeneration::Gen2, ServerGeneration::Gen3];
        let mut sig = Vec::with_capacity(self.apps.len() * generations.len() + 1);
        sig.push(self.apps.len() as u64);
        for app in &self.apps {
            for generation in generations {
                sig.push(match self.adoption.decide(&self.perf, app, generation).factor() {
                    Some(factor) => factor.to_bits(),
                    None => BASELINE_ONLY,
                });
            }
        }
        sig
    }

    /// Core-hour-weighted Gen3 adoption rate of the standard fleet mix.
    pub fn adoption_rate_gen3(&self) -> f64 {
        self.adoption.adoption_rate(&self.perf, &FleetMix::standard(), ServerGeneration::Gen3)
    }
}

/// Aggregated pipeline outcomes across a fleet of cluster traces (the
/// data-center view: many clusters, one design decision).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Per-trace outcomes, in input order.
    pub per_trace: Vec<PipelineOutcome>,
    /// Mean cluster-level savings across traces.
    pub mean_cluster_savings: f64,
    /// Minimum cluster-level savings across traces.
    pub min_cluster_savings: f64,
    /// Maximum cluster-level savings across traces.
    pub max_cluster_savings: f64,
    /// Mean data-center-level savings across traces.
    pub mean_dc_savings: f64,
}

/// Everything one evaluation derives from `(design, carbon intensity)`
/// before touching any trace data: assessments, the router, shapes,
/// device counts, and the cache-key signatures. Shared verbatim between
/// the in-memory and streamed paths so their cache keys — and therefore
/// their outcomes — cannot drift apart.
struct EvalSetup {
    router: VmRouter,
    green_a: Arc<Assessment>,
    gen3_a: Arc<Assessment>,
    baseline_shape: ServerShape,
    green_shape: ServerShape,
    baseline_devices: PoolDevices,
    green_devices: PoolDevices,
    decision_signature: Vec<u64>,
    fault_signature: Vec<u64>,
    slo: Option<AvailabilitySlo>,
}

/// The GSF pipeline.
pub struct GsfPipeline {
    config: PipelineConfig,
    ctx: Arc<EvalContext>,
}

impl GsfPipeline {
    /// Creates a pipeline with the standard application catalog and a
    /// fresh caching [`EvalContext`].
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_context(config, Arc::new(EvalContext::new()))
    }

    /// Creates a pipeline sharing an existing evaluation context — use
    /// this to reuse assessments across pipelines (e.g. the experiments
    /// registry evaluating many designs under the same parameters), or
    /// pass [`EvalContext::uncached`] for the recompute-everything
    /// reference path.
    pub fn with_context(config: PipelineConfig, ctx: Arc<EvalContext>) -> Self {
        Self { config, ctx }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The shared evaluation context (cache statistics live here).
    pub fn context(&self) -> &Arc<EvalContext> {
        &self.ctx
    }

    /// Runs the full pipeline for one design and one trace.
    ///
    /// # Errors
    ///
    /// Returns a [`GsfError`] if carbon assessment fails or the trace
    /// cannot be hosted at the sizing bound.
    pub fn evaluate(
        &self,
        design: &GreenSkuDesign,
        trace: &Trace,
    ) -> Result<PipelineOutcome, GsfError> {
        self.evaluate_at(design, trace, self.config.carbon_params.carbon_intensity)
    }

    /// Runs the pipeline at an overridden grid carbon intensity (the
    /// Fig. 11/12 sweep re-invokes this per intensity: adoption
    /// decisions — and therefore cluster composition — legitimately
    /// depend on the grid).
    ///
    /// # Errors
    ///
    /// See [`Self::evaluate`].
    pub fn evaluate_at(
        &self,
        design: &GreenSkuDesign,
        trace: &Trace,
        ci: CarbonIntensity,
    ) -> Result<PipelineOutcome, GsfError> {
        let setup = self.setup(design, ci)?;
        let transform = |vm: &VmSpec| setup.router.request(vm);
        // Cluster sizing (§IV-D) and the final replay, memoized by the
        // routing decision table: sizing sees the carbon intensity only
        // through the router, so sweep points that route identically
        // share one run of the binary searches. The fault-model
        // signature is part of the key, so fault-injected and
        // fault-free evaluations never share an entry.
        let sizing = self.ctx.sizing(
            trace,
            &setup.decision_signature,
            setup.baseline_shape,
            setup.green_shape,
            self.config.policy,
            self.config.buffer.capacity_fraction,
            &setup.fault_signature,
            self.config.shards,
            || -> Result<crate::context::SizingOutcome, GsfError> {
                // Prepared replay plans, built only on a sizing-memo
                // miss and cached by (trace, decision table) — shared
                // with every other fault/buffer configuration of a
                // routing-identical sweep. The empty signature marks
                // the baseline-only plan; routed signatures always
                // start with the catalog length, so they never collide.
                let prepared = self.ctx.prepared(trace, &setup.decision_signature, || {
                    PreparedTrace::new(trace, &transform)
                });
                let prepared_baseline = self.ctx.prepared(trace, &[], || {
                    PreparedTrace::new(trace, &|vm: &VmSpec| PlacementRequest::baseline_only(vm))
                });
                self.size_and_replay(&setup, &prepared, &prepared_baseline, trace.duration_s())
            },
        )?;
        Ok(self.finish_outcome(design, &setup, &sizing))
    }

    /// Runs the full pipeline for one design against a chunked trace
    /// stream, never materializing the [`Trace`]: peak memory is
    /// O(chunk + prepared plans), independent of how the stream is
    /// produced.
    ///
    /// A single bounded-memory pass over the chunks builds both replay
    /// plans (routed and baseline-only) and verifies the stream's
    /// running content hash. The verified footer digest — pinned equal
    /// to [`Trace::content_hash`] — then keys the same sizing and
    /// prepared-plan caches as the in-memory path, so streamed and
    /// in-memory evaluations of identical content share cache entries
    /// and produce bit-identical outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`GsfError::TraceStream`] if the stream is truncated,
    /// corrupt, or fails hash verification; otherwise everything
    /// [`Self::evaluate`] returns.
    pub fn evaluate_streamed<R: std::io::BufRead>(
        &self,
        design: &GreenSkuDesign,
        reader: &mut TraceChunkReader<R>,
    ) -> Result<PipelineOutcome, GsfError> {
        self.evaluate_streamed_at(design, reader, self.config.carbon_params.carbon_intensity)
    }

    /// [`Self::evaluate_streamed`] at an overridden grid carbon
    /// intensity (see [`Self::evaluate_at`]).
    ///
    /// # Errors
    ///
    /// See [`Self::evaluate_streamed`].
    pub fn evaluate_streamed_at<R: std::io::BufRead>(
        &self,
        design: &GreenSkuDesign,
        reader: &mut TraceChunkReader<R>,
        ci: CarbonIntensity,
    ) -> Result<PipelineOutcome, GsfError> {
        let setup = self.setup(design, ci)?;
        let duration_s = reader.duration_s();
        // One pass, two plans: the routed and baseline-only builders
        // consume each verified chunk in lockstep, so the stream is
        // read exactly once and never retained.
        let routed_transform = |vm: &VmSpec| setup.router.request(vm);
        let baseline_transform = |vm: &VmSpec| PlacementRequest::baseline_only(vm);
        let mut routed = PreparedTraceBuilder::new(duration_s, &routed_transform);
        let mut baseline = PreparedTraceBuilder::new(duration_s, &baseline_transform);
        while let Some(chunk) = reader.next_chunk()? {
            for vm in &chunk.vms {
                routed.push_vm(vm);
                baseline.push_vm(vm);
            }
            for e in &chunk.events {
                routed.push_event(e.time_s, e.kind, e.slot);
                baseline.push_event(e.time_s, e.kind, e.slot);
            }
        }
        let trace_hash = reader.content_hash().ok_or_else(|| {
            GsfError::InvalidConfig("chunked trace stream ended without a footer".into())
        })?;
        let routed = routed.finish();
        let baseline = baseline.finish();
        // Seed the prepared cache under the same keys the in-memory
        // path uses; if another evaluation already built these plans,
        // the freshly streamed copies are dropped in favor of the
        // cached (bit-identical) ones.
        let prepared =
            self.ctx.prepared_by_hash(trace_hash, &setup.decision_signature, move || routed);
        let prepared_baseline = self.ctx.prepared_by_hash(trace_hash, &[], move || baseline);
        let sizing = self.ctx.sizing_hashed(
            trace_hash,
            &setup.decision_signature,
            setup.baseline_shape,
            setup.green_shape,
            self.config.policy,
            self.config.buffer.capacity_fraction,
            &setup.fault_signature,
            self.config.shards,
            || self.size_and_replay(&setup, &prepared, &prepared_baseline, duration_s),
        )?;
        Ok(self.finish_outcome(design, &setup, &sizing))
    }

    /// Everything one evaluation derives from `(design, ci)` before
    /// touching any trace data.
    fn setup(&self, design: &GreenSkuDesign, ci: CarbonIntensity) -> Result<EvalSetup, GsfError> {
        let params = self.config.carbon_params.with_carbon_intensity(ci);
        // One assessment per SKU per parameter set: the router and the
        // emission accounting share the same cached assessments.
        let green_a = self.ctx.assess(&params, &design.carbon)?;
        let baseline_a = self.ctx.baselines(&params)?;
        let router = VmRouter::from_assessments(&green_a, &baseline_a, design);
        let gen3_a = Arc::clone(
            &baseline_a
                .iter()
                .find(|(g, _)| *g == ServerGeneration::Gen3)
                .ok_or_else(|| {
                    GsfError::InvalidConfig("Gen3 baseline assessment missing".to_string())
                })?
                .1,
        );

        let baseline_shape = ServerShape::baseline_gen3();
        let green_shape = ServerShape {
            cores: design.carbon.cores(),
            mem_gb: design.carbon.memory_capacity().get(),
        };

        // Device counts feed both the maintenance OOS fractions and the
        // fault model's per-pool server AFRs.
        use gsf_carbon::component::ComponentClass;
        let device_counts = |sku: &gsf_carbon::ServerSpec| {
            (
                sku.device_count(ComponentClass::Dram) + sku.device_count(ComponentClass::CxlDram),
                sku.device_count(ComponentClass::Ssd),
            )
        };
        let (b_dimms, b_ssds) = device_counts(&open_source::baseline_gen3());
        let (g_dimms, g_ssds) = device_counts(&design.carbon);

        let decision_signature = router.decision_signature();
        // The SLO changes which clusters the fault-injected searches
        // admit, so it joins the fault signature in the sizing key.
        // Appending (rather than always reserving a slot) keeps every
        // pre-SLO cache key bit-identical for the default `None`.
        let mut fault_signature = self.config.faults.signature();
        if let Some(budget) = self.config.availability_slo {
            fault_signature.push(1);
            fault_signature.push(budget.to_bits());
        }
        let slo = self.config.availability_slo.map(|m| AvailabilitySlo { max_vm_minutes_lost: m });
        Ok(EvalSetup {
            router,
            green_a,
            gen3_a,
            baseline_shape,
            green_shape,
            baseline_devices: PoolDevices { dimms: b_dimms, ssds: b_ssds },
            green_devices: PoolDevices { dimms: g_dimms, ssds: g_ssds },
            decision_signature,
            fault_signature,
            slo,
        })
    }

    /// Cluster sizing plus the final buffered replay, from
    /// already-prepared plans — the compute half of the sizing memo.
    /// Both evaluation paths funnel through it, so a streamed and an
    /// in-memory run execute the same searches on bit-identical plans.
    fn size_and_replay(
        &self,
        setup: &EvalSetup,
        prepared: &PreparedTrace,
        prepared_baseline: &PreparedTrace,
        duration_s: f64,
    ) -> Result<crate::context::SizingOutcome, GsfError> {
        let baseline_shape = setup.baseline_shape;
        let green_shape = setup.green_shape;
        let injection = FaultInjection {
            model: &self.config.faults,
            baseline_devices: setup.baseline_devices,
            green_devices: setup.green_devices,
            slo: setup.slo,
        };
        let faults = (!self.config.faults.is_none()).then_some(&injection);
        let shards = self.config.shards;
        if shards > 1 {
            // Sharded semantics: same searches, sharded probes,
            // per-shard replay on worker threads. The result is
            // deterministic for any worker count; only `shards`
            // changes what is computed.
            let workers = gsf_cluster::parallel::default_workers();
            let n0 = right_size_baseline_only_prepared_sharded(
                prepared_baseline,
                baseline_shape,
                self.config.policy,
                faults,
                shards,
                workers,
            )?;
            let plan = right_size_mixed_prepared_sharded(
                prepared,
                prepared_baseline,
                baseline_shape,
                green_shape,
                self.config.policy,
                faults,
                shards,
                workers,
            )?;
            let plan_buffered =
                self.config.buffer.apply(&plan, baseline_shape.cores, green_shape.cores);
            let config = ClusterConfig {
                baseline_count: plan_buffered.baseline,
                baseline_shape,
                green_count: plan_buffered.green,
                green_shape,
            };
            let mut sim = ShardedSim::new(config, self.config.policy, shards);
            let fault_plan = match faults {
                None => FaultPlan::empty(),
                Some(inj) => inj.plan_for(&config, duration_s),
            };
            let (replay, fault_summary) = replay_sharded(&mut sim, prepared, &fault_plan, workers);
            return Ok(crate::context::SizingOutcome {
                baseline_only: n0,
                plan,
                replay,
                faults: fault_summary,
            });
        }
        let n0 = right_size_baseline_only_prepared(
            prepared_baseline,
            baseline_shape,
            self.config.policy,
            faults,
        )?;
        let plan = right_size_mixed_prepared(
            prepared,
            prepared_baseline,
            baseline_shape,
            green_shape,
            self.config.policy,
            faults,
        )?;
        let plan_buffered =
            self.config.buffer.apply(&plan, baseline_shape.cores, green_shape.cores);
        // Final replay on the buffered mixed cluster for packing stats
        // (fault-injected when a model is configured).
        let config = ClusterConfig {
            baseline_count: plan_buffered.baseline,
            baseline_shape,
            green_count: plan_buffered.green,
            green_shape,
        };
        let mut sim = AllocationSim::new(config, self.config.policy);
        let (replay, fault_summary) = match faults {
            None => (sim.replay_prepared(prepared), FaultSummary::default()),
            Some(inj) => {
                let fault_plan = inj.plan_for(&config, duration_s);
                sim.replay_prepared_faulted(prepared, &fault_plan)
            }
        };
        Ok(crate::context::SizingOutcome { baseline_only: n0, plan, replay, faults: fault_summary })
    }

    /// Maintenance, buffering, and emission accounting downstream of
    /// the sizing memo — pure arithmetic on the sizing outcome.
    fn finish_outcome(
        &self,
        design: &GreenSkuDesign,
        setup: &EvalSetup,
        sizing: &crate::context::SizingOutcome,
    ) -> PipelineOutcome {
        let n0 = sizing.baseline_only;
        let plan = sizing.plan;
        let baseline_shape = setup.baseline_shape;
        let green_shape = setup.green_shape;

        // Maintenance (§IV-B): out-of-service servers need spare
        // capacity; inflate each pool by its OOS fraction (Little's law
        // over post-FIP repair rates).
        let m = &self.config.maintenance;
        let oos_baseline = m
            .oos_fraction(m.repair_rate(setup.baseline_devices.dimms, setup.baseline_devices.ssds));
        let oos_green =
            m.oos_fraction(m.repair_rate(setup.green_devices.dimms, setup.green_devices.ssds));

        // Growth buffer: baseline-only on both sides.
        let baseline_plan = ClusterPlan { baseline: n0, green: 0 };
        let baseline_buffered =
            self.config.buffer.apply(&baseline_plan, baseline_shape.cores, green_shape.cores);
        let plan_buffered =
            self.config.buffer.apply(&plan, baseline_shape.cores, green_shape.cores);

        // Emissions of the two buffered clusters, inflated by the
        // out-of-service fractions (the expected spare capacity repairs
        // keep out of rotation — fractional, since the paper finds the
        // overhead negligible rather than a whole server per cluster).
        let oos_emissions = |plan: &ClusterPlan| {
            setup.gen3_a.total_per_server() * (f64::from(plan.baseline) * (1.0 + oos_baseline))
                + setup.green_a.total_per_server() * (f64::from(plan.green) * (1.0 + oos_green))
        };
        let mixed_emissions = oos_emissions(&plan_buffered);
        let baseline_emissions = oos_emissions(&baseline_buffered);
        let cluster_savings = savings_fraction(mixed_emissions, baseline_emissions);

        // DC-level: scale by compute servers' share of DC emissions.
        let compute_share = self
            .config
            .fleet
            .breakdown(self.config.renewable_fraction)
            .category_share(FleetCategory::ComputeServers);
        let dc_savings = cluster_savings * compute_share;

        // Expected failure-induced capacity loss over the fault horizon
        // (0.0 when fault injection is disabled), reported alongside
        // the growth buffer so operators can compare the two reserves.
        let expected_capacity_loss = self.config.faults.expected_capacity_loss(
            &ClusterConfig {
                baseline_count: plan_buffered.baseline,
                baseline_shape,
                green_count: plan_buffered.green,
                green_shape,
            },
            setup.baseline_devices,
            setup.green_devices,
        );

        let adoption_rate = setup.router.adoption_rate_gen3();
        PipelineOutcome {
            design: design.name().to_string(),
            baseline_only_servers: n0,
            baseline_only_buffered: baseline_buffered.baseline,
            plan,
            plan_buffered,
            adoption_rate,
            green_per_core: setup.green_a.total_per_core().get(),
            baseline_per_core: setup.gen3_a.total_per_core().get(),
            oos_baseline,
            oos_green,
            cluster_savings,
            dc_savings,
            expected_capacity_loss,
            availability: sizing.faults.availability,
            faults: sizing.faults,
            replay: sizing.replay.clone(),
        }
    }

    /// Evaluates `design` against many cluster traces in parallel and
    /// aggregates — the data-center roll-up behind the Fig. 12 headline
    /// (the paper replays 35 production traces; a single synthetic trace
    /// carries ±2-3 points of sizing noise that averaging removes).
    ///
    /// # Errors
    ///
    /// Fails if any trace fails to evaluate.
    pub fn evaluate_fleet(
        &self,
        design: &GreenSkuDesign,
        traces: &[Trace],
        workers: usize,
    ) -> Result<FleetOutcome, GsfError> {
        let results: Vec<Result<PipelineOutcome, GsfError>> =
            gsf_cluster::parallel::map_parallel(traces, workers, |_, trace| {
                self.evaluate(design, trace)
            });
        let per_trace: Vec<PipelineOutcome> = results.into_iter().collect::<Result<_, _>>()?;
        if per_trace.is_empty() {
            return Err(GsfError::InvalidConfig("no traces supplied".into()));
        }
        let savings: Vec<f64> = per_trace.iter().map(|o| o.cluster_savings).collect();
        let mean = savings.iter().sum::<f64>() / savings.len() as f64;
        let dc_mean = per_trace.iter().map(|o| o.dc_savings).sum::<f64>() / per_trace.len() as f64;
        Ok(FleetOutcome {
            mean_cluster_savings: mean,
            min_cluster_savings: savings.iter().cloned().fold(f64::INFINITY, f64::min),
            max_cluster_savings: savings.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            mean_dc_savings: dc_mean,
            per_trace,
        })
    }

    /// The Fig. 11/12 sweep: cluster savings of `design` across grid
    /// carbon intensities, evaluated on all available cores.
    ///
    /// # Errors
    ///
    /// See [`Self::evaluate`].
    pub fn savings_sweep(
        &self,
        design: &GreenSkuDesign,
        trace: &Trace,
        intensities: &[f64],
    ) -> Result<Vec<(f64, f64)>, GsfError> {
        self.savings_sweep_with_workers(
            design,
            trace,
            intensities,
            gsf_cluster::parallel::default_workers(),
        )
    }

    /// [`Self::savings_sweep`] with an explicit worker count. Results
    /// are in input order and identical for any worker count (each
    /// intensity's evaluation is independent and deterministic).
    ///
    /// # Errors
    ///
    /// See [`Self::evaluate`].
    pub fn savings_sweep_with_workers(
        &self,
        design: &GreenSkuDesign,
        trace: &Trace,
        intensities: &[f64],
        workers: usize,
    ) -> Result<Vec<(f64, f64)>, GsfError> {
        gsf_cluster::parallel::map_parallel(intensities, workers, |_, &ci| {
            self.evaluate_at(design, trace, CarbonIntensity::new(ci))
                .map(|o| (ci, o.cluster_savings))
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_stats::rng::SeedFactory;
    use gsf_workloads::{TraceGenerator, TraceParams};

    fn small_trace() -> Trace {
        // Big enough that ±1-server discretization stays below ~2 % of
        // cluster emissions, small enough to keep tests fast.
        TraceGenerator::new(TraceParams {
            duration_hours: 24.0,
            arrivals_per_hour: 80.0,
            ..TraceParams::default()
        })
        .generate(&SeedFactory::new(17), 0)
    }

    #[test]
    fn full_pipeline_produces_savings() {
        let pipeline = GsfPipeline::new(PipelineConfig::default());
        let outcome = pipeline.evaluate(&GreenSkuDesign::full(), &small_trace()).unwrap();
        assert!(outcome.plan.green > 0, "some GreenSKUs deployed");
        assert!(outcome.cluster_savings > 0.0, "savings {}", outcome.cluster_savings);
        assert!(outcome.cluster_savings < 0.5);
        assert!(outcome.dc_savings < outcome.cluster_savings);
        assert!(outcome.adoption_rate > 0.5);
        assert!(outcome.replay.no_rejections());
        assert!(outcome.green_per_core < outcome.baseline_per_core);
    }

    #[test]
    fn buffered_plans_no_smaller() {
        let pipeline = GsfPipeline::new(PipelineConfig::default());
        let o = pipeline.evaluate(&GreenSkuDesign::efficient(), &small_trace()).unwrap();
        assert!(o.plan_buffered.baseline >= o.plan.baseline);
        assert_eq!(o.plan_buffered.green, o.plan.green);
        assert!(o.baseline_only_buffered >= o.baseline_only_servers);
    }

    #[test]
    fn reuse_advantage_shrinks_with_carbon_intensity() {
        // Fig. 12 shape (open data): GreenSKU-Full's edge over
        // GreenSKU-Efficient comes from embodied savings, so it shrinks
        // as the grid gets dirtier (with the *internal* Table IV numbers
        // the lines actually cross near 0.175 kg/kWh — see the Fig. 11
        // experiment; with the open Table VIII numbers the crossover
        // sits beyond the realistic range).
        let pipeline = GsfPipeline::new(PipelineConfig::default());
        let trace = small_trace();
        let gap_at = |ci: f64| {
            let eff = pipeline
                .evaluate_at(&GreenSkuDesign::efficient(), &trace, CarbonIntensity::new(ci))
                .unwrap();
            let full = pipeline
                .evaluate_at(&GreenSkuDesign::full(), &trace, CarbonIntensity::new(ci))
                .unwrap();
            full.cluster_savings - eff.cluster_savings
        };
        // Integer server counts add ±1-server noise at this small trace
        // size, so compare the endpoints only.
        let low = gap_at(0.02);
        let high = gap_at(0.5);
        assert!(low > 0.03, "Full wins clearly on a clean grid: {low}");
        assert!(low > high, "gap must shrink with CI: {low} vs {high}");
    }

    #[test]
    fn sweep_is_ordered_and_bounded() {
        let pipeline = GsfPipeline::new(PipelineConfig::default());
        let sweep = pipeline
            .savings_sweep(&GreenSkuDesign::cxl(), &small_trace(), &[0.02, 0.1, 0.4])
            .unwrap();
        assert_eq!(sweep.len(), 3);
        for (ci, s) in sweep {
            assert!(s > 0.0 && s < 0.5, "savings {s} at CI {ci}");
        }
    }
}
