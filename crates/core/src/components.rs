//! The GSF component interfaces (Fig. 6) and their default,
//! production-faithful implementations.
//!
//! GSF's claim is that the *relationships* between components are fixed
//! while each component's *implementation* is cloud-specific. These
//! traits encode the relationships — each trait's methods are exactly
//! the inputs/outputs the paper's Fig. 6 draws between boxes — and the
//! `Default*` structs implement them the way §V does for Azure.

use gsf_carbon::{Assessment, CarbonError, CarbonModel, ModelParams, ServerSpec};
use gsf_maintenance::{ComponentAfrs, FipPolicy, ServerAfr};
use gsf_perf::{MemoryPlacement, ScalingFactor, SkuPerfProfile};
use gsf_workloads::{ApplicationModel, ServerGeneration};

/// Carbon-model component: SKU design → amortized CO₂e per core.
pub trait CarbonComponent {
    /// Assesses a SKU at data-center level.
    ///
    /// # Errors
    ///
    /// Implementations return a [`CarbonError`] when the SKU or model
    /// parameters are invalid.
    fn assess(&self, sku: &ServerSpec) -> Result<Assessment, CarbonError>;
}

/// Performance component: (GreenSKU, baseline, app) → scaling factor.
pub trait PerformanceComponent {
    /// The scaling factor for `app` on the GreenSKU relative to the
    /// baseline of `generation`.
    fn scaling_factor(&self, app: &ApplicationModel, generation: ServerGeneration)
        -> ScalingFactor;
}

/// Maintenance component: SKU device counts → repair rate per 100
/// servers after Fail-In-Place.
pub trait MaintenanceComponent {
    /// Post-FIP repair rate for a server with the given DIMM/SSD counts.
    fn repair_rate(&self, dimms: u32, ssds: u32) -> f64;

    /// Fraction of servers out of service given the repair rate.
    fn oos_fraction(&self, repair_rate: f64) -> f64;
}

/// Default carbon component: the `gsf-carbon` model.
#[derive(Debug, Clone)]
pub struct DefaultCarbon {
    model: CarbonModel,
}

impl DefaultCarbon {
    /// Creates the component with the given model parameters.
    pub fn new(params: ModelParams) -> Self {
        Self { model: CarbonModel::new(params) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &CarbonModel {
        &self.model
    }
}

impl CarbonComponent for DefaultCarbon {
    fn assess(&self, sku: &ServerSpec) -> Result<Assessment, CarbonError> {
        self.model.assess(sku)
    }
}

/// Default performance component: the `gsf-perf` slowdown model and
/// capacity-matching scaling rule.
#[derive(Debug, Clone)]
pub struct DefaultPerformance {
    green: SkuPerfProfile,
    placement: MemoryPlacement,
}

impl DefaultPerformance {
    /// Creates the component for a GreenSKU profile under a memory
    /// placement policy.
    pub fn new(green: SkuPerfProfile, placement: MemoryPlacement) -> Self {
        Self { green, placement }
    }
}

impl PerformanceComponent for DefaultPerformance {
    fn scaling_factor(
        &self,
        app: &ApplicationModel,
        generation: ServerGeneration,
    ) -> ScalingFactor {
        gsf_perf::scaling::scaling_for_generation(app, &self.green, self.placement, generation)
    }
}

/// Default maintenance component: paper AFRs, 75 % FIP, 5-day repairs.
#[derive(Debug, Clone)]
pub struct DefaultMaintenance {
    afrs: ComponentAfrs,
    fip: FipPolicy,
    repair_days: f64,
}

impl DefaultMaintenance {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self { afrs: ComponentAfrs::paper(), fip: FipPolicy::paper(), repair_days: 5.0 }
    }

    /// Overrides the FIP policy (for the ablation benches).
    pub fn with_fip(mut self, fip: FipPolicy) -> Self {
        self.fip = fip;
        self
    }
}

impl Default for DefaultMaintenance {
    fn default() -> Self {
        Self::paper()
    }
}

impl MaintenanceComponent for DefaultMaintenance {
    fn repair_rate(&self, dimms: u32, ssds: u32) -> f64 {
        self.fip.repair_rate(&ServerAfr::new(&self.afrs, dimms, ssds))
    }

    fn oos_fraction(&self, repair_rate: f64) -> f64 {
        gsf_maintenance::oos_fraction(repair_rate, self.repair_days)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use gsf_carbon::datasets::open_source;
    use gsf_workloads::catalog;

    #[test]
    fn default_carbon_assesses_table_viii_skus() {
        let carbon = DefaultCarbon::new(ModelParams::default_open_source());
        for sku in open_source::table_viii_skus() {
            let a = carbon.assess(&sku).unwrap();
            assert!(a.total_per_core().get() > 0.0, "{}", sku.name());
        }
    }

    #[test]
    fn default_performance_matches_perf_crate() {
        let perf = DefaultPerformance::new(
            SkuPerfProfile::greensku_efficient(),
            MemoryPlacement::LocalOnly,
        );
        let redis = catalog::by_name("Redis").unwrap();
        assert_eq!(perf.scaling_factor(&redis, ServerGeneration::Gen3), ScalingFactor::One);
        let silo = catalog::by_name("Silo").unwrap();
        assert_eq!(
            perf.scaling_factor(&silo, ServerGeneration::Gen3),
            ScalingFactor::MoreThanOnePointFive
        );
    }

    #[test]
    fn default_maintenance_golden_rates() {
        let m = DefaultMaintenance::paper();
        assert!((m.repair_rate(12, 6) - 3.0).abs() < 1e-12);
        assert!((m.repair_rate(20, 14) - 3.6).abs() < 1e-12);
        let oos = m.oos_fraction(3.0);
        assert!(oos > 0.0 && oos < 0.01);
    }

    #[test]
    fn components_usable_as_trait_objects() {
        let carbon: Box<dyn CarbonComponent> =
            Box::new(DefaultCarbon::new(ModelParams::default_open_source()));
        let a = carbon.assess(&open_source::baseline_gen3()).unwrap();
        assert_eq!(a.sku(), "Baseline (Gen3)");
        let maint: Box<dyn MaintenanceComponent> = Box::new(DefaultMaintenance::paper());
        assert!(maint.repair_rate(12, 6) > 0.0);
    }
}
