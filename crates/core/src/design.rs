//! A GreenSKU design: the carbon-model view (bill of materials) paired
//! with the performance-model view (architectural profile) and the
//! memory-placement policy the deployment would use.

use gsf_carbon::datasets::open_source;
use gsf_carbon::ServerSpec;
use gsf_perf::{MemoryPlacement, SkuPerfProfile};
use serde::Serialize;

/// A candidate SKU under evaluation.
// Deserialize is intentionally not derived: the perf profile borrows
// `'static` names, so designs are constructed in code, not loaded.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GreenSkuDesign {
    /// Bill of materials for the carbon model.
    pub carbon: ServerSpec,
    /// Architectural profile for the performance model.
    pub perf: SkuPerfProfile,
    /// How VM memory is placed across DDR5/CXL in production.
    pub placement: MemoryPlacement,
}

impl GreenSkuDesign {
    /// GreenSKU-Efficient: Bergamo, no reuse.
    pub fn efficient() -> Self {
        Self {
            carbon: open_source::greensku_efficient(),
            perf: SkuPerfProfile::greensku_efficient(),
            placement: MemoryPlacement::LocalOnly,
        }
    }

    /// GreenSKU-CXL: Bergamo plus reused DDR4 behind CXL, operated with
    /// Pond-style placement (untouched memory only on CXL).
    pub fn cxl() -> Self {
        Self {
            carbon: open_source::greensku_cxl(),
            perf: SkuPerfProfile::greensku_cxl(),
            placement: MemoryPlacement::Pond,
        }
    }

    /// GreenSKU-Full: GreenSKU-CXL plus reused SSDs (same performance
    /// profile — the RAID-striped reused SSDs have no adoption side
    /// effects per §III).
    pub fn full() -> Self {
        Self {
            carbon: open_source::greensku_full(),
            perf: SkuPerfProfile::greensku_cxl(),
            placement: MemoryPlacement::Pond,
        }
    }

    /// The three paper designs in evaluation order.
    pub fn all_three() -> Vec<GreenSkuDesign> {
        vec![Self::efficient(), Self::cxl(), Self::full()]
    }

    /// The design's display name (from the carbon SKU).
    pub fn name(&self) -> &str {
        self.carbon.name()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn designs_are_consistent() {
        let eff = GreenSkuDesign::efficient();
        assert_eq!(eff.carbon.cores(), eff.perf.cores_per_socket);
        assert!(eff.perf.cxl.is_none());
        let cxl = GreenSkuDesign::cxl();
        assert!(cxl.perf.cxl.is_some());
        assert!(cxl.carbon.cxl_memory_capacity().get() > 0.0);
        let full = GreenSkuDesign::full();
        assert_eq!(full.placement, MemoryPlacement::Pond);
    }

    #[test]
    fn all_three_ordered() {
        let names: Vec<String> =
            GreenSkuDesign::all_three().iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, vec!["GreenSKU-Efficient", "GreenSKU-CXL", "GreenSKU-Full"]);
    }
}
