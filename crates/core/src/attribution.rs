//! Per-application carbon attribution (§IV-A).
//!
//! The carbon model's output is deliberately amortized "at a hardware
//! resource granularity that allows attributing emissions to VMs". This
//! module closes that loop: it combines the allocation simulator's
//! [`UsageLedger`] (core-hours per application, per pool) with per-core
//! emission *rates* (kg CO₂e per core-hour, from the lifetime-amortized
//! assessments) into the per-application carbon report a cloud customer
//! would see.

use gsf_carbon::Assessment;
use gsf_vmalloc::UsageLedger;
use gsf_workloads::ApplicationModel;
use serde::{Deserialize, Serialize};

/// Carbon attributed to one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppAttribution {
    /// Application name.
    pub app: String,
    /// Core-hours on baseline servers.
    pub baseline_core_hours: f64,
    /// Core-hours on GreenSKUs.
    pub green_core_hours: f64,
    /// Attributed emissions, kg CO₂e.
    pub kg_co2e: f64,
}

/// A full attribution report for one replayed cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Per-application rows, descending by attributed emissions.
    pub apps: Vec<AppAttribution>,
    /// kg CO₂e per baseline core-hour used.
    pub baseline_rate: f64,
    /// kg CO₂e per green core-hour used.
    pub green_rate: f64,
}

impl AttributionReport {
    /// Builds the report.
    ///
    /// Emission rates derive from each SKU's lifetime-amortized per-core
    /// total divided by the lifetime hours, so a VM's attributed carbon
    /// is `core-hours × rate` on whichever pool hosted it.
    pub fn new(
        usage: &UsageLedger,
        apps: &[ApplicationModel],
        baseline: &Assessment,
        green: &Assessment,
        lifetime_hours: f64,
    ) -> Self {
        assert!(lifetime_hours > 0.0, "lifetime must be positive");
        let baseline_rate = baseline.total_per_core().get() / lifetime_hours;
        let green_rate = green.total_per_core().get() / lifetime_hours;
        let mut rows: Vec<AppAttribution> = usage
            .app_indices()
            .into_iter()
            .map(|idx| {
                let b = usage.baseline_core_hours(idx);
                let g = usage.green_core_hours(idx);
                let name = apps
                    .get(usize::from(idx) % apps.len().max(1))
                    .map_or_else(|| format!("app-{idx}"), |a| a.name().to_string());
                AppAttribution {
                    app: name,
                    baseline_core_hours: b,
                    green_core_hours: g,
                    kg_co2e: b * baseline_rate + g * green_rate,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.kg_co2e.total_cmp(&a.kg_co2e));
        Self { apps: rows, baseline_rate, green_rate }
    }

    /// Total attributed emissions.
    pub fn total_kg(&self) -> f64 {
        self.apps.iter().map(|a| a.kg_co2e).sum()
    }

    /// The emissions the same usage would have caused on an all-baseline
    /// cluster — the per-customer savings view.
    pub fn counterfactual_all_baseline_kg(&self) -> f64 {
        self.apps
            .iter()
            .map(|a| (a.baseline_core_hours + a.green_core_hours) * self.baseline_rate)
            .sum()
    }

    /// Fractional attributed savings vs the all-baseline counterfactual.
    ///
    /// Note: this is the *customer-visible* number; it ignores the
    /// scaling-factor inflation already baked into green core-hours, so
    /// it is an upper bound on the fleet-level savings.
    pub fn attributed_savings(&self) -> f64 {
        let cf = self.counterfactual_all_baseline_kg();
        if cf <= 0.0 {
            0.0
        } else {
            1.0 - self.total_kg() / cf
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::components::{CarbonComponent, DefaultCarbon};
    use gsf_carbon::datasets::open_source;
    use gsf_carbon::ModelParams;
    use gsf_workloads::catalog;

    fn assessments() -> (Assessment, Assessment) {
        let carbon = DefaultCarbon::new(ModelParams::default_open_source());
        (
            carbon.assess(&open_source::baseline_gen3()).unwrap(),
            carbon.assess(&open_source::greensku_full()).unwrap(),
        )
    }

    fn ledger() -> UsageLedger {
        let mut l = UsageLedger::new();
        l.record_baseline(0, 8, 3600.0 * 10.0); // Redis: 80 baseline core-h
        l.record_green(0, 8, 3600.0 * 10.0); // Redis: 80 green core-h
        l.record_green(8, 10, 3600.0 * 20.0); // Moses: 200 green core-h
        l
    }

    #[test]
    fn attribution_sums_and_orders() {
        let (b, g) = assessments();
        let report = AttributionReport::new(&ledger(), &catalog::applications(), &b, &g, 52_560.0);
        assert_eq!(report.apps.len(), 2);
        // Moses consumed more green core-hours: attributed more carbon.
        assert_eq!(report.apps[0].app, "Moses");
        let manual: f64 =
            80.0 * report.baseline_rate + 80.0 * report.green_rate + 200.0 * report.green_rate;
        assert!((report.total_kg() - manual).abs() < 1e-9);
    }

    #[test]
    fn green_rate_below_baseline_rate() {
        let (b, g) = assessments();
        let report = AttributionReport::new(&ledger(), &catalog::applications(), &b, &g, 52_560.0);
        assert!(report.green_rate < report.baseline_rate);
        // So attributed savings are positive for green-hosted usage.
        assert!(report.attributed_savings() > 0.0);
    }

    #[test]
    fn counterfactual_uses_baseline_rate_for_everything() {
        let (b, g) = assessments();
        let report = AttributionReport::new(&ledger(), &catalog::applications(), &b, &g, 52_560.0);
        let expected = (80.0 + 80.0 + 200.0) * report.baseline_rate;
        assert!((report.counterfactual_all_baseline_kg() - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_empty_report() {
        let (b, g) = assessments();
        let report =
            AttributionReport::new(&UsageLedger::new(), &catalog::applications(), &b, &g, 52_560.0);
        assert!(report.apps.is_empty());
        assert_eq!(report.total_kg(), 0.0);
        assert_eq!(report.attributed_savings(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lifetime")]
    fn rejects_zero_lifetime() {
        let (b, g) = assessments();
        AttributionReport::new(&UsageLedger::new(), &catalog::applications(), &b, &g, 0.0);
    }
}
