//! Design-space search (§VIII, "Navigating component search space").
//!
//! The paper's authors iterated through hundreds of configurations with
//! parts of GSF and name a search framework as future work: one that
//! considers component interactions (performance *and* carbon) and
//! repeatedly runs GSF to evaluate emissions. This module implements
//! that loop:
//!
//! 1. [`CandidateSpace`] enumerates SKU configurations (CPU choice ×
//!    memory:core ratio × CXL-reuse share × SSD-reuse share);
//! 2. each candidate is materialized into a full [`GreenSkuDesign`]
//!    (carbon bill of materials + performance profile);
//! 3. [`evaluate_space`] scores every candidate with the carbon model
//!    *and* the fleet-weighted, adoption-aware effective savings (a
//!    candidate that starves applications scores poorly no matter how
//!    little carbon it embodies);
//! 4. [`pareto_front`] keeps the designs that are not dominated on
//!    (effective savings, adoption rate).

use crate::components::{DefaultPerformance, PerformanceComponent};
use crate::context::EvalContext;
use crate::design::GreenSkuDesign;
use crate::error::GsfError;
use gsf_carbon::component::{ComponentClass, ComponentSpec};
use gsf_carbon::datasets::open_source as data;
use gsf_carbon::units::{KgCo2e, Watts};
use gsf_carbon::{ModelParams, ServerSpec};
use gsf_cluster::parallel::{default_workers, map_parallel};
use gsf_perf::{MemoryPlacement, SkuPerfProfile};
use gsf_workloads::{FleetMix, ServerGeneration};
use serde::{Deserialize, Serialize};

/// Which CPU the candidate uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuChoice {
    /// The Gen3 baseline CPU (80 performance cores).
    Genoa,
    /// The efficiency CPU (128 dense cores).
    Bergamo,
}

impl CpuChoice {
    fn cores(&self) -> u32 {
        match self {
            CpuChoice::Genoa => 80,
            CpuChoice::Bergamo => 128,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            CpuChoice::Genoa => "Genoa",
            CpuChoice::Bergamo => "Bergamo",
        }
    }
}

/// One point of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkuConfig {
    /// CPU choice.
    pub cpu: CpuChoice,
    /// Total memory per core, GB.
    pub mem_per_core_gb: f64,
    /// Share of memory served by reused DDR4 behind CXL, `[0, 1)`.
    pub cxl_share: f64,
    /// Share of SSD capacity served by reused drives, `[0, 1]`.
    pub reused_ssd_share: f64,
    /// Total SSD capacity, TB.
    pub ssd_total_tb: f64,
}

impl SkuConfig {
    /// Human-readable configuration name.
    pub fn name(&self) -> String {
        format!(
            "{} {:.0}GB/core, {:.0}% CXL, {:.0}% reused SSD",
            self.cpu.label(),
            self.mem_per_core_gb,
            self.cxl_share * 100.0,
            self.reused_ssd_share * 100.0
        )
    }

    /// Materializes the configuration into a full design.
    ///
    /// # Errors
    ///
    /// Returns [`GsfError::InvalidConfig`] for out-of-range shares and
    /// propagates carbon-model construction failures.
    pub fn build(&self) -> Result<GreenSkuDesign, GsfError> {
        if !(0.0..1.0).contains(&self.cxl_share)
            || !(0.0..=1.0).contains(&self.reused_ssd_share)
            || self.mem_per_core_gb <= 0.0
            || self.ssd_total_tb <= 0.0
        {
            return Err(GsfError::InvalidConfig(format!("out-of-range candidate: {self:?}")));
        }
        let cores = self.cpu.cores();
        let total_gb = self.mem_per_core_gb * f64::from(cores);
        let cxl_gb = total_gb * self.cxl_share;
        let ddr5_gb = total_gb - cxl_gb;
        let reused_tb = self.ssd_total_tb * self.reused_ssd_share;
        let new_tb = self.ssd_total_tb - reused_tb;

        let (cpu_tdp, cpu_emb) = match self.cpu {
            CpuChoice::Genoa => (data::GENOA_TDP_W, data::GENOA_EMBODIED_KG),
            CpuChoice::Bergamo => (data::BERGAMO_TDP_W, data::BERGAMO_EMBODIED_KG),
        };
        let mut builder = ServerSpec::builder(self.name(), cores, 2).component(
            ComponentSpec::new(
                "CPU",
                ComponentClass::Cpu,
                1.0,
                Watts::new(cpu_tdp),
                KgCo2e::new(cpu_emb),
            )?
            .with_derate(data::DERATE)?
            .with_loss_factor(data::CPU_VR_LOSS)?,
        );
        if ddr5_gb > 0.0 {
            builder = builder.component(
                ComponentSpec::new(
                    "DDR5",
                    ComponentClass::Dram,
                    ddr5_gb,
                    Watts::new(data::DDR5_TDP_W_PER_GB),
                    KgCo2e::new(data::DDR5_EMBODIED_KG_PER_GB),
                )?
                .with_derate(data::DERATE)?
                .with_device_count(12),
            );
        }
        if cxl_gb > 0.0 {
            // One controller card per four 32 GB DIMMs (128 GB).
            let controllers = (cxl_gb / 128.0).ceil();
            let dimms = (cxl_gb / 32.0).ceil() as u32;
            builder = builder
                .component(
                    ComponentSpec::new(
                        "Reused DDR4 (CXL)",
                        ComponentClass::CxlDram,
                        cxl_gb,
                        Watts::new(data::REUSED_DDR4_TDP_W_PER_GB),
                        KgCo2e::new(data::DDR5_EMBODIED_KG_PER_GB),
                    )?
                    .with_derate(data::DERATE)?
                    .with_device_count(dimms)
                    .reused(),
                )
                .component(
                    ComponentSpec::new(
                        "CXL controller",
                        ComponentClass::CxlController,
                        controllers,
                        Watts::new(data::CXL_CONTROLLER_TDP_W),
                        KgCo2e::new(data::CXL_CONTROLLER_EMBODIED_KG),
                    )?
                    .with_derate(data::DERATE)?,
                );
        }
        if new_tb > 0.0 {
            builder = builder.component(
                ComponentSpec::new(
                    "SSD (new)",
                    ComponentClass::Ssd,
                    new_tb,
                    Watts::new(data::SSD_TDP_W_PER_TB),
                    KgCo2e::new(data::SSD_EMBODIED_KG_PER_TB),
                )?
                .with_derate(data::DERATE)?
                .with_device_count((new_tb / 4.0).ceil().max(1.0) as u32),
            );
        }
        if reused_tb > 0.0 {
            builder = builder.component(
                ComponentSpec::new(
                    "SSD (reused)",
                    ComponentClass::Ssd,
                    reused_tb,
                    Watts::new(data::REUSED_SSD_TDP_W_PER_TB),
                    KgCo2e::new(data::SSD_EMBODIED_KG_PER_TB),
                )?
                .with_derate(data::DERATE)?
                .with_device_count(reused_tb.ceil().max(1.0) as u32)
                .reused(),
            );
        }
        let carbon = builder.build()?;
        let perf = match (self.cpu, self.cxl_share > 0.0) {
            (CpuChoice::Genoa, _) => SkuPerfProfile::gen3(),
            (CpuChoice::Bergamo, false) => SkuPerfProfile::greensku_efficient(),
            (CpuChoice::Bergamo, true) => SkuPerfProfile::greensku_cxl(),
        };
        let placement =
            if self.cxl_share > 0.0 { MemoryPlacement::Pond } else { MemoryPlacement::LocalOnly };
        Ok(GreenSkuDesign { carbon, perf, placement })
    }
}

/// The enumerated design space (cartesian product of the axes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSpace {
    /// CPU options.
    pub cpus: Vec<CpuChoice>,
    /// Memory:core ratios to try, GB/core.
    pub mem_per_core_gb: Vec<f64>,
    /// CXL shares to try.
    pub cxl_shares: Vec<f64>,
    /// Reused-SSD shares to try.
    pub reused_ssd_shares: Vec<f64>,
    /// Total SSD capacity, TB (fixed across candidates).
    pub ssd_total_tb: f64,
}

impl CandidateSpace {
    /// The space the paper's prototypes live in.
    pub fn paper_neighborhood() -> Self {
        Self {
            cpus: vec![CpuChoice::Genoa, CpuChoice::Bergamo],
            mem_per_core_gb: vec![6.0, 8.0, 9.6],
            cxl_shares: vec![0.0, 0.25, 0.5],
            reused_ssd_shares: vec![0.0, 0.6, 1.0],
            ssd_total_tb: 20.0,
        }
    }

    /// All candidate configurations.
    pub fn candidates(&self) -> Vec<SkuConfig> {
        let mut out = Vec::new();
        for &cpu in &self.cpus {
            for &mem in &self.mem_per_core_gb {
                for &cxl in &self.cxl_shares {
                    for &ssd in &self.reused_ssd_shares {
                        out.push(SkuConfig {
                            cpu,
                            mem_per_core_gb: mem,
                            cxl_share: cxl,
                            reused_ssd_share: ssd,
                            ssd_total_tb: self.ssd_total_tb,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// The configuration.
    pub config: SkuConfig,
    /// Display name.
    pub name: String,
    /// Per-core CO₂e at DC level, kg.
    pub per_core_kg: f64,
    /// Core-hour-weighted adoption rate vs Gen3.
    pub adoption_rate: f64,
    /// Fleet-weighted effective savings vs the Gen3 baseline: each
    /// application contributes `weight × (1 − factor × green/base)` if
    /// it adopts and zero otherwise.
    pub effective_savings: f64,
}

/// Evaluates every candidate in `space` against the Gen3 baseline.
///
/// Uses a private assessment cache and the machine's full parallelism;
/// see [`evaluate_space_with`] to share a cache across calls or pin the
/// worker count.
///
/// # Errors
///
/// Propagates candidate construction and carbon-assessment failures.
pub fn evaluate_space(
    space: &CandidateSpace,
    params: ModelParams,
) -> Result<Vec<SearchResult>, GsfError> {
    evaluate_space_with(space, params, &EvalContext::new(), default_workers())
}

/// [`evaluate_space`] against a caller-supplied assessment cache and
/// worker count.
///
/// Candidates are scored on `workers` threads; the result order (stable
/// sort by effective savings, ties in enumeration order) is identical
/// for any worker count and for cached vs. uncached contexts.
///
/// # Errors
///
/// Propagates candidate construction and carbon-assessment failures.
pub fn evaluate_space_with(
    space: &CandidateSpace,
    params: ModelParams,
    ctx: &EvalContext,
    workers: usize,
) -> Result<Vec<SearchResult>, GsfError> {
    let baseline = ctx.gen3(&params)?;
    let base_pc = baseline.total_per_core().get();
    let mix = FleetMix::standard();

    let candidates = space.candidates();
    let mut results = map_parallel(&candidates, workers, |_, config| -> Result<_, GsfError> {
        let design = config.build()?;
        let assessment = ctx.assess(&params, &design.carbon)?;
        let green_pc = assessment.total_per_core().get();
        let perf = DefaultPerformance::new(design.perf.clone(), design.placement);

        let mut adoption = 0.0;
        let mut effective = 0.0;
        for (i, app) in mix.apps().iter().enumerate() {
            let w = mix.fraction(i);
            let factor = perf.scaling_factor(app, ServerGeneration::Gen3).value();
            if let Some(f) = factor {
                let saving = 1.0 - f * green_pc / base_pc;
                if saving > 0.0 {
                    adoption += w;
                    effective += w * saving;
                }
            }
        }
        Ok(SearchResult {
            name: config.name(),
            config: *config,
            per_core_kg: green_pc,
            adoption_rate: adoption,
            effective_savings: effective,
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    results.sort_by(|a, b| b.effective_savings.total_cmp(&a.effective_savings));
    Ok(results)
}

/// Keeps the candidates not dominated on (effective savings, adoption
/// rate) — both maximized.
pub fn pareto_front(results: &[SearchResult]) -> Vec<&SearchResult> {
    results
        .iter()
        .filter(|a| {
            !results.iter().any(|b| {
                (b.effective_savings > a.effective_savings && b.adoption_rate >= a.adoption_rate)
                    || (b.effective_savings >= a.effective_savings
                        && b.adoption_rate > a.adoption_rate)
            })
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn results() -> Vec<SearchResult> {
        evaluate_space(&CandidateSpace::paper_neighborhood(), ModelParams::default_open_source())
            .unwrap()
    }

    #[test]
    fn space_enumerates_cartesian_product() {
        let space = CandidateSpace::paper_neighborhood();
        assert_eq!(space.candidates().len(), 2 * 3 * 3 * 3);
    }

    #[test]
    fn full_like_candidate_in_top_half_and_leaner_configs_win() {
        // The GreenSKU-Full-like point (Bergamo, 8 GB/core, 25 % CXL,
        // 60 % reused SSD) ranks in the top half; the overall winner
        // uses even less memory per core and more reuse — exactly the
        // §VIII observation that the prototypes "may not be the optimal
        // configuration".
        let rs = results();
        let idx = rs
            .iter()
            .position(|r| {
                r.config.cpu == CpuChoice::Bergamo
                    && (r.config.mem_per_core_gb - 8.0).abs() < 1e-9
                    && (r.config.cxl_share - 0.25).abs() < 1e-9
                    && (r.config.reused_ssd_share - 0.6).abs() < 1e-9
            })
            .expect("candidate present");
        assert!(idx < rs.len() / 2, "rank {idx} of {}", rs.len());
        let best = &rs[0].config;
        assert!(best.mem_per_core_gb <= 8.0);
        assert!(best.reused_ssd_share >= 0.6);
    }

    #[test]
    fn best_candidate_uses_the_efficient_cpu() {
        // Genoa candidates reach full adoption (no per-core slowdown)
        // but never beat the best Bergamo candidate on effective
        // savings.
        let rs = results();
        assert_eq!(rs[0].config.cpu, CpuChoice::Bergamo);
        let best_genoa = rs
            .iter()
            .filter(|r| r.config.cpu == CpuChoice::Genoa)
            .map(|r| r.effective_savings)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best_genoa < rs[0].effective_savings);
        // And Genoa's adoption is total (it *is* the baseline CPU).
        let genoa_adoption =
            rs.iter().find(|r| r.config.cpu == CpuChoice::Genoa).unwrap().adoption_rate;
        assert!((genoa_adoption - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_front_is_nonempty_and_non_dominated() {
        let rs = results();
        let front = pareto_front(&rs);
        assert!(!front.is_empty());
        for a in &front {
            for b in &rs {
                assert!(
                    !(b.effective_savings > a.effective_savings
                        && b.adoption_rate > a.adoption_rate),
                    "{} dominated by {}",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = SkuConfig {
            cpu: CpuChoice::Bergamo,
            mem_per_core_gb: 8.0,
            cxl_share: 1.2,
            reused_ssd_share: 0.0,
            ssd_total_tb: 20.0,
        };
        assert!(bad.build().is_err());
    }

    #[test]
    fn built_designs_are_consistent() {
        let config = SkuConfig {
            cpu: CpuChoice::Bergamo,
            mem_per_core_gb: 8.0,
            cxl_share: 0.25,
            reused_ssd_share: 0.6,
            ssd_total_tb: 20.0,
        };
        let design = config.build().unwrap();
        assert_eq!(design.carbon.cores(), 128);
        assert!((design.carbon.memory_capacity().get() - 1024.0).abs() < 1e-9);
        assert!((design.carbon.cxl_memory_capacity().get() - 256.0).abs() < 1e-9);
        assert!(design.perf.cxl.is_some());
        assert_eq!(design.placement, MemoryPlacement::Pond);
    }
}
