//! Framework-level errors.

use std::fmt;

/// Errors from running the GSF pipeline.
#[derive(Debug)]
pub enum GsfError {
    /// The carbon model rejected a SKU or its parameters.
    Carbon(gsf_carbon::CarbonError),
    /// Cluster sizing could not host the workload.
    Sizing(gsf_cluster::SizingError),
    /// The pipeline configuration is inconsistent.
    InvalidConfig(String),
    /// A chunked trace stream failed to read, decode, or verify.
    TraceStream(gsf_workloads::TraceStreamError),
}

impl fmt::Display for GsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsfError::Carbon(e) => write!(f, "carbon model error: {e}"),
            GsfError::Sizing(e) => write!(f, "cluster sizing error: {e}"),
            GsfError::InvalidConfig(msg) => write!(f, "invalid pipeline configuration: {msg}"),
            GsfError::TraceStream(e) => write!(f, "trace stream error: {e}"),
        }
    }
}

impl std::error::Error for GsfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GsfError::Carbon(e) => Some(e),
            GsfError::Sizing(e) => Some(e),
            GsfError::InvalidConfig(_) => None,
            GsfError::TraceStream(e) => Some(e),
        }
    }
}

impl From<gsf_workloads::TraceStreamError> for GsfError {
    fn from(e: gsf_workloads::TraceStreamError) -> Self {
        GsfError::TraceStream(e)
    }
}

impl From<gsf_carbon::CarbonError> for GsfError {
    fn from(e: gsf_carbon::CarbonError) -> Self {
        GsfError::Carbon(e)
    }
}

impl From<gsf_cluster::SizingError> for GsfError {
    fn from(e: gsf_cluster::SizingError) -> Self {
        GsfError::Sizing(e)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = GsfError::from(gsf_cluster::SizingError::Infeasible { bound: 4 });
        assert!(e.to_string().contains("sizing"));
        assert!(e.source().is_some());
        let e = GsfError::InvalidConfig("x".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GsfError>();
    }
}
