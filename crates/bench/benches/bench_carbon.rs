//! Carbon-model benches: the code paths behind Fig. 1, Tables IV/V/VI/
//! VIII, and the §VII-B analyses.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsf_carbon::breakdown::{FleetModel, DEFAULT_RENEWABLE_FRACTION};
use gsf_carbon::datasets::open_source;
use gsf_carbon::equivalence::{
    efficiency_gain_for_savings, lifetime_extension_for_savings, renewables_increase_for_savings,
};
use gsf_carbon::{CarbonModel, ModelParams};

/// Table VIII: assess all five SKUs and compute the four savings rows.
fn table8_savings(c: &mut Criterion) {
    let model = CarbonModel::new(ModelParams::default_open_source());
    let baseline = open_source::baseline_gen3();
    let greens = open_source::table_viii_skus();
    c.bench_function("table8_savings_all_rows", |b| {
        b.iter(|| {
            for sku in &greens[1..] {
                black_box(model.savings(&baseline, sku).unwrap());
            }
        })
    });
}

/// The §V worked example at rack level (golden-number path).
fn worked_example(c: &mut Criterion) {
    let model = CarbonModel::new(ModelParams::worked_example());
    let sku = open_source::greensku_cxl_example();
    c.bench_function("worked_example_rack_assessment", |b| {
        b.iter(|| black_box(model.assess_rack(&sku).unwrap()))
    });
}

/// Fig. 1: the fleet breakdown at a given renewables mix.
fn fig1_breakdown(c: &mut Criterion) {
    let fleet = FleetModel::azure_calibrated();
    c.bench_function("fig1_breakdown", |b| {
        b.iter(|| black_box(fleet.breakdown(black_box(DEFAULT_RENEWABLE_FRACTION))))
    });
}

/// §VII-B: the three equivalence solvers.
fn sec7_equivalence(c: &mut Criterion) {
    let fleet = FleetModel::azure_calibrated();
    c.bench_function("sec7_equivalence_solvers", |b| {
        b.iter(|| {
            black_box(
                renewables_increase_for_savings(&fleet, DEFAULT_RENEWABLE_FRACTION, 0.07).unwrap(),
            );
            black_box(
                efficiency_gain_for_savings(&fleet, DEFAULT_RENEWABLE_FRACTION, 0.07).unwrap(),
            );
            black_box(
                lifetime_extension_for_savings(&fleet, DEFAULT_RENEWABLE_FRACTION, 6.0, 0.07)
                    .unwrap(),
            );
        })
    });
}

/// Microbench: SKU construction from the dataset (Tables V/VI path).
fn dataset_construction(c: &mut Criterion) {
    c.bench_function("table5_6_sku_construction", |b| {
        b.iter(|| black_box(open_source::table_viii_skus()))
    });
}

criterion_group!(
    benches,
    table8_savings,
    worked_example,
    fig1_breakdown,
    sec7_equivalence,
    dataset_construction
);
criterion_main!(benches);
