//! Performance-model benches: the code paths behind Fig. 7, Fig. 8,
//! Table II, and Table III.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsf_bench::bench_seeds;
use gsf_perf::analytic::MmcQueue;
use gsf_perf::des::{simulate, DesConfig, ServiceDist};
use gsf_perf::sweep::LoadSweep;
use gsf_perf::throughput::table_ii;
use gsf_perf::{scaling_table, slowdown, MemoryPlacement, SkuPerfProfile};
use gsf_workloads::catalog;

/// Table III: the full 20-app × 3-generation scaling matrix.
fn table3_scaling(c: &mut Criterion) {
    let apps = catalog::applications();
    c.bench_function("table3_scaling_matrix", |b| {
        b.iter(|| {
            black_box(scaling_table(
                &apps,
                &SkuPerfProfile::greensku_efficient(),
                MemoryPlacement::LocalOnly,
            ))
        })
    });
}

/// Table II: the build-slowdown rows.
fn table2_builds(c: &mut Criterion) {
    c.bench_function("table2_build_slowdowns", |b| b.iter(|| black_box(table_ii())));
}

/// Fig. 7: one DES latency point at 90 % load (the unit of the sweep).
fn fig7_latency_point(c: &mut Criterion) {
    let config = DesConfig {
        cores: 8,
        qps: 3600.0,
        mean_service_ms: 2.0,
        dist: ServiceDist::LogNormal { sigma: 0.9 },
        requests: 20_000,
        warmup_fraction: 0.1,
    };
    c.bench_function("fig7_des_point_20k_requests", |b| {
        b.iter(|| {
            let mut rng = bench_seeds().stream("bench-des");
            black_box(simulate(&config, &mut rng))
        })
    });
}

/// Fig. 8: the Moses CXL-vs-local curve pair at reduced fidelity.
fn fig8_curve_pair(c: &mut Criterion) {
    let moses = catalog::by_name("Moses").unwrap();
    let loads = LoadSweep::standard_loads(2750.0);
    c.bench_function("fig8_moses_curve_pair", |b| {
        b.iter(|| {
            for (sku, placement) in [
                (SkuPerfProfile::greensku_efficient(), MemoryPlacement::LocalOnly),
                (SkuPerfProfile::greensku_cxl(), MemoryPlacement::Naive),
            ] {
                let sweep = LoadSweep::new(moses.clone(), sku, placement, 10)
                    .with_requests(4_000)
                    .with_trials(1);
                black_box(sweep.run(&bench_seeds(), &loads));
            }
        })
    });
}

/// Microbench: a single slowdown evaluation (the inner loop of
/// everything above).
fn slowdown_eval(c: &mut Criterion) {
    let masstree = catalog::by_name("Masstree").unwrap();
    let sku = SkuPerfProfile::greensku_cxl();
    c.bench_function("slowdown_single_eval", |b| {
        b.iter(|| black_box(slowdown(&masstree, &sku, MemoryPlacement::Naive)))
    });
}

/// Microbench: analytic M/M/c p95 (the scaling search's primitive).
fn analytic_p95(c: &mut Criterion) {
    let q = MmcQueue::new(8, 3600.0, 2.0).unwrap();
    c.bench_function("analytic_mmc_p95", |b| b.iter(|| black_box(q.p95_response_ms())));
}

criterion_group!(
    benches,
    table3_scaling,
    table2_builds,
    fig7_latency_point,
    fig8_curve_pair,
    slowdown_eval,
    analytic_p95
);
criterion_main!(benches);
